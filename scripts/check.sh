#!/usr/bin/env bash
# Sanitizer gate for the simulator core.
#
# Builds the whole tree with AddressSanitizer + UndefinedBehaviorSanitizer,
# runs the full test suite, then a quick bench_core pass — so the slab
# scheduler's pointer recycling, the InlineFunction placement-new
# machinery, and the COW payload sharing are all exercised under the
# sanitizers, not just under the unit-test assertions.
#
# Usage: scripts/check.sh [build-dir]      (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

on_fail() {
  echo >&2
  echo "check.sh: FAILED. If the failure is a -Werror=unused-result or" >&2
  echo "ordering issue, run the static gate for a faster diagnosis:" >&2
  echo "    scripts/lint.sh        (also the CI 'lint' job)" >&2
  echo "For layering, timer-lifecycle, or wire-coverage errors the" >&2
  echo "architecture linter names the exact edge/field:" >&2
  echo "    scripts/lint/archlint.py --root .   (layer DAG in scripts/lint/layers.toml)" >&2
  echo "If an Obs* determinism test or obs_golden failed, pinpoint the" >&2
  echo "first divergent event with the trace differ:" >&2
  echo "    scripts/obs_golden.sh  (also the CI 'obs' job)" >&2
  echo "    scripts/tracediff.py a.jsonl b.jsonl" >&2
  echo "If test_parallel or obs_golden_sharded failed, the parallel" >&2
  echo "engine's determinism certificate is the place to look:" >&2
  echo "    scripts/obs_golden.sh --shards 4   (contract in DESIGN.md §13)" >&2
  echo "If doclint_tree failed, a doc reference went stale — the finding" >&2
  echo "names the file and the missing target:" >&2
  echo "    scripts/lint/doclint.py --root ." >&2
}
trap 'on_fail' ERR
build_dir="${1:-$repo_root/build-asan}"

echo "== configure ($build_dir, ASan+UBSan) =="
cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

echo "== build =="
cmake --build "$build_dir" -j "$(nproc)"

echo "== tests (ctest) =="
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "== bench_core --quick (sanitized) =="
# Throughput numbers are meaningless under ASan; this run is purely a
# memory-correctness sweep of the slab/COW hot paths at scale. Write the
# JSON somewhere disposable so the committed BENCH_core.json (produced
# by a normal optimized build) is not clobbered with sanitized numbers.
"$build_dir/bench/bench_core" --quick --out "$build_dir/BENCH_core.quick.json"

echo "== check.sh: all green =="
