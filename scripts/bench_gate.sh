#!/usr/bin/env bash
# Performance regression gate: re-run bench_core and compare against the
# committed BENCH_core.json baseline. Fails (exit 1) if scheduler
# throughput drops by more than 10% or churn wall time rises by more
# than 10%.
#
# Usage:
#   scripts/bench_gate.sh [path/to/bench_core] [path/to/result.json]
#
# With no arguments it builds nothing: it expects build/bench/bench_core
# to exist (run cmake --build build first) and writes the fresh result
# to a temporary file. Pass an existing result JSON as the second
# argument to skip the benchmark run (e.g. in CI where the run already
# happened).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="$repo_root/BENCH_core.json"
bench_bin="${1:-$repo_root/build/bench/bench_core}"
result="${2:-}"

if [[ ! -f "$baseline" ]]; then
  echo "bench_gate: missing committed baseline $baseline" >&2
  exit 2
fi

if [[ -z "$result" ]]; then
  if [[ ! -x "$bench_bin" ]]; then
    echo "bench_gate: benchmark binary not found: $bench_bin" >&2
    echo "bench_gate: build it first (cmake --build build --target bench_core)" >&2
    exit 2
  fi
  result="$(mktemp /tmp/bench_core.XXXXXX.json)"
  trap 'rm -f "$result"' EXIT
  echo "bench_gate: running $bench_bin ..."
  (cd "$repo_root" && "$bench_bin" --out "$result")
fi

python3 - "$baseline" "$result" <<'EOF'
import json
import sys

TOLERANCE = 0.10  # 10%

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

failures = []


def check_floor(name, baseline, current):
    """Metric where higher is better: fail if it drops >10%."""
    floor = baseline * (1.0 - TOLERANCE)
    verdict = "ok" if current >= floor else "FAIL"
    print(f"  {name:32s} baseline={baseline:>14.1f} "
          f"current={current:>14.1f} floor={floor:>14.1f} {verdict}")
    if current < floor:
        failures.append(name)


def check_ceiling(name, baseline, current):
    """Metric where lower is better: fail if it rises >10%."""
    ceiling = baseline * (1.0 + TOLERANCE)
    verdict = "ok" if current <= ceiling else "FAIL"
    print(f"  {name:32s} baseline={baseline:>14.3f} "
          f"current={current:>14.3f} ceiling={ceiling:>14.3f} {verdict}")
    if current > ceiling:
        failures.append(name)


print("bench_gate: comparing against committed BENCH_core.json")
check_floor("scheduler.events_per_sec",
            base["scheduler"]["events_per_sec"],
            cur["scheduler"]["events_per_sec"])
# Fast-path blocks appeared with the flat-FIB/timer-wheel PR; guard the
# missing-key case so the gate still runs against older baselines.
if "fib" in base and "fib" in cur:
    check_floor("fib.lookups_per_sec",
                base["fib"]["lookups_per_sec"],
                cur["fib"]["lookups_per_sec"])
if "timer_wheel" in base and "timer_wheel" in cur:
    check_floor("timer_wheel.events_per_sec",
                base["timer_wheel"]["events_per_sec"],
                cur["timer_wheel"]["events_per_sec"])
check_ceiling("churn.wall_s", base["churn"]["wall_s"], cur["churn"]["wall_s"])

if failures:
    print(f"bench_gate: FAIL ({', '.join(failures)} regressed >10%)")
    sys.exit(1)
print("bench_gate: PASS")
EOF
