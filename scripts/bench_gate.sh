#!/usr/bin/env bash
# Performance regression gate: re-run bench_core and compare against the
# committed BENCH_core.json baseline. Fails (exit 1) if scheduler
# throughput drops by more than 10% or churn wall time rises by more
# than 10%. When a committed BENCH_reliable.json baseline and the
# bench_reliable binary both exist, the reliable repair-path gate runs
# too: delivery must stay complete, repair rounds/bytes must not
# regress, and subcast repair must keep beating channel-wide repair.
# Likewise for BENCH_parallel.json + bench_parallel: every mode's wire
# counters must still equal the plain run's, and the K=1 passthrough
# throughput must not collapse (speedups are never gated).
#
# Usage:
#   scripts/bench_gate.sh [path/to/bench_core] [path/to/result.json]
#
# With no arguments it builds nothing: it expects build/bench/bench_core
# to exist (run cmake --build build first) and writes the fresh result
# to a temporary file. Pass an existing result JSON as the second
# argument to skip the benchmark run (e.g. in CI where the run already
# happened). bench_reliable is auto-detected next to bench_core.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="$repo_root/BENCH_core.json"
bench_bin="${1:-$repo_root/build/bench/bench_core}"
result="${2:-}"

if [[ ! -f "$baseline" ]]; then
  echo "bench_gate: missing committed baseline $baseline" >&2
  exit 2
fi

cleanup_files=()
cleanup() { rm -f "${cleanup_files[@]}"; }
trap cleanup EXIT

if [[ -z "$result" ]]; then
  if [[ ! -x "$bench_bin" ]]; then
    echo "bench_gate: benchmark binary not found: $bench_bin" >&2
    echo "bench_gate: build it first (cmake --build build --target bench_core)" >&2
    exit 2
  fi
  result="$(mktemp /tmp/bench_core.XXXXXX.json)"
  cleanup_files+=("$result")
  echo "bench_gate: running $bench_bin ..."
  (cd "$repo_root" && "$bench_bin" --out "$result")
fi

python3 - "$baseline" "$result" <<'EOF'
import json
import sys

TOLERANCE = 0.10  # 10%

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

failures = []


def check_floor(name, baseline, current):
    """Metric where higher is better: fail if it drops >10%."""
    floor = baseline * (1.0 - TOLERANCE)
    verdict = "ok" if current >= floor else "FAIL"
    print(f"  {name:32s} baseline={baseline:>14.1f} "
          f"current={current:>14.1f} floor={floor:>14.1f} {verdict}")
    if current < floor:
        failures.append(name)


def check_ceiling(name, baseline, current):
    """Metric where lower is better: fail if it rises >10%."""
    ceiling = baseline * (1.0 + TOLERANCE)
    verdict = "ok" if current <= ceiling else "FAIL"
    print(f"  {name:32s} baseline={baseline:>14.3f} "
          f"current={current:>14.3f} ceiling={ceiling:>14.3f} {verdict}")
    if current > ceiling:
        failures.append(name)


print("bench_gate: comparing against committed BENCH_core.json")
check_floor("scheduler.events_per_sec",
            base["scheduler"]["events_per_sec"],
            cur["scheduler"]["events_per_sec"])
# Fast-path blocks appeared with the flat-FIB/timer-wheel PR; guard the
# missing-key case so the gate still runs against older baselines.
if "fib" in base and "fib" in cur:
    check_floor("fib.lookups_per_sec",
                base["fib"]["lookups_per_sec"],
                cur["fib"]["lookups_per_sec"])
if "timer_wheel" in base and "timer_wheel" in cur:
    check_floor("timer_wheel.events_per_sec",
                base["timer_wheel"]["events_per_sec"],
                cur["timer_wheel"]["events_per_sec"])
check_ceiling("churn.wall_s", base["churn"]["wall_s"], cur["churn"]["wall_s"])

if failures:
    print(f"bench_gate: FAIL ({', '.join(failures)} regressed >10%)")
    sys.exit(1)
print("bench_gate: PASS")
EOF

# ----------------------------------------------------------------------
# Reliable repair-path gate (auto-detected: needs the committed baseline
# and the bench_reliable binary built next to bench_core).
# ----------------------------------------------------------------------
reliable_baseline="$repo_root/BENCH_reliable.json"
reliable_bin="$(dirname "$bench_bin")/bench_reliable"

if [[ -f "$reliable_baseline" && -x "$reliable_bin" ]]; then
  reliable_result="$(mktemp /tmp/bench_reliable.XXXXXX.json)"
  cleanup_files+=("$reliable_result")
  echo "bench_gate: running $reliable_bin ..."
  (cd "$repo_root" && "$reliable_bin" --out "$reliable_result")

  python3 - "$reliable_baseline" "$reliable_result" <<'EOF'
import json
import sys

TOLERANCE = 0.10  # 10%

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

failures = []


def check_ceiling(name, baseline, current):
    """Metric where lower is better: fail if it rises >10%."""
    ceiling = baseline * (1.0 + TOLERANCE)
    verdict = "ok" if current <= ceiling else "FAIL"
    print(f"  {name:36s} baseline={baseline:>12.0f} "
          f"current={current:>12.0f} ceiling={ceiling:>12.1f} {verdict}")
    if current > ceiling:
        failures.append(name)


print("bench_gate: comparing against committed BENCH_reliable.json")
# Guard every key: the gate must keep running against baselines from
# before (or after) a schema change instead of KeyError-ing.
for mode in ("subcast", "channel_wide"):
    if mode not in base or mode not in cur:
        continue
    if "delivered_all" in cur[mode] and not cur[mode]["delivered_all"]:
        print(f"  {mode}.delivered_all: FAIL (blocks lost for good)")
        failures.append(f"{mode}.delivered_all")
    for key in ("repair_rounds", "repair_bytes"):
        if key in base[mode] and key in cur[mode]:
            check_ceiling(f"{mode}.{key}", base[mode][key], cur[mode][key])
# The paper's point (§2.1): repairing through the covering subtree must
# cost strictly less than flooding the channel.
if "subcast" in cur and "channel_wide" in cur and \
        "repair_bytes" in cur.get("subcast", {}) and \
        "repair_bytes" in cur.get("channel_wide", {}):
    sub_b = cur["subcast"]["repair_bytes"]
    chan_b = cur["channel_wide"]["repair_bytes"]
    verdict = "ok" if sub_b < chan_b else "FAIL"
    print(f"  subcast < channel_wide repair bytes   "
          f"{sub_b} vs {chan_b} {verdict}")
    if sub_b >= chan_b:
        failures.append("subcast_vs_channel_repair_bytes")

if failures:
    print(f"bench_gate: FAIL ({', '.join(failures)})")
    sys.exit(1)
print("bench_gate: PASS (reliable)")
EOF
else
  echo "bench_gate: skipping reliable gate (baseline or binary missing)"
fi

# ----------------------------------------------------------------------
# Parallel-engine gate (auto-detected like the reliable gate). The hard
# assertions are the equality flags — wire counters identical to the
# plain run at every shard count. Throughput is guarded only for the
# K=1 passthrough, with a loose tolerance: the full run is short, so
# wall-clock noise is proportionally large, and the gate exists to
# catch a collapsed fast path, not a noisy 15%.
# ----------------------------------------------------------------------
parallel_baseline="$repo_root/BENCH_parallel.json"
parallel_bin="$(dirname "$bench_bin")/bench_parallel"

if [[ -f "$parallel_baseline" && -x "$parallel_bin" ]]; then
  parallel_result="$(mktemp /tmp/bench_parallel.XXXXXX.json)"
  cleanup_files+=("$parallel_result")
  echo "bench_gate: running $parallel_bin ..."
  (cd "$repo_root" && "$parallel_bin" --out "$parallel_result")

  python3 - "$parallel_baseline" "$parallel_result" <<'EOF'
import json
import sys

TOLERANCE = 0.50  # loose: short run, wall-clock noise; see header comment

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

failures = []

print("bench_gate: comparing against committed BENCH_parallel.json")
for mode in ("k1", "k2", "k4"):
    flag = cur.get(mode, {}).get("counters_match_plain")
    verdict = "ok" if flag else "FAIL"
    print(f"  {mode}.counters_match_plain              {flag} {verdict}")
    if not flag:
        failures.append(f"{mode}.counters_match_plain")

if "k1" in base and "k1" in cur:
    b = base["k1"]["events_per_sec"]
    c = cur["k1"]["events_per_sec"]
    floor = b * (1.0 - TOLERANCE)
    verdict = "ok" if c >= floor else "FAIL"
    print(f"  k1.events_per_sec                     baseline={b:>12.0f} "
          f"current={c:>12.0f} floor={floor:>12.0f} {verdict}")
    if c < floor:
        failures.append("k1.events_per_sec")

if failures:
    print(f"bench_gate: FAIL ({', '.join(failures)})")
    sys.exit(1)
print("bench_gate: PASS (parallel)")
EOF
else
  echo "bench_gate: skipping parallel gate (baseline or binary missing)"
fi
