#!/usr/bin/env bash
# Formatting diff-gate. Prefers clang-format (.clang-format at the repo
# root) when installed; otherwise falls back to a Python whitespace
# check (trailing whitespace, tabs, CRLF, missing final newline) so the
# gate never silently vanishes on machines without the clang tools.
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if command -v clang-format >/dev/null 2>&1; then
  mapfile -t sources < <(
    find "$repo_root/src" "$repo_root/tests" "$repo_root/bench" \
      "$repo_root/examples" \
      \( -name '*.hpp' -o -name '*.cpp' -o -name '*.h' -o -name '*.cc' \) |
      sort
  )
  if clang-format --dry-run -Werror "${sources[@]}"; then
    echo "clang-format: clean (${#sources[@]} files)"
    exit 0
  fi
  echo "format_check.sh: run clang-format -i on the files above" >&2
  exit 1
fi

echo "clang-format not installed; whitespace fallback"
exec python3 "$repo_root/scripts/lint/format_fallback.py"
