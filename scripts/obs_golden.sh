#!/usr/bin/env bash
# Golden determinism gate for the observability plane (DESIGN.md §11).
#
# Captures the pinned seeded-churn scenario twice with the same seed
# and asserts both artifacts are byte-identical:
#   - the event trace JSONL, compared with scripts/tracediff.py
#   - the metrics registry snapshot, compared with cmp
# then captures a different seed and asserts tracediff reports the
# first divergent record (non-zero exit). Run by ctest as `obs_golden`
# and by the CI `obs` step.
#
# Usage: scripts/obs_golden.sh [path/to/obs_capture]
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
capture="${1:-$repo_root/build/bench/obs_capture}"

if [[ ! -x "$capture" ]]; then
  echo "obs_golden: capture binary not found: $capture" >&2
  echo "  build it first: cmake --build build --target obs_capture" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

run() {
  local seed="$1" tag="$2"
  "$capture" --seed "$seed" \
    --trace-out "$workdir/$tag.jsonl" \
    --metrics-out "$workdir/$tag.json" >/dev/null || {
    echo "obs_golden: capture (seed $seed) failed" >&2
    exit 1
  }
}

run 7 a
run 7 b
run 8 c

fail=0

if python3 "$repo_root/scripts/tracediff.py" \
    "$workdir/a.jsonl" "$workdir/b.jsonl"; then
  echo "obs_golden: same-seed traces identical"
else
  echo "obs_golden: FAIL — same-seed traces diverge (see above)" >&2
  fail=1
fi

if cmp -s "$workdir/a.json" "$workdir/b.json"; then
  echo "obs_golden: same-seed metrics snapshots identical"
else
  echo "obs_golden: FAIL — same-seed metrics snapshots differ" >&2
  fail=1
fi

if python3 "$repo_root/scripts/tracediff.py" \
    "$workdir/a.jsonl" "$workdir/c.jsonl"; then
  echo "obs_golden: FAIL — different-seed traces compare identical" >&2
  fail=1
else
  echo "obs_golden: different-seed divergence detected and located"
fi

if [[ "$fail" -ne 0 ]]; then
  echo "obs_golden: FAILED" >&2
  exit 1
fi
echo "obs_golden: all green"
