#!/usr/bin/env bash
# Golden determinism gate for the observability plane (DESIGN.md §11)
# and, in --shards mode, for the parallel engine (DESIGN.md §13).
#
# Default mode captures the pinned seeded-churn scenario twice with the
# same seed and asserts both artifacts are byte-identical:
#   - the event trace JSONL, compared with scripts/tracediff.py
#   - the metrics registry snapshot, compared with cmp
# then captures a different seed and asserts tracediff reports the
# first divergent record (non-zero exit). Run by ctest as `obs_golden`
# and by the CI `obs` step.
#
# --shards K runs the parallel-engine A/B contract instead, for both
# the churn and the chaos scenario:
#   1. plain vs --shards 1: raw trace and raw snapshot byte-identical
#      (the K=1 engine is a pure passthrough);
#   2. --shards 1 vs --shards K: canonical trace and normalized
#      snapshot byte-identical (same semantic events and protocol
#      metrics under any partition);
#   3. --shards K with 1 vs 2 worker threads: merged raw trace and raw
#      snapshot byte-identical (thread count never changes results).
#
# Usage: scripts/obs_golden.sh [--shards K] [path/to/obs_capture]
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
shards=""
capture=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --shards)
      [[ $# -ge 2 ]] || { echo "obs_golden: --shards needs a value" >&2; exit 2; }
      shards="$2"; shift 2 ;;
    *)
      capture="$1"; shift ;;
  esac
done
capture="${capture:-$repo_root/build/bench/obs_capture}"

if [[ ! -x "$capture" ]]; then
  echo "obs_golden: capture binary not found: $capture" >&2
  echo "  build it first: cmake --build build --target obs_capture" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
fail=0

run() {
  local tag="$1"; shift
  "$capture" "$@" \
    --trace-out "$workdir/$tag.jsonl" \
    --metrics-out "$workdir/$tag.json" >/dev/null || {
    echo "obs_golden: capture ($tag: $*) failed" >&2
    exit 1
  }
}

check_pair() {
  local what="$1" a="$2" b="$3"
  if cmp -s "$workdir/$a.jsonl" "$workdir/$b.jsonl" \
      && cmp -s "$workdir/$a.json" "$workdir/$b.json"; then
    echo "obs_golden: $what identical"
  else
    echo "obs_golden: FAIL — $what differ ($a vs $b)" >&2
    cmp "$workdir/$a.jsonl" "$workdir/$b.jsonl" >&2 || true
    cmp "$workdir/$a.json" "$workdir/$b.json" >&2 || true
    fail=1
  fi
}

if [[ -n "$shards" ]]; then
  for scenario in churn chaos; do
    run "$scenario-plain" --scenario "$scenario"
    run "$scenario-k1" --scenario "$scenario" --shards 1
    check_pair "[$scenario] plain vs 1-shard raw artifacts" \
      "$scenario-plain" "$scenario-k1"

    run "$scenario-c1" --scenario "$scenario" --shards 1 \
      --canonical --normalized-snapshot
    run "$scenario-ck" --scenario "$scenario" --shards "$shards" \
      --canonical --normalized-snapshot
    check_pair "[$scenario] 1-shard vs $shards-shard canonical artifacts" \
      "$scenario-c1" "$scenario-ck"

    run "$scenario-w1" --scenario "$scenario" --shards "$shards" \
      --workers 1 --merged
    run "$scenario-w2" --scenario "$scenario" --shards "$shards" \
      --workers 2 --merged
    check_pair "[$scenario] $shards-shard 1- vs 2-worker merged artifacts" \
      "$scenario-w1" "$scenario-w2"
  done

  if [[ "$fail" -ne 0 ]]; then
    echo "obs_golden: FAILED (--shards $shards)" >&2
    exit 1
  fi
  echo "obs_golden: parallel engine deterministic at $shards shards"
  exit 0
fi

run a --seed 7
run b --seed 7
run c --seed 8

if python3 "$repo_root/scripts/tracediff.py" \
    "$workdir/a.jsonl" "$workdir/b.jsonl"; then
  echo "obs_golden: same-seed traces identical"
else
  echo "obs_golden: FAIL — same-seed traces diverge (see above)" >&2
  fail=1
fi

if cmp -s "$workdir/a.json" "$workdir/b.json"; then
  echo "obs_golden: same-seed metrics snapshots identical"
else
  echo "obs_golden: FAIL — same-seed metrics snapshots differ" >&2
  fail=1
fi

if python3 "$repo_root/scripts/tracediff.py" \
    "$workdir/a.jsonl" "$workdir/c.jsonl"; then
  echo "obs_golden: FAIL — different-seed traces compare identical" >&2
  fail=1
else
  echo "obs_golden: different-seed divergence detected and located"
fi

if [[ "$fail" -ne 0 ]]; then
  echo "obs_golden: FAILED" >&2
  exit 1
fi
echo "obs_golden: all green"
