#!/usr/bin/env bash
# Chaos-soak gate: run the seeded fault-injection campaign under the
# invariant auditor and require a fully clean outcome — at least 200
# faults injected, zero invariant violations, zero unconverged faults.
#
# Usage:
#   scripts/soak.sh [path/to/soak_chaos] [path/to/result.json]
#
# With no arguments it expects build/bench/soak_chaos to exist (run
# cmake --build build first) and writes the fresh result to a temporary
# file. Pass an existing result JSON as the second argument to skip the
# campaign run (e.g. in CI where the run already happened).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
soak_bin="${1:-$repo_root/build/bench/soak_chaos}"
result="${2:-}"

if [[ -z "$result" ]]; then
  if [[ ! -x "$soak_bin" ]]; then
    echo "soak: campaign binary not found: $soak_bin" >&2
    echo "soak: build it first (cmake --build build --target soak_chaos)" >&2
    exit 2
  fi
  result="$(mktemp /tmp/soak_chaos.XXXXXX.json)"
  trap 'rm -f "$result"' EXIT
  echo "soak: running $soak_bin ..."
  # The binary exits non-zero on violations; let the JSON check below
  # produce the diagnostic instead of dying on the raw exit code.
  (cd "$repo_root" && "$soak_bin" --faults 200 --out "$result") || true
fi

python3 - "$result" <<'EOF'
import json
import sys

MIN_FAULTS = 200

with open(sys.argv[1]) as f:
    report = json.load(f)

faults = report["faults"]
violations = report["violations"]
unconverged = report["unconverged"]
audits = report["audits_run"]

failures = []
if faults < MIN_FAULTS:
    failures.append(f"only {faults} faults injected (need >= {MIN_FAULTS})")
if violations != 0:
    failures.append(f"{violations} invariant violations")
if unconverged != 0:
    failures.append(f"{unconverged} faults never reached audit-clean")
if audits <= faults:
    failures.append(f"campaign trivially idle ({audits} audits for {faults} faults)")

print(f"soak: {faults} faults, {audits} audits, "
      f"{violations} violations, {unconverged} unconverged, "
      f"max convergence {report['max_convergence_s']:.3f} s, "
      f"mean {report['mean_convergence_s']:.3f} s")
for outcome in report.get("per_fault", []):
    if outcome["violations"] or not outcome["converged"]:
        print(f"soak:   fault {outcome['index']} ({outcome['kind']}): "
              f"violations={outcome['violations']} "
              f"converged={outcome['converged']}")

if failures:
    print(f"soak: FAIL ({'; '.join(failures)})")
    sys.exit(1)
print("soak: PASS")
EOF
