#!/usr/bin/env bash
# Static-analysis gate (DESIGN.md §7) — the third CI job next to
# verify (build+test) and sanitize (ASan/UBSan).
#
# Layers, in order:
#   1. detlint        custom determinism/protocol lints (pure Python,
#                     always run — no toolchain dependency)
#   2. archlint       architecture/lifecycle/wire-coverage lints
#                     (layer DAG in scripts/lint/layers.toml)
#   3. doclint        documentation honesty: DESIGN.md §-refs resolve,
#                     every bench has an EXPERIMENTS.md entry, README
#                     gate rows name real scripts, relative md links
#                     resolve
#   4. format check   clang-format diff-gate, or whitespace fallback
#   5. clang-tidy     .clang-tidy profile, only when installed
#   6. cppcheck       with scripts/lint/cppcheck-suppressions.txt,
#                     only when installed
#
# The container image does not ship the clang tools; CI installs them.
# Skipping an uninstalled tool is reported but is not a failure —
# detlint, archlint and the format gate always run and always gate.
#
# Usage:
#   scripts/lint.sh               full gate
#   scripts/lint.sh --changed     fast pre-commit mode: detlint +
#                                 archlint on files touched per git
#                                 (staged, unstaged and untracked);
#                                 skips the format/tidy/cppcheck layers
#   scripts/lint.sh --self-test   cpp_scan unit tests + detlint,
#                                 archlint and doclint fixture suites
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if [[ "${1:-}" == "--self-test" ]]; then
  fail=0
  echo "== cpp_scan unit tests =="
  python3 "$repo_root/scripts/lint/test_cpp_scan.py" || fail=1
  echo "== detlint fixtures =="
  python3 "$repo_root/scripts/lint/detlint.py" --self-test \
    --root "$repo_root" || fail=1
  echo "== archlint fixtures =="
  python3 "$repo_root/scripts/lint/archlint.py" --self-test \
    --root "$repo_root" || fail=1
  echo "== doclint fixtures =="
  python3 "$repo_root/scripts/lint/doclint.py" --self-test \
    --root "$repo_root" || fail=1
  exit "$fail"
fi

if [[ "${1:-}" == "--changed" ]]; then
  # Files git considers modified (staged + unstaged + untracked),
  # restricted to C++ sources under src/. Archlint still scans the
  # whole tree for cross-file context but reports only these files.
  mapfile -t changed < <(
    cd "$repo_root" && {
      git diff --name-only HEAD --
      git ls-files --others --exclude-standard
    } | sort -u | grep -E '^src/.*\.(cpp|hpp|h|cc)$' || true
  )
  if [[ "${#changed[@]}" -eq 0 ]]; then
    echo "lint.sh --changed: no modified C++ sources under src/"
    exit 0
  fi
  printf 'lint.sh --changed: %d file(s)\n' "${#changed[@]}"
  abs=()
  for f in "${changed[@]}"; do abs+=("$repo_root/$f"); done
  fail=0
  python3 "$repo_root/scripts/lint/detlint.py" --root "$repo_root" \
    "${abs[@]}" || fail=1
  python3 "$repo_root/scripts/lint/archlint.py" --root "$repo_root" \
    "${abs[@]}" || fail=1
  if [[ "$fail" -ne 0 ]]; then
    echo "lint.sh --changed: FAILED — see findings above" >&2
    exit 1
  fi
  echo "lint.sh --changed: clean"
  exit 0
fi

fail=0

echo "== detlint (determinism & protocol-safety lints) =="
if python3 "$repo_root/scripts/lint/detlint.py" --root "$repo_root"; then
  echo "detlint: clean"
else
  fail=1
fi

echo "== archlint (architecture, lifecycle & wire coverage) =="
if python3 "$repo_root/scripts/lint/archlint.py" --root "$repo_root"; then
  echo "archlint: clean"
else
  fail=1
fi

echo "== doclint (documentation cross-reference honesty) =="
if python3 "$repo_root/scripts/lint/doclint.py" --root "$repo_root"; then
  echo "doclint: clean"
else
  fail=1
fi

echo "== format check =="
"$repo_root/scripts/format_check.sh" || fail=1

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # clang-tidy needs a compilation database; configure a build dir if
  # none exists yet (CMakeLists.txt exports compile_commands.json).
  build_dir="$repo_root/build"
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    cmake -B "$build_dir" -S "$repo_root" >/dev/null
  fi
  mapfile -t tidy_sources < <(find "$repo_root/src" -name '*.cpp' | sort)
  if clang-tidy -p "$build_dir" --quiet "${tidy_sources[@]}"; then
    echo "clang-tidy: clean"
  else
    fail=1
  fi
else
  echo "clang-tidy not installed; skipped (CI runs it)"
fi

echo "== cppcheck =="
if command -v cppcheck >/dev/null 2>&1; then
  if cppcheck --enable=warning,performance,portability \
    --std=c++20 --inline-suppr --error-exitcode=1 --quiet \
    --suppressions-list="$repo_root/scripts/lint/cppcheck-suppressions.txt" \
    -I "$repo_root/src" "$repo_root/src"; then
    echo "cppcheck: clean"
  else
    fail=1
  fi
else
  echo "cppcheck not installed; skipped (CI runs it)"
fi

if [[ "$fail" -ne 0 ]]; then
  echo "lint.sh: FAILED — see findings above (detlint/archlint live in" \
    "scripts/lint/)" >&2
  exit 1
fi
echo "== lint.sh: all green =="
