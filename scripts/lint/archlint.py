#!/usr/bin/env python3
"""Architecture, lifecycle and wire-coverage lints for the EXPRESS
simulator.

detlint.py (PR 4) catches statement-level determinism hazards; this
driver checks the contracts that span functions, classes and modules:

Architecture conformance (config: scripts/lint/layers.toml)
  arch-layer             an #include that creates a module edge the
                         declared layer DAG does not allow (upward or
                         sideways dependency).
  arch-cycle             the declared DAG itself has a cycle (config
                         error — reported against layers.toml).
  arch-unknown-module    a file or include target under a scan root
                         whose module has no [modules] entry.
  arch-include-cpp       #include of a translation unit (*.cpp —
                         router_events.cpp-style impl splits are not
                         an include surface).
  arch-private-header    #include of a [private]-listed header from a
                         module not on its allow list.
  arch-pragma-once       header without `#pragma once`.
  arch-self-containment  a header that names another module's
                         namespace (net::, obs::, sim::, det::, ...)
                         without directly including a header of that
                         module.
  doc-banner             a module header that does not open with a
                         `//` banner comment of at least 3 lines
                         saying what the header provides (the docs
                         layer's entry point into the code; doclint.py
                         covers the markdown side).

Lifecycle flow
  handle-leak            an EventHandle returned by schedule_at /
                         schedule_after discarded at statement
                         position, or an EventHandle(-bearing) member
                         that no destructor/teardown method of its
                         class ever cancel()s. Suppress a deliberate
                         one-shot with `// lint: fire-and-forget (<why>)`.
  late-registration      obs registry slot creation (.counter("...") /
                         .gauge / .histogram) outside a constructor or
                         init path: slots must exist before traffic so
                         snapshots are comparable run-to-run. Suppress
                         with `// lint: late-registration (<why>)`.
  drop-untraced          a drop counter bumped in a function that never
                         emits a kPacketDropped/kPacketLost/
                         kPacketReordered trace (or calls a trace_drop
                         helper): the metric moves but replay debugging
                         sees nothing. Suppress with
                         `// lint: drop-untraced (<why>)`.

Wire & enum coverage
  wire-field-gap         a field of a declared wire struct missing from
                         the encode* or decode* bodies of its codec
                         (config: [[wire]] in layers.toml).
  enum-switch-gap        a switch over a project enum that neither
                         covers every enumerator nor justifies its
                         default with `// lint: partial-switch (<why>)`.

Zero third-party dependencies; see cpp_scan.py for the source model.
Exit 0 = clean, 1 = findings, 2 = usage/config error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tomllib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpp_scan  # noqa: E402
from cpp_scan import Finding, SourceFile, sort_findings  # noqa: E402


# --------------------------------------------------------------------------
# Config
# --------------------------------------------------------------------------

class Config:
    def __init__(self, data: dict, root: str):
        self.root = root
        self.roots: list[str] = data.get("scan", {}).get("roots", ["src"])
        self.universal: set[str] = set(
            data.get("universal", {}).get("headers", []))
        self.modules: dict[str, list[str]] = dict(data.get("modules", {}))
        self.private: dict[str, list[str]] = dict(data.get("private", {}))
        self.wire: list[dict] = list(data.get("wire", []))

    @staticmethod
    def load(path: str, root: str) -> "Config":
        with open(path, "rb") as fh:
            return Config(tomllib.load(fh), root)


def module_of(rel: str, cfg: Config):
    """Module of a path relative to a scan root ("net/lan.hpp" -> "net")."""
    return rel.split("/", 1)[0] if "/" in rel else None


def declared_cycle(cfg: Config):
    """A cycle in the declared DAG, as a list of modules, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in cfg.modules}
    stack: list[str] = []

    def visit(m):
        color[m] = GREY
        stack.append(m)
        for d in cfg.modules.get(m, []):
            if d not in color:
                continue
            if color[d] == GREY:
                return stack[stack.index(d):] + [d]
            if color[d] == WHITE:
                cyc = visit(d)
                if cyc:
                    return cyc
        stack.pop()
        color[m] = BLACK
        return None

    for m in sorted(cfg.modules):
        if color[m] == WHITE:
            cyc = visit(m)
            if cyc:
                return cyc
    return None


# --------------------------------------------------------------------------
# File model: one scan of every file, shared by all checks.
# --------------------------------------------------------------------------

class Tree:
    def __init__(self, cfg: Config, paths: list[str]):
        self.cfg = cfg
        self.files: list[SourceFile] = [cpp_scan.load(p) for p in paths]
        self.structure = {}  # path -> (functions, classes, enums)
        self.enums: list[cpp_scan.EnumDef] = []
        for sf in self.files:
            fns, classes, enums = cpp_scan.scan_structure(sf)
            self.structure[sf.path] = (fns, classes, enums)
            self.enums.extend(enums)
        #: class name -> every function extent of that class, cross-file
        #: (teardown methods usually live in the .cpp, members in the .hpp).
        self.by_class: dict[str, list] = {}
        for fns, _c, _e in self.structure.values():
            for fn in fns:
                if fn.cls:
                    self.by_class.setdefault(fn.cls, []).append(fn)

    def rel(self, sf: SourceFile):
        """(scan_root, path-inside-root) or (None, None) if outside."""
        norm = os.path.relpath(sf.path, self.cfg.root).replace(os.sep, "/")
        for r in self.cfg.roots:
            if norm.startswith(r + "/"):
                return r, norm[len(r) + 1:]
        return None, None


# --------------------------------------------------------------------------
# Family 1: architecture conformance
# --------------------------------------------------------------------------

def check_architecture(tree: Tree, findings: list) -> None:
    cfg = tree.cfg
    for sf in tree.files:
        _root, rel = tree.rel(sf)
        if rel is None:
            continue
        mod = module_of(rel, cfg)
        if mod is None:
            continue  # file directly under the root (e.g. CMakeLists)
        if mod not in cfg.modules:
            findings.append(Finding(
                "arch-unknown-module", sf.path, 1, 1,
                f"module `{mod}` has no entry in layers.toml [modules]"))
            continue
        allowed = set(cfg.modules[mod])
        for inc in cpp_scan.includes(sf):
            if inc.angled:
                continue
            target = inc.target
            if target.endswith((".cpp", ".cc")):
                findings.append(Finding(
                    "arch-include-cpp", sf.path, inc.line, inc.col,
                    f"`{target}` is a translation unit, not an include "
                    "surface"))
                continue
            tmod = module_of(target, cfg)
            if tmod is None:
                continue  # local unprefixed include
            if target in cfg.universal:
                continue
            if tmod == mod:
                continue
            if tmod not in cfg.modules:
                findings.append(Finding(
                    "arch-unknown-module", sf.path, inc.line, inc.col,
                    f"include target module `{tmod}` has no entry in "
                    "layers.toml [modules]"))
                continue
            if tmod not in allowed:
                findings.append(Finding(
                    "arch-layer", sf.path, inc.line, inc.col,
                    f"module `{mod}` may not depend on `{tmod}` "
                    f"(allowed: {', '.join(sorted(allowed)) or 'none'}); "
                    f"`{target}` creates an upward/sideways edge"))
            if target in cfg.private and mod not in cfg.private[target]:
                findings.append(Finding(
                    "arch-private-header", sf.path, inc.line, inc.col,
                    f"`{target}` is private to `{tmod}` (shared with: "
                    f"{', '.join(cfg.private[target]) or 'nobody'})"))


HEADER_EXT = (".hpp", ".h")

#: Sub-namespaces that live in another module's header.
NAMESPACE_ALIASES = {"det": "sim"}


def check_headers(tree: Tree, findings: list) -> None:
    cfg = tree.cfg
    known = set(cfg.modules)
    for sf in tree.files:
        _root, rel = tree.rel(sf)
        if rel is None or not sf.path.endswith(HEADER_EXT):
            continue
        mod = module_of(rel, cfg)
        if "#pragma once" not in sf.raw:
            findings.append(Finding(
                "arch-pragma-once", sf.path, 1, 1,
                "header lacks `#pragma once`"))
        included = {module_of(i.target, cfg)
                    for i in cpp_scan.includes(sf) if not i.angled}
        used = set()
        for m in re.finditer(r"\b([a-z]\w*)\s*::", sf.code):
            q = NAMESPACE_ALIASES.get(m.group(1), m.group(1))
            if q in known and q != mod and q != "express":
                used.add((q, m.start(1)))
        seen = set()
        for q, off in sorted(used, key=lambda t: t[1]):
            if q in seen or q in included:
                continue
            seen.add(q)
            findings.append(Finding(
                "arch-self-containment", sf.path,
                sf.line_of(off), sf.col_of(off),
                f"header uses `{q}::` but does not include a `{q}/` "
                "header directly (relies on transitive includes)"))


#: A header's opening `//` run must be at least this many lines to count
#: as a banner (one-liners degenerate into restating the filename).
MIN_BANNER_LINES = 3


def check_doc_banners(tree: Tree, findings: list) -> None:
    for sf in tree.files:
        _root, rel = tree.rel(sf)
        if rel is None or not sf.path.endswith(HEADER_EXT):
            continue
        run_len = 0
        for line in sf.raw.splitlines():
            if line.startswith("//"):
                run_len += 1
            else:
                break
        if run_len < MIN_BANNER_LINES:
            findings.append(Finding(
                "doc-banner", sf.path, 1, 1,
                f"header opens with a {run_len}-line `//` comment; module "
                f"headers need a banner of >= {MIN_BANNER_LINES} lines "
                "stating what the header provides and how it fits the "
                "module (see existing src/ headers for the idiom)"))


# --------------------------------------------------------------------------
# Family 2: lifecycle flow
# --------------------------------------------------------------------------

SCHEDULE_CALL_RE = re.compile(r"(?:\.|->)\s*(schedule_at|schedule_after)\s*\(")

#: Method names that count as a teardown path for the member-cancel rule.
TEARDOWN_NAMES = frozenset(
    "stop leave shutdown teardown close clear reset detach deactivate "
    "disconnect fail cancel cancel_all".split())


def _statement_position(code: str, recv_end: int):
    """Walk a receiver chain (`a.b(c).d->`) backwards from `recv_end`
    (index just before the `.`/`->`). Returns the prefix between the
    statement boundary and the call when the call sits at statement
    position, else None."""
    i = recv_end
    while i >= 0:
        c = code[i]
        if c in " \t\n":
            i -= 1
        elif c == ")":
            depth = 0
            while i >= 0:
                if code[i] == ")":
                    depth += 1
                elif code[i] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            i -= 1
        elif c.isalnum() or c == "_":
            i -= 1
        elif c == "." or (c == ">" and i >= 1 and code[i - 1] == "-"):
            i -= 1 if c == "." else 2
        elif c == ":" and i >= 1 and code[i - 1] == ":":
            i -= 2
        else:
            break
    if i >= 0 and code[i] not in ";{}":
        return None
    return code[i + 1: recv_end + 1]


def check_handle_leaks(tree: Tree, findings: list) -> None:
    for sf in tree.files:
        # (a) discarded schedule result.
        for m in SCHEDULE_CALL_RE.finditer(sf.code):
            dot = m.start()
            prefix = _statement_position(sf.code, dot - 1)
            if prefix is None:
                continue
            if re.search(r"\b(return|co_return|co_await)\b", prefix):
                continue
            close = cpp_scan._match_bracket(sf.code, m.end() - 1)
            rest = sf.code[close + 1: close + 4].lstrip()
            if not rest.startswith(";"):
                continue  # chained / part of a larger expression
            line = sf.line_of(m.start(1))
            end_line = sf.line_of(close)
            if sf.suppressed("fire-and-forget", line, reach=2) or \
                    sf.suppressed("fire-and-forget", end_line, reach=0):
                continue
            findings.append(Finding(
                "handle-leak", sf.path, line, sf.col_of(m.start(1)),
                f"EventHandle returned by `{m.group(1)}` is discarded; "
                "store and cancel it on teardown, or annotate "
                "`// lint: fire-and-forget (<why>)`"))

        # (b) EventHandle members never cancelled on a teardown path.
        fns, classes, _enums = tree.structure[sf.path]
        seen_members = set()
        for hm in re.finditer(r"\bEventHandle\b", sf.code):
            off = hm.start()
            if cpp_scan.enclosing_function(fns, off) is not None:
                continue  # local variable / parameter / return type use
            owner = cpp_scan.in_class_body(classes, off)
            if owner is None or owner.name == "EventHandle":
                continue
            decl_start = max(sf.code.rfind(ch, 0, off) for ch in ";{}") + 1
            decl_end = cpp_scan.statement_end(sf.code, off)
            decl = re.sub(r"^\s*(?:public|private|protected)\s*:", "",
                          sf.code[decl_start:decl_end])
            head = decl.split("=", 1)[0]
            if re.match(r"\s*(using|typedef|friend|static)\b", decl):
                continue
            if _paren_at_angle_depth0(head):
                continue  # function declaration returning/taking a handle
            nm = re.search(r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?\s*$",
                           decl.rstrip())
            if not nm:
                continue
            member = nm.group(1)
            key = (owner.name, member)
            if key in seen_members:
                continue
            seen_members.add(key)
            line = sf.line_of(off)
            if sf.suppressed("fire-and-forget", line, reach=2):
                continue
            # A nested struct's handle may be torn down by the outer
            # class (Batcher::~Batcher cancels Queue::timer), so every
            # enclosing class counts as a potential owner.
            owners = [c.name for c in classes
                      if c.body_start < off < c.body_end]
            if any(_has_teardown_cancel(tree, o, member) for o in owners):
                continue
            findings.append(Finding(
                "handle-leak", sf.path, line, sf.col_of(off),
                f"EventHandle member `{member}` of `{owner.name}` is "
                "never cancel()ed on a teardown path (destructor or "
                f"{'/'.join(sorted(TEARDOWN_NAMES)[:4])}/... method); "
                "cancel it or annotate the member "
                "`// lint: fire-and-forget (<why>)`"))


def _paren_at_angle_depth0(text: str) -> bool:
    depth = 0
    for c in text:
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == "(" and depth == 0:
            return True
    return False


def _has_teardown_cancel(tree: Tree, cls: str, member: str) -> bool:
    for fn in tree.by_class.get(cls, []):
        if not (fn.is_dtor or fn.name in TEARDOWN_NAMES):
            continue
        body = _body_text(tree, fn)
        if re.search(rf"\b{re.escape(member)}\b", body) and ".cancel(" in body:
            return True
    return False


def _body_text(tree: Tree, fn) -> str:
    for sf in tree.files:
        fns, _c, _e = tree.structure[sf.path]
        if fn in fns:
            return sf.code[fn.body_start: fn.body_end]
    return ""


REGISTRATION_RE = re.compile(r"\.\s*(counter|gauge|histogram)\s*\(\s*\"")

#: Function-name patterns that count as an init path for registration.
INIT_NAME_RE = re.compile(r"^(init|setup|register_|ensure_)")


def check_registrations(tree: Tree, findings: list) -> None:
    for sf in tree.files:
        _root, rel = tree.rel(sf)
        if rel is not None and module_of(rel, tree.cfg) == "obs":
            continue  # the registry implementation itself
        fns, _classes, _enums = tree.structure[sf.path]
        for m in REGISTRATION_RE.finditer(sf.code):
            fn = cpp_scan.enclosing_function(fns, m.start())
            if fn is None:
                continue  # default member initializer: ctor-path
            if fn.is_ctor or INIT_NAME_RE.match(fn.name):
                continue
            line = sf.line_of(m.start())
            if sf.suppressed("late-registration", line, reach=2):
                continue
            findings.append(Finding(
                "late-registration", sf.path, line, sf.col_of(m.start()),
                f"registry slot `.{m.group(1)}(...)` created in "
                f"`{fn.cls + '::' if fn.cls else ''}{fn.name}`, not a "
                "constructor/init path; snapshots diverge run-to-run "
                "when slot creation depends on traffic — move it or "
                "annotate `// lint: late-registration (<why>)`"))


DROP_BUMP_RE = re.compile(
    r"\b(\w*drop\w*)\s*\.\s*(?:inc|add)\s*\("
    r"|\+\+\s*(\w*drop\w*)\b"
    r"|\b(\w*drop\w*)\s*(?:\+\+|\+=)")

DROP_TRACE_RE = re.compile(
    r"\bemit\s*\([^;]*k(?:PacketDropped|PacketLost|PacketReordered)\b"
    r"|\btrace_drop\s*\(")


def check_drop_traces(tree: Tree, findings: list) -> None:
    for sf in tree.files:
        fns, _classes, _enums = tree.structure[sf.path]
        for m in DROP_BUMP_RE.finditer(sf.code):
            name = m.group(1) or m.group(2) or m.group(3)
            fn = cpp_scan.enclosing_function(fns, m.start())
            if fn is None:
                continue  # declaration / initializer, not a bump site
            body = sf.code[fn.body_start: fn.body_end]
            if DROP_TRACE_RE.search(body):
                continue
            line = sf.line_of(m.start())
            if sf.suppressed("drop-untraced", line, reach=2):
                continue
            findings.append(Finding(
                "drop-untraced", sf.path, line, sf.col_of(m.start()),
                f"drop counter `{name}` bumped without a paired "
                "kPacketDropped/kPacketLost trace emit in this function; "
                "emit the drop (no-op when tracing is off) or annotate "
                "`// lint: drop-untraced (<why>)`"))


# --------------------------------------------------------------------------
# Family 3: wire & enum coverage
# --------------------------------------------------------------------------

def struct_fields(sf: SourceFile, extent) -> list[tuple[str, int]]:
    """(field name, offset) members of a plain wire struct."""
    body = sf.code[extent.body_start + 1: extent.body_end]
    base = extent.body_start + 1
    fields = []
    depth = 0
    start = 0
    for k, c in enumerate(body):
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
        elif c == ";" and depth == 0:
            stmt = body[start:k]
            off = base + start
            start = k + 1
            s = stmt.strip()
            if not s or re.match(
                    r"(public|private|protected)\s*:$", s):
                continue
            if re.match(r"(static|using|friend|enum|struct|class|typedef)\b",
                        s):
                continue
            head = re.split(r"[={]", s, 1)[0]
            if _paren_at_angle_depth0(head):
                continue  # member function declaration
            idents = re.findall(r"[A-Za-z_]\w*", head)
            if len(idents) < 2:
                continue
            name = idents[-1]
            fields.append((name, off + stmt.find(name)))
    return fields


def check_wire(tree: Tree, findings: list) -> None:
    by_path = {os.path.normpath(sf.path): sf for sf in tree.files}
    for pair in tree.cfg.wire:
        spath = os.path.normpath(os.path.join(tree.cfg.root, pair["structs"]))
        ssf = by_path.get(spath)
        if ssf is None:
            continue  # paths mode without the struct file loaded
        enc, dec = "", ""
        for cpath in pair["codecs"]:
            cnorm = os.path.normpath(os.path.join(tree.cfg.root, cpath))
            csf = by_path.get(cnorm)
            if csf is None:
                continue
            fns, _c, _e = tree.structure[csf.path]
            for fn in fns:
                body = csf.code[fn.body_start: fn.body_end]
                if fn.name.startswith("encode"):
                    enc += body
                elif fn.name.startswith("decode"):
                    dec += body
        _fns, classes, _enums = tree.structure[ssf.path]
        for tname in pair["types"]:
            extent = next((c for c in classes if c.name == tname), None)
            if extent is None:
                findings.append(Finding(
                    "wire-field-gap", ssf.path, 1, 1,
                    f"wire struct `{tname}` listed in layers.toml not "
                    "found"))
                continue
            for field, off in struct_fields(ssf, extent):
                missing = [side for side, text in (("encode", enc),
                                                   ("decode", dec))
                           if not re.search(rf"\b{re.escape(field)}\b", text)]
                if missing:
                    findings.append(Finding(
                        "wire-field-gap", ssf.path, ssf.line_of(off),
                        ssf.col_of(off),
                        f"field `{tname}.{field}` never touched by the "
                        f"{' or '.join(missing)} path of "
                        f"{', '.join(pair['codecs'])}"))


SWITCH_RE = re.compile(r"\bswitch\s*\(")
CASE_RE = re.compile(r"\bcase\s+([A-Za-z_][\w:]*)\s*:")
DEFAULT_RE = re.compile(r"\bdefault\s*:")


def check_enum_switches(tree: Tree, findings: list) -> None:
    for sf in tree.files:
        for m in SWITCH_RE.finditer(sf.code):
            close = cpp_scan._match_bracket(sf.code, m.end() - 1)
            brace = sf.code.find("{", close)
            if brace == -1 or sf.code[close + 1: brace].strip():
                continue
            body_end = cpp_scan.matching_brace(sf.code, brace)
            body = sf.code[brace + 1: body_end]
            labels = CASE_RE.findall(body)
            if not labels:
                continue
            covered, hints = set(), set()
            for label in labels:
                parts = label.split("::")
                covered.add(parts[-1])
                if len(parts) >= 2:
                    hints.add(parts[-2])
            if not hints and not all(e.startswith("k") for e in covered):
                continue  # int switch, not an enum
            enum = _resolve_enum(tree.enums, covered, hints)
            if enum is None:
                continue
            missing = sorted(set(enum.enumerators) - covered)
            if not missing:
                continue
            line = sf.line_of(m.start())
            dm = DEFAULT_RE.search(body)
            default_line = sf.line_of(brace + 1 + dm.start()) if dm else None
            if sf.suppressed("partial-switch", line, reach=2) or (
                    default_line is not None
                    and sf.suppressed("partial-switch", default_line,
                                      reach=2)):
                continue
            what = (f"default present but unjustified"
                    if dm else "and has no default")
            findings.append(Finding(
                "enum-switch-gap", sf.path, line, sf.col_of(m.start()),
                f"switch over `{enum.name}` misses "
                f"{', '.join(missing)} ({what}); add the cases or "
                "annotate `// lint: partial-switch (<why>)`"))


def _resolve_enum(enums, covered: set, hints: set):
    """The enum a switch targets: every case label must be one of its
    enumerators; qualifier hints (Type::kX) narrow the candidates.
    Returns None when unknown or when some fully-covered candidate
    exists (ambiguity is resolved generously)."""
    candidates = [e for e in enums if covered <= set(e.enumerators)]
    if hints:
        hinted = [e for e in candidates if e.name in hints]
        candidates = hinted or candidates
    if not candidates:
        return None
    for e in candidates:
        if set(e.enumerators) == covered:
            return e  # fully covered — caller reports nothing
    candidates.sort(key=lambda e: (len(set(e.enumerators) - covered),
                                   e.name, e.path, e.line))
    return candidates[0]


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def iter_sources(root: str, dirs: list):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    yield os.path.join(dirpath, name)


def run(root: str, config_path: str, only=None) -> list:
    cfg = Config.load(config_path, root)
    paths = list(iter_sources(root, cfg.roots))
    tree = Tree(cfg, paths)
    findings: list[Finding] = []

    cyc = declared_cycle(cfg)
    if cyc:
        findings.append(Finding(
            "arch-cycle", config_path, 1, 1,
            "declared layer DAG has a cycle: " + " -> ".join(cyc)))

    check_architecture(tree, findings)
    check_headers(tree, findings)
    check_doc_banners(tree, findings)
    check_handle_leaks(tree, findings)
    check_registrations(tree, findings)
    check_drop_traces(tree, findings)
    check_wire(tree, findings)
    check_enum_switches(tree, findings)

    if only is not None:
        keep = {os.path.normpath(os.path.abspath(p)) for p in only}
        findings = [f for f in findings
                    if os.path.normpath(os.path.abspath(f.path)) in keep
                    or f.check == "arch-cycle"]
    return sort_findings(findings)


# --------------------------------------------------------------------------
# Self-test — paired violating/clean fixtures. The arch family runs
# against the tests/lint_fixtures/arch/ mini-tree with its own
# layers.toml; the per-file families run against standalone fixtures
# with the real config's wire section swapped for the fixture pair.
# --------------------------------------------------------------------------

ARCH_SELF_TESTS = {
    "src/low/base.hpp": set(),
    "src/high/uses_low.hpp": set(),
    "src/low/bad_upward.hpp": {"arch-layer"},
    "src/high/includes_private.hpp": {"arch-private-header"},
    "src/high/no_pragma.hpp": {"arch-pragma-once"},
    "src/high/not_self_contained.hpp": {"arch-self-containment"},
    "src/high/includes_cpp.hpp": {"arch-include-cpp"},
    "src/low/no_banner.hpp": {"doc-banner"},
}

FILE_SELF_TESTS = {
    "handle_leak.cpp": {"handle-leak"},
    "lifecycle_clean.cpp": set(),
    "drop_untraced.cpp": {"drop-untraced"},
    "late_registration.cpp": {"late-registration"},
    "partial_switch.cpp": {"enum-switch-gap"},
    "switch_clean.cpp": set(),
}

WIRE_SELF_TESTS = {
    "wire_gap.hpp": {"wire-field-gap"},
    "wire_clean.hpp": set(),
}

SELF_TEST_MIN_COUNTS = {
    "src/low/bad_upward.hpp": 1,
    "handle_leak.cpp": 2,        # discarded handle + uncancelled member
    "partial_switch.cpp": 2,     # no-default gap + unjustified default
}


def _fixture_wire_cfg(name: str) -> dict:
    stem = name[: -len(".hpp")]
    return {"structs": name, "codecs": [f"{stem}_codec.cpp"],
            "types": ["Probe"]}


def self_test(root: str) -> int:
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    failures: list[str] = []
    per_file: dict[str, list] = {}

    # Arch family: whole mini-tree in one run.
    arch_root = os.path.join(fixture_dir, "arch")
    arch_cfg = os.path.join(arch_root, "layers.toml")
    if not os.path.exists(arch_cfg):
        failures.append("arch/layers.toml: fixture missing")
    else:
        for f in run(arch_root, arch_cfg):
            rel = os.path.relpath(f.path, arch_root).replace(os.sep, "/")
            per_file.setdefault(rel, []).append(f)
        for name, expected in sorted(ARCH_SELF_TESTS.items()):
            if not os.path.exists(os.path.join(arch_root, name)):
                failures.append(f"{name}: fixture missing")
                continue
            _assert_fired(name, expected, per_file.get(name, []), failures)

    # Per-file families share one Tree per fixture (enums and teardown
    # methods are file-local in the fixtures).
    base_cfg = Config({"modules": {}}, fixture_dir)
    for name, expected in sorted(FILE_SELF_TESTS.items()):
        path = os.path.join(fixture_dir, name)
        if not os.path.exists(path):
            failures.append(f"{name}: fixture missing")
            continue
        tree = Tree(base_cfg, [path])
        found: list[Finding] = []
        check_handle_leaks(tree, found)
        check_registrations(tree, found)
        check_drop_traces(tree, found)
        check_enum_switches(tree, found)
        _assert_fired(name, expected, found, failures)

    for name, expected in sorted(WIRE_SELF_TESTS.items()):
        path = os.path.join(fixture_dir, name)
        codec = os.path.join(fixture_dir,
                             _fixture_wire_cfg(name)["codecs"][0])
        if not os.path.exists(path) or not os.path.exists(codec):
            failures.append(f"{name}: fixture (or codec) missing")
            continue
        cfg = Config({"modules": {}, "wire": [_fixture_wire_cfg(name)]},
                     fixture_dir)
        tree = Tree(cfg, [path, codec])
        found: list[Finding] = []
        check_wire(tree, found)
        _assert_fired(name, expected, found, failures)

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL {f}")
        return 1
    total = len(ARCH_SELF_TESTS) + len(FILE_SELF_TESTS) + len(WIRE_SELF_TESTS)
    print(f"archlint self-test: {total} fixtures OK")
    return 0


def _assert_fired(name, expected, findings, failures):
    fired = {f.check for f in findings}
    missing = expected - fired
    unexpected = fired - expected
    if missing:
        failures.append(f"{name}: expected check(s) did not fire: "
                        f"{sorted(missing)}")
    if unexpected:
        failures.append(
            f"{name}: unexpected check(s) fired: {sorted(unexpected)} — "
            + "; ".join(f.render() for f in findings
                        if f.check in unexpected))
    want = SELF_TEST_MIN_COUNTS.get(name)
    if want is not None and len(findings) < want:
        failures.append(f"{name}: expected >= {want} findings, "
                        f"got {len(findings)}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="report findings only for these files (the whole "
                    "tree is still scanned for cross-file context); "
                    "default: report everything")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--config", default=None,
                    help="layers.toml path (default: next to this script)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array (for CI annotation)")
    ap.add_argument("--self-test", action="store_true",
                    help="run against tests/lint_fixtures/ and assert each "
                    "check fires on its fixture")
    args = ap.parse_args(argv)
    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))
    config = args.config or os.path.join(here, "layers.toml")
    if args.self_test:
        return self_test(root)
    if not os.path.exists(config):
        print(f"archlint: config not found: {config}", file=sys.stderr)
        return 2
    findings = run(root, config, only=args.paths or None)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
    if findings:
        print(f"archlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
