#!/usr/bin/env python3
"""Documentation linter for the EXPRESS simulator.

detlint.py checks statements, archlint.py checks module contracts (and
owns the doc-banner rule for headers); this driver keeps the *prose*
honest — the markdown layer drifts silently when code moves, and a doc
that points at nothing is worse than no doc:

  doc-section-ref    a `DESIGN.md §N[.M]` cross-reference (in markdown
                     OR in source comments) whose `## N.` / `### N.M`
                     heading does not exist in DESIGN.md.
  doc-bench-orphan   a bench/bench_*.cpp binary that EXPERIMENTS.md
                     never mentions: every committed experiment needs a
                     schema + how-to-run entry.
  doc-gate-script    a backticked `scripts/...` path in README.md (the
                     gate table and prose) that does not exist in the
                     tree.
  doc-broken-link    a relative markdown link whose target file or
                     directory does not exist.

Scanned markdown: README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md,
CHANGES.md and docs/**. Scanned source (for §-refs only): src/, tests/,
bench/, scripts/ — minus tests/lint_fixtures/, whose files violate on
purpose. Fenced code blocks and inline code spans are stripped before
link extraction (C++ lambdas read as markdown links otherwise).

Zero third-party dependencies. Exit 0 = clean, 1 = findings,
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from cpp_scan import Finding, sort_findings  # noqa: E402


ROOT_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
             "CHANGES.md")
SOURCE_DIRS = ("src", "tests", "bench", "scripts")
SOURCE_EXT = (".hpp", ".cpp", ".h", ".cc", ".py", ".sh", ".txt", ".toml")

#: `## 7. Title` / `### 5.1 Title` headings in DESIGN.md.
HEADING_RE = re.compile(r"^#{2,4}\s+(\d+(?:\.\d+)*)[.\s]", re.M)

#: Every §N[.M] token on a line, *after* a DESIGN.md mention — a bare
#: `§2.1` refers to the paper, not to DESIGN.md, and is not checked.
SECTION_REF_RE = re.compile(r"§(\d+(?:\.\d+)*)")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

GATE_SCRIPT_RE = re.compile(r"`(scripts/[^`\s]+)[^`]*`")

FENCE_RE = re.compile(r"^```.*?^```", re.M | re.S)
INLINE_CODE_RE = re.compile(r"`[^`\n]*`")


def md_files(root: str) -> list[str]:
    out = [p for p in ROOT_DOCS if os.path.exists(os.path.join(root, p))]
    docs = os.path.join(root, "docs")
    for dirpath, _dirs, names in os.walk(docs):
        for name in sorted(names):
            if name.endswith(".md"):
                out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return out


def source_files(root: str) -> list[str]:
    skip = os.path.join("tests", "lint_fixtures")
    out = []
    for d in SOURCE_DIRS:
        for dirpath, _dirs, names in os.walk(os.path.join(root, d)):
            rel_dir = os.path.relpath(dirpath, root)
            if rel_dir.startswith(skip):
                continue
            for name in sorted(names):
                if name.endswith(SOURCE_EXT) or name == "CMakeLists.txt":
                    out.append(os.path.join(rel_dir, name))
    return out


def design_sections(root: str) -> set[str] | None:
    path = os.path.join(root, "DESIGN.md")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return set(HEADING_RE.findall(fh.read()))


def check_section_refs(root: str, paths: list[str], sections,
                       findings: list) -> None:
    if sections is None:
        return  # no DESIGN.md (fixture trees without one)
    for rel in paths:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                lines = fh.read().splitlines()
        except OSError:
            continue
        for i, line in enumerate(lines, 1):
            at = line.find("DESIGN.md")
            if at == -1:
                continue
            for m in SECTION_REF_RE.finditer(line, at):
                if m.group(1) not in sections:
                    findings.append(Finding(
                        "doc-section-ref", full, i, m.start() + 1,
                        f"reference to DESIGN.md §{m.group(1)} but "
                        "DESIGN.md has no such section heading "
                        f"(`## {m.group(1)}. ...`)"))


def check_bench_coverage(root: str, findings: list) -> None:
    exp_path = os.path.join(root, "EXPERIMENTS.md")
    bench_dir = os.path.join(root, "bench")
    if not os.path.exists(exp_path) or not os.path.isdir(bench_dir):
        return
    with open(exp_path, encoding="utf-8") as fh:
        exp = fh.read()
    for name in sorted(os.listdir(bench_dir)):
        if not (name.startswith("bench_") and name.endswith(".cpp")):
            continue
        stem = name[: -len(".cpp")]
        if not re.search(rf"\b{re.escape(stem)}\b", exp):
            findings.append(Finding(
                "doc-bench-orphan", os.path.join(bench_dir, name), 1, 1,
                f"benchmark `{stem}` has no entry in EXPERIMENTS.md "
                "(every committed bench needs its schema and how-to-run "
                "documented)"))


def check_gate_scripts(root: str, findings: list) -> None:
    path = os.path.join(root, "README.md")
    if not os.path.exists(path):
        return
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines, 1):
        for m in GATE_SCRIPT_RE.finditer(line):
            target = m.group(1)
            if not os.path.exists(os.path.join(root, target)):
                findings.append(Finding(
                    "doc-gate-script", path, i, m.start() + 1,
                    f"README names `{target}` but no such file exists"))


def check_links(root: str, paths: list[str], findings: list) -> None:
    for rel in paths:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8") as fh:
                raw = fh.read()
        except OSError:
            continue
        text = INLINE_CODE_RE.sub(
            lambda m: " " * len(m.group(0)), FENCE_RE.sub(
                lambda m: re.sub(r"[^\n]", " ", m.group(0)), raw))
        base = os.path.dirname(full)
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#",
                                  "/")):
                continue
            if "::" in target:
                continue  # C++ code that leaked past the strippers
            target = target.split("#", 1)[0]
            if not target:
                continue
            if not os.path.exists(os.path.join(base, target)):
                line = text.count("\n", 0, m.start()) + 1
                col = m.start() - (text.rfind("\n", 0, m.start()) + 1) + 1
                findings.append(Finding(
                    "doc-broken-link", full, line, col,
                    f"relative link target `{target}` does not exist "
                    f"(resolved against {os.path.relpath(base, root) or '.'}/)"
                ))


def run(root: str) -> list:
    findings: list[Finding] = []
    docs = md_files(root)
    sections = design_sections(root)
    check_section_refs(root, docs + source_files(root), sections, findings)
    check_bench_coverage(root, findings)
    check_gate_scripts(root, findings)
    check_links(root, docs, findings)
    return sort_findings(findings)


# --------------------------------------------------------------------------
# Self-test: a miniature doc tree under tests/lint_fixtures/docs/ with
# one violating and one clean instance of every check.
# --------------------------------------------------------------------------

SELF_TESTS = {
    "README.md": {"doc-gate-script"},
    "DESIGN.md": set(),
    "EXPERIMENTS.md": set(),
    "docs/bad_refs.md": {"doc-section-ref", "doc-broken-link"},
    "docs/good.md": set(),
    "bench/bench_good.cpp": set(),
    "bench/bench_orphan.cpp": {"doc-bench-orphan"},
    "src/uses_design.cpp": {"doc-section-ref"},
}

SELF_TEST_MIN_COUNTS = {
    "docs/bad_refs.md": 3,  # two bad §-refs + one bad link; clean pairs quiet
}


def self_test(root: str) -> int:
    fixture_root = os.path.join(root, "tests", "lint_fixtures", "docs")
    failures: list[str] = []
    per_file: dict[str, list] = {}
    for f in run(fixture_root):
        rel = os.path.relpath(f.path, fixture_root).replace(os.sep, "/")
        per_file.setdefault(rel, []).append(f)
    for name, expected in sorted(SELF_TESTS.items()):
        if not os.path.exists(os.path.join(fixture_root, name)):
            failures.append(f"{name}: fixture missing")
            continue
        findings = per_file.pop(name, [])
        fired = {f.check for f in findings}
        missing = expected - fired
        unexpected = fired - expected
        if missing:
            failures.append(f"{name}: expected check(s) did not fire: "
                            f"{sorted(missing)}")
        if unexpected:
            failures.append(
                f"{name}: unexpected check(s) fired: {sorted(unexpected)} — "
                + "; ".join(f.render() for f in findings
                            if f.check in unexpected))
        want = SELF_TEST_MIN_COUNTS.get(name)
        if want is not None and len(findings) < want:
            failures.append(f"{name}: expected >= {want} findings, "
                            f"got {len(findings)}")
    for name, findings in sorted(per_file.items()):
        failures.append(f"{name}: findings on a file with no expectation — "
                        + "; ".join(f.render() for f in findings))
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL {f}")
        return 1
    print(f"doclint self-test: {len(SELF_TESTS)} fixtures OK")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array (for CI annotation)")
    ap.add_argument("--self-test", action="store_true",
                    help="run against tests/lint_fixtures/docs/ and assert "
                    "each check fires on its fixture")
    args = ap.parse_args(argv)
    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))
    if args.self_test:
        return self_test(root)
    findings = run(root)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
    if findings:
        print(f"doclint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
