#!/usr/bin/env python3
"""Unit tests for the cpp_scan source model.

Run directly (`python3 scripts/lint/test_cpp_scan.py`) or via
`scripts/lint.sh --self-test`, which ctest wires in as lint_selftest.
The raw-string and digit-separator cases are regression tests: the
original stripper treated any `R` before a quote as a raw-string
prefix and blanked the "char literal" between the quotes of 1'000'000.
"""

from __future__ import annotations

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpp_scan  # noqa: E402


def strip(raw: str) -> str:
    code, _ = cpp_scan.strip_code(raw)
    return code


def source(raw: str, path: str = "test.cpp") -> cpp_scan.SourceFile:
    sf = cpp_scan.SourceFile(path=path, raw=raw)
    sf.code, sf.suppressions = cpp_scan.strip_code(raw)
    return sf


class StripRawStrings(unittest.TestCase):
    def test_plain_raw_string_blanked(self):
        code = strip('auto s = R"(text "with" quotes)"; int x = 1;')
        self.assertNotIn("with", code)
        self.assertIn("int x = 1;", code)

    def test_raw_string_with_delimiter(self):
        code = strip('auto s = R"xx(close )" here)xx"; f();')
        self.assertNotIn("close", code)
        self.assertIn("f();", code)

    def test_encoding_prefixes(self):
        for prefix in ("LR", "uR", "UR", "u8R"):
            code = strip(f'auto s = {prefix}"(payload body)"; g();')
            self.assertNotIn("payload", code, prefix)
            self.assertIn("g();", code, prefix)

    def test_identifier_ending_in_r_is_not_raw(self):
        # FACTOR is an identifier; the string after it is ordinary, so
        # `)` inside it does NOT close anything special.
        raw = 'auto s = FACTOR"(km)"; int after = 2;'
        code = strip(raw)
        self.assertIn("FACTOR", code)
        self.assertIn("int after = 2;", code)
        # Ordinary string: content blanked, quotes kept.
        self.assertNotIn("(km)", code)

    def test_offsets_preserved(self):
        raw = 'R"(ab\ncd)"\nint z;'
        code = strip(raw)
        self.assertEqual(len(code), len(raw))
        self.assertEqual(code.count("\n"), raw.count("\n"))
        self.assertIn("int z;", code)


class StripDigitSeparators(unittest.TestCase):
    def test_separator_not_treated_as_char_literal(self):
        raw = "f(1'000, 2'000);"
        self.assertEqual(strip(raw), raw)  # nothing to blank

    def test_hex_separator(self):
        raw = "const std::uint32_t m = 0xFF'FF'00'00;"
        self.assertEqual(strip(raw), raw)

    def test_million(self):
        raw = "constexpr long kBudget = 1'000'000; send(kBudget);"
        self.assertEqual(strip(raw), raw)

    def test_char_literal_still_blanked(self):
        code = strip("char c = 'x'; int y = 3;")
        self.assertNotIn("'x'", code)
        self.assertIn("int y = 3;", code)

    def test_escaped_quote_char_literal(self):
        code = strip("char q = '\\''; done();")
        self.assertIn("done();", code)

    def test_wide_char_prefix_is_char_literal(self):
        code = strip("wchar_t w = L'a'; tail();")
        self.assertNotIn("L'a'", code)
        self.assertIn("tail();", code)


class Includes(unittest.TestCase):
    def test_targets_survive_blanking(self):
        sf = source('#include "net/packet.hpp"\n#include <vector>\n'
                    '// #include "line/commented.hpp"\n'
                    '/*\n#include "block/commented.hpp"\n*/\n')
        incs = cpp_scan.includes(sf)
        self.assertEqual([(i.target, i.angled) for i in incs],
                         [("net/packet.hpp", False), ("vector", True)])
        self.assertEqual(incs[0].line, 1)
        self.assertEqual(incs[1].line, 2)


class Structure(unittest.TestCase):
    SRC = """
    namespace demo {

    enum class Color : std::uint8_t { kRed = 1, kGreen, kBlue };

    class Widget {
     public:
      Widget(int n) : n_(n), tag_{0} { init(); }
      ~Widget() { teardown(); }
      int area() const { return n_ * n_; }
      void stop();
      enum class State { kIdle, kBusy };
     private:
      void init();
      int n_ = 0;
      int tag_ = 0;
    };

    void Widget::stop() { n_ = 0; }

    int free_helper(int a, int b) { return a + b; }
    }  // namespace demo
    """

    def setUp(self):
        self.sf = source(self.SRC)
        self.fns, self.classes, self.enums = cpp_scan.scan_structure(self.sf)

    def test_enums(self):
        by_name = {e.name: e for e in self.enums}
        self.assertEqual(by_name["Color"].enumerators,
                         ["kRed", "kGreen", "kBlue"])
        self.assertEqual(by_name["Color"].cls, "")
        self.assertEqual(by_name["State"].enumerators, ["kIdle", "kBusy"])
        self.assertEqual(by_name["State"].cls, "Widget")

    def test_classes(self):
        self.assertEqual([c.name for c in self.classes], ["Widget"])

    def test_ctor_dtor_flags(self):
        by_name = {(f.cls, f.name): f for f in self.fns}
        self.assertTrue(by_name[("Widget", "Widget")].is_ctor)
        self.assertTrue(by_name[("Widget", "~Widget")].is_dtor)
        self.assertFalse(by_name[("Widget", "area")].is_ctor)

    def test_out_of_line_qualifier(self):
        stop = next(f for f in self.fns if f.name == "stop")
        self.assertEqual(stop.qualifier, "Widget")
        self.assertEqual(stop.cls, "Widget")

    def test_free_function(self):
        free = next(f for f in self.fns if f.name == "free_helper")
        self.assertEqual(free.cls, "")
        self.assertIn("a + b", self.sf.code[free.body_start:free.body_end])

    def test_declarations_not_extents(self):
        names = [f.name for f in self.fns]
        # `void stop();` is a declaration — only the out-of-line
        # definition yields an extent. `void init();` has no definition
        # here, and the call inside the ctor body must not count.
        self.assertEqual(names.count("stop"), 1)
        self.assertNotIn("init", names)

    def test_enclosing_function(self):
        ctor = next(f for f in self.fns if f.is_ctor)
        off = self.sf.code.find("init()")
        self.assertIs(cpp_scan.enclosing_function(self.fns, off), ctor)

    def test_ctor_extent_covers_init_list(self):
        ctor = next(f for f in self.fns if f.is_ctor)
        off = self.sf.code.find("tag_{0}")
        self.assertTrue(ctor.contains(off))

    def test_member_not_in_function(self):
        off = self.sf.code.find("int n_ = 0")
        self.assertIsNone(cpp_scan.enclosing_function(self.fns, off))
        self.assertEqual(cpp_scan.in_class_body(self.classes, off).name,
                         "Widget")


class Suppressions(unittest.TestCase):
    def test_tags_and_justification(self):
        sf = source("// lint: fire-and-forget (self-terminating tick)\n"
                    "// lint: partial-switch\n")
        self.assertEqual(len(sf.suppressions), 2)
        self.assertTrue(sf.suppressions[0].justified)
        self.assertFalse(sf.suppressions[1].justified)
        self.assertIn("fire-and-forget", cpp_scan.KNOWN_TAGS)
        self.assertIn("drop-untraced", cpp_scan.KNOWN_TAGS)


if __name__ == "__main__":
    unittest.main(verbosity=1)
