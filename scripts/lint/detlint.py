#!/usr/bin/env python3
"""Determinism & protocol-safety lints for the EXPRESS simulator.

The repo's headline guarantee is bit-for-bit deterministic replay
(DESIGN.md §7). The compiler cannot see the class of bug that breaks
it — iterating a hash map in a loop whose body emits packets — so this
driver implements the checks as source lints:

  unordered-effectful-loop   range-for over a std::unordered_{map,set}
                             whose body sends messages, schedules
                             events, appends to an output list, or
                             feeds stats. Fix: iterate a sorted
                             snapshot (det::sorted_items/sorted_keys),
                             use std::map/std::set, or annotate
                             `// lint: order-independent (<why>)`.
  banned-construct           rand()/srand()/std::random_device, wall
                             clocks (system_clock, time(), ...), and
                             raw new/delete outside the slab allocator
                             (suppress with `// lint: allow-new (<why>)`).
  uninitialized-message-pod  POD members of wire/message structs with
                             no default initializer (uninitialized
                             bytes => nondeterministic traces and
                             MSan/valgrind noise).
  discarded-effect           a protocol-effect method (UpstreamPlan,
                             VerdictEffects, ...) called as a bare
                             statement. [[nodiscard]] +
                             -Werror=unused-result catches this at
                             compile time; the lint reports it without
                             a build and covers future effect methods
                             listed in CONFIG.
  parallel-shared-state      mutable static state or unordered
                             containers declared in the parallel
                             engine's sources (src/sim/parallel*,
                             src/net/sharding*). Shard windows run on
                             worker threads; state shared across them
                             must be const, atomic, thread_local, or
                             annotated `// lint: shared-state-guarded
                             (<why>)` naming the guard (e.g. "drained
                             only at single-threaded barriers").
  bare-suppression           a `// lint:` annotation with no
                             justification, or an unknown tag.

Zero third-party dependencies (no libclang in the container); see
cpp_scan.py for the source model. Exit 0 = clean, 1 = findings,
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpp_scan  # noqa: E402
from cpp_scan import (  # noqa: E402
    Finding, KNOWN_TAGS, SourceFile, sort_findings,
)

CONFIG = {
    # Directories scanned for loops / banned constructs (repo-relative).
    "src_dirs": ["src"],
    # Wall clocks are also banned in src/ only: bench/ legitimately
    # times wall-clock throughput, tests may too.
    "clock_dirs": ["src"],
    # Files whose structs are wire/message formats: every POD member
    # must carry a default initializer.
    "message_struct_files": [
        "src/ecmp/messages.hpp",
        "src/ecmp/session.hpp",
        "src/baseline/wire.hpp",
        "src/relay/wire.hpp",
        "src/net/packet.hpp",
        "src/express/fib.hpp",
    ],
    # Methods returning protocol-effect values that must be consumed.
    "effect_methods": [
        "plan_upstream_update",
        "apply_upstream_verdict",
        "apply_route_switch",
        "udp_refresh_actions",
        "collect_dead_children",
        "query_children",
        "expire",
        "sorted_items",
        "sorted_keys",
    ],
}

# A loop body "has effects" when packet-emission order would leak into
# the trace: message sends, scheduled events, appends to an ordered
# output, or stat counters that feed reports.
EFFECT_RE = re.compile(
    r"""
    \b(?:send|transmit|emit|notify|deliver|schedule|enqueue|flush
        |reply|forward|replicate|announce|reannounce|graft|broadcast
        |push|unicast|multicast)\w*\s*\(
    | \.(?:push_back|emplace_back|append)\s*\(
    | \bstats_\.\w+\s*(?:\+\+|--|\+=|-=|=)
    | \+\+\s*stats_\.
    | \bstats_\.\w+\.\w*\s*\(     # registry-backed: stats_.x.inc()/.add()
    """,
    re.VERBOSE,
)

# Loss-model / jitter randomness must come from a seeded sim::Rng owned
# by the scenario: libc generators and the std <random> engines and
# distributions all carry hidden state the replay cannot reproduce.
BANNED_RANDOM_RE = re.compile(
    r"\b(?:rand|srand|random|drand48|lrand48)\s*\(|std::random_device"
    r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)\b"
    r"|std::\w+_distribution\b"
)
BANNED_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\b(?:time|gettimeofday|clock_gettime|localtime|gmtime|clock)\s*\(\s*(?:NULL|nullptr|&|\))"
)
# `::new (ptr) T(...)` placement-new is the slab allocator's bread and
# butter — only plain heap `new` / `delete` are flagged.
RAW_NEW_RE = re.compile(r"(?<![:.\w])new\s+[A-Za-z_:<]")
RAW_DELETE_RE = re.compile(r"(?<![:.\w])delete(?:\s*\[\s*\])?\s+[A-Za-z_*(]")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(")

POD_MEMBER_RE = re.compile(
    r"""^\s*
    (?:static\s+|constexpr\s+|mutable\s+)*
    (?P<type>(?:std::)?(?:u?int(?:8|16|32|64)?_t|size_t|ssize_t|ptrdiff_t
        |bool|char|float|double|unsigned(?:\s+\w+)?|signed(?:\s+\w+)?
        |int|long(?:\s+\w+)?|short))
    \s+ (?P<name>\w+) (?P<array>\s*\[[^\]]*\])?
    \s* (?P<init>=[^;]*|\{[^;]*\})? \s* ;
    """,
    re.VERBOSE,
)


# --------------------------------------------------------------------------
# Registry of unordered-container names and accessors (global, cross-file:
# a loop in router.cpp may iterate an accessor declared in subscription.hpp).
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")

#: The FlatFib (aliased `Fib`) is unordered for lint purposes too: its
#: entries() view is in open-addressed table order — deterministic, but a
#: function of the whole upsert/erase history, so effectful iteration
#: without det::sorted_* is the same replay hazard as a hash map.
FLATFIB_DECL_RE = re.compile(r"\b(?:FlatFib|Fib)\b")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def skip_template_args(code: str, open_idx: int) -> int:
    """Index just past the '>' matching '<' at open_idx (angle depth only;
    good enough for container template argument lists)."""
    depth = 0
    i = open_idx
    while i < len(code):
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":  # malformed / not a template arg list
            return i
        i += 1
    return i


def collect_unordered_names(files: list[SourceFile]) -> tuple[set, set]:
    """(variable/member names, accessor-method names) of unordered
    containers declared anywhere in the scanned tree."""
    variables: set[str] = set()
    accessors: set[str] = set()
    for sf in files:
        for m in UNORDERED_DECL_RE.finditer(sf.code):
            end = skip_template_args(sf.code, m.end() - 1)
            rest = sf.code[end : end + 160]
            rm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(\(|[;={])", rest)
            if not rm:
                continue
            name, tail = rm.group(1), rm.group(2)
            if tail == "(":
                accessors.add(name)
            else:
                variables.add(name)
        for m in FLATFIB_DECL_RE.finditer(sf.code):
            # Same declaration shapes as above; `Fib::method` definitions,
            # `class FlatFib {` and `using Fib = ...` yield no identifier
            # and fall through.
            rest = sf.code[m.end() : m.end() + 160]
            rm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(\(|[;={])", rest)
            if not rm:
                continue
            name, tail = rm.group(1), rm.group(2)
            if tail == "(":
                accessors.add(name)
            else:
                variables.add(name)
    return variables, accessors


# --------------------------------------------------------------------------
# Check: unordered-effectful-loop
# --------------------------------------------------------------------------

def check_unordered_loops(sf: SourceFile, variables: set, accessors: set,
                          findings: list) -> None:
    for m in RANGE_FOR_RE.finditer(sf.code):
        open_paren = m.end() - 1
        close = match_paren(sf.code, open_paren)
        header = sf.code[open_paren + 1 : close]
        colon = split_range_for(header)
        if colon is None:
            continue  # classic for(;;): index order is explicit
        range_expr = header[colon + 1 :].strip()
        if "det::sorted_" in range_expr:
            continue  # already iterating a sorted snapshot
        if not mentions_unordered(range_expr, variables, accessors):
            continue
        line = sf.line_of(m.start())
        col = sf.col_of(m.start())
        body = sf.code[close + 1 : cpp_scan.statement_end(sf.code, close + 1) + 1]
        if not EFFECT_RE.search(body):
            continue
        if sf.suppressed("order-independent", line, reach=2) or sf.suppressed(
            "order-independent", line + 1, reach=0
        ):
            continue
        findings.append(
            Finding(
                "unordered-effectful-loop", sf.path, line, col,
                f"iteration over unordered container `{range_expr}` has "
                "order-dependent effects; iterate det::sorted_items/"
                "sorted_keys, use std::map/set, or annotate "
                "`// lint: order-independent (<why>)`",
            )
        )


def match_paren(code: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


def split_range_for(header: str):
    """Offset of the range-for ':' in a for-header, or None. Skips '::'
    and ternaries inside parens/brackets."""
    depth = 0
    i = 0
    while i < len(header):
        c = header[i]
        if c in "([<":
            depth += 1
        elif c in ")]>":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                i += 2
                continue
            if i > 0 and header[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return None


def mentions_unordered(range_expr: str, variables: set, accessors: set) -> bool:
    if "unordered_" in range_expr:
        return True
    for ident in IDENT_RE.finditer(range_expr):
        name = ident.group(0)
        after = range_expr[ident.end() :].lstrip()
        if name in accessors and after.startswith("("):
            return True
        if name in variables and not after.startswith("("):
            return True
    return False


# --------------------------------------------------------------------------
# Check: banned-construct
# --------------------------------------------------------------------------

def check_banned(sf: SourceFile, ban_clocks: bool, findings: list) -> None:
    for m in BANNED_RANDOM_RE.finditer(sf.code):
        findings.append(
            Finding("banned-construct", sf.path, sf.line_of(m.start()),
                    sf.col_of(m.start()),
                    f"`{m.group(0).strip()}`: unseeded/libc randomness breaks "
                    "replay; use a seeded engine owned by the scenario")
        )
    if ban_clocks:
        for m in BANNED_CLOCK_RE.finditer(sf.code):
            findings.append(
                Finding("banned-construct", sf.path, sf.line_of(m.start()),
                        sf.col_of(m.start()),
                        f"`{m.group(0).strip()}`: wall-clock reads in the "
                        "simulator core break replay; use sim::Scheduler time")
            )
    for regex, what in ((RAW_NEW_RE, "new"), (RAW_DELETE_RE, "delete")):
        for m in regex.finditer(sf.code):
            line = sf.line_of(m.start())
            if sf.suppressed("allow-new", line, reach=2):
                continue
            findings.append(
                Finding("banned-construct", sf.path, line,
                        sf.col_of(m.start()),
                        f"raw `{what}` outside the slab allocator; use the "
                        "slab/value semantics or annotate "
                        "`// lint: allow-new (<why>)`")
            )


# --------------------------------------------------------------------------
# Check: uninitialized-message-pod
# --------------------------------------------------------------------------

STRUCT_RE = re.compile(r"\b(?:struct|class)\s+(?:\[\[\w+\]\]\s*)?(\w+)[^;{]*\{")


def check_message_pods(sf: SourceFile, findings: list) -> None:
    for sm in STRUCT_RE.finditer(sf.code):
        body_start = sm.end() - 1
        body_end = cpp_scan.matching_brace(sf.code, body_start)
        body = sf.code[body_start + 1 : body_end]
        base_off = body_start + 1
        depth_guard = 0
        for raw_line in split_statement_lines(body):
            text, off = raw_line
            depth_guard += text.count("{") - text.count("}")
            if depth_guard > 0 and "{" not in text:
                continue  # inside a nested function body
            pm = POD_MEMBER_RE.match(text)
            if pm is None or pm.group("init"):
                continue
            if "(" in text.split(";")[0] and "[" not in text:
                continue  # function declaration
            name_off = base_off + off + pm.start("name")
            findings.append(
                Finding(
                    "uninitialized-message-pod", sf.path,
                    sf.line_of(name_off), sf.col_of(name_off),
                    f"member `{pm.group('name')}` of message struct "
                    f"`{sm.group(1)}` has no default initializer "
                    "(uninitialized wire bytes are nondeterministic)",
                )
            )


def split_statement_lines(body: str):
    off = 0
    for line in body.split("\n"):
        yield line, off
        off += len(line) + 1


# --------------------------------------------------------------------------
# Check: discarded-effect
# --------------------------------------------------------------------------

def check_discarded_effects(sf: SourceFile, findings: list) -> None:
    methods = "|".join(CONFIG["effect_methods"])
    call_re = re.compile(r"\b(" + methods + r")\s*\(")
    for m in call_re.finditer(sf.code):
        # Walk back over the receiver chain (obj.a->b::c) to the start
        # of the statement.
        i = m.start() - 1
        while i >= 0 and (sf.code[i].isalnum() or sf.code[i] in "_.:>-) \t\n"):
            if sf.code[i] == ")":
                break  # mid-expression, e.g. f(x).expire(...)
            i -= 1
        if i >= 0 and sf.code[i] not in ";{}":
            continue  # assigned, returned, passed as an argument, ...
        prefix = sf.code[i + 1 : m.start()].strip()
        if re.search(r"\b(return|co_return|if|while|for|switch|case)\b", prefix):
            continue
        if "=" in prefix or "(" in prefix:
            continue
        # A statement-position call is `method(...)` or `recv.method(...)`;
        # anything else directly before the name is a return type, i.e.
        # this is a declaration, not a call.
        if prefix and not prefix.endswith((".", "->", "::")):
            continue
        # Bare statement: `obj.method(...);` with the result dropped.
        end = match_paren(sf.code, m.end() - 1)
        rest = sf.code[end + 1 : end + 4].lstrip()
        if not rest.startswith(";") and not rest.startswith("."):
            continue
        if rest.startswith("."):
            continue  # chained: result is consumed
        findings.append(
            Finding("discarded-effect", sf.path, sf.line_of(m.start()),
                    sf.col_of(m.start()),
                    f"result of `{m.group(1)}()` discarded; protocol-effect "
                    "values must be consumed ([[nodiscard]] enforces this in "
                    "the build too)")
        )


# --------------------------------------------------------------------------
# Check: parallel-shared-state
# --------------------------------------------------------------------------

#: Real sources the check sweeps (repo-relative path fragments).
PARALLEL_STATE_MARKERS = (
    os.path.join("src", "sim", "parallel"),
    os.path.join("src", "net", "sharding"),
)

#: `static` that is not const/constexpr/thread_local/std::atomic —
#: mutable storage every shard worker thread can reach.
MUTABLE_STATIC_RE = re.compile(
    r"^[ \t]*static\s+(?!const\b|constexpr\b|thread_local\b|std::atomic\b)",
    re.MULTILINE,
)
#: `static <type> name(...)` — a member/free function, not state.
STATIC_FUNC_RE = re.compile(r"^[ \t]*static\s+[\w:<>,*&\s]+?\b\w+\s*\(")


def check_parallel_shared_state(sf: SourceFile, findings: list) -> None:
    for m in MUTABLE_STATIC_RE.finditer(sf.code):
        eol = sf.code.find("\n", m.start())
        line_text = sf.code[m.start(): eol if eol >= 0 else len(sf.code)]
        if STATIC_FUNC_RE.match(line_text):
            continue
        line = sf.line_of(m.start())
        if sf.suppressed("shared-state-guarded", line, reach=2):
            continue
        findings.append(
            Finding("parallel-shared-state", sf.path, line,
                    sf.col_of(m.start()),
                    "mutable static in parallel-engine sources: shard "
                    "windows run on worker threads — make it const, "
                    "std::atomic, thread_local, or annotate "
                    "`// lint: shared-state-guarded (<why>)`")
        )
    for m in UNORDERED_DECL_RE.finditer(sf.code):
        line = sf.line_of(m.start())
        if sf.suppressed("shared-state-guarded", line, reach=2):
            continue
        findings.append(
            Finding("parallel-shared-state", sf.path, line,
                    sf.col_of(m.start()),
                    "unordered container in parallel-engine sources: "
                    "rehash/iteration under cross-shard mutation is a "
                    "race and an ordering hazard — use std::map/vector "
                    "or annotate `// lint: shared-state-guarded (<why>)`")
        )


# --------------------------------------------------------------------------
# Check: bare-suppression
# --------------------------------------------------------------------------

def check_suppressions(sf: SourceFile, findings: list) -> None:
    for s in sf.suppressions:
        if s.tag not in KNOWN_TAGS:
            findings.append(
                Finding("bare-suppression", sf.path, s.line, s.col,
                        f"unknown lint tag `{s.tag}` (known: "
                        f"{', '.join(KNOWN_TAGS)})")
            )
        elif not s.justified:
            findings.append(
                Finding("bare-suppression", sf.path, s.line, s.col,
                        f"`lint: {s.tag}` needs a (justification)")
            )


# --------------------------------------------------------------------------
# Self-test: every violation class has a fixture that must trip exactly
# its own check, plus a clean positive control. Run by ctest
# (`scripts/lint.sh --self-test`) so a silently broken lint fails CI.
# --------------------------------------------------------------------------

SELF_TESTS = {
    "unordered_effectful_loop.cpp": {"unordered-effectful-loop"},
    "flat_fib_loop.cpp": {"unordered-effectful-loop"},
    "banned_constructs.cpp": {"banned-construct"},
    "uninitialized_message_pod.cpp": {"uninitialized-message-pod"},
    "discarded_effects.cpp": {"discarded-effect"},
    "bare_suppression.cpp": {"bare-suppression"},
    "wall_clock_in_obs.cpp": {"banned-construct"},
    "loss_model_rand.cpp": {"banned-construct"},
    "parallel_shared_state.cpp": {"parallel-shared-state"},
    "parallel_clean.cpp": set(),
    "clean.cpp": set(),
}

#: Minimum finding count per fixture (a check that fires once when the
#: fixture plants four violations is broken too).
SELF_TEST_MIN_COUNTS = {
    "banned_constructs.cpp": 4,       # rand, time, new, delete
    "uninitialized_message_pod.cpp": 2,  # seq, urgent
    "loss_model_rand.cpp": 3,  # rand, mt19937, bernoulli_distribution
    "parallel_shared_state.cpp": 3,  # two mutable statics + unordered_map
}


def self_test(root: str) -> int:
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    failures = []
    for name, expected in sorted(SELF_TESTS.items()):
        path = os.path.join(fixture_dir, name)
        if not os.path.exists(path):
            failures.append(f"{name}: fixture missing")
            continue
        findings = run(root, [path])
        fired = {f.check for f in findings}
        missing = expected - fired
        unexpected = fired - expected
        if missing:
            failures.append(f"{name}: expected check(s) did not fire: "
                            f"{sorted(missing)}")
        if unexpected:
            failures.append(f"{name}: unexpected check(s) fired: "
                            f"{sorted(unexpected)} — "
                            + "; ".join(f.render() for f in findings
                                        if f.check in unexpected))
        want = SELF_TEST_MIN_COUNTS.get(name)
        if want is not None and len(findings) < want:
            failures.append(f"{name}: expected >= {want} findings, "
                            f"got {len(findings)}")
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL {f}")
        return 1
    print(f"detlint self-test: {len(SELF_TESTS)} fixtures OK")
    return 0


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def iter_sources(root: str, dirs: list):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    yield os.path.join(dirpath, name)


def run(root: str, paths=None) -> list:
    findings: list[Finding] = []
    if paths:
        files = [cpp_scan.load(p) for p in paths]
    else:
        files = [cpp_scan.load(p) for p in iter_sources(root, CONFIG["src_dirs"])]
    variables, accessors = collect_unordered_names(files)

    msg_files = {os.path.normpath(os.path.join(root, p))
                 for p in CONFIG["message_struct_files"]}
    clock_dirs = tuple(os.path.normpath(os.path.join(root, d)) + os.sep
                       for d in CONFIG["clock_dirs"])

    for sf in files:
        norm = os.path.normpath(os.path.abspath(sf.path))
        # Fixtures opt into every check; explicit paths otherwise keep
        # the same per-file rules as the sweep (lint.sh --changed must
        # not apply message-struct rules to ordinary classes).
        fixture = f"{os.sep}lint_fixtures{os.sep}" in norm
        ban_clocks = fixture or norm.startswith(clock_dirs)
        check_unordered_loops(sf, variables, accessors, findings)
        check_banned(sf, ban_clocks, findings)
        if fixture or norm in msg_files:
            check_message_pods(sf, findings)
        if (os.path.basename(norm).startswith("parallel_") if fixture
                else any(marker in norm for marker in PARALLEL_STATE_MARKERS)):
            check_parallel_shared_state(sf, findings)
        check_discarded_effects(sf, findings)
        check_suppressions(sf, findings)

    return sort_findings(findings)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="lint only these files (all checks apply); "
                    "default: sweep the configured source dirs")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array (for CI annotation)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the lints against tests/lint_fixtures/ and "
                    "assert each violation class is caught")
    args = ap.parse_args(argv)
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if args.self_test:
        return self_test(root)
    findings = run(root, args.paths or None)
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
    if findings:
        print(f"detlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
