#!/usr/bin/env python3
"""Whitespace hygiene gate for when clang-format is not installed.

Checks only the invariants no formatter config could disagree with:
trailing whitespace, hard tabs in C++ sources, CRLF line endings, and
a missing final newline. scripts/format_check.sh prefers clang-format
(.clang-format at the repo root) when available and falls back to this.
"""

from __future__ import annotations

import os
import sys

EXTS = (".hpp", ".cpp", ".h", ".cc")
DIRS = ("src", "tests", "bench", "examples")


def check_file(path: str) -> list[str]:
    problems = []
    with open(path, "rb") as fh:
        data = fh.read()
    if not data:
        return problems
    if b"\r\n" in data:
        problems.append(f"{path}: CRLF line endings")
    if not data.endswith(b"\n"):
        problems.append(f"{path}: missing final newline")
    for i, line in enumerate(data.split(b"\n"), start=1):
        if line.rstrip(b"\r") != line.rstrip():
            problems.append(f"{path}:{i}: trailing whitespace")
        if b"\t" in line:
            problems.append(f"{path}:{i}: hard tab")
    return problems


def main() -> int:
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    problems: list[str] = []
    for d in DIRS:
        base = os.path.join(root, d)
        for dirpath, _dirnames, filenames in os.walk(base):
            if "lint_fixtures" in dirpath:
                pass  # fixtures are real sources too; hold them to the bar
            for name in sorted(filenames):
                if name.endswith(EXTS):
                    problems.extend(check_file(os.path.join(dirpath, name)))
    for p in problems:
        print(p)
    if problems:
        print(f"format_fallback: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
