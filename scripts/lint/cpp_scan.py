"""Lightweight C++ source scanning for the determinism lints.

No libclang in the build container, so the custom lints work on a
token-ish view of the source: comments and string/char literals are
blanked (replaced with spaces, preserving byte offsets and line
numbers), and a small brace matcher recovers statement/block extents.
That is enough for the checks in detlint.py, all of which are
line/region pattern checks rather than full semantic analysis.

The suppression comments the lints honour are extracted *before*
blanking, keyed by line number:

    // lint: order-independent (<why>)
    // lint: allow-new (<why>)

A justification in parentheses is mandatory — a bare annotation is
itself a lint error (reported by detlint).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


LINT_COMMENT_RE = re.compile(
    r"//\s*lint:\s*(?P<tag>[a-z-]+)\s*(?P<why>\([^)]*\))?"
)

#: Suppression tags the lints understand.
KNOWN_TAGS = ("order-independent", "allow-new")


@dataclass
class Suppression:
    tag: str
    line: int  # 1-based line the comment sits on
    justified: bool  # has a non-empty (...) justification


@dataclass
class SourceFile:
    path: str
    raw: str
    #: raw with comments and string/char literals blanked to spaces.
    code: str = ""
    #: lint suppression comments, in file order.
    suppressions: list[Suppression] = field(default_factory=list)

    def line_of(self, offset: int) -> int:
        """1-based line number of a byte offset."""
        return self.raw.count("\n", 0, offset) + 1

    def line_text(self, line: int) -> str:
        lines = self.raw.splitlines()
        return lines[line - 1] if 1 <= line <= len(lines) else ""

    def suppressed(self, tag: str, line: int, reach: int = 1) -> bool:
        """True when a justified `tag` suppression sits on `line` or up
        to `reach` lines above it (annotation-above-statement style)."""
        for s in self.suppressions:
            if s.tag == tag and s.justified and line - reach <= s.line <= line:
                return True
        return False


def strip_code(raw: str) -> tuple[str, list[Suppression]]:
    """Blank comments and literals; collect lint suppression comments.

    Keeps newlines so offsets map to the same line numbers as `raw`.
    """
    out = list(raw)
    suppressions: list[Suppression] = []
    i, n = 0, len(raw)

    def blank(start: int, end: int) -> None:
        for j in range(start, end):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = raw.find("\n", i)
            end = n if end == -1 else end
            m = LINT_COMMENT_RE.search(raw, i, end)
            if m:
                why = m.group("why")
                suppressions.append(
                    Suppression(
                        tag=m.group("tag"),
                        line=raw.count("\n", 0, i) + 1,
                        justified=bool(why and why.strip("() \t")),
                    )
                )
            blank(i, end)
            i = end
        elif c == "/" and nxt == "*":
            end = raw.find("*/", i + 2)
            end = n if end == -1 else end + 2
            blank(i, end)
            i = end
        elif c == '"':
            # Skip raw strings wholesale: R"delim(...)delim"
            if i >= 1 and raw[i - 1] == "R":
                m = re.match(r'R"([^(\s]*)\(', raw[i - 1 :])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = raw.find(close, i + 1)
                    end = n if end == -1 else end + len(close)
                    blank(i, end)
                    i = end
                    continue
            j = i + 1
            while j < n and raw[j] != '"':
                if raw[j] == "\\":
                    j += 1
                j += 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        elif c == "'":
            j = i + 1
            while j < n and raw[j] != "'":
                if raw[j] == "\\":
                    j += 1
                j += 1
            # Digit separators (1'000'000) parse as empty/odd char
            # literals; blanking the short span between quotes is
            # harmless either way.
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out), suppressions


def load(path: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as fh:
        raw = fh.read()
    sf = SourceFile(path=path, raw=raw)
    sf.code, sf.suppressions = strip_code(raw)
    return sf


def matching_brace(code: str, open_idx: int) -> int:
    """Index of the '}' matching the '{' at open_idx, or len(code)."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


def statement_end(code: str, start: int) -> int:
    """End offset of the statement starting at `start`: either the
    matching '}' of the first top-level '{', or the first top-level ';'
    (for brace-less loop bodies)."""
    depth = 0
    i = start
    n = len(code)
    while i < n:
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == "{" and depth == 0:
            return matching_brace(code, i)
        elif c == ";" and depth == 0:
            return i
        i += 1
    return n
