"""Lightweight C++ source scanning for the determinism lints.

No libclang in the build container, so the custom lints work on a
token-ish view of the source: comments and string/char literals are
blanked (replaced with spaces, preserving byte offsets and line
numbers), and a small brace matcher recovers statement/block extents.
That is enough for the checks in detlint.py and archlint.py, all of
which are line/region pattern checks rather than full semantic
analysis. On top of the blanked view this module recovers three
structural facts archlint needs: the include list (from the *raw*
text, because string blanking hides the `"..."` target), function
extents (name, enclosing class, constructor/destructor-ness, body
span), and `enum class` enumerator sets.

The suppression comments the lints honour are extracted *before*
blanking, keyed by line number:

    // lint: order-independent (<why>)
    // lint: allow-new (<why>)
    // lint: fire-and-forget (<why>)
    // lint: partial-switch (<why>)
    // lint: drop-untraced (<why>)
    // lint: late-registration (<why>)

A justification in parentheses is mandatory — a bare annotation is
itself a lint error (reported by detlint).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


LINT_COMMENT_RE = re.compile(
    r"//\s*lint:\s*(?P<tag>[a-z-]+)\s*(?P<why>\([^)]*\))?"
)

#: Suppression tags the lints understand (detlint + archlint).
KNOWN_TAGS = (
    "order-independent",
    "allow-new",
    "fire-and-forget",
    "partial-switch",
    "drop-untraced",
    "late-registration",
    "shared-state-guarded",
)


@dataclass
class Suppression:
    tag: str
    line: int  # 1-based line the comment sits on
    justified: bool  # has a non-empty (...) justification
    col: int = 1  # 1-based column of the comment


@dataclass
class Finding:
    """One lint finding; shared between detlint and archlint so both
    render and serialize identically (stable sort, --json)."""

    check: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.check}] " \
               f"{self.message}"

    def to_dict(self) -> dict:
        return {"check": self.check, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


def sort_findings(findings: list) -> list:
    """Stable canonical order: path, line, col, check, message."""
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.check, f.message))
    return findings


@dataclass
class SourceFile:
    path: str
    raw: str
    #: raw with comments and string/char literals blanked to spaces.
    code: str = ""
    #: lint suppression comments, in file order.
    suppressions: list[Suppression] = field(default_factory=list)

    def line_of(self, offset: int) -> int:
        """1-based line number of a byte offset."""
        return self.raw.count("\n", 0, offset) + 1

    def col_of(self, offset: int) -> int:
        """1-based column of a byte offset."""
        nl = self.raw.rfind("\n", 0, offset)
        return offset - nl  # nl == -1 works: offset + 1

    def line_text(self, line: int) -> str:
        lines = self.raw.splitlines()
        return lines[line - 1] if 1 <= line <= len(lines) else ""

    def suppressed(self, tag: str, line: int, reach: int = 1) -> bool:
        """True when a justified `tag` suppression sits on `line` or up
        to `reach` lines above it (annotation-above-statement style)."""
        for s in self.suppressions:
            if s.tag == tag and s.justified and line - reach <= s.line <= line:
                return True
        return False


def strip_code(raw: str) -> tuple[str, list[Suppression]]:
    """Blank comments and literals; collect lint suppression comments.

    Keeps newlines so offsets map to the same line numbers as `raw`.
    """
    out = list(raw)
    suppressions: list[Suppression] = []
    i, n = 0, len(raw)

    def blank(start: int, end: int) -> None:
        for j in range(start, end):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = raw.find("\n", i)
            end = n if end == -1 else end
            m = LINT_COMMENT_RE.search(raw, i, end)
            if m:
                why = m.group("why")
                suppressions.append(
                    Suppression(
                        tag=m.group("tag"),
                        line=raw.count("\n", 0, i) + 1,
                        justified=bool(why and why.strip("() \t")),
                        col=m.start() - raw.rfind("\n", 0, m.start()),
                    )
                )
            blank(i, end)
            i = end
        elif c == "/" and nxt == "*":
            end = raw.find("*/", i + 2)
            end = n if end == -1 else end + 2
            blank(i, end)
            i = end
        elif c == '"':
            # Skip raw strings wholesale: R"delim(...)delim", including
            # the encoding-prefixed forms LR" / uR" / UR" / u8R". The
            # prefix must be a complete token: `FACTOR"(km)"` is an
            # identifier followed by an ordinary string, not a raw one.
            prefix = _raw_string_prefix(raw, i)
            if prefix:
                m = re.match(r'"([^(\s\\)]*)\(', raw[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = raw.find(close, i + 1)
                    end = n if end == -1 else end + len(close)
                    blank(i, end)
                    i = end
                    continue
            j = i + 1
            while j < n and raw[j] != '"':
                if raw[j] == "\\":
                    j += 1
                j += 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        elif c == "'":
            # A quote inside a numeric literal (1'000'000, 0xFF'FF) is a
            # digit separator, not a char-literal open: leave it alone
            # or the scanner blanks real code between the "quotes".
            # `L'x'`/`u8'x'` stay char literals: their preceding token
            # is not numeric.
            if (
                i >= 1
                and i + 1 < n
                and raw[i - 1].isalnum()
                and raw[i + 1].isalnum()
                and _numeric_token_before(raw, i)
            ):
                i += 1
                continue
            j = i + 1
            while j < n and raw[j] != "'":
                if raw[j] == "\\":
                    j += 1
                j += 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out), suppressions


def _numeric_token_before(raw: str, quote: int) -> bool:
    """True when the token ending just before `quote` is a numeric
    literal (so the quote is a C++14 digit separator)."""
    j = quote - 1
    # `'` is part of the walk-back set so 0xFF'FF'00 resolves to the
    # literal's first character, not the segment after the previous
    # separator.
    while j >= 0 and (raw[j].isalnum() or raw[j] in "_.'"):
        j -= 1
    return j + 1 < quote and raw[j + 1].isdigit()


def _raw_string_prefix(raw: str, quote: int) -> str:
    """The raw-string prefix ending at `quote` ("R", "LR", ... or "")."""
    for p in ("u8R", "uR", "UR", "LR", "R"):
        start = quote - len(p)
        if start < 0 or not raw.startswith(p, start):
            continue
        before = raw[start - 1] if start > 0 else ""
        if before.isalnum() or before == "_":
            continue  # tail of a longer identifier, not a prefix token
        return p
    return ""


def load(path: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as fh:
        raw = fh.read()
    sf = SourceFile(path=path, raw=raw)
    sf.code, sf.suppressions = strip_code(raw)
    return sf


def matching_brace(code: str, open_idx: int) -> int:
    """Index of the '}' matching the '{' at open_idx, or len(code)."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


def statement_end(code: str, start: int) -> int:
    """End offset of the statement starting at `start`: either the
    matching '}' of the first top-level '{', or the first top-level ';'
    (for brace-less loop bodies)."""
    depth = 0
    i = start
    n = len(code)
    while i < n:
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == "{" and depth == 0:
            return matching_brace(code, i)
        elif c == ";" and depth == 0:
            return i
        i += 1
    return n


# --------------------------------------------------------------------------
# Includes — extracted from the *raw* text: the literal blanking above
# keeps the quote characters but blanks the path between them.
# --------------------------------------------------------------------------

@dataclass
class Include:
    target: str  # include path as written ("net/packet.hpp", "vector")
    angled: bool  # <...> (system) vs "..." (project)
    line: int
    col: int
    offset: int


INCLUDE_RE = re.compile(
    r'^[ \t]*#[ \t]*include[ \t]*(?P<open>["<])(?P<target>[^">]+)[">]',
    re.MULTILINE,
)


def includes(sf: SourceFile) -> list[Include]:
    out = []
    for m in INCLUDE_RE.finditer(sf.raw):
        off = m.start("target")
        hash_off = sf.raw.index("#", m.start())
        if sf.code[hash_off] != "#":
            continue  # directive sits inside a /* block comment */
        out.append(Include(target=m.group("target"),
                           angled=m.group("open") == "<",
                           line=sf.line_of(off), col=sf.col_of(off),
                           offset=off))
    return out


# --------------------------------------------------------------------------
# Function / class / enum extents. A single recursive pass over the
# blanked code: class bodies are descended into (to find inline methods
# and nested enums), function bodies are skipped wholesale (lambdas and
# local declarations stay inside their enclosing extent).
# --------------------------------------------------------------------------

@dataclass
class FunctionExtent:
    name: str       # unqualified ("flush", "Batcher", "~Batcher")
    qualifier: str  # "Network::Fanout" on out-of-line definitions, else ""
    cls: str        # owning class ("" for free functions)
    is_ctor: bool
    is_dtor: bool
    start: int      # offset of the (qualified) name token
    body_start: int  # offset of the body '{'
    body_end: int    # offset of the matching '}'

    def contains(self, offset: int) -> bool:
        """Offset is within the definition, *including* the parameter
        list and constructor init list (registrations there count as
        constructor-path)."""
        return self.start <= offset <= self.body_end

    def span(self) -> int:
        return self.body_end - self.start


@dataclass
class ClassExtent:
    name: str
    body_start: int
    body_end: int


@dataclass
class EnumDef:
    name: str
    cls: str  # enclosing class name, "" at namespace scope
    path: str
    line: int
    enumerators: list[str] = field(default_factory=list)


_HEAD_RE = re.compile(
    r"(?P<enum>\benum\s+(?:class\s+|struct\s+)?(?P<ename>[A-Za-z_]\w*))"
    r"|(?P<cls>\b(?:struct|class)\s+(?:\[\[[^\]]*\]\]\s*)?"
    r"(?P<cname>[A-Za-z_]\w*))"
    r"|(?P<func>(?P<fname>~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\()"
)

#: Identifiers that look like `name(` but never open a function body.
_NOT_A_FUNCTION = frozenset(
    "if for while switch catch return sizeof alignof decltype noexcept "
    "static_assert new delete throw case default else do using typedef "
    "alignas assert".split()
)


def _match_bracket(code: str, open_idx: int) -> int:
    """Index of the ')' or ']' matching the bracket at open_idx."""
    pairs = {"(": ")", "[": "]"}
    close = pairs[code[open_idx]]
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == code[open_idx]:
            depth += 1
        elif code[i] == close:
            depth -= 1
            if depth == 0:
                return i
    return len(code)


def _body_open(code: str, i: int, end: int):
    """Offset of the function-body '{' after a parameter list, or None
    when the construct is a declaration (`;`, `= default`, ...). Walks
    trailers (const/noexcept/override/-> type) and constructor init
    lists, including brace-init members (`: a_{1} {`)."""
    in_init = False
    while i < end:
        c = code[i]
        if c in " \t\n":
            i += 1
        elif c == ";":
            return None
        elif c == "{":
            if in_init:
                k = i - 1
                while k >= 0 and code[k] in " \t\n":
                    k -= 1
                if k >= 0 and (code[k].isalnum() or code[k] in "_>"):
                    i = matching_brace(code, i) + 1  # member brace-init
                    continue
            return i
        elif c == ":":
            if i + 1 < end and code[i + 1] == ":":
                i += 2
            else:
                in_init = True
                i += 1
        elif c in "([":
            i = _match_bracket(code, i) + 1
        elif c == "=":
            if not in_init:
                return None  # `= default`, `= delete`, `= 0`
            i += 1
        elif c == "-" and i + 1 < end and code[i + 1] == ">":
            i += 2  # trailing return type
        else:
            i += 1
    return None


def _class_body_open(code: str, i: int, end: int):
    """Offset of a class-head's body '{', or None for forward
    declarations / template parameters / base-class mentions."""
    depth = 0
    while i < end:
        c = code[i]
        if c in "(<[":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c == ">":
            if depth == 0:
                return None  # `template <class T>`
            depth -= 1
        elif depth == 0:
            if c == "{":
                return i
            if c in ";=&*":
                return None  # fwd decl, `friend class X;`, `class X* p`
        i += 1
    return None


def scan_structure(
    sf: SourceFile,
) -> tuple[list[FunctionExtent], list[ClassExtent], list[EnumDef]]:
    functions: list[FunctionExtent] = []
    classes: list[ClassExtent] = []
    enum_defs: list[EnumDef] = []
    _scan_region(sf, 0, len(sf.code), "", functions, classes, enum_defs)
    return functions, classes, enum_defs


def _scan_region(sf, start, end, cls, functions, classes, enum_defs):
    code = sf.code
    i = start
    while i < end:
        m = _HEAD_RE.search(code, i, end)
        if not m:
            return
        if m.group("enum"):
            brace = _class_body_open(code, m.end(), end)
            if brace is None:
                i = m.end()
                continue
            body_end = matching_brace(code, brace)
            enum_defs.append(_parse_enum(sf, m.group("ename"), cls,
                                         m.start(), brace, body_end))
            i = body_end + 1
            continue
        if m.group("cls"):
            brace = _class_body_open(code, m.end(), end)
            if brace is None:
                i = m.end()
                continue
            body_end = matching_brace(code, brace)
            name = m.group("cname")
            classes.append(ClassExtent(name, brace, body_end))
            _scan_region(sf, brace + 1, body_end, name,
                         functions, classes, enum_defs)
            i = body_end + 1
            continue
        # Function-definition candidate.
        full = m.group("fname")
        parts = [p.strip() for p in full.split("::")]
        name = parts[-1]
        if name.lstrip("~") in _NOT_A_FUNCTION or parts[0] in _NOT_A_FUNCTION:
            i = m.end()
            continue
        close = _match_bracket(code, m.end() - 1)
        body = _body_open(code, close + 1, end)
        if body is None:
            i = close + 1
            continue
        body_end = matching_brace(code, body)
        qualifier = "::".join(parts[:-1])
        owner = parts[-2] if len(parts) >= 2 else cls
        functions.append(FunctionExtent(
            name=name, qualifier=qualifier, cls=owner,
            is_ctor=(owner != "" and name == owner),
            is_dtor=name.startswith("~"),
            start=m.start("fname"), body_start=body, body_end=body_end))
        i = body_end + 1


def _parse_enum(sf, name, cls, head_start, brace, body_end) -> EnumDef:
    body = sf.code[brace + 1 : body_end]
    enumerators = []
    depth = 0
    chunk_start = 0
    chunks = []
    for k, c in enumerate(body):
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        elif c == "," and depth == 0:
            chunks.append(body[chunk_start:k])
            chunk_start = k + 1
    chunks.append(body[chunk_start:])
    for chunk in chunks:
        em = re.match(r"\s*([A-Za-z_]\w*)", chunk)
        if em:
            enumerators.append(em.group(1))
    return EnumDef(name=name, cls=cls, path=sf.path,
                   line=sf.line_of(head_start), enumerators=enumerators)


def enclosing_function(functions: list[FunctionExtent], offset: int):
    """Innermost function extent containing `offset`, or None."""
    best = None
    for fn in functions:
        if fn.contains(offset) and (best is None or fn.span() < best.span()):
            best = fn
    return best


def in_class_body(classes: list[ClassExtent], offset: int):
    """Innermost class extent whose body contains `offset`, or None."""
    best = None
    for ce in classes:
        if ce.body_start < offset < ce.body_end and (
            best is None or (ce.body_end - ce.body_start)
            < (best.body_end - best.body_start)
        ):
            best = ce
    return best
