#!/usr/bin/env python3
"""Diff two deterministic trace captures (DESIGN.md §11).

The simulator promises byte-identical observability artifacts for
identically-seeded runs: the event trace JSONL written by
``obs_capture`` (or any ``obs::Trace::to_jsonl()`` export) replays the
run event by event. When two captures disagree, the *first* divergent
record is the event where the runs' histories split — everything after
it is fallout. This tool finds that record, turning "determinism
broke" from a pinned-counter mismatch into a pinpointed event:

    $ ./build/bench/obs_capture --seed 7 --trace-out a.jsonl
    $ ./build/bench/obs_capture --seed 7 --trace-out b.jsonl
    $ scripts/tracediff.py a.jsonl b.jsonl
    tracediff: identical (N records)

Exit codes: 0 = identical, 1 = divergent (first divergence printed),
2 = usage/IO error. Zero third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile


def load_lines(path: str) -> list[str]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return [line.rstrip("\n") for line in f if line.strip()]
    except OSError as exc:
        print(f"tracediff: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def describe(line: str) -> str:
    """Render one JSONL record for the report (tolerates non-JSON)."""
    try:
        rec = json.loads(line)
    except json.JSONDecodeError:
        return line
    fields = ", ".join(f"{k}={rec[k]}" for k in sorted(rec))
    return f"{{{fields}}}"


def field_diff(a: str, b: str) -> str:
    """Name the fields that differ between two JSON records."""
    try:
        ra, rb = json.loads(a), json.loads(b)
    except json.JSONDecodeError:
        return ""
    keys = sorted(set(ra) | set(rb))
    diffs = [k for k in keys if ra.get(k) != rb.get(k)]
    return ", ".join(diffs)


def diff(path_a: str, path_b: str) -> int:
    lines_a = load_lines(path_a)
    lines_b = load_lines(path_b)
    for i, (la, lb) in enumerate(zip(lines_a, lines_b)):
        if la == lb:
            continue
        print(f"tracediff: first divergence at record {i}")
        fields = field_diff(la, lb)
        if fields:
            print(f"  differing fields: {fields}")
        print(f"  {path_a}: {describe(la)}")
        print(f"  {path_b}: {describe(lb)}")
        return 1
    if len(lines_a) != len(lines_b):
        short, long_, extra = (
            (path_a, path_b, lines_b)
            if len(lines_a) < len(lines_b)
            else (path_b, path_a, lines_a)
        )
        i = min(len(lines_a), len(lines_b))
        print(f"tracediff: first divergence at record {i}")
        print(f"  {short}: <end of capture ({i} records)>")
        print(f"  {long_}: {describe(extra[i])}")
        return 1
    print(f"tracediff: identical ({len(lines_a)} records)")
    return 0


def self_test() -> int:
    """Fixture-driven check that the diff logic reports correctly."""
    rec = (
        '{"a":0,"b":0,"c":0,"entity":"router:1","index":%d,'
        '"time_ns":%d,"type":"timer_fire"}'
    )
    base = [rec % (i, i * 100) for i in range(4)]
    changed = list(base)
    changed[2] = changed[2].replace('"time_ns":200', '"time_ns":250')
    truncated = base[:3]

    failures = []

    def run_case(name: str, a: list[str], b: list[str], want: int):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".jsonl", delete=False
        ) as fa, tempfile.NamedTemporaryFile(
            "w", suffix=".jsonl", delete=False
        ) as fb:
            fa.write("\n".join(a) + "\n")
            fb.write("\n".join(b) + "\n")
            fa.flush()
            fb.flush()
            got = diff(fa.name, fb.name)
            if got != want:
                failures.append(f"{name}: exit {got}, expected {want}")

    run_case("identical", base, base, 0)
    run_case("divergent-record", base, changed, 1)
    run_case("truncated", base, truncated, 1)
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL {f}", file=sys.stderr)
        return 1
    print("tracediff self-test: 3 cases OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Report the first divergent record between two "
        "trace captures."
    )
    parser.add_argument("captures", nargs="*", help="two trace JSONL files")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in fixtures and exit",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if len(args.captures) != 2:
        parser.print_usage(sys.stderr)
        return 2
    return diff(args.captures[0], args.captures[1])


if __name__ == "__main__":
    sys.exit(main())
