// Minimal IPv4 header encode/decode with the real RFC 791 checksum.
//
// The simulator mostly passes structured packets around, but the wire
// codec is exercised by the ECMP message codec, the subcast IP-in-IP
// encapsulation, and the codec tests — it keeps the byte-level story
// honest without simulating full IP fragmentation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ip/address.hpp"

namespace express::ip {

/// IP protocol numbers used by this codebase.
enum class Protocol : std::uint8_t {
  kIcmp = 1,
  kIgmp = 2,     ///< host membership + DVMRP control (baselines)
  kIpInIp = 4,   ///< subcast / PIM Register / CBT off-tree encapsulation
  kTcp = 6,
  kCbt = 7,      ///< CBT control (baseline)
  kUdp = 17,
  kPim = 103,    ///< PIM-SM control (baseline)
  kEcmp = 143,   ///< our ECMP-over-raw demo protocol number (experimental range)
};

struct Header {
  Address source;
  Address dest;
  Protocol protocol = Protocol::kUdp;
  std::uint8_t ttl = 64;
  std::uint16_t payload_length = 0;  ///< bytes following the 20-byte header
  std::uint16_t identification = 0;

  static constexpr std::size_t kSize = 20;

  /// Serialize into exactly kSize bytes (header checksum computed).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Append the encoded header to `out`.
  void encode_to(std::vector<std::uint8_t>& out) const;

  /// Parse and checksum-verify a header from the front of `bytes`.
  /// Returns nullopt on truncation, bad version/IHL, or checksum failure.
  static std::optional<Header> decode(std::span<const std::uint8_t> bytes);
};

/// RFC 1071 internet checksum over an arbitrary byte span.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes);

}  // namespace express::ip
