#include "ip/header.hpp"

namespace express::ip {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return (std::uint32_t{b[at]} << 24) | (std::uint32_t{b[at + 1]} << 16) |
         (std::uint32_t{b[at + 2]} << 8) | std::uint32_t{b[at + 3]};
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += static_cast<std::uint32_t>((bytes[i] << 8) | bytes[i + 1]);
  }
  if (i < bytes.size()) sum += static_cast<std::uint32_t>(bytes[i] << 8);
  while (sum >> 16) sum = (sum & 0xFFFFU) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFFU);
}

void Header::encode_to(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0x00);  // DSCP/ECN
  put_u16(out, static_cast<std::uint16_t>(kSize + payload_length));
  put_u16(out, identification);
  put_u16(out, 0x4000);  // flags: DF, fragment offset 0
  out.push_back(ttl);
  out.push_back(static_cast<std::uint8_t>(protocol));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, source.value());
  put_u32(out, dest.value());
  const auto span = std::span<const std::uint8_t>(out).subspan(start, kSize);
  const std::uint16_t sum = internet_checksum(span);
  out[start + 10] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(sum & 0xFF);
}

std::vector<std::uint8_t> Header::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize);
  encode_to(out);
  return out;
}

std::optional<Header> Header::decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) return std::nullopt;
  if (bytes[0] != 0x45) return std::nullopt;  // we only emit IHL=5
  if (internet_checksum(bytes.first(kSize)) != 0) return std::nullopt;
  Header h;
  const std::uint16_t total = get_u16(bytes, 2);
  if (total < kSize) return std::nullopt;
  h.payload_length = static_cast<std::uint16_t>(total - kSize);
  h.identification = get_u16(bytes, 4);
  h.ttl = bytes[8];
  h.protocol = static_cast<Protocol>(bytes[9]);
  h.source = Address{get_u32(bytes, 12)};
  h.dest = Address{get_u32(bytes, 16)};
  return h;
}

}  // namespace express::ip
