// IPv4 addresses and the multicast / single-source address taxonomy.
//
// EXPRESS (paper Fig. 2) carves the 232/8 block out of class D for
// single-source channels: every source host can name 2^24 channels by
// choosing the low 24 bits of E, with no global allocation service.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace express::ip {

/// An IPv4 address in host byte order.
class Address {
 public:
  constexpr Address() = default;
  constexpr explicit Address(std::uint32_t value) : value_(value) {}
  constexpr Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parse dotted-quad text; returns nullopt on malformed input.
  static std::optional<Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// Class D: 224.0.0.0 - 239.255.255.255.
  [[nodiscard]] constexpr bool is_multicast() const {
    return (value_ & 0xF0000000U) == 0xE0000000U;
  }

  /// The IANA single-source range the paper uses: 232.0.0.0/8.
  [[nodiscard]] constexpr bool is_single_source() const {
    return (value_ >> 24) == 232U;
  }

  /// Administratively scoped block 239/8 (contrasted in the paper's
  /// footnote 2: scoping does not help globally-dispersed audiences).
  [[nodiscard]] constexpr bool is_admin_scoped() const {
    return (value_ >> 24) == 239U;
  }

  /// Link-local control block 224.0.0/24 (IGMP/ECMP well-known range).
  [[nodiscard]] constexpr bool is_link_local_multicast() const {
    return (value_ & 0xFFFFFF00U) == 0xE0000000U;
  }

  /// Usable as a unicast host address for our purposes.
  [[nodiscard]] constexpr bool is_unicast() const {
    return value_ != 0 && !is_multicast();
  }

  /// The channel index within a source's 2^24-channel space, valid only
  /// for single-source addresses.
  [[nodiscard]] constexpr std::uint32_t channel_index() const {
    return value_ & 0x00FFFFFFU;
  }

  /// Build the n-th single-source destination address (n < 2^24).
  static constexpr Address single_source(std::uint32_t index) {
    return Address{0xE8000000U | (index & 0x00FFFFFFU)};
  }

  friend constexpr auto operator<=>(Address, Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// Number of channels each host interface can source (2^24, paper §2).
inline constexpr std::uint64_t kChannelsPerHost = 1ULL << 24;

/// Size of the whole class D space (2^28 usable group addresses,
/// paper §1 problem four: "just 256 million multicast addresses").
inline constexpr std::uint64_t kClassDAddresses = 1ULL << 28;

/// Well-known destination for link-local ECMP control traffic
/// (paper §3.2: "all multicast ECMP datagrams are sent to a well-known
/// ECMP address"). We use an address in the link-local control block.
inline constexpr Address kEcmpAllRouters{224, 0, 0, 105};

}  // namespace express::ip

template <>
struct std::hash<express::ip::Address> {
  std::size_t operator()(const express::ip::Address& a) const noexcept {
    // splitmix-style avalanche of the 32-bit value.
    std::uint64_t x = a.value();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
