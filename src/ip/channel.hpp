// The EXPRESS channel identifier (S, E).
//
// A channel is a datagram delivery service identified by the pair of the
// sender's source address S and a single-source class D destination E
// (paper §2). Two channels (S, E) and (S', E) are unrelated despite the
// shared destination — the pair, not the address, is the routing key.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "ip/address.hpp"

namespace express::ip {

struct ChannelId {
  Address source;  ///< S — the only host allowed to send.
  Address dest;    ///< E — destination in the single-source 232/8 block.

  /// A channel is well-formed when S is unicast and E is in the
  /// single-source range.
  [[nodiscard]] constexpr bool valid() const {
    return source.is_unicast() && dest.is_single_source();
  }

  [[nodiscard]] std::string to_string() const {
    return "(" + source.to_string() + ", " + dest.to_string() + ")";
  }

  /// Bijective 64-bit packing | source 32b | dest 32b | — the FIB probe
  /// key, also used as a trace-record operand to identify the channel.
  [[nodiscard]] constexpr std::uint64_t packed() const {
    return (std::uint64_t{source.value()} << 32) | std::uint64_t{dest.value()};
  }

  friend constexpr auto operator<=>(const ChannelId&, const ChannelId&) = default;
};

/// Channel authentication key K(S,E) (paper §2.1 / §3.5). The paper
/// treats keys as opaque tokens distributed out of band; we model them
/// as 64-bit values compared exactly. Zero means "no key".
using ChannelKey = std::uint64_t;
inline constexpr ChannelKey kNoKey = 0;

}  // namespace express::ip

template <>
struct std::hash<express::ip::ChannelId> {
  std::size_t operator()(const express::ip::ChannelId& c) const noexcept {
    // Mix the 64-bit (S,E) pair; this is the hashed channel lookup the
    // paper's event-cost measurements include (§5.3).
    std::uint64_t x = (static_cast<std::uint64_t>(c.source.value()) << 32) |
                      c.dest.value();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};
