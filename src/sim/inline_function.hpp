// A move-only callable with inline storage, for the scheduler hot path.
//
// std::function heap-allocates any closure past its ~16-byte SBO — and
// the scheduler's closures routinely carry a Packet plus a node id, so
// under std::function every scheduled link transmission paid a heap
// round trip (twice, with the priority_queue's copy-on-pop). This type
// gives the event loop a fixed 120-byte inline buffer: every closure
// the simulator schedules is stored in place inside the slab's event
// record and never touches the allocator.
//
// Oversized or throwing-move callables still work — they fall back to a
// heap box — but each boxed construction bumps a global counter so the
// allocation-free property of the dispatch path is testable (see
// test_sim_alloc.cpp) instead of aspirational.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace express::sim {

class InlineFunction {
 public:
  /// Inline closure capacity. Sized for the largest hot-path closure:
  /// a Packet (two shared payload/inner pointers, addressing, tags)
  /// plus a node id, interface index, and the captured `this`.
  static constexpr std::size_t kInlineBytes = 120;

  InlineFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      // lint: allow-new (boxed fallback for oversized callables; counted)
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kBoxedOps<Fn>;
      boxed_constructions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroy the held callable (releasing captured resources now).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// Number of closures (process-wide) that overflowed the inline
  /// buffer and were boxed on the heap. The zero-allocation test pins
  /// this at zero across the simulator's steady-state dispatch loop.
  [[nodiscard]] static std::uint64_t boxed_count() {
    return boxed_constructions_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kBoxedOps = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) {
        Fn** from = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*from);
        *from = nullptr;
      },
      // lint: allow-new (destroys the boxed-fallback allocation above)
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  static inline std::atomic<std::uint64_t> boxed_constructions_{0};

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace express::sim
