// Simulation time primitives.
//
// All simulator components share one monotonically non-decreasing clock
// owned by sim::Scheduler. Time is an absolute nanosecond count since the
// start of the simulation; Duration is a nanosecond span. Both are thin
// std::chrono aliases so the usual chrono arithmetic and literals apply.
#pragma once

#include <chrono>
#include <cstdint>

namespace express::sim {

/// A span of simulated time.
using Duration = std::chrono::nanoseconds;

/// An absolute point on the simulation clock (nanoseconds since t=0).
using Time = std::chrono::nanoseconds;

/// Convenience constructors mirroring the paper's units (it reasons in
/// seconds for counting and in RTTs for protocol timers).
constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
constexpr Duration microseconds(std::int64_t n) { return Duration{n * 1'000}; }
constexpr Duration milliseconds(std::int64_t n) { return Duration{n * 1'000'000}; }
constexpr Duration seconds(std::int64_t n) { return Duration{n * 1'000'000'000}; }

/// Fractional seconds, used by the proactive-counting error curves where
/// tau and dt are real-valued.
constexpr Duration seconds_f(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e9)};
}

/// Convert a Duration (or Time) back to fractional seconds.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e9;
}

/// Sentinel meaning "never" for optional deadlines.
constexpr Time kNever = Time::max();

}  // namespace express::sim
