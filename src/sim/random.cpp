#include "sim/random.hpp"

#include <cmath>

namespace express::sim {

double Rng::exponential(double mean) {
  // Invert the CDF; clamp u away from 0 to avoid log(0).
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace express::sim
