// Discrete-event scheduler.
//
// The Scheduler is the heart of the substrate: every link transmission,
// protocol timer, and workload event is a closure queued at an absolute
// simulated time. Events at equal times fire in insertion order, which
// keeps runs bit-for-bit deterministic for a given seed and scenario.
//
// The implementation is built for zero heap traffic in steady state:
//
//   * Event records live in a slab (std::vector) and are recycled
//     through a free list — once the simulation reaches its high-water
//     mark of concurrent events, scheduling allocates nothing.
//   * Closures are stored in place inside the record (InlineFunction's
//     120-byte buffer), not on the heap, and are *moved* out at
//     dispatch — never copied, unlike the former priority_queue design
//     that copied the whole entry (closure included) on every pop.
//   * The ready queue is an index-based 4-ary min-heap over slab slots,
//     keyed by (time, seq) so the FIFO tie-break among equal-time
//     events — and with it determinism — is preserved exactly.
//   * EventHandle is a (slot, generation) pair: cancellation and
//     pending() checks are O(1) with no per-event shared_ptr<bool>.
//     Cancellation stays lazy (the slot is reclaimed when its heap
//     entry surfaces), and the generation counter makes handles to
//     recycled slots inert rather than dangerous.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace express::sim {

class Scheduler;

/// Counters exposed for tests, benches, and operators.
struct SchedulerStats {
  std::uint64_t scheduled = 0;   ///< total schedule_at/after calls
  std::uint64_t executed = 0;    ///< events fired (cancelled excluded)
  std::uint64_t cancelled = 0;   ///< events cancelled before firing
  /// Events scheduled in the past and clamped to now(). Scheduling in
  /// the past is a logic error in the caller; the clamp keeps the clock
  /// monotonic, and this counter makes the silent repair visible.
  std::uint64_t clamped_past_events = 0;
  std::uint64_t pending = 0;       ///< queued now (incl. cancelled slots)
  std::uint64_t peak_pending = 0;  ///< high-water mark of `pending`
  std::uint64_t slab_slots = 0;    ///< event records ever allocated
  std::uint64_t free_slots = 0;    ///< records currently recycled/idle
};

/// Handle to a scheduled event; allows O(1) logical cancellation.
/// Cancellation is lazy: the event stays queued but is skipped when its
/// heap entry is popped. Handles are small value types; copies refer to
/// the same event, and a handle to a fired/cancelled (and possibly
/// recycled) event is inert: pending() is false, cancel() a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly
  /// and safe on a default-constructed (empty) handle.
  void cancel();

  /// True if this handle refers to an event that can still fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* scheduler, std::uint32_t slot, std::uint32_t generation)
      : scheduler_(scheduler), slot_(slot), generation_(generation) {}

  Scheduler* scheduler_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Time-ordered event queue with a monotonically advancing clock.
class Scheduler {
 public:
  using Action = InlineFunction;
  using Handle = EventHandle;

  /// Current simulated time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of events still queued (including lazily-cancelled ones).
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }

  /// Time of the earliest event that can still fire, or nullopt when
  /// the queue holds nothing live — the quiescence probe. Unlike
  /// pending_events() this sees through lazy cancellation: dead heap
  /// tops are reclaimed on the way (each slot has exactly one heap
  /// entry, so popping a dead top is exactly the cleanup run_until
  /// would do).
  [[nodiscard]] std::optional<Time> next_event_time();

  /// Total events executed since construction (cancelled events excluded).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Events scheduled in the past and clamped to now() (see
  /// SchedulerStats::clamped_past_events).
  [[nodiscard]] std::uint64_t clamped_past_events() const { return clamped_; }

  [[nodiscard]] SchedulerStats stats() const {
    SchedulerStats s;
    s.scheduled = scheduled_;
    s.executed = executed_;
    s.cancelled = cancelled_;
    s.clamped_past_events = clamped_;
    s.pending = heap_.size();
    s.peak_pending = peak_pending_;
    s.slab_slots = slab_.size();
    s.free_slots = free_.size();
    return s;
  }

  /// Schedule `action` to run at absolute time `when`. Scheduling in the
  /// past is a logic error; it is clamped to `now()` (and counted) so
  /// the event still fires, deterministically after already-queued
  /// events at the same instant.
  EventHandle schedule_at(Time when, Action action);

  /// Schedule `action` to run `delay` after the current time.
  EventHandle schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Run events until the queue empties or `deadline` is passed. The
  /// clock is left at the later of its current value and the deadline
  /// (when a deadline is given), or at the last executed event time.
  /// Returns the number of events executed by this call.
  std::uint64_t run_until(Time deadline);

  /// Run until the queue is empty.
  std::uint64_t run() { return run_until(kNever); }

  /// Run at most one event; returns false if the queue had none eligible.
  bool step();

 private:
  friend class EventHandle;

  struct EventRecord {
    Time when{};
    std::uint32_t generation = 0;
    bool live = false;  // scheduled and not yet fired or cancelled
    Action action;
  };

  /// Heap entries carry their own (when, seq) sort key so sift
  /// operations stay inside the contiguous heap array and never chase
  /// the (much larger) slab records. seq and slot share one word: seq
  /// values are unique and monotonically increasing, so ordering by the
  /// packed word is exactly the FIFO tie-break among equal times (the
  /// slot bits sit below all seq bits and never decide a comparison).
  struct HeapEntry {
    static constexpr unsigned kSlotBits = 24;  // 16M concurrent events
    Time when{};
    std::uint64_t seq_slot = 0;

    HeapEntry() = default;
    HeapEntry(Time w, std::uint64_t seq, std::uint32_t slot)
        : when(w), seq_slot((seq << kSlotBits) | slot) {}
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & ((1U << kSlotBits) - 1));
    }
  };

  [[nodiscard]] bool handle_pending(std::uint32_t slot,
                                    std::uint32_t generation) const {
    return slot < slab_.size() && slab_[slot].generation == generation &&
           slab_[slot].live;
  }

  void handle_cancel(std::uint32_t slot, std::uint32_t generation) {
    if (!handle_pending(slot, generation)) return;
    EventRecord& rec = slab_[slot];
    rec.live = false;
    ++rec.generation;      // invalidate outstanding handles
    rec.action.reset();    // release captured resources immediately
    ++cancelled_;
    // The slot itself is reclaimed when its heap entry surfaces.
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) { free_.push_back(slot); }

  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq_slot < b.seq_slot;
  }

  void heap_push(HeapEntry entry);
  void heap_pop_top();

  std::vector<EventRecord> slab_;
  std::vector<std::uint32_t> free_;  // recycled slab slots
  std::vector<HeapEntry> heap_;      // 4-ary min-heap keyed by (when, seq)
  Time now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t clamped_ = 0;
  std::uint64_t peak_pending_ = 0;
};

inline void EventHandle::cancel() {
  if (scheduler_ != nullptr) scheduler_->handle_cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return scheduler_ != nullptr && scheduler_->handle_pending(slot_, generation_);
}

}  // namespace express::sim
