// Discrete-event scheduler.
//
// The Scheduler is the heart of the substrate: every link transmission,
// protocol timer, and workload event is a closure queued at an absolute
// simulated time. Events at equal times fire in insertion order, which
// keeps runs bit-for-bit deterministic for a given seed and scenario.
//
// The implementation is built for zero heap traffic in steady state:
//
//   * Event records live in a slab (std::vector) and are recycled
//     through a free list — once the simulation reaches its high-water
//     mark of concurrent events, scheduling allocates nothing.
//   * Closures are stored in place inside the record (InlineFunction's
//     120-byte buffer), not on the heap, and are *moved* out at
//     dispatch — never copied, unlike the former priority_queue design
//     that copied the whole entry (closure included) on every pop.
//   * The ready queue is an index-based 4-ary min-heap over slab slots,
//     keyed by (time, seq) so the FIFO tie-break among equal-time
//     events — and with it determinism — is preserved exactly.
//   * Far-future events (protocol refresh timers, counting timeouts,
//     pre-scheduled workload churn) never touch the heap up front: a
//     hierarchical timer wheel parks them in coarse slots (4 levels x
//     256 slots, level-0 slot ~268 ms, level-3 horizon ~570 years) as
//     intrusive lists threaded through the slab records. A slot
//     cascades into finer levels — and ultimately the heap — only when
//     its start time comes due, so the heap stays small and hot. The
//     level-0 slot is deliberately coarse: events closer than one slot
//     go straight to the heap (which handles near events at full
//     speed anyway), so every cascade drains a whole chain and the
//     slot-scan cost amortises over the chain, never per event.
//     Cascaded events keep their original sequence numbers, so the
//     (time, seq) dispatch order is bit-for-bit identical to a
//     heap-only build (Scheduler(false) disables the wheel to check
//     exactly that).
//   * EventHandle is a (slot, generation) pair: cancellation and
//     pending() checks are O(1) with no per-event shared_ptr<bool>.
//     Cancellation stays lazy (the slot is reclaimed when its heap
//     entry surfaces or its wheel slot cascades), and the generation
//     counter makes handles to recycled slots inert rather than
//     dangerous.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace express::sim {

class Scheduler;

/// Counters exposed for tests, benches, and operators.
struct SchedulerStats {
  std::uint64_t scheduled = 0;   ///< total schedule_at/after calls
  std::uint64_t executed = 0;    ///< events fired (cancelled excluded)
  std::uint64_t cancelled = 0;   ///< events cancelled before firing
  /// Events scheduled in the past and clamped to now(). Scheduling in
  /// the past is a logic error in the caller; the clamp keeps the clock
  /// monotonic, and this counter makes the silent repair visible.
  std::uint64_t clamped_past_events = 0;
  std::uint64_t pending = 0;       ///< queued now (incl. cancelled slots)
  std::uint64_t peak_pending = 0;  ///< high-water mark of `pending`
  std::uint64_t parked = 0;        ///< events currently in wheel slots
  std::uint64_t slab_slots = 0;    ///< event records ever allocated
  std::uint64_t free_slots = 0;    ///< records currently recycled/idle
};

/// Handle to a scheduled event; allows O(1) logical cancellation.
/// Cancellation is lazy: the event stays queued but is skipped when its
/// heap entry is popped. Handles are small value types; copies refer to
/// the same event, and a handle to a fired/cancelled (and possibly
/// recycled) event is inert: pending() is false, cancel() a no-op. The
/// guarantee extends to the event currently dispatching: an action that
/// cancels its own handle (directly or through a helper that flushes
/// "pending" state) touches nothing, no matter how many times the slot
/// has been recycled meanwhile.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly
  /// and safe on a default-constructed (empty) handle.
  void cancel();

  /// True if this handle refers to an event that can still fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* scheduler, std::uint32_t slot, std::uint32_t generation)
      : scheduler_(scheduler), slot_(slot), generation_(generation) {}

  Scheduler* scheduler_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Time-ordered event queue with a monotonically advancing clock.
class Scheduler {
 public:
  using Action = InlineFunction;
  using Handle = EventHandle;

  Scheduler();

  /// `use_timer_wheel = false` forces every event through the heap —
  /// same dispatch order bit for bit, used by the determinism tests and
  /// the timer-wheel A/B bench. `scope` binds the scheduler's counters
  /// (and kTimerFire trace records) to an observability plane; default
  /// resolves to the process-global plane under an anonymous entity.
  explicit Scheduler(bool use_timer_wheel, obs::Scope scope = {});

  /// Current simulated time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of events still queued (including lazily-cancelled ones),
  /// whether heaped or parked in wheel slots.
  [[nodiscard]] std::size_t pending_events() const {
    return heap_.size() + parked_;
  }

  /// Time of the earliest event that can still fire, or nullopt when
  /// the queue holds nothing live — the quiescence probe. Unlike
  /// pending_events() this sees through lazy cancellation: dead heap
  /// tops are reclaimed on the way (each heaped slot has exactly one
  /// heap entry, so popping a dead top is exactly the cleanup run_until
  /// would do), and due wheel slots cascade first so a parked event is
  /// never misreported as later than it is.
  [[nodiscard]] std::optional<Time> next_event_time();

  /// Total events executed since construction (cancelled events excluded).
  [[nodiscard]] std::uint64_t executed_events() const {
    return executed_.value();
  }

  /// Events scheduled in the past and clamped to now() (see
  /// SchedulerStats::clamped_past_events).
  [[nodiscard]] std::uint64_t clamped_past_events() const {
    return clamped_.value();
  }

  /// Thin view over the registry slots (monotone counters) plus the
  /// instantaneous queue/slab occupancy, which is read live.
  [[nodiscard]] SchedulerStats stats() const {
    SchedulerStats s;
    s.scheduled = scheduled_.value();
    s.executed = executed_.value();
    s.cancelled = cancelled_.value();
    s.clamped_past_events = clamped_.value();
    s.pending = heap_.size() + parked_;
    s.peak_pending = peak_pending_.value();
    s.parked = parked_;
    s.slab_slots = slab_.size();
    s.free_slots = free_.size();
    return s;
  }

  /// Schedule `action` to run at absolute time `when`. Scheduling in the
  /// past is a logic error; it is clamped to `now()` (and counted) so
  /// the event still fires, deterministically after already-queued
  /// events at the same instant.
  EventHandle schedule_at(Time when, Action action);

  /// Schedule `action` to run `delay` after the current time.
  EventHandle schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Run events until the queue empties or `deadline` is passed. The
  /// clock is left at the later of its current value and the deadline
  /// (when a deadline is given), or at the last executed event time.
  /// Returns the number of events executed by this call.
  std::uint64_t run_until(Time deadline);

  /// Run until the queue is empty.
  std::uint64_t run() { return run_until(kNever); }

  /// Run at most one event; returns false if the queue had none eligible.
  bool step();

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = ~std::uint32_t{0};

  // Wheel geometry: 4 levels x 256 slots. A level-l slot spans
  // 2^(28 + 8l) ns, so level 0 resolves ~268 ms and the level-3
  // horizon is ~570 simulated years. Events within one level-0 slot
  // go straight to the heap: a finer level would cascade chains of
  // one, paying the slot-scan per event instead of per chain (the
  // protocol's sub-268 ms timers are exactly what the heap is fast
  // at — it is the standing 30 s refresh population that must stay
  // out of it).
  static constexpr unsigned kWheelLevels = 4;
  static constexpr unsigned kWheelSlotBits = 8;
  static constexpr std::uint32_t kWheelSlots = 1u << kWheelSlotBits;
  static constexpr unsigned kWheelShift0 = 28;

  struct EventRecord {
    Time when{};
    std::uint64_t seq = 0;          // insertion order, fixed for life
    std::uint32_t generation = 0;
    std::uint32_t next = kNilSlot;  // intrusive wheel-slot chain
    bool live = false;  // scheduled and not yet fired or cancelled
    Action action;
  };

  /// Heap entries carry their own (when, seq) sort key so sift
  /// operations stay inside the contiguous heap array and never chase
  /// the (much larger) slab records. seq and slot share one word: seq
  /// values are unique and monotonically increasing, so ordering by the
  /// packed word is exactly the FIFO tie-break among equal times (the
  /// slot bits sit below all seq bits and never decide a comparison).
  struct HeapEntry {
    static constexpr unsigned kSlotBits = 24;  // 16M concurrent events
    Time when{};
    std::uint64_t seq_slot = 0;

    HeapEntry() = default;
    HeapEntry(Time w, std::uint64_t seq, std::uint32_t slot)
        : when(w), seq_slot((seq << kSlotBits) | slot) {}
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & ((1U << kSlotBits) - 1));
    }
  };

  [[nodiscard]] bool handle_pending(std::uint32_t slot,
                                    std::uint32_t generation) const {
    // The event currently being dispatched is never pending, and
    // cancelling it is a guaranteed no-op. Without this guard a handler
    // that holds its own handle (ecmp::Batcher's timer flush) could —
    // after enough slot recycling to wrap the 32-bit generation — cancel
    // an unrelated event that reused its slot while the action runs.
    if (slot == firing_slot_ && generation == firing_generation_) return false;
    return slot < slab_.size() && slab_[slot].generation == generation &&
           slab_[slot].live;
  }

  void handle_cancel(std::uint32_t slot, std::uint32_t generation) {
    if (!handle_pending(slot, generation)) return;
    EventRecord& rec = slab_[slot];
    rec.live = false;
    ++rec.generation;      // invalidate outstanding handles
    rec.action.reset();    // release captured resources immediately
    cancelled_.inc();
    // The slot itself is reclaimed when its heap entry surfaces or its
    // wheel slot cascades.
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) { free_.push_back(slot); }

  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq_slot < b.seq_slot;
  }

  void heap_push(HeapEntry entry);
  void heap_pop_top();

  /// Route a scheduled record to a wheel slot or the heap. Levels at or
  /// above `max_level` are not considered — cascading a level-l slot
  /// re-enqueues with max_level = l, so records only ever move to finer
  /// levels (or the heap) and cascades terminate.
  void enqueue_record(std::uint32_t slot, unsigned max_level);
  void park_record(std::uint32_t slot, unsigned level, unsigned shift);

  /// Flush the wheel slot that realises next_wheel_time_.
  void cascade_earliest();
  void recompute_next_wheel_time();
  [[nodiscard]] int first_occupied_offset(unsigned level,
                                          std::uint32_t cur) const;

  /// Reclaim dead heap tops and cascade every wheel slot that starts at
  /// or before the earliest heaped event, so heap_[0] is the true front
  /// of the queue. Returns false when nothing live remains.
  bool refresh_front();

  std::vector<EventRecord> slab_;
  std::vector<std::uint32_t> free_;  // recycled slab slots
  std::vector<HeapEntry> heap_;      // 4-ary min-heap keyed by (when, seq)

  bool wheel_enabled_ = true;
  std::uint64_t parked_ = 0;         // events currently in wheel slots
  Time next_wheel_time_ = kNever;    // earliest occupied slot start
  std::array<std::array<std::uint32_t, kWheelSlots>, kWheelLevels> wheel_{};
  std::array<std::array<std::uint64_t, kWheelSlots / 64>, kWheelLevels>
      wheel_bits_{};

  Time now_{0};
  std::uint64_t next_seq_ = 0;
  /// Identity of the event whose action is running right now (kNilSlot
  /// when none): its stale handle must stay inert for the whole dispatch
  /// even if the slot is recycled and its generation wraps. Saved and
  /// restored around each dispatch so re-entrant step()/run_until()
  /// calls from inside an action keep the guard of their caller.
  std::uint32_t firing_slot_ = kNilSlot;
  std::uint32_t firing_generation_ = 0;
  /// Monotone counters live in the observability registry; the handles
  /// below are one-pointer-indirect slots registered contiguously at
  /// construction (see DESIGN.md §11).
  obs::Scope scope_;
  obs::Counter scheduled_;
  obs::Counter executed_;
  obs::Counter cancelled_;
  obs::Counter clamped_;
  obs::Counter peak_pending_;
};

inline void EventHandle::cancel() {
  if (scheduler_ != nullptr) scheduler_->handle_cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return scheduler_ != nullptr && scheduler_->handle_pending(slot_, generation_);
}

}  // namespace express::sim
