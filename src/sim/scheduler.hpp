// Discrete-event scheduler.
//
// The Scheduler is the heart of the substrate: every link transmission,
// protocol timer, and workload event is a closure queued at an absolute
// simulated time. Events at equal times fire in insertion order, which
// keeps runs bit-for-bit deterministic for a given seed and scenario.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace express::sim {

/// Handle to a scheduled event; allows O(1) logical cancellation.
/// Cancellation is lazy: the event stays queued but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly
  /// and safe on a default-constructed (empty) handle.
  void cancel() {
    if (alive_) *alive_ = false;
  }

  /// True if this handle refers to an event that can still fire.
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Time-ordered event queue with a monotonically advancing clock.
class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of events still queued (including lazily-cancelled ones).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed since construction (cancelled events excluded).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Schedule `action` to run at absolute time `when`. Scheduling in the
  /// past is a logic error; it is clamped to `now()` so the event still
  /// fires (and fires deterministically after already-queued events at
  /// the same instant).
  EventHandle schedule_at(Time when, Action action);

  /// Schedule `action` to run `delay` after the current time.
  EventHandle schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Run events until the queue empties or `deadline` is passed. The
  /// clock is left at the later of its current value and the deadline
  /// (when a deadline is given), or at the last executed event time.
  /// Returns the number of events executed by this call.
  std::uint64_t run_until(Time deadline);

  /// Run until the queue is empty.
  std::uint64_t run() { return run_until(kNever); }

  /// Run at most one event; returns false if the queue had none eligible.
  bool step();

 private:
  struct Entry {
    Time when{};
    std::uint64_t seq = 0;  // tie-break: FIFO among equal times
    std::shared_ptr<bool> alive;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace express::sim
