// Conservative deterministic parallel engine for sharded simulation.
//
// The engine partitions the simulated world into K shards, each owning
// one Scheduler, and advances them in lockstep *windows*: every shard
// may safely run all events strictly before `t_min + L`, where t_min is
// the earliest pending event across shards and L (the lookahead) is the
// minimum latency of any cross-shard edge — a message sent during a
// window can only arrive at another shard at or after the window's end,
// so no shard ever needs an input it has not yet been handed. Between
// windows the engine runs a single-threaded barrier: the client drains
// its cross-shard queues in one deterministic sorted order and folds
// per-shard counter lanes into the real registry slots.
//
// Determinism contract (gated by scripts/obs_golden.sh --shards K and
// tests/test_parallel.cpp; argument in DESIGN.md §13):
//   * For a fixed partition, outputs are byte-identical regardless of
//     the worker-thread count — shards never share mutable state inside
//     a window, so thread interleaving cannot be observed.
//   * K=1 is a pure passthrough: with no cross-shard edges the lookahead
//     is infinite, the loop degenerates to one run_until(T), and every
//     export is byte-identical to the plain single-threaded run.
//   * Across K, semantic outputs (wire counters, registry snapshots,
//     the canonical trace export) are byte-identical; only scheduler
//     mechanics (event counts, kTimerFire sequence operands) differ.
//
// Layering: sim knows nothing of net. The engine drives an abstract
// ShardClient; net::Network implements it (shard ownership of links and
// nodes, outboxes, counter lanes live there).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace express::sim {

/// Engine-level counters, filled by the engine (windows/barriers) and
/// the client's exchange hook (cross-shard traffic, tie collisions).
struct ParallelStats {
  std::uint64_t windows = 0;   ///< lookahead windows executed
  std::uint64_t barriers = 0;  ///< exchange() calls (window + probe)
  std::uint64_t cross_shard_events = 0;  ///< deliveries handed over queues
  /// Barrier-inserted arrivals that collided in simulated time with
  /// another cross-shard arrival bound for the same shard. Multicast
  /// fan-out over equal-delay links makes these routine; their relative
  /// order is decided by the deterministic merge key (queue order, then
  /// per-queue FIFO), not by global scheduling chronology. Diagnostic
  /// only — the canonical A/B gate (obs_golden.sh --shards) is the
  /// ground truth that tie ordering never changes semantic outputs.
  std::uint64_t tie_collisions = 0;
};

/// What the engine needs from the sharded world. All hooks are invoked
/// single-threaded from the barrier except begin_shard/end_shard, which
/// bracket one shard's window on whichever thread executes it.
class ShardClient {
 public:
  virtual ~ShardClient() = default;

  [[nodiscard]] virtual std::uint32_t shard_count() const = 0;
  [[nodiscard]] virtual Scheduler& shard_scheduler(std::uint32_t shard) = 0;

  /// Minimum cross-shard edge latency; Duration::max() when no edge
  /// crosses shards (then every window runs to the caller's deadline).
  [[nodiscard]] virtual Duration lookahead() const = 0;

  /// Install/remove the executing thread's shard context (scheduler
  /// routing, counter lanes, trace redirect).
  virtual void begin_shard(std::uint32_t shard) = 0;
  virtual void end_shard(std::uint32_t shard) = 0;

  /// Barrier: drain every cross-shard queue into the destination
  /// schedulers in one deterministic order and fold counter lanes.
  virtual void exchange(ParallelStats& stats) = 0;
};

/// Drives a ShardClient with conservative lookahead windows. Worker
/// threads are optional (set_workers); results are identical with any
/// count, so workers == 1 (inline, no threads) is the reference mode.
class ParallelEngine {
 public:
  explicit ParallelEngine(ShardClient& client, unsigned workers = 1);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  /// Worker-thread count for window execution (clamped to >= 1). With 1
  /// the engine runs shards inline on the calling thread.
  void set_workers(unsigned workers);
  [[nodiscard]] unsigned workers() const;

  /// Run all events at or before `deadline` across every shard, then
  /// advance every shard clock to the deadline (mirroring
  /// Scheduler::run_until semantics). Safe to call repeatedly.
  void run_until(Time deadline);
  void run() { run_until(kNever); }

  /// Earliest event that can still fire on any shard (cross-shard
  /// queues are drained first so nothing in flight is missed), or
  /// nullopt at quiescence.
  [[nodiscard]] std::optional<Time> next_event_time();

  /// The engine-wide clock: shard clocks agree between run_until calls.
  [[nodiscard]] Time now();

  [[nodiscard]] const ParallelStats& stats() const { return stats_; }

 private:
  struct Pool;  // worker threads + generation barrier

  /// Run every shard's scheduler to `stop` (inclusive), in parallel
  /// when workers > 1 and more than one shard has work.
  void run_window(Time stop);
  void run_one(std::uint32_t shard, Time stop);

  ShardClient& client_;
  unsigned workers_ = 1;
  ParallelStats stats_;
  std::unique_ptr<Pool> pool_;
};

}  // namespace express::sim
