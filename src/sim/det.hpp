// Deterministic iteration over hash containers.
//
// The simulator's value as a reproduction substrate rests on bit-for-bit
// deterministic replay (DESIGN.md §7): any loop whose body emits packets,
// mutates protocol state, or appends to an ordered result must not run in
// std::unordered_* iteration order, which is a function of the hash seed,
// the library implementation, and the container's insertion/rehash
// history. These helpers snapshot a hash container's elements and yield
// them in ascending key order, turning an order-sensitive loop into a
// deterministic one at the cost of one O(n log n) sort — acceptable off
// the per-packet fast path, where all such effectful sweeps live.
//
// scripts/lint.sh (check: unordered-effectful-loop) flags direct
// effectful iteration; the fix is either one of these helpers or a
// `// lint: order-independent (reason)` annotation proving commutativity.
#pragma once

#include <algorithm>
#include <vector>

namespace express::det {

/// Pointers to a map's (key, value) pairs, sorted by ascending key.
/// The pointers stay valid across inserts/erases of *other* elements
/// (node-based containers), so the usual erase-current patterns work:
///
///   for (auto* kv : det::sorted_items(channels_)) {
///     auto& [channel, state] = *kv;  // deterministic order
///     ...
///   }
template <typename Map>
[[nodiscard]] std::vector<typename Map::value_type*> sorted_items(Map& map) {
  std::vector<typename Map::value_type*> items;
  items.reserve(map.size());
  for (auto& kv : map) items.push_back(&kv);  // lint: order-independent (sorted below)
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return items;
}

template <typename Map>
[[nodiscard]] std::vector<const typename Map::value_type*> sorted_items(
    const Map& map) {
  std::vector<const typename Map::value_type*> items;
  items.reserve(map.size());
  for (const auto& kv : map) items.push_back(&kv);  // lint: order-independent (sorted below)
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return items;
}

/// A set's (or map's) keys, copied and sorted ascending. Use when the
/// loop erases arbitrary elements of the container it iterates.
template <typename Container>
[[nodiscard]] std::vector<typename Container::key_type> sorted_keys(
    const Container& container) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(container.size());
  for (const auto& element : container) {  // lint: order-independent (sorted below)
    if constexpr (requires { element.first; }) {
      keys.push_back(element.first);
    } else {
      keys.push_back(element);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace express::det
