#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace express::sim {

// ---------------------------------------------------------------------
// Worker pool: K window jobs per generation, claimed via an atomic
// cursor. Shards share no mutable state inside a window (the client
// guarantees it), so job order across threads cannot affect results —
// the pool only has to be a correct barrier, not a fair one.
// ---------------------------------------------------------------------

struct ParallelEngine::Pool {
  explicit Pool(ParallelEngine& engine, unsigned threads) : engine(engine) {
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::unique_lock<std::mutex> lock(m);
      shutdown = true;
    }
    cv_work.notify_all();
    for (std::thread& t : workers) t.join();
  }

  /// Run shards [0, jobs) to `stop`; returns when all are done.
  void run_generation(std::uint32_t jobs, Time stop) {
    {
      std::unique_lock<std::mutex> lock(m);
      job_count = jobs;
      job_stop = stop;
      done = 0;
      next.store(0, std::memory_order_relaxed);
      ++generation;
    }
    cv_work.notify_all();
    std::unique_lock<std::mutex> lock(m);
    cv_done.wait(lock, [this] { return done == job_count; });
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(m);
        cv_work.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      std::uint32_t finished = 0;
      for (;;) {
        const std::uint32_t shard =
            next.fetch_add(1, std::memory_order_relaxed);
        if (shard >= job_count) break;
        engine.run_one(shard, job_stop);
        ++finished;
      }
      if (finished != 0) {
        std::unique_lock<std::mutex> lock(m);
        done += finished;
        if (done == job_count) cv_done.notify_one();
      }
    }
  }

  ParallelEngine& engine;
  std::vector<std::thread> workers;
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t generation = 0;
  std::uint32_t job_count = 0;
  std::uint32_t done = 0;
  Time job_stop{};
  std::atomic<std::uint32_t> next{0};
  bool shutdown = false;
};

ParallelEngine::ParallelEngine(ShardClient& client, unsigned workers)
    : client_(client) {
  set_workers(workers);
}

ParallelEngine::~ParallelEngine() = default;

void ParallelEngine::set_workers(unsigned workers) {
  workers_ = workers == 0 ? 1 : workers;
  pool_.reset();  // rebuilt lazily at the next parallel window
}

unsigned ParallelEngine::workers() const { return workers_; }

void ParallelEngine::run_one(std::uint32_t shard, Time stop) {
  client_.begin_shard(shard);
  client_.shard_scheduler(shard).run_until(stop);
  client_.end_shard(shard);
}

void ParallelEngine::run_window(Time stop) {
  const std::uint32_t shards = client_.shard_count();
  if (workers_ <= 1 || shards <= 1) {
    for (std::uint32_t s = 0; s < shards; ++s) run_one(s, stop);
    return;
  }
  if (!pool_) {
    pool_ = std::make_unique<Pool>(*this, std::min<unsigned>(workers_, shards));
  }
  pool_->run_generation(shards, stop);
}

void ParallelEngine::run_until(Time deadline) {
  const std::uint32_t shards = client_.shard_count();
  for (;;) {
    client_.exchange(stats_);
    ++stats_.barriers;
    Time t_min = kNever;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const auto t = client_.shard_scheduler(s).next_event_time();
      if (t && *t < t_min) t_min = *t;
    }
    if (t_min == kNever || t_min > deadline) break;

    // Window [t_min, t_min + L): safe because any message sent inside
    // it arrives >= send + L >= t_min + L. `stop` is the inclusive
    // form, clamped to the caller's deadline.
    Time stop = deadline;
    const Duration lookahead = client_.lookahead();
    if (lookahead != Duration::max() && t_min <= kNever - lookahead) {
      const Time window_stop = t_min + lookahead - Duration{1};
      if (window_stop < stop) stop = window_stop;
    }
    run_window(stop);
    ++stats_.windows;
  }
  if (deadline != kNever) {
    // Mirror Scheduler::run_until: leave every shard clock at the
    // deadline so now() is well-defined and uniform between calls.
    run_window(deadline);
  }
  client_.exchange(stats_);  // flush lanes so post-run reads are fresh
  ++stats_.barriers;
}

std::optional<Time> ParallelEngine::next_event_time() {
  // Barrier-time sends (fault heal notifications, direct host calls
  // between run_until calls) may have queued cross-shard deliveries:
  // drain them first so the probe sees everything in flight.
  client_.exchange(stats_);
  ++stats_.barriers;
  Time t_min = kNever;
  const std::uint32_t shards = client_.shard_count();
  for (std::uint32_t s = 0; s < shards; ++s) {
    const auto t = client_.shard_scheduler(s).next_event_time();
    if (t && *t < t_min) t_min = *t;
  }
  if (t_min == kNever) return std::nullopt;
  return t_min;
}

Time ParallelEngine::now() { return client_.shard_scheduler(0).now(); }

}  // namespace express::sim
