#include "sim/scheduler.hpp"

namespace express::sim {

EventHandle Scheduler::schedule_at(Time when, Action action) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{when, next_seq_++, alive, std::move(action)});
  return EventHandle{std::move(alive)};
}

std::uint64_t Scheduler::run_until(Time deadline) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // Copy out before pop: the action may schedule new events.
    Entry e = queue_.top();
    queue_.pop();
    if (!*e.alive) continue;
    *e.alive = false;  // fired events no longer report pending()
    now_ = e.when;
    e.action();
    ++executed_;
    ++ran;
  }
  if (deadline != kNever && now_ < deadline) now_ = deadline;
  return ran;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (!*e.alive) continue;
    *e.alive = false;  // fired events no longer report pending()
    now_ = e.when;
    e.action();
    ++executed_;
    return true;
  }
  return false;
}

}  // namespace express::sim
