#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace express::sim {

namespace {
constexpr std::size_t kArity = 4;  // 4-ary heap: shallower, cache-friendlier
}  // namespace

Scheduler::Scheduler() : Scheduler(true) {}

Scheduler::Scheduler(bool use_timer_wheel, obs::Scope scope)
    : scope_(scope.resolved()) {
  for (auto& level : wheel_) level.fill(kNilSlot);
  wheel_enabled_ = use_timer_wheel;
  scheduled_ = scope_.counter("sim.sched.scheduled");
  executed_ = scope_.counter("sim.sched.executed");
  cancelled_ = scope_.counter("sim.sched.cancelled");
  clamped_ = scope_.counter("sim.sched.clamped_past");
  peak_pending_ = scope_.gauge("sim.sched.peak_pending");
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  // HeapEntry packs the slot into 24 bits: 16M *concurrent* events.
  assert(slab_.size() < (1U << HeapEntry::kSlotBits));
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Scheduler::heap_push(HeapEntry entry) {
  std::size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Scheduler::heap_pop_top() {
  const HeapEntry displaced = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t end_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], displaced)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = displaced;
}

void Scheduler::enqueue_record(std::uint32_t slot, unsigned max_level) {
  EventRecord& rec = slab_[slot];
  if (wheel_enabled_) {
    const auto when = static_cast<std::uint64_t>(rec.when.count());
    const auto now = static_cast<std::uint64_t>(now_.count());
    for (unsigned level = 0; level < max_level; ++level) {
      const unsigned shift = kWheelShift0 + kWheelSlotBits * level;
      const std::uint64_t delta = (when >> shift) - (now >> shift);
      if (delta == 0) break;               // lands in the current slot
      if (delta >= kWheelSlots) continue;  // beyond this level's horizon
      park_record(slot, level, shift);
      return;
    }
  }
  heap_push(HeapEntry{rec.when, rec.seq, slot});
}

void Scheduler::park_record(std::uint32_t slot, unsigned level,
                            unsigned shift) {
  EventRecord& rec = slab_[slot];
  const std::uint64_t abs = static_cast<std::uint64_t>(rec.when.count()) >> shift;
  const std::uint32_t idx = static_cast<std::uint32_t>(abs) & (kWheelSlots - 1);
  rec.next = wheel_[level][idx];
  wheel_[level][idx] = slot;
  wheel_bits_[level][idx >> 6] |= std::uint64_t{1} << (idx & 63);
  ++parked_;
  const Time start{static_cast<std::int64_t>(abs << shift)};
  if (start < next_wheel_time_) next_wheel_time_ = start;
}

int Scheduler::first_occupied_offset(unsigned level, std::uint32_t cur) const {
  // Smallest offset p in [1, kWheelSlots-1] with slot (cur+p) mod 256
  // occupied, or -1. The slot holding `cur` itself is never occupied:
  // every parked slot starts strictly after now (enqueue parks only at
  // delta >= 1, and refresh_front cascades a slot before the clock can
  // enter it).
  const auto& bits = wheel_bits_[level];
  std::uint32_t idx = (cur + 1) & (kWheelSlots - 1);
  std::uint32_t remaining = kWheelSlots - 1;
  while (remaining > 0) {
    const std::uint32_t bit = idx & 63;
    const std::uint64_t word = bits[idx >> 6] >> bit;
    const auto span = std::min<std::uint32_t>(64 - bit, remaining);
    if (word != 0) {
      const auto z = static_cast<std::uint32_t>(std::countr_zero(word));
      if (z < span) {
        const std::uint32_t found = (idx + z) & (kWheelSlots - 1);
        return static_cast<int>((found - cur) & (kWheelSlots - 1));
      }
    }
    idx = (idx + span) & (kWheelSlots - 1);
    remaining -= span;
  }
  return -1;
}

void Scheduler::recompute_next_wheel_time() {
  next_wheel_time_ = kNever;
  if (parked_ == 0) return;
  const auto now = static_cast<std::uint64_t>(now_.count());
  for (unsigned level = 0; level < kWheelLevels; ++level) {
    const unsigned shift = kWheelShift0 + kWheelSlotBits * level;
    const std::uint64_t cur = now >> shift;
    const int offset = first_occupied_offset(
        level, static_cast<std::uint32_t>(cur) & (kWheelSlots - 1));
    if (offset < 0) continue;
    const Time start{static_cast<std::int64_t>(
        (cur + static_cast<std::uint32_t>(offset)) << shift)};
    if (start < next_wheel_time_) next_wheel_time_ = start;
  }
}

void Scheduler::cascade_earliest() {
  // Locate the slot that realises next_wheel_time_ (recomputing the
  // level/index here keeps park_record's min-tracking to one Time).
  const auto now = static_cast<std::uint64_t>(now_.count());
  unsigned best_level = kWheelLevels;
  std::uint64_t best_abs = 0;
  Time best = kNever;
  for (unsigned level = 0; level < kWheelLevels; ++level) {
    const unsigned shift = kWheelShift0 + kWheelSlotBits * level;
    const std::uint64_t cur = now >> shift;
    const int offset = first_occupied_offset(
        level, static_cast<std::uint32_t>(cur) & (kWheelSlots - 1));
    if (offset < 0) continue;
    const std::uint64_t abs = cur + static_cast<std::uint32_t>(offset);
    const Time start{static_cast<std::int64_t>(abs << shift)};
    if (start < best) {
      best = start;
      best_level = level;
      best_abs = abs;
    }
  }
  if (best_level == kWheelLevels) {
    next_wheel_time_ = kNever;
    return;
  }

  // Unlink the chain, then re-enqueue: live records go to the heap or a
  // strictly finer level (so cascades terminate); cancelled ones are
  // reclaimed here — they never had a heap entry.
  const std::uint32_t idx =
      static_cast<std::uint32_t>(best_abs) & (kWheelSlots - 1);
  std::uint32_t slot = wheel_[best_level][idx];
  wheel_[best_level][idx] = kNilSlot;
  wheel_bits_[best_level][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  while (slot != kNilSlot) {
    const std::uint32_t next = slab_[slot].next;
    slab_[slot].next = kNilSlot;
    --parked_;
    if (slab_[slot].live) {
      enqueue_record(slot, best_level);
    } else {
      release_slot(slot);
    }
    slot = next;
  }
  recompute_next_wheel_time();
}

bool Scheduler::refresh_front() {
  for (;;) {
    if (!heap_.empty()) {
      const std::uint32_t slot = heap_[0].slot();
      if (!slab_[slot].live) {  // lazily-cancelled: reclaim and move on
        heap_pop_top();
        release_slot(slot);
        continue;
      }
    }
    // Cascade while a wheel slot starts at or before the heap front: a
    // parked event may share the front's timestamp with a smaller seq,
    // so the comparison must be non-strict.
    if (parked_ != 0 && (heap_.empty() || heap_[0].when >= next_wheel_time_)) {
      cascade_earliest();
      continue;
    }
    return !heap_.empty();
  }
}

EventHandle Scheduler::schedule_at(Time when, Action action) {
  if (when < now_) {
    when = now_;
    clamped_.inc();
  }
  const std::uint32_t slot = acquire_slot();
  EventRecord& rec = slab_[slot];
  rec.when = when;
  rec.seq = next_seq_++;
  rec.live = true;
  rec.action = std::move(action);
  enqueue_record(slot, kWheelLevels);
  scheduled_.inc();
  peak_pending_.set_max(heap_.size() + parked_);
  return EventHandle{this, slot, rec.generation};
}

std::optional<Time> Scheduler::next_event_time() {
  if (!refresh_front()) return std::nullopt;
  return heap_[0].when;
}

std::uint64_t Scheduler::run_until(Time deadline) {
  std::uint64_t ran = 0;
  while (refresh_front()) {
    if (heap_[0].when > deadline) break;
    const std::uint32_t slot = heap_[0].slot();
    heap_pop_top();
    EventRecord& rec = slab_[slot];
    now_ = rec.when;
    rec.live = false;
    const std::uint32_t fired_generation = rec.generation;
    ++rec.generation;  // fired events no longer report pending()
    const std::uint64_t seq = rec.seq;
    // Move the closure out and recycle the slot *before* invoking: a
    // handler that reschedules (the common timer pattern) reuses this
    // very record, so steady state touches the allocator not at all.
    Action action = std::move(rec.action);
    release_slot(slot);
    // Pin the firing identity so the action's own handle stays inert
    // even across generation wraparound (see handle_pending).
    const std::uint32_t prev_slot = firing_slot_;
    const std::uint32_t prev_generation = firing_generation_;
    firing_slot_ = slot;
    firing_generation_ = fired_generation;
    scope_.emit(now_, obs::TraceType::kTimerFire, seq);
    action();
    firing_slot_ = prev_slot;
    firing_generation_ = prev_generation;
    executed_.inc();
    ++ran;
  }
  if (deadline != kNever && now_ < deadline) now_ = deadline;
  return ran;
}

bool Scheduler::step() {
  if (!refresh_front()) return false;
  const std::uint32_t slot = heap_[0].slot();
  heap_pop_top();
  EventRecord& rec = slab_[slot];
  now_ = rec.when;
  rec.live = false;
  const std::uint32_t fired_generation = rec.generation;
  ++rec.generation;
  const std::uint64_t seq = rec.seq;
  Action action = std::move(rec.action);
  release_slot(slot);
  const std::uint32_t prev_slot = firing_slot_;
  const std::uint32_t prev_generation = firing_generation_;
  firing_slot_ = slot;
  firing_generation_ = fired_generation;
  scope_.emit(now_, obs::TraceType::kTimerFire, seq);
  action();
  firing_slot_ = prev_slot;
  firing_generation_ = prev_generation;
  executed_.inc();
  return true;
}

}  // namespace express::sim
