#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace express::sim {

namespace {
constexpr std::size_t kArity = 4;  // 4-ary heap: shallower, cache-friendlier
}  // namespace

std::uint32_t Scheduler::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  // HeapEntry packs the slot into 24 bits: 16M *concurrent* events.
  assert(slab_.size() < (1U << HeapEntry::kSlotBits));
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Scheduler::heap_push(HeapEntry entry) {
  std::size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Scheduler::heap_pop_top() {
  const HeapEntry displaced = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t end_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], displaced)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = displaced;
}

EventHandle Scheduler::schedule_at(Time when, Action action) {
  if (when < now_) {
    when = now_;
    ++clamped_;
  }
  const std::uint32_t slot = acquire_slot();
  EventRecord& rec = slab_[slot];
  rec.when = when;
  rec.live = true;
  rec.action = std::move(action);
  heap_push(HeapEntry{when, next_seq_++, slot});
  ++scheduled_;
  peak_pending_ = std::max<std::uint64_t>(peak_pending_, heap_.size());
  return EventHandle{this, slot, rec.generation};
}

std::optional<Time> Scheduler::next_event_time() {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_[0].slot();
    if (slab_[slot].live) return heap_[0].when;
    heap_pop_top();
    release_slot(slot);
  }
  return std::nullopt;
}

std::uint64_t Scheduler::run_until(Time deadline) {
  std::uint64_t ran = 0;
  while (!heap_.empty()) {
    if (heap_[0].when > deadline) break;
    const std::uint32_t slot = heap_[0].slot();
    heap_pop_top();
    EventRecord& rec = slab_[slot];
    if (!rec.live) {  // lazily-cancelled: reclaim and move on
      release_slot(slot);
      continue;
    }
    now_ = rec.when;
    rec.live = false;
    ++rec.generation;  // fired events no longer report pending()
    // Move the closure out and recycle the slot *before* invoking: a
    // handler that reschedules (the common timer pattern) reuses this
    // very record, so steady state touches the allocator not at all.
    Action action = std::move(rec.action);
    release_slot(slot);
    action();
    ++executed_;
    ++ran;
  }
  if (deadline != kNever && now_ < deadline) now_ = deadline;
  return ran;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_[0].slot();
    heap_pop_top();
    EventRecord& rec = slab_[slot];
    if (!rec.live) {
      release_slot(slot);
      continue;
    }
    now_ = rec.when;
    rec.live = false;
    ++rec.generation;
    Action action = std::move(rec.action);
    release_slot(slot);
    action();
    ++executed_;
    return true;
  }
  return false;
}

}  // namespace express::sim
