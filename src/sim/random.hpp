// Deterministic pseudo-random source for workloads and jitter.
//
// Simulation runs must be reproducible from (seed, scenario), so all
// randomness flows through this PCG32 generator rather than std::random
// engines whose distributions vary across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

namespace express::sim {

/// PCG-XSH-RR 64/32. Small, fast, statistically solid, and fully
/// specified here so results are identical across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    state_ = 0;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + increment_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint32_t below(std::uint32_t bound) {
    // Lemire-style rejection keeps the distribution exactly uniform.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_u64() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponential variate with the given mean (> 0); used for churn
  /// inter-arrival times.
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_ = 0;
  static constexpr std::uint64_t increment_ = 1442695040888963407ULL;
};

}  // namespace express::sim
