// Unified observability plane: metrics registry + deterministic event
// trace.
//
// Every layer of the stack used to carry its own ad-hoc `*Stats` POD
// and hand-plumb fields into benches one at a time. This module gives
// the counters one home:
//
//   * Registry — named counters/gauges/histograms, each owned by an
//     Entity (router/host/link/...). Modules register their slots once
//     at construction and hold Counter/Histogram *handles* (pointers
//     into registry-owned storage), so a fast-path increment is one
//     indirect add. The legacy `XStats stats()` accessors survive as
//     thin views assembled from the slots — call sites compile
//     unchanged. snapshot_json() serializes the whole registry in a
//     canonical form (entries sorted by (name, entity), integers only,
//     sim-time stamped) that is byte-identical across identically
//     seeded runs.
//   * Trace — a fixed-capacity ring of POD records (packet
//     sent/delivered/dropped, subscription change, count-round
//     start/end, timer fire, fault inject/heal) stamped with *sim*
//     time only (wall clocks are banned in src/ — detlint enforces
//     this here too). Disabled by default: emit() is a two-load branch
//     until enable() arms it. Export to JSONL, filter by entity/type;
//     scripts/tracediff.py pinpoints the first divergent record
//     between two captures.
//   * Plane / Scope — a Plane is one Registry + one Trace. Each
//     net::Network owns a private Plane so concurrently-live networks
//     (A/B benches, multi-testbed tests) never share counters; modules
//     constructed outside a Network resolve to a process-global Plane
//     under a fresh anonymous entity. A Scope is the (plane, entity)
//     pair a module binds once via resolved() and registers through.
//
// Determinism contract: nothing in this module reads wall clocks,
// addresses, or iteration order of unordered containers. The registry
// index is a std::map ordered by (name, entity); anonymous entity ids
// come from a process-global monotonic counter, so in-process replays
// of the same construction sequence serialize identically.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace express::obs {

// ---------------------------------------------------------------------------
// Entities
// ---------------------------------------------------------------------------

enum class EntityKind : std::uint8_t {
  kNone = 0,  ///< unresolved scope (binds to kAnon on resolve())
  kNet,       ///< the network fabric itself
  kRouter,
  kHost,
  kLan,    ///< layer-2 hub nodes
  kLink,   ///< one (bidirectional) topology link
  kRelay,  ///< session-relay middleware on a host
  kAnon,   ///< standalone module outside any Network (unit tests, benches)
};

[[nodiscard]] const char* entity_kind_name(EntityKind kind);

/// Who a metric or trace record belongs to. Ordered (kind, id) so the
/// registry index — and with it every snapshot — has one canonical order.
struct Entity {
  EntityKind kind = EntityKind::kNone;
  std::uint32_t id = 0;

  static Entity network() { return {EntityKind::kNet, 0}; }
  static Entity router(std::uint32_t id) { return {EntityKind::kRouter, id}; }
  static Entity host(std::uint32_t id) { return {EntityKind::kHost, id}; }
  static Entity lan(std::uint32_t id) { return {EntityKind::kLan, id}; }
  static Entity link(std::uint32_t id) { return {EntityKind::kLink, id}; }
  static Entity relay(std::uint32_t id) { return {EntityKind::kRelay, id}; }
  /// A fresh process-unique anonymous entity (monotonic id).
  static Entity anon();

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Entity&, const Entity&) = default;
};

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Handle to one uint64 registry slot. Values, not references: copying
/// a Counter copies the slot pointer. A default-constructed handle
/// targets a shared sink slot so unregistered modules stay safe (writes
/// vanish); registered handles point into Registry-owned storage, which
/// is address-stable for the registry's lifetime (deque-backed).
class Counter {
 public:
  Counter() = default;

  /// Bind a handle to caller-owned storage instead of a registry slot.
  /// Used by the parallel engine's per-shard counter lanes: each shard
  /// bumps private plain-uint64 storage during a window, and the owner
  /// folds the lane values into the real registry slots at barriers.
  [[nodiscard]] static Counter external(std::uint64_t* slot) {
    return Counter(slot);
  }

  void inc() const { ++*slot_; }
  void add(std::uint64_t n) const { *slot_ += n; }
  /// Gauge-style write (last value wins).
  void set(std::uint64_t v) const { *slot_ = v; }
  /// High-water-mark write.
  void set_max(std::uint64_t v) const {
    if (v > *slot_) *slot_ = v;
  }
  [[nodiscard]] std::uint64_t value() const { return *slot_; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}

  static std::uint64_t sink_;
  std::uint64_t* slot_ = &sink_;
};

inline constexpr std::size_t kHistogramBuckets = 32;

/// Power-of-two histogram payload: bucket i counts observed values v
/// with bit_width(v) == i, i.e. [2^(i-1), 2^i) for i >= 1 and {0} for
/// i == 0 (values wider than 31 bits land in the last bucket).
struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

class Histogram {
 public:
  Histogram() = default;

  void observe(std::uint64_t v) const;
  [[nodiscard]] const HistogramData& data() const { return *data_; }

 private:
  friend class Registry;
  explicit Histogram(HistogramData* data) : data_(data) {}

  static HistogramData sink_;
  HistogramData* data_ = &sink_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register (or re-register, which zeroes the slot — a fresh module
  /// instance starts from zero) a metric and return its handle.
  Counter counter(std::string_view name, Entity entity);
  Counter gauge(std::string_view name, Entity entity);
  Histogram histogram(std::string_view name, Entity entity);

  /// Scalar value of (name, entity), or 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view name,
                                    Entity entity) const;
  /// Sum of a scalar metric over every entity carrying it.
  [[nodiscard]] std::uint64_t sum(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Canonical JSON snapshot: one object per metric, entries sorted by
  /// (name, entity), object keys sorted alphabetically, integers only,
  /// stamped with the simulated time. Byte-identical across identically
  /// seeded runs.
  [[nodiscard]] std::string snapshot_json(sim::Time at) const;

 private:
  struct Key {
    std::string name;
    Entity entity;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t index = 0;  ///< into slots_ or hists_ per kind
  };

  std::uint64_t* scalar_slot(std::string_view name, Entity entity,
                             MetricKind kind);

  std::map<Key, Entry> entries_;
  /// Slot storage. Deques: growth never moves existing slots, so the
  /// raw pointers inside handed-out Counter/Histogram handles stay
  /// valid for the registry's lifetime.
  std::deque<std::uint64_t> slots_;
  std::deque<HistogramData> hists_;
};

// ---------------------------------------------------------------------------
// Event trace
// ---------------------------------------------------------------------------

enum class TraceType : std::uint8_t {
  kPacketSent = 0,
  kPacketDelivered,
  kPacketDropped,
  kSubscriptionChange,
  kCountRoundStart,
  kCountRoundEnd,
  kTimerFire,
  kFaultInject,
  kFaultHeal,
  // Lossy-link impairments and the reliable repair path. Appended only:
  // the numeric values above are pinned by existing traces.
  kPacketLost,       ///< impairment model dropped a copy on a link
  kPacketReordered,  ///< impairment model delayed a copy (reorder window)
  kRepairRoundStart, ///< reliable::Publisher NACK-count round begins
  kRepairRoundEnd,   ///< round done: a = round, b = outstanding NACKs
  kRetransmit,       ///< one block retransmitted (b: 1 = subcast)
};

[[nodiscard]] const char* trace_type_name(TraceType type);

/// Packet-drop reason codes carried in TraceRecord::a for
/// kPacketDropped records.
enum class DropReason : std::uint8_t {
  kLinkDown = 1,
  kNoRoute = 2,
  kTtlExpired = 3,
  kNoFibEntry = 4,
  kRpfFail = 5,
  kPolicy = 6,  ///< application-level policy (relay authorization, floor)
};

/// One POD trace record. a/b/c are type-specific operands (packet
/// bytes, channel words, sequence numbers, ...) — all derived from
/// simulation state, never from the environment.
struct TraceRecord {
  std::int64_t time_ns = 0;  ///< sim::Time, nanoseconds since start
  std::uint64_t index = 0;   ///< global emission index (never resets)
  Entity entity{};
  TraceType type = TraceType::kPacketSent;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

struct TraceFilter {
  std::optional<Entity> entity;
  std::optional<TraceType> type;

  [[nodiscard]] bool matches(const TraceRecord& rec) const {
    return (!entity || rec.entity == *entity) && (!type || rec.type == *type);
  }
};

/// Fixed-capacity ring of TraceRecords. Disabled (zero-capacity) by
/// default: emit() costs one load and one branch until enable() arms
/// it. When the ring is full the oldest records are overwritten; the
/// global `index` keeps growing, so exports reveal truncation.
class Trace {
 public:
  void enable(std::size_t capacity);
  void disable();
  [[nodiscard]] bool enabled() const { return capacity_ != 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// True when the ring has overwritten records (emitted more than it
  /// retains). Merged/canonical exports require complete traces.
  [[nodiscard]] bool wrapped() const { return emitted_ > ring_.size(); }

  /// Redirect every emit() that targets `from` on the *calling thread*
  /// into `to` instead. The parallel engine installs a per-shard
  /// redirect around each window so shard workers write private rings
  /// (no shared ring, no torn records) while all emit call sites keep
  /// addressing the network's main trace. Pass nullptrs to clear.
  static void set_thread_redirect(const Trace* from, Trace* to);

  void emit(sim::Time t, Entity entity, TraceType type, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint64_t c = 0) {
    Trace* sink = (tl_redirect_from_ == this) ? tl_redirect_to_ : this;
    if (sink->capacity_ == 0) return;
    sink->record(t, entity, type, a, b, c);
  }

  /// Total records ever emitted == the index the *next* record gets.
  [[nodiscard]] std::uint64_t next_index() const { return emitted_; }
  /// Records currently retained in the ring.
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Retained record `i`, oldest first.
  [[nodiscard]] const TraceRecord& at(std::size_t i) const;

  [[nodiscard]] std::size_t count(const TraceFilter& filter = {}) const;
  /// One canonical JSON object per line (keys sorted), oldest first.
  [[nodiscard]] std::string to_jsonl(const TraceFilter& filter = {}) const;

  void clear();

 private:
  void record(sim::Time t, Entity entity, TraceType type, std::uint64_t a,
              std::uint64_t b, std::uint64_t c);

  /// lint: shared-state-guarded (thread_local: each worker owns its pair)
  static thread_local const Trace* tl_redirect_from_;
  static thread_local Trace* tl_redirect_to_;

  std::vector<TraceRecord> ring_;
  std::size_t capacity_ = 0;
  std::uint64_t emitted_ = 0;
};

// ---------------------------------------------------------------------------
// Multi-lane trace exports (parallel engine)
// ---------------------------------------------------------------------------

/// Merge several complete trace lanes into one deterministic JSONL
/// export: records ordered by (time, lane position in `lanes`, original
/// per-lane index), each stamped with its lane. The export is a pure
/// function of lane contents, so two runs of the same sharded scenario
/// (any worker-thread count) compare byte-for-byte. Throws
/// std::logic_error if any lane wrapped (records were lost).
[[nodiscard]] std::string merged_trace_jsonl(
    const std::vector<const Trace*>& lanes);

/// Canonical content export for cross-partition comparison: the
/// multiset of records from all lanes, minus kTimerFire (its operand is
/// the scheduler-local sequence number — pure execution mechanics that
/// legitimately differ between shard layouts), sorted by record content
/// (time, entity, type, a, b, c) and renumbered. Two runs are
/// canonically equal iff they emitted the same multiset of semantic
/// records. Throws std::logic_error if any lane wrapped.
[[nodiscard]] std::string canonical_trace_jsonl(
    const std::vector<const Trace*>& lanes);

// ---------------------------------------------------------------------------
// Plane & scope
// ---------------------------------------------------------------------------

/// One observability domain: a registry and a trace that age together.
/// net::Network owns one; standalone modules share the global() plane.
struct Plane {
  Registry registry;
  Trace trace;

  /// Process-global fallback plane for modules constructed outside any
  /// Network (unit tests, micro-benches).
  static Plane& global();
};

/// The (plane, entity) pair a module observes through. Default (null
/// plane) means "unbound": resolved() binds it to the global plane
/// under a fresh anonymous entity. Modules should store the *resolved*
/// scope once and register every metric through it, so all their slots
/// share one entity.
struct Scope {
  Plane* plane = nullptr;
  Entity entity{};

  [[nodiscard]] Scope resolved() const {
    if (plane != nullptr && entity.kind != EntityKind::kNone) return *this;
    Scope s;
    s.plane = plane != nullptr ? plane : &Plane::global();
    s.entity = entity.kind != EntityKind::kNone ? entity : Entity::anon();
    return s;
  }

  [[nodiscard]] Counter counter(std::string_view name) const {
    Scope s = resolved();
    return s.plane->registry.counter(name, s.entity);
  }
  [[nodiscard]] Counter gauge(std::string_view name) const {
    Scope s = resolved();
    return s.plane->registry.gauge(name, s.entity);
  }
  [[nodiscard]] Histogram histogram(std::string_view name) const {
    Scope s = resolved();
    return s.plane->registry.histogram(name, s.entity);
  }

  [[nodiscard]] bool tracing() const {
    return plane != nullptr && plane->trace.enabled();
  }
  void emit(sim::Time t, TraceType type, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint64_t c = 0) const {
    if (plane != nullptr) plane->trace.emit(t, entity, type, a, b, c);
  }
};

}  // namespace express::obs
