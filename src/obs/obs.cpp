#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace express::obs {

std::uint64_t Counter::sink_ = 0;
HistogramData Histogram::sink_{};

thread_local const Trace* Trace::tl_redirect_from_ = nullptr;
thread_local Trace* Trace::tl_redirect_to_ = nullptr;

void Trace::set_thread_redirect(const Trace* from, Trace* to) {
  tl_redirect_from_ = from;
  tl_redirect_to_ = to;
}

const char* entity_kind_name(EntityKind kind) {
  switch (kind) {
    case EntityKind::kNone:
      return "none";
    case EntityKind::kNet:
      return "net";
    case EntityKind::kRouter:
      return "router";
    case EntityKind::kHost:
      return "host";
    case EntityKind::kLan:
      return "lan";
    case EntityKind::kLink:
      return "link";
    case EntityKind::kRelay:
      return "relay";
    case EntityKind::kAnon:
      return "anon";
  }
  return "unknown";
}

Entity Entity::anon() {
  // Monotonic process-global id: deterministic for a fixed construction
  // sequence, and never a wall-clock or address-derived value.
  static std::uint32_t next = 0;
  return {EntityKind::kAnon, next++};
}

std::string Entity::to_string() const {
  if (kind == EntityKind::kNet || kind == EntityKind::kNone) {
    return entity_kind_name(kind);
  }
  return std::string(entity_kind_name(kind)) + ":" + std::to_string(id);
}

void Histogram::observe(std::uint64_t v) const {
  HistogramData& d = *data_;
  const unsigned bucket =
      std::min<unsigned>(std::bit_width(v), kHistogramBuckets - 1);
  ++d.buckets[bucket];
  ++d.count;
  d.sum += v;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::uint64_t* Registry::scalar_slot(std::string_view name, Entity entity,
                                     MetricKind kind) {
  Key key{std::string(name), entity};
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.kind != MetricKind::kHistogram) {
    it->second.kind = kind;
    std::uint64_t& slot = slots_[it->second.index];
    slot = 0;  // re-registration: a fresh module instance starts clean
    return &slot;
  }
  slots_.push_back(0);
  const auto index = static_cast<std::uint32_t>(slots_.size() - 1);
  entries_[std::move(key)] = Entry{kind, index};
  return &slots_[index];
}

Counter Registry::counter(std::string_view name, Entity entity) {
  return Counter(scalar_slot(name, entity, MetricKind::kCounter));
}

Counter Registry::gauge(std::string_view name, Entity entity) {
  return Counter(scalar_slot(name, entity, MetricKind::kGauge));
}

Histogram Registry::histogram(std::string_view name, Entity entity) {
  Key key{std::string(name), entity};
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.kind == MetricKind::kHistogram) {
    HistogramData& data = hists_[it->second.index];
    data = HistogramData{};
    return Histogram(&data);
  }
  hists_.emplace_back();
  const auto index = static_cast<std::uint32_t>(hists_.size() - 1);
  entries_[std::move(key)] = Entry{MetricKind::kHistogram, index};
  return Histogram(&hists_[index]);
}

std::uint64_t Registry::value(std::string_view name, Entity entity) const {
  auto it = entries_.find(Key{std::string(name), entity});
  if (it == entries_.end() || it->second.kind == MetricKind::kHistogram) {
    return 0;
  }
  return slots_[it->second.index];
}

std::uint64_t Registry::sum(std::string_view name) const {
  std::uint64_t total = 0;
  // Keys sort by name first, so the matching entries form one run.
  for (auto it = entries_.lower_bound(Key{std::string(name), Entity{}});
       it != entries_.end() && it->first.name == name; ++it) {
    if (it->second.kind != MetricKind::kHistogram) {
      total += slots_[it->second.index];
    }
  }
  return total;
}

namespace {

void append_uint(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string Registry::snapshot_json(sim::Time at) const {
  // Canonical form: entries in std::map order (name, then entity kind,
  // then entity id); keys inside each object alphabetical; integers
  // only. Every byte below is a pure function of registry contents and
  // the passed sim time.
  std::string out = "{\n\"metrics\": [";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    out += first ? "\n" : ",\n";
    first = false;
    if (entry.kind == MetricKind::kHistogram) {
      const HistogramData& d = hists_[entry.index];
      out += "{\"buckets\":[";
      for (std::size_t i = 0; i < d.buckets.size(); ++i) {
        if (i != 0) out += ',';
        append_uint(out, d.buckets[i]);
      }
      out += "],\"count\":";
      append_uint(out, d.count);
      out += ",\"entity\":\"" + key.entity.to_string() + "\"";
      out += ",\"kind\":\"histogram\",\"name\":\"" + key.name + "\",\"sum\":";
      append_uint(out, d.sum);
      out += "}";
    } else {
      out += "{\"entity\":\"" + key.entity.to_string() + "\",\"kind\":\"";
      out += metric_kind_name(entry.kind);
      out += "\",\"name\":\"" + key.name + "\",\"value\":";
      append_uint(out, slots_[entry.index]);
      out += "}";
    }
  }
  out += "\n],\n\"sim_time_ns\": ";
  out += std::to_string(at.count());
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

const char* trace_type_name(TraceType type) {
  switch (type) {
    case TraceType::kPacketSent:
      return "packet_sent";
    case TraceType::kPacketDelivered:
      return "packet_delivered";
    case TraceType::kPacketDropped:
      return "packet_dropped";
    case TraceType::kSubscriptionChange:
      return "subscription_change";
    case TraceType::kCountRoundStart:
      return "count_round_start";
    case TraceType::kCountRoundEnd:
      return "count_round_end";
    case TraceType::kTimerFire:
      return "timer_fire";
    case TraceType::kFaultInject:
      return "fault_inject";
    case TraceType::kFaultHeal:
      return "fault_heal";
    case TraceType::kPacketLost:
      return "packet_lost";
    case TraceType::kPacketReordered:
      return "packet_reordered";
    case TraceType::kRepairRoundStart:
      return "repair_round_start";
    case TraceType::kRepairRoundEnd:
      return "repair_round_end";
    case TraceType::kRetransmit:
      return "retransmit";
  }
  return "unknown";
}

void Trace::enable(std::size_t capacity) {
  clear();
  capacity_ = capacity;
  ring_.reserve(std::min<std::size_t>(capacity, 1u << 16));
}

void Trace::disable() {
  capacity_ = 0;
  ring_.clear();
  ring_.shrink_to_fit();
  emitted_ = 0;
}

void Trace::clear() {
  ring_.clear();
  emitted_ = 0;
}

void Trace::record(sim::Time t, Entity entity, TraceType type, std::uint64_t a,
                   std::uint64_t b, std::uint64_t c) {
  TraceRecord rec;
  rec.time_ns = t.count();
  rec.index = emitted_++;
  rec.entity = entity;
  rec.type = type;
  rec.a = a;
  rec.b = b;
  rec.c = c;
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[static_cast<std::size_t>(rec.index % capacity_)] = rec;
  }
}

const TraceRecord& Trace::at(std::size_t i) const {
  if (emitted_ <= capacity_) return ring_[i];
  // Ring full: slot of the oldest retained record is emitted_ % capacity_.
  return ring_[static_cast<std::size_t>((emitted_ + i) % capacity_)];
}

std::size_t Trace::count(const TraceFilter& filter) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (filter.matches(at(i))) ++n;
  }
  return n;
}

namespace {

/// One record in Trace::to_jsonl's exact canonical form; `lane` >= 0
/// appends a trailing "lane" key (merged multi-ring exports only).
void append_record(std::string& out, const TraceRecord& rec, int lane = -1) {
  out += "{\"a\":";
  append_uint(out, rec.a);
  out += ",\"b\":";
  append_uint(out, rec.b);
  out += ",\"c\":";
  append_uint(out, rec.c);
  out += ",\"entity\":\"" + rec.entity.to_string() + "\",\"index\":";
  append_uint(out, rec.index);
  if (lane >= 0) {
    out += ",\"lane\":";
    append_uint(out, static_cast<std::uint64_t>(lane));
  }
  out += ",\"time_ns\":";
  out += std::to_string(rec.time_ns);
  out += ",\"type\":\"";
  out += trace_type_name(rec.type);
  out += "\"}\n";
}

/// Gather (lane, record) pairs from complete lanes, oldest first per
/// lane. Throws if a lane lost records to ring wraparound: a merged or
/// canonical export of a truncated trace would silently compare equal
/// to the wrong thing.
std::vector<std::pair<int, TraceRecord>> collect_lanes(
    const std::vector<const Trace*>& lanes) {
  std::vector<std::pair<int, TraceRecord>> all;
  std::size_t total = 0;
  for (const Trace* lane : lanes) total += lane->size();
  all.reserve(total);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    const Trace& lane = *lanes[l];
    if (lane.wrapped()) {
      throw std::logic_error(
          "obs: trace lane wrapped; raise the capture capacity");
    }
    for (std::size_t i = 0; i < lane.size(); ++i) {
      all.emplace_back(static_cast<int>(l), lane.at(i));
    }
  }
  return all;
}

}  // namespace

std::string Trace::to_jsonl(const TraceFilter& filter) const {
  std::string out;
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceRecord& rec = at(i);
    if (!filter.matches(rec)) continue;
    append_record(out, rec);
  }
  return out;
}

std::string merged_trace_jsonl(const std::vector<const Trace*>& lanes) {
  auto all = collect_lanes(lanes);
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& x, const auto& y) {
                     if (x.second.time_ns != y.second.time_ns) {
                       return x.second.time_ns < y.second.time_ns;
                     }
                     if (x.first != y.first) return x.first < y.first;
                     return x.second.index < y.second.index;
                   });
  std::string out;
  for (const auto& [lane, rec] : all) append_record(out, rec, lane);
  return out;
}

std::string canonical_trace_jsonl(const std::vector<const Trace*>& lanes) {
  auto all = collect_lanes(lanes);
  std::erase_if(all, [](const auto& p) {
    return p.second.type == TraceType::kTimerFire;
  });
  std::stable_sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
    const TraceRecord& a = x.second;
    const TraceRecord& b = y.second;
    if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
    if (a.entity != b.entity) return a.entity < b.entity;
    if (a.type != b.type) return a.type < b.type;
    if (a.a != b.a) return a.a < b.a;
    if (a.b != b.b) return a.b < b.b;
    return a.c < b.c;
  });
  std::string out;
  std::uint64_t index = 0;
  for (auto& [lane, rec] : all) {
    rec.index = index++;  // renumber: position in the canonical order
    append_record(out, rec);
  }
  return out;
}

Plane& Plane::global() {
  static Plane plane;
  return plane;
}

}  // namespace express::obs
