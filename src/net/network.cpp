#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace express::net {

thread_local const Network* Network::tl_owner_ = nullptr;
thread_local std::uint32_t Network::tl_shard_ = 0;

ShardContext::ShardContext(Network& network, NodeId node) {
  if (network.sh_ == nullptr) return;
  prev_owner_ = Network::tl_owner_;
  prev_shard_ = Network::tl_shard_;
  Network::tl_owner_ = &network;
  Network::tl_shard_ = network.sh_->plan.shard_of[node];
  active_ = true;
}

ShardContext::~ShardContext() {
  if (!active_) return;
  Network::tl_owner_ = prev_owner_;
  Network::tl_shard_ = prev_shard_;
}

namespace {

sim::Duration serialization_delay(std::uint32_t bytes, double bandwidth_bps) {
  if (bandwidth_bps <= 0) return sim::Duration{0};
  const double secs = static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  return sim::seconds_f(secs);
}

}  // namespace

sim::Time Network::reserve_link(NodeId from, LinkId link, std::uint32_t bytes,
                                sim::Time earliest) {
  const LinkInfo& l = topology_.link(link);
  const std::size_t direction = (l.a == from) ? 0 : 1;
  sim::Time& free_at = link_free_.at(link)[direction];
  const sim::Time start = std::max(earliest, free_at);
  const sim::Time done = start + serialization_delay(bytes, l.bandwidth_bps);
  free_at = done;
  LinkCounters& lc = link_counters_for(from, link);
  lc.packets.inc();
  lc.bytes.add(bytes);
  NetworkCounters& nc = counters_for(from);
  nc.packets_sent.inc();
  nc.bytes_sent.add(bytes);
  plane_.trace.emit(start, obs::Entity::link(link), obs::TraceType::kPacketSent,
                    from, bytes);
  return done + l.delay;  // arrival at the peer
}

void Network::set_link_impairments(LinkId link, const ImpairmentConfig& config) {
  if (impair_cfg_.empty()) {
    impair_cfg_.resize(topology_.link_count());
    impair_gilbert_bad_.resize(topology_.link_count());
  }
  impair_cfg_.at(link) = config;
  impair_gilbert_bad_.at(link) = {};
  impairments_armed_ = false;
  for (const ImpairmentConfig& c : impair_cfg_) {
    if (c.enabled()) {
      impairments_armed_ = true;
      break;
    }
  }
}

void Network::set_default_impairments(const ImpairmentConfig& config) {
  for (LinkId l = 0; l < topology_.link_count(); ++l) {
    set_link_impairments(l, config);
  }
}

void Network::seed_impairments(std::uint64_t seed) {
  impair_rng_.reseed(seed);
  impair_per_link_ = false;
  for (auto& state : impair_gilbert_bad_) state = {};
}

void Network::seed_impairments_per_link(std::uint64_t seed) {
  impair_rng_link_.clear();
  impair_rng_link_.resize(topology_.link_count());
  for (LinkId l = 0; l < topology_.link_count(); ++l) {
    // One stream per (link, direction), derived from (seed, link, dir)
    // only — a stream's draw order depends solely on that direction's
    // own traffic, never on interleaving with other links.
    impair_rng_link_[l][0].reseed(seed ^
                                  (0x9e3779b97f4a7c15ULL * (2ULL * l + 1)));
    impair_rng_link_[l][1].reseed(seed ^
                                  (0x9e3779b97f4a7c15ULL * (2ULL * l + 2)));
  }
  impair_per_link_ = true;
  for (auto& state : impair_gilbert_bad_) state = {};
}

Network::ImpairmentVerdict Network::roll_impairment(NodeId from, LinkId link,
                                                    const Packet& packet,
                                                    sim::Time trace_now) {
  const ImpairmentConfig& cfg = impair_cfg_[link];
  if (!cfg.enabled()) return ImpairmentVerdict::kDeliver;
  if (cfg.data_only) {
    const bool data =
        packet.protocol == ip::Protocol::kUdp ||
        (packet.protocol == ip::Protocol::kIpInIp && packet.inner &&
         packet.inner->protocol == ip::Protocol::kUdp);
    if (!data) return ImpairmentVerdict::kDeliver;
  }
  if (sh_ != nullptr && sh_->plan.shards > 1 && !impair_per_link_) {
    // The shared stream's draw order depends on cross-shard event
    // interleaving; only per-link streams are layout-independent.
    throw std::logic_error(
        "Network: sharded impairments require seed_impairments_per_link()");
  }
  const LinkInfo& l = topology_.link(link);
  const std::size_t dir = (l.a == from) ? 0 : 1;
  sim::Rng& rng = impair_per_link_ ? impair_rng_link_[link][dir] : impair_rng_;
  bool lost = false;
  switch (cfg.loss.kind) {
    case LossModel::Kind::kNone:
      break;
    case LossModel::Kind::kBernoulli:
      lost = rng.chance(cfg.loss.p);
      break;
    case LossModel::Kind::kGilbert: {
      std::uint8_t& bad = impair_gilbert_bad_[link][dir];
      lost = rng.chance(bad != 0 ? cfg.loss.gilbert_loss_bad
                                 : cfg.loss.gilbert_loss_good);
      const double flip =
          bad != 0 ? cfg.loss.gilbert_exit_bad : cfg.loss.gilbert_enter_bad;
      if (rng.chance(flip)) bad = bad != 0 ? 0 : 1;
      break;
    }
  }
  if (lost) {
    counters_for(from).dropped_loss.inc();
    plane_.trace.emit(trace_now, obs::Entity::link(link),
                      obs::TraceType::kPacketLost, from, packet.wire_size());
    return ImpairmentVerdict::kDrop;
  }
  if (cfg.reorder_p > 0.0 && rng.chance(cfg.reorder_p)) {
    counters_for(from).reordered.inc();
    plane_.trace.emit(trace_now, obs::Entity::link(link),
                      obs::TraceType::kPacketReordered, from,
                      packet.wire_size());
    return ImpairmentVerdict::kDelay;
  }
  return ImpairmentVerdict::kDeliver;
}

void Network::deliver_packet(NodeId to, const Packet& packet,
                             std::uint32_t iface) {
  // enabled() gate first: the entity lookup and wire_size() walk stay
  // off the per-delivery fast path while tracing is disarmed.
  if (plane_.trace.enabled()) {
    plane_.trace.emit(scheduler_for(to).now(), node_entity(to),
                      obs::TraceType::kPacketDelivered, iface,
                      packet.wire_size());
  }
  if (Node* n = node(to)) n->handle_packet(packet, iface);
}

void Network::transmit(NodeId from, LinkId link, Packet packet) {
  const LinkInfo& l = topology_.link(link);
  const sim::Time at = scheduler_for(from).now();
  if (!l.up) {
    counters_for(from).dropped_link_down.inc();
    trace_drop(obs::DropReason::kLinkDown, link, at);
    return;
  }
  const NodeId to = topology_.peer(link, from);
  sim::Time arrival = reserve_link(from, link, packet.wire_size(), at);
  if (impairments_armed_) {
    switch (roll_impairment(from, link, packet, at)) {
      case ImpairmentVerdict::kDrop:
        return;  // wire time already consumed, copy never arrives
      case ImpairmentVerdict::kDelay:
        arrival += impair_cfg_[link].reorder_window;
        break;
      case ImpairmentVerdict::kDeliver:
        break;
    }
  }
  auto iface_at_peer = topology_.interface_on(to, link);
  if (sh_ != nullptr && sh_->plan.is_cross(link)) {
    cross_enqueue(from, link,
                  CrossEntry{arrival, at, to, *iface_at_peer, 0,
                             std::move(packet)});
    return;
  }
  // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
  scheduler_for(from).schedule_at(
      arrival, [this, to, iface = *iface_at_peer, p = std::move(packet)]() {
        deliver_packet(to, p, iface);
      });
}

std::uint32_t Network::acquire_fanout_batch() {
  if (!fanout_free_.empty()) {
    const std::uint32_t id = fanout_free_.back();
    fanout_free_.pop_back();
    return id;
  }
  fanout_pool_.emplace_back();
  return static_cast<std::uint32_t>(fanout_pool_.size() - 1);
}

void Network::deliver_fanout_batch(std::uint32_t id) {
  // One local Packet shared COW-style by every delivery (the payload
  // refcount is bumped once here, not once per copy). The pool is
  // re-indexed on every step because a handler may itself replicate
  // and grow the pool — indices stay valid, references do not.
  const Packet packet = fanout_pool_[id].packet;
  for (std::size_t i = 0; i < fanout_pool_[id].targets.size(); ++i) {
    const DeliveryTarget target = fanout_pool_[id].targets[i];
    deliver_packet(target.to, packet, target.iface);
  }
  FanoutBatch& batch = fanout_pool_[id];
  batch.packet = Packet{};
  batch.targets.clear();  // keeps capacity for reuse
  fanout_free_.push_back(id);
}

bool Network::Fanout::add(std::uint32_t iface) {
  Network& net = *net_;
  const LinkId link = net.topology_.node(from_).interfaces.at(iface);
  const LinkInfo& l = net.topology_.link(link);
  const sim::Time at = net.scheduler_for(from_).now();
  if (!l.up) {
    net.counters_for(from_).dropped_link_down.inc();
    net.trace_drop(obs::DropReason::kLinkDown, link, at);
    return false;
  }
  const NodeId to = net.topology_.peer(link, from_);
  sim::Time arrival = net.reserve_link(from_, link, wire_bytes_, at);
  if (net.impairments_armed_) {
    switch (net.roll_impairment(from_, link, packet_, at)) {
      case ImpairmentVerdict::kDrop:
        return true;  // copy consumed its wire slot but is gone
      case ImpairmentVerdict::kDelay:
        arrival += net.impair_cfg_[link].reorder_window;
        break;
      case ImpairmentVerdict::kDeliver:
        break;
    }
  }
  const DeliveryTarget target{to, *net.topology_.interface_on(to, link)};
  if (net.sh_ != nullptr && net.sh_->plan.is_cross(link)) {
    net.cross_enqueue(from_, link,
                      CrossEntry{arrival, at, target.to, target.iface, 0,
                                 packet_});
    return true;
  }
  if (!net.fanout_batching_) {
    // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
    net.scheduler_for(from_).schedule_at(
        arrival, [n = net_, target, p = packet_]() {
          n->deliver_packet(target.to, p, target.iface);
        });
    return true;
  }
  if (queued_ != 0 && arrival == arrival_) {
    if (batch_ == kNoBatch) {
      batch_ = net.acquire_fanout_batch();
      FanoutBatch& b = net.fanout_pool_[batch_];
      b.packet = packet_;
      b.targets.push_back(first_);
    }
    net.fanout_pool_[batch_].targets.push_back(target);
    ++queued_;
    return true;
  }
  flush();
  arrival_ = arrival;
  first_ = target;
  queued_ = 1;
  return true;
}

void Network::Fanout::flush() {
  if (queued_ == 0) return;
  Network& net = *net_;
  if (batch_ == kNoBatch) {
    // Single copy at this arrival: same event shape as transmit().
    // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
    net.scheduler_for(from_).schedule_at(
        arrival_, [n = net_, target = first_, p = packet_]() {
          n->deliver_packet(target.to, p, target.iface);
        });
  } else {
    // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
    net.scheduler_for(from_).schedule_at(arrival_, [n = net_, id = batch_]() {
      n->deliver_fanout_batch(id);
    });
    batch_ = kNoBatch;
  }
  queued_ = 0;
}

void Network::send_on_interface(NodeId from, std::uint32_t iface, Packet packet) {
  const LinkId link = topology_.node(from).interfaces.at(iface);
  transmit(from, link, std::move(packet));
}

void Network::send_to_neighbor(NodeId from, NodeId neighbor, Packet packet) {
  auto iface = topology_.interface_to(from, neighbor);
  if (!iface) throw std::logic_error("send_to_neighbor: not adjacent");
  send_on_interface(from, *iface, std::move(packet));
}

void Network::send_unicast(NodeId from, Packet packet) {
  const sim::Time at = scheduler_for(from).now();
  auto dest = node_of(packet.dst);
  if (!dest) {
    counters_for(from).dropped_no_route.inc();
    trace_drop(obs::DropReason::kNoRoute, kInvalidLink, at);
    return;
  }
  if (from == *dest) {
    // Loopback delivery: interface index is irrelevant; use 0.
    // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
    scheduler_for(from).schedule_after(
        sim::Duration{0}, [this, to = from, p = std::move(packet)]() {
          deliver_packet(to, p, 0);
        });
    return;
  }
  unicast_walk(from, *dest, std::move(packet), at, at);
}

void Network::unicast_walk(NodeId from, NodeId dest, Packet packet,
                           sim::Time at, sim::Time trace_now) {
  // Walk the path, reserving FIFO serialization on every link in turn,
  // decrementing TTL per hop; deliver only at the destination. On a
  // sharded network the walk pauses at the first shard boundary and the
  // barrier resumes it on the far side — drop records keep the
  // origination stamp (`trace_now`) so traces match the K=1 run.
  const auto hops = routing_.path(from, dest);
  if (hops.empty()) {
    counters_for(from).dropped_no_route.inc();
    trace_drop(obs::DropReason::kNoRoute, kInvalidLink, trace_now);
    return;
  }
  const std::uint32_t size = packet.wire_size();
  std::uint8_t ttl = packet.ttl;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (ttl == 0) {
      counters_for(hops[i]).dropped_ttl.inc();
      trace_drop(obs::DropReason::kTtlExpired, kInvalidLink, trace_now);
      return;
    }
    --ttl;
    auto iface = topology_.interface_to(hops[i], hops[i + 1]);
    const LinkId link = topology_.node(hops[i]).interfaces.at(*iface);
    if (!topology_.link(link).up) {
      counters_for(hops[i]).dropped_link_down.inc();
      trace_drop(obs::DropReason::kLinkDown, link, trace_now);
      return;
    }
    at = reserve_link(hops[i], link, size, at);
    if (impairments_armed_) {
      switch (roll_impairment(hops[i], link, packet, trace_now)) {
        case ImpairmentVerdict::kDrop:
          return;  // lost mid-path; upstream links already charged
        case ImpairmentVerdict::kDelay:
          at += impair_cfg_[link].reorder_window;
          break;
        case ImpairmentVerdict::kDeliver:
          break;
      }
    }
    if (sh_ != nullptr && sh_->plan.is_cross(link)) {
      // Crossing: the sender side of this link is reserved above; the
      // rest of the walk belongs to the far shard. Deliver directly if
      // the crossing peer *is* the destination, else resume there.
      packet.ttl = ttl;
      const NodeId peer = hops[i + 1];
      if (peer == dest) {
        auto iface_at_dest = topology_.interface_to(dest, hops[i]);
        cross_enqueue(hops[i], link,
                      CrossEntry{at, trace_now, dest,
                                 iface_at_dest.value_or(0), 0,
                                 std::move(packet)});
      } else {
        cross_enqueue(hops[i], link,
                      CrossEntry{at, trace_now, peer, 0, 1,
                                 std::move(packet)});
      }
      return;
    }
  }
  packet.ttl = ttl;
  const NodeId to = dest;
  const NodeId prev = hops[hops.size() - 2];
  auto iface_at_dest = topology_.interface_to(to, prev);
  // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
  scheduler_for(to).schedule_at(
      at, [this, to, iface = iface_at_dest.value_or(0),
           p = std::move(packet)]() { deliver_packet(to, p, iface); });
}

void Network::set_link_up(LinkId link, bool up) {
  topology_.set_link_up(link, up);
  routing_.recompute();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id] == nullptr) continue;
    // Each node reacts in its own shard context, so anything it
    // schedules or sends lands on its shard. (Sharded networks only
    // flip links between run_until calls — barrier time.)
    ShardContext shard_ctx(*this, id);
    nodes_[id]->on_routing_change();
  }
}

std::uint64_t Network::total_link_bytes() const {
  return plane_.registry.sum("net.link.bytes");
}

// ---------------------------------------------------------------------
// Sharded execution (DESIGN.md §13)
// ---------------------------------------------------------------------

void Network::enable_sharding(ShardPlan plan, unsigned workers) {
  if (sh_ != nullptr) {
    throw std::logic_error("Network: sharding already enabled");
  }
  for (const auto& n : nodes_) {
    if (n != nullptr) {
      throw std::logic_error("Network: enable_sharding must precede attach()");
    }
  }
  if (plan.shard_of.size() != topology_.node_count() ||
      plan.cross_flag_.size() != topology_.link_count()) {
    throw std::logic_error("Network: shard plan does not match topology");
  }
  sh_ = std::make_unique<Sharding>();
  sh_->plan = std::move(plan);
  const ShardPlan& p = sh_->plan;
  for (std::uint32_t s = 0; s < p.shards; ++s) {
    sh_->shards.emplace_back();
    Shard& shard = sh_->shards.back();
    if (s == 0) continue;  // shard 0 reuses scheduler_ and the real slots
    shard.sched = std::make_unique<sim::Scheduler>(
        true, obs::Scope{&shard.plane, obs::Entity::network()});
    shard.counters.packets_sent = obs::Counter::external(&shard.net_lane[0]);
    shard.counters.bytes_sent = obs::Counter::external(&shard.net_lane[1]);
    shard.counters.dropped_link_down =
        obs::Counter::external(&shard.net_lane[2]);
    shard.counters.dropped_no_route =
        obs::Counter::external(&shard.net_lane[3]);
    shard.counters.dropped_ttl = obs::Counter::external(&shard.net_lane[4]);
    shard.counters.dropped_loss = obs::Counter::external(&shard.net_lane[5]);
    shard.counters.reordered = obs::Counter::external(&shard.net_lane[6]);
    shard.link_lane.resize(topology_.link_count());
    shard.links.resize(topology_.link_count());
    for (LinkId l = 0; l < topology_.link_count(); ++l) {
      shard.links[l].packets = obs::Counter::external(&shard.link_lane[l][0]);
      shard.links[l].bytes = obs::Counter::external(&shard.link_lane[l][1]);
    }
  }
  sh_->outboxes.resize(topology_.link_count() * 2);
  if (p.shards > 1) {
    // The fan-out batch pool is shared across shards; per-copy events
    // keep delivery order identical (set_fanout_batching contract).
    fanout_batching_ = false;
  }
  // The static_cast runs in member context, where the private base is
  // accessible (make_unique's internal `new` is not a member).
  sh_->engine = std::make_unique<sim::ParallelEngine>(
      static_cast<sim::ShardClient&>(*this), workers);
}

std::vector<const obs::Trace*> Network::trace_lanes() const {
  std::vector<const obs::Trace*> lanes{&plane_.trace};
  if (sh_ != nullptr) {
    for (std::uint32_t s = 1; s < sh_->plan.shards; ++s) {
      lanes.push_back(&sh_->shards[s].plane.trace);
    }
  }
  return lanes;
}

std::uint32_t Network::shard_count() const { return sh_->plan.shards; }

sim::Scheduler& Network::shard_scheduler(std::uint32_t shard) {
  return sched_of(shard);
}

sim::Duration Network::lookahead() const { return sh_->plan.lookahead; }

void Network::begin_shard(std::uint32_t shard) {
  tl_owner_ = this;
  tl_shard_ = shard;
  if (shard != 0 && plane_.trace.enabled()) {
    // Shard 0 writes the main ring directly (its window never runs
    // concurrently with barrier emissions); every other shard redirects
    // this thread's main-ring emits into its private lane.
    obs::Trace& lane = sh_->shards[shard].plane.trace;
    if (!lane.enabled()) lane.enable(plane_.trace.capacity());
    obs::Trace::set_thread_redirect(&plane_.trace, &lane);
  }
}

void Network::end_shard(std::uint32_t /*shard*/) {
  obs::Trace::set_thread_redirect(nullptr, nullptr);
  tl_owner_ = nullptr;
  tl_shard_ = 0;
}

void Network::flush_lanes() {
  auto take = [](std::uint64_t& v) {
    const std::uint64_t x = v;
    v = 0;
    return x;
  };
  for (std::uint32_t s = 1; s < sh_->plan.shards; ++s) {
    Shard& shard = sh_->shards[s];
    stats_.packets_sent.add(take(shard.net_lane[0]));
    stats_.bytes_sent.add(take(shard.net_lane[1]));
    // lint: drop-untraced (lane fold: each drop was traced when its lane was bumped)
    stats_.dropped_link_down.add(take(shard.net_lane[2]));
    // lint: drop-untraced (lane fold: each drop was traced when its lane was bumped)
    stats_.dropped_no_route.add(take(shard.net_lane[3]));
    // lint: drop-untraced (lane fold: each drop was traced when its lane was bumped)
    stats_.dropped_ttl.add(take(shard.net_lane[4]));
    // lint: drop-untraced (lane fold: each drop was traced when its lane was bumped)
    stats_.dropped_loss.add(take(shard.net_lane[5]));
    stats_.reordered.add(take(shard.net_lane[6]));
    for (LinkId l = 0; l < topology_.link_count(); ++l) {
      std::array<std::uint64_t, 2>& lane = shard.link_lane[l];
      if (lane[0] == 0 && lane[1] == 0) continue;
      link_stats_[l].packets.add(take(lane[0]));
      link_stats_[l].bytes.add(take(lane[1]));
    }
  }
}

void Network::cross_enqueue(NodeId from, LinkId link, CrossEntry entry) {
  const LinkInfo& l = topology_.link(link);
  const std::size_t dir = (l.a == from) ? 0 : 1;
  sh_->outboxes[static_cast<std::size_t>(link) * 2 + dir].entries.push_back(
      std::move(entry));
}

void Network::exchange(sim::ParallelStats& stats) {
  flush_lanes();
  bool drained_any = false;
  // A resumed unicast walk can cross a further boundary, so drain until
  // quiescent. Everything below runs single-threaded at the barrier.
  for (;;) {
    std::vector<CrossEntry>& drain = sh_->drain;
    drain.clear();
    for (LinkId link : sh_->plan.cross_links) {
      for (std::size_t dir = 0; dir < 2; ++dir) {
        auto& entries =
            sh_->outboxes[static_cast<std::size_t>(link) * 2 + dir].entries;
        for (CrossEntry& e : entries) drain.push_back(std::move(e));
        entries.clear();
      }
    }
    if (drain.empty()) break;
    drained_any = true;
    stats.cross_shard_events += drain.size();
    // Stable sort by arrival only: entries from one (link, direction)
    // queue keep their append order, equal arrivals across queues
    // resolve in cross_links order — a pure function of the plan, so
    // every worker count merges identically.
    std::stable_sort(drain.begin(), drain.end(),
                     [](const CrossEntry& x, const CrossEntry& y) {
                       return x.arrival < y.arrival;
                     });
    for (std::size_t i = 1; i < drain.size(); ++i) {
      if (drain[i].arrival == drain[i - 1].arrival &&
          sh_->plan.shard_of[drain[i].to] ==
              sh_->plan.shard_of[drain[i - 1].to]) {
        // The merge key, not global chronology, decided this tie. Gate
        // scenarios assert zero so the determinism certificate does not
        // hinge on the merge-order convention.
        ++stats.tie_collisions;
      }
    }
    for (CrossEntry& e : drain) {
      if (e.resume != 0) {
        auto dest = node_of(e.packet.dst);
        if (!dest) {  // address book never shrinks; defensive only
          counters_for(e.to).dropped_no_route.inc();
          trace_drop(obs::DropReason::kNoRoute, kInvalidLink, e.sent_now);
          continue;
        }
        unicast_walk(e.to, *dest, std::move(e.packet), e.arrival, e.sent_now);
        continue;
      }
      // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
      scheduler_for(e.to).schedule_at(
          e.arrival, [this, to = e.to, iface = e.iface,
                      p = std::move(e.packet)]() { deliver_packet(to, p, iface); });
    }
  }
  if (drained_any) flush_lanes();  // resumed walks may have bumped lanes
}

}  // namespace express::net
