#include "net/network.hpp"

#include <stdexcept>

namespace express::net {

namespace {

sim::Duration serialization_delay(std::uint32_t bytes, double bandwidth_bps) {
  if (bandwidth_bps <= 0) return sim::Duration{0};
  const double secs = static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  return sim::seconds_f(secs);
}

}  // namespace

sim::Time Network::reserve_link(NodeId from, LinkId link, std::uint32_t bytes,
                                sim::Time earliest) {
  const LinkInfo& l = topology_.link(link);
  const std::size_t direction = (l.a == from) ? 0 : 1;
  sim::Time& free_at = link_free_.at(link)[direction];
  const sim::Time start = std::max(earliest, free_at);
  const sim::Time done = start + serialization_delay(bytes, l.bandwidth_bps);
  free_at = done;
  auto& ls = link_stats_.at(link);
  ls.packets.inc();
  ls.bytes.add(bytes);
  stats_.packets_sent.inc();
  stats_.bytes_sent.add(bytes);
  plane_.trace.emit(start, obs::Entity::link(link), obs::TraceType::kPacketSent,
                    from, bytes);
  return done + l.delay;  // arrival at the peer
}

void Network::set_link_impairments(LinkId link, const ImpairmentConfig& config) {
  if (impair_cfg_.empty()) {
    impair_cfg_.resize(topology_.link_count());
    impair_gilbert_bad_.resize(topology_.link_count());
  }
  impair_cfg_.at(link) = config;
  impair_gilbert_bad_.at(link) = {};
  impairments_armed_ = false;
  for (const ImpairmentConfig& c : impair_cfg_) {
    if (c.enabled()) {
      impairments_armed_ = true;
      break;
    }
  }
}

void Network::set_default_impairments(const ImpairmentConfig& config) {
  for (LinkId l = 0; l < topology_.link_count(); ++l) {
    set_link_impairments(l, config);
  }
}

void Network::seed_impairments(std::uint64_t seed) {
  impair_rng_.reseed(seed);
  for (auto& state : impair_gilbert_bad_) state = {};
}

Network::ImpairmentVerdict Network::roll_impairment(NodeId from, LinkId link,
                                                    const Packet& packet) {
  const ImpairmentConfig& cfg = impair_cfg_[link];
  if (!cfg.enabled()) return ImpairmentVerdict::kDeliver;
  if (cfg.data_only) {
    const bool data =
        packet.protocol == ip::Protocol::kUdp ||
        (packet.protocol == ip::Protocol::kIpInIp && packet.inner &&
         packet.inner->protocol == ip::Protocol::kUdp);
    if (!data) return ImpairmentVerdict::kDeliver;
  }
  bool lost = false;
  switch (cfg.loss.kind) {
    case LossModel::Kind::kNone:
      break;
    case LossModel::Kind::kBernoulli:
      lost = impair_rng_.chance(cfg.loss.p);
      break;
    case LossModel::Kind::kGilbert: {
      const LinkInfo& l = topology_.link(link);
      std::uint8_t& bad = impair_gilbert_bad_[link][(l.a == from) ? 0 : 1];
      lost = impair_rng_.chance(bad != 0 ? cfg.loss.gilbert_loss_bad
                                         : cfg.loss.gilbert_loss_good);
      const double flip =
          bad != 0 ? cfg.loss.gilbert_exit_bad : cfg.loss.gilbert_enter_bad;
      if (impair_rng_.chance(flip)) bad = bad != 0 ? 0 : 1;
      break;
    }
  }
  if (lost) {
    stats_.dropped_loss.inc();
    plane_.trace.emit(scheduler_.now(), obs::Entity::link(link),
                      obs::TraceType::kPacketLost, from, packet.wire_size());
    return ImpairmentVerdict::kDrop;
  }
  if (cfg.reorder_p > 0.0 && impair_rng_.chance(cfg.reorder_p)) {
    stats_.reordered.inc();
    plane_.trace.emit(scheduler_.now(), obs::Entity::link(link),
                      obs::TraceType::kPacketReordered, from,
                      packet.wire_size());
    return ImpairmentVerdict::kDelay;
  }
  return ImpairmentVerdict::kDeliver;
}

void Network::deliver_packet(NodeId to, const Packet& packet,
                             std::uint32_t iface) {
  // enabled() gate first: the entity lookup and wire_size() walk stay
  // off the per-delivery fast path while tracing is disarmed.
  if (plane_.trace.enabled()) {
    plane_.trace.emit(scheduler_.now(), node_entity(to),
                      obs::TraceType::kPacketDelivered, iface,
                      packet.wire_size());
  }
  if (Node* n = node(to)) n->handle_packet(packet, iface);
}

void Network::transmit(NodeId from, LinkId link, Packet packet) {
  const LinkInfo& l = topology_.link(link);
  if (!l.up) {
    stats_.dropped_link_down.inc();
    trace_drop(obs::DropReason::kLinkDown, link);
    return;
  }
  const NodeId to = topology_.peer(link, from);
  sim::Time arrival =
      reserve_link(from, link, packet.wire_size(), scheduler_.now());
  if (impairments_armed_) {
    switch (roll_impairment(from, link, packet)) {
      case ImpairmentVerdict::kDrop:
        return;  // wire time already consumed, copy never arrives
      case ImpairmentVerdict::kDelay:
        arrival += impair_cfg_[link].reorder_window;
        break;
      case ImpairmentVerdict::kDeliver:
        break;
    }
  }
  auto iface_at_peer = topology_.interface_on(to, link);
  // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
  scheduler_.schedule_at(
      arrival, [this, to, iface = *iface_at_peer, p = std::move(packet)]() {
        deliver_packet(to, p, iface);
      });
}

std::uint32_t Network::acquire_fanout_batch() {
  if (!fanout_free_.empty()) {
    const std::uint32_t id = fanout_free_.back();
    fanout_free_.pop_back();
    return id;
  }
  fanout_pool_.emplace_back();
  return static_cast<std::uint32_t>(fanout_pool_.size() - 1);
}

void Network::deliver_fanout_batch(std::uint32_t id) {
  // One local Packet shared COW-style by every delivery (the payload
  // refcount is bumped once here, not once per copy). The pool is
  // re-indexed on every step because a handler may itself replicate
  // and grow the pool — indices stay valid, references do not.
  const Packet packet = fanout_pool_[id].packet;
  for (std::size_t i = 0; i < fanout_pool_[id].targets.size(); ++i) {
    const DeliveryTarget target = fanout_pool_[id].targets[i];
    deliver_packet(target.to, packet, target.iface);
  }
  FanoutBatch& batch = fanout_pool_[id];
  batch.packet = Packet{};
  batch.targets.clear();  // keeps capacity for reuse
  fanout_free_.push_back(id);
}

bool Network::Fanout::add(std::uint32_t iface) {
  Network& net = *net_;
  const LinkId link = net.topology_.node(from_).interfaces.at(iface);
  const LinkInfo& l = net.topology_.link(link);
  if (!l.up) {
    net.stats_.dropped_link_down.inc();
    net.trace_drop(obs::DropReason::kLinkDown, link);
    return false;
  }
  const NodeId to = net.topology_.peer(link, from_);
  sim::Time arrival =
      net.reserve_link(from_, link, wire_bytes_, net.scheduler_.now());
  if (net.impairments_armed_) {
    switch (net.roll_impairment(from_, link, packet_)) {
      case ImpairmentVerdict::kDrop:
        return true;  // copy consumed its wire slot but is gone
      case ImpairmentVerdict::kDelay:
        arrival += net.impair_cfg_[link].reorder_window;
        break;
      case ImpairmentVerdict::kDeliver:
        break;
    }
  }
  const DeliveryTarget target{to, *net.topology_.interface_on(to, link)};
  if (!net.fanout_batching_) {
    // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
    net.scheduler_.schedule_at(arrival, [n = net_, target, p = packet_]() {
      n->deliver_packet(target.to, p, target.iface);
    });
    return true;
  }
  if (queued_ != 0 && arrival == arrival_) {
    if (batch_ == kNoBatch) {
      batch_ = net.acquire_fanout_batch();
      FanoutBatch& b = net.fanout_pool_[batch_];
      b.packet = packet_;
      b.targets.push_back(first_);
    }
    net.fanout_pool_[batch_].targets.push_back(target);
    ++queued_;
    return true;
  }
  flush();
  arrival_ = arrival;
  first_ = target;
  queued_ = 1;
  return true;
}

void Network::Fanout::flush() {
  if (queued_ == 0) return;
  Network& net = *net_;
  if (batch_ == kNoBatch) {
    // Single copy at this arrival: same event shape as transmit().
    // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
    net.scheduler_.schedule_at(
        arrival_, [n = net_, target = first_, p = packet_]() {
          n->deliver_packet(target.to, p, target.iface);
        });
  } else {
    // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
    net.scheduler_.schedule_at(arrival_, [n = net_, id = batch_]() {
      n->deliver_fanout_batch(id);
    });
    batch_ = kNoBatch;
  }
  queued_ = 0;
}

void Network::send_on_interface(NodeId from, std::uint32_t iface, Packet packet) {
  const LinkId link = topology_.node(from).interfaces.at(iface);
  transmit(from, link, std::move(packet));
}

void Network::send_to_neighbor(NodeId from, NodeId neighbor, Packet packet) {
  auto iface = topology_.interface_to(from, neighbor);
  if (!iface) throw std::logic_error("send_to_neighbor: not adjacent");
  send_on_interface(from, *iface, std::move(packet));
}

void Network::send_unicast(NodeId from, Packet packet) {
  auto dest = node_of(packet.dst);
  if (!dest) {
    stats_.dropped_no_route.inc();
    trace_drop(obs::DropReason::kNoRoute, kInvalidLink);
    return;
  }
  const auto hops = routing_.path(from, *dest);
  if (hops.empty() && from != *dest) {
    stats_.dropped_no_route.inc();
    trace_drop(obs::DropReason::kNoRoute, kInvalidLink);
    return;
  }
  if (from == *dest) {
    // Loopback delivery: interface index is irrelevant; use 0.
    // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
    scheduler_.schedule_after(sim::Duration{0},
                              [this, to = from, p = std::move(packet)]() {
                                deliver_packet(to, p, 0);
                              });
    return;
  }
  // Walk the path, reserving FIFO serialization on every link in turn,
  // decrementing TTL per hop; deliver only at the destination.
  sim::Time at = scheduler_.now();
  const std::uint32_t size = packet.wire_size();
  std::uint8_t ttl = packet.ttl;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (ttl == 0) {
      stats_.dropped_ttl.inc();
      trace_drop(obs::DropReason::kTtlExpired, kInvalidLink);
      return;
    }
    --ttl;
    auto iface = topology_.interface_to(hops[i], hops[i + 1]);
    const LinkId link = topology_.node(hops[i]).interfaces.at(*iface);
    if (!topology_.link(link).up) {
      stats_.dropped_link_down.inc();
      trace_drop(obs::DropReason::kLinkDown, link);
      return;
    }
    at = reserve_link(hops[i], link, size, at);
    if (impairments_armed_) {
      switch (roll_impairment(hops[i], link, packet)) {
        case ImpairmentVerdict::kDrop:
          return;  // lost mid-path; upstream links already charged
        case ImpairmentVerdict::kDelay:
          at += impair_cfg_[link].reorder_window;
          break;
        case ImpairmentVerdict::kDeliver:
          break;
      }
    }
  }
  packet.ttl = ttl;
  const NodeId to = *dest;
  const NodeId prev = hops[hops.size() - 2];
  auto iface_at_dest = topology_.interface_to(to, prev);
  // lint: fire-and-forget (in-flight packet delivery; the scheduler owns the event)
  scheduler_.schedule_at(at, [this, to, iface = iface_at_dest.value_or(0),
                              p = std::move(packet)]() {
    deliver_packet(to, p, iface);
  });
}

void Network::set_link_up(LinkId link, bool up) {
  topology_.set_link_up(link, up);
  routing_.recompute();
  for (auto& n : nodes_) {
    if (n) n->on_routing_change();
  }
}

std::uint64_t Network::total_link_bytes() const {
  return plane_.registry.sum("net.link.bytes");
}

}  // namespace express::net
