// Interface-resolution helpers shared by the control planes.
//
// "Which of my interfaces leads to neighbor N?" is pure topology +
// routing knowledge, needed by the subscription table (FIB refresh,
// UDP soft state), the ECMP transport (unicast sends), and tests.
// Factored here so neither module re-implements — or depends on the
// other for — the LAN-hub indirection.
#pragma once

#include <cstdint>
#include <optional>

#include "net/network.hpp"

namespace express::net {

/// Interface of `self` leading to `neighbor`: directly attached, or
/// through a LAN hub (resolved via the routing table).
inline std::optional<std::uint32_t> iface_toward(const Network& network,
                                                 NodeId self,
                                                 NodeId neighbor) {
  if (auto direct = network.topology().interface_to(self, neighbor)) {
    return direct;
  }
  return network.routing().rpf_interface(self, neighbor);
}

/// True if this interface attaches to a multi-access LAN segment.
inline bool iface_is_lan(const Network& network, NodeId self,
                         std::uint32_t iface) {
  const NodeId peer = network.topology().neighbor_via(self, iface);
  return network.topology().node(peer).kind == NodeKind::kLanHub;
}

}  // namespace express::net
