// Per-link impairment model: loss, burst loss, and reordering.
//
// Real wide-area links lose and reorder packets; the reliable-repair
// path (paper §2.2.1) only earns its keep under exactly those
// conditions. Each link direction can be given an ImpairmentConfig —
// Bernoulli i.i.d. loss, two-state Gilbert-Elliott burst loss, and a
// fixed reorder window — whose dice all come from one seeded sim::Rng
// owned by the Network, so impaired runs are bit-for-bit reproducible
// from (seed, scenario).
//
// Everything is off by default, and a disarmed network draws ZERO
// random numbers on the packet path, so every pinned trace and golden
// snapshot from lossless runs stays byte-identical.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace express::net {

/// Loss process for one link direction.
struct LossModel {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kBernoulli,  ///< i.i.d. loss with probability `p`
    kGilbert,    ///< two-state Gilbert-Elliott burst loss
  };

  Kind kind = Kind::kNone;
  /// Bernoulli loss probability (kBernoulli only).
  double p = 0.0;
  /// Gilbert-Elliott parameters: per-packet state transitions and
  /// per-state loss probabilities. Defaults give short loss bursts
  /// (~4 packets) separated by long good runs.
  double gilbert_enter_bad = 0.05;  ///< P(good -> bad) per packet
  double gilbert_exit_bad = 0.25;   ///< P(bad -> good) per packet
  double gilbert_loss_good = 0.0;   ///< loss probability in the good state
  double gilbert_loss_bad = 0.5;    ///< loss probability in the bad state
};

/// Impairment knobs for one link (both directions share the config;
/// Gilbert state is tracked per direction). All neutral by default.
struct ImpairmentConfig {
  LossModel loss;
  /// Probability a surviving packet is held back by `reorder_window`
  /// beyond its FIFO arrival time, letting later packets overtake it.
  double reorder_p = 0.0;
  sim::Duration reorder_window = sim::milliseconds(2);
  /// Impair only the data plane (UDP channel traffic and IP-in-IP
  /// subcast tunnels carrying it). ECMP control runs over TCP in the
  /// paper (§3.2) and is modeled reliable, so count queries and
  /// responses pass untouched unless this is cleared.
  bool data_only = true;

  [[nodiscard]] bool enabled() const {
    return loss.kind != LossModel::Kind::kNone || reorder_p > 0.0;
  }
};

}  // namespace express::net
