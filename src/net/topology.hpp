// Network topology: nodes, point-to-point links, and interfaces.
//
// The topology is the static (but failure-aware) graph underneath the
// simulation. Nodes are routers or hosts; links are bidirectional with a
// propagation delay, a bandwidth, and a routing cost. Each endpoint of a
// link occupies one interface slot on its node — interface indices are
// what EXPRESS FIB entries and per-interface subscriber counts key on.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "ip/address.hpp"
#include "sim/time.hpp"

namespace express::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

enum class NodeKind : std::uint8_t {
  kRouter,
  kHost,
  kLanHub,  ///< layer-2 repeater for multi-access segments (net/lan.hpp)
};

struct NodeInfo {
  NodeKind kind = NodeKind::kRouter;
  ip::Address address;            ///< the node's unicast address
  std::string name;               ///< for traces and error messages
  std::uint16_t domain = 0;       ///< administrative domain (settlements)
  std::vector<LinkId> interfaces; ///< interface i attaches to interfaces[i]
};

struct LinkInfo {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  sim::Duration delay = sim::milliseconds(1);
  double bandwidth_bps = 100e6;  ///< used for serialization delay + accounting
  std::uint32_t cost = 1;        ///< unicast routing metric
  bool up = true;
};

/// Mutable graph of nodes and links. Addresses are assigned automatically
/// (10.x.y.z for routers and hosts) unless provided.
class Topology {
 public:
  /// Add a node; returns its id. Address defaults to 10.(id>>16).(id>>8).(id)
  /// +1 so node 0 is 10.0.0.1.
  NodeId add_node(NodeKind kind, std::string name = {},
                  std::optional<ip::Address> address = std::nullopt);

  NodeId add_router(std::string name = {}) {
    return add_node(NodeKind::kRouter, std::move(name));
  }
  NodeId add_host(std::string name = {}) {
    return add_node(NodeKind::kHost, std::move(name));
  }

  /// Connect two nodes; returns the link id. Each call consumes one new
  /// interface slot on both endpoints.
  LinkId add_link(NodeId a, NodeId b,
                  sim::Duration delay = sim::milliseconds(1),
                  std::uint32_t cost = 1, double bandwidth_bps = 100e6);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const NodeInfo& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const LinkInfo& link(LinkId id) const { return links_.at(id); }

  /// Mark a link up/down (failure injection). Routing must be recomputed
  /// by the owner afterwards.
  void set_link_up(LinkId id, bool up) { links_.at(id).up = up; }

  /// Assign a node to an administrative domain (default 0). Used by
  /// domain-scoped network-layer counts (transit settlements).
  void set_domain(NodeId id, std::uint16_t domain) {
    nodes_.at(id).domain = domain;
  }

  /// The node on the far side of `link` from `from`.
  [[nodiscard]] NodeId peer(LinkId link, NodeId from) const;

  /// The interface index on `node` that attaches to `link`, or nullopt.
  [[nodiscard]] std::optional<std::uint32_t> interface_on(NodeId node,
                                                          LinkId link) const;

  /// The interface index on `node` leading directly to `neighbor`.
  [[nodiscard]] std::optional<std::uint32_t> interface_to(NodeId node,
                                                          NodeId neighbor) const;

  /// The neighbor reached through interface `iface` of `node`.
  [[nodiscard]] NodeId neighbor_via(NodeId node, std::uint32_t iface) const;

  /// All live neighbors of `node`.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;

  /// Find a node by its unicast address (linear scan; test/tool use).
  [[nodiscard]] std::optional<NodeId> find_by_address(ip::Address addr) const;

  [[nodiscard]] std::uint32_t interface_count(NodeId node) const {
    return static_cast<std::uint32_t>(nodes_.at(node).interfaces.size());
  }

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<LinkInfo> links_;
};

}  // namespace express::net
