#include "net/sharding.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace express::net {

ShardPlan partition_topology(const Topology& topology, std::uint32_t shards) {
  const std::size_t nodes = topology.node_count();
  std::vector<NodeId> routers;
  for (NodeId id = 0; id < nodes; ++id) {
    if (topology.node(id).kind == NodeKind::kRouter) routers.push_back(id);
  }
  if (shards == 0) {
    throw std::invalid_argument("partition_topology: shards must be >= 1");
  }
  if (shards > routers.size() && !(shards == 1 && routers.empty())) {
    throw std::invalid_argument(
        "partition_topology: more shards than routers");
  }

  ShardPlan plan;
  plan.shards = shards;
  plan.shard_of.assign(nodes, std::numeric_limits<std::uint32_t>::max());
  plan.cross_flag_.assign(topology.link_count(), 0);

  // Pass 1: balanced BFS growth over the router graph. Seeds are the
  // lowest unassigned router ids, neighbors are visited in id order,
  // and each shard stops at ceil(R / K) routers — all ties broken by
  // node id, so the plan is a pure function of (topology, shards).
  const std::size_t target =
      routers.empty() ? 0 : (routers.size() + shards - 1) / shards;
  std::uint32_t shard = 0;
  for (NodeId seed : routers) {
    if (plan.shard_of[seed] != std::numeric_limits<std::uint32_t>::max()) {
      continue;
    }
    std::deque<NodeId> frontier{seed};
    std::size_t grown = 0;
    // Count routers already placed in the current shard (a shard can be
    // grown from several seeds when the router graph is disconnected).
    for (NodeId r : routers) {
      if (plan.shard_of[r] == shard) ++grown;
    }
    while (!frontier.empty() && grown < target) {
      const NodeId at = frontier.front();
      frontier.pop_front();
      if (plan.shard_of[at] != std::numeric_limits<std::uint32_t>::max()) {
        continue;
      }
      plan.shard_of[at] = shard;
      ++grown;
      std::vector<NodeId> next;
      for (LinkId l : topology.node(at).interfaces) {
        const NodeId peer = topology.peer(l, at);
        if (topology.node(peer).kind != NodeKind::kRouter) continue;
        if (plan.shard_of[peer] != std::numeric_limits<std::uint32_t>::max()) {
          continue;
        }
        next.push_back(peer);
      }
      std::sort(next.begin(), next.end());
      for (NodeId n : next) frontier.push_back(n);
    }
    if (grown >= target && shard + 1 < shards) ++shard;
  }

  // Pass 2: hosts and LAN hubs follow their nearest assigned neighbor
  // (BFS from all assigned nodes at once, lowest-id-first), so every
  // host/hub shares a shard with the router its traffic enters through
  // and edge links never cross shards.
  std::deque<NodeId> frontier;
  for (NodeId id = 0; id < nodes; ++id) {
    if (plan.shard_of[id] != std::numeric_limits<std::uint32_t>::max()) {
      frontier.push_back(id);
    }
  }
  while (!frontier.empty()) {
    const NodeId at = frontier.front();
    frontier.pop_front();
    std::vector<NodeId> next;
    for (LinkId l : topology.node(at).interfaces) {
      const NodeId peer = topology.peer(l, at);
      if (plan.shard_of[peer] != std::numeric_limits<std::uint32_t>::max()) {
        continue;
      }
      next.push_back(peer);
    }
    std::sort(next.begin(), next.end());
    for (NodeId n : next) {
      if (plan.shard_of[n] != std::numeric_limits<std::uint32_t>::max()) {
        continue;
      }
      plan.shard_of[n] = plan.shard_of[at];
      frontier.push_back(n);
    }
  }
  // Isolated nodes (no links at all) land in shard 0.
  for (NodeId id = 0; id < nodes; ++id) {
    if (plan.shard_of[id] == std::numeric_limits<std::uint32_t>::max()) {
      plan.shard_of[id] = 0;
    }
  }

  // Derive cross links and the conservative lookahead.
  for (LinkId l = 0; l < topology.link_count(); ++l) {
    const LinkInfo& link = topology.link(l);
    if (plan.shard_of[link.a] == plan.shard_of[link.b]) continue;
    if (link.delay <= sim::Duration{0}) {
      throw std::logic_error(
          "partition_topology: zero-delay link crosses shards");
    }
    plan.cross_flag_[l] = 1;
    plan.cross_links.push_back(l);
    if (link.delay < plan.lookahead) plan.lookahead = link.delay;
  }
  return plan;
}

}  // namespace express::net
