#include "net/routing.hpp"

#include <queue>
#include <tuple>

namespace express::net {

void UnicastRouting::recompute() {
  const std::size_t n = topo_->node_count();
  tables_.assign(n, std::vector<Entry>(n));
  for (NodeId origin = 0; origin < n; ++origin) dijkstra(origin);
  ++version_;
}

void UnicastRouting::dijkstra(NodeId origin) {
  auto& table = tables_[origin];
  table[origin] = Entry{0, origin, 0, 0};

  // (cost, tie-break node id) — deterministic shortest-path trees so that
  // repeated runs build identical multicast trees.
  using QItem = std::tuple<std::uint32_t, NodeId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  queue.emplace(0, origin);

  std::vector<bool> done(topo_->node_count(), false);
  while (!queue.empty()) {
    auto [dist, u] = queue.top();
    queue.pop();
    if (done[u]) continue;
    done[u] = true;
    for (LinkId lid : topo_->node(u).interfaces) {
      const LinkInfo& l = topo_->link(lid);
      if (!l.up) continue;
      const NodeId v = topo_->peer(lid, u);
      const std::uint32_t nd = dist + l.cost;
      Entry& ev = table[v];
      const NodeId via = (u == origin) ? v : table[u].first_hop;
      // Strictly-better cost wins; equal cost prefers the numerically
      // smaller first hop so ties break deterministically.
      if (nd < ev.cost ||
          (nd == ev.cost && via < ev.first_hop)) {
        ev.cost = nd;
        ev.first_hop = via;
        ev.hops = table[u].hops + 1;
        ev.delay_ns = table[u].delay_ns + l.delay.count();
        queue.emplace(nd, v);
      }
    }
  }
}

std::optional<NodeId> UnicastRouting::next_hop(NodeId from, NodeId to) const {
  if (from == to) return std::nullopt;
  const Entry& e = tables_.at(to).at(from);  // path from->to mirrors to->from
  // Use the table rooted at `from` for correctness under asymmetric costs.
  const Entry& f = tables_.at(from).at(to);
  (void)e;
  if (f.cost == kUnreachable) return std::nullopt;
  return f.first_hop;
}

std::optional<std::uint32_t> UnicastRouting::cost(NodeId from, NodeId to) const {
  const Entry& f = tables_.at(from).at(to);
  if (f.cost == kUnreachable) return std::nullopt;
  return f.cost;
}

std::optional<std::uint32_t> UnicastRouting::hop_count(NodeId from,
                                                       NodeId to) const {
  const Entry& f = tables_.at(from).at(to);
  if (f.cost == kUnreachable) return std::nullopt;
  return f.hops;
}

std::optional<sim::Duration> UnicastRouting::path_delay(NodeId from,
                                                        NodeId to) const {
  const Entry& f = tables_.at(from).at(to);
  if (f.cost == kUnreachable) return std::nullopt;
  return sim::Duration{f.delay_ns};
}

std::vector<NodeId> UnicastRouting::path(NodeId from, NodeId to) const {
  std::vector<NodeId> out;
  if (from == to) return {from};
  if (!cost(from, to)) return out;
  out.push_back(from);
  NodeId cur = from;
  // Bounded by node count: each next_hop strictly reduces remaining cost.
  for (std::size_t guard = 0; guard <= topo_->node_count(); ++guard) {
    auto nh = next_hop(cur, to);
    if (!nh) return {};
    out.push_back(*nh);
    if (*nh == to) return out;
    cur = *nh;
  }
  return {};  // should be unreachable; defensive against table corruption
}

std::optional<std::uint32_t> UnicastRouting::rpf_interface(NodeId node,
                                                           NodeId source) const {
  auto nh = rpf_neighbor(node, source);
  if (!nh) return std::nullopt;
  return topo_->interface_to(node, *nh);
}

}  // namespace express::net
