// The shared packet-replication primitive.
//
// Every multicast data plane in this repo — the EXPRESS fast path, the
// PIM-SM/DVMRP/CBT baselines, and the L2 LAN hub — reduces to the same
// inner loop: copy one packet out a set of interfaces, with protocol-
// specific knobs for TTL handling, arrival-interface exclusion, and
// dead-link suppression. Before this header each protocol carried its
// own copy of that loop; now they all call replicate() and differ only
// in the ReplicateOptions they pass. The copies are cheap because
// Packet payloads are copy-on-write (PR 1): a copy shares the payload
// buffer and only the ~48-byte header is duplicated per interface.
//
// Module seam: this layer knows nothing about channels, groups, FIBs,
// or membership — callers resolve "which interfaces" (that is routing
// policy); replicate() owns only "emit copies out these interfaces"
// (that is the wire).
#pragma once

#include <cstdint>
#include <optional>

#include "net/interface_set.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"

namespace express::net {

struct ReplicateOptions {
  /// Never send back out the arrival interface (RPF split-horizon).
  std::optional<std::uint32_t> exclude_iface;
  /// L3 forwarding decrements TTL and drops expired packets; an L2
  /// repeater (LanHub) copies frames unmodified.
  bool decrement_ttl = true;
  /// Skip interfaces whose link is administratively down. The EXPRESS
  /// fast path leaves this off (the Network drops and counts such
  /// packets itself); the baselines check before copying, as they did
  /// historically, so their copy counters exclude dead links.
  bool skip_down_links = false;
};

/// Copy `packet` from node `node` out every interface in `oifs`
/// (ascending order), applying `opts`. Returns the number of copies
/// actually transmitted.
///
/// Delivery is batched: TTL is applied once up front (every copy gets
/// the same decremented value the per-copy loop used to compute), and
/// copies whose arrival times coincide are delivered by one scheduler
/// event via Network::Fanout rather than one event per copy.
inline std::size_t replicate(Network& network, NodeId node,
                             const Packet& packet, const InterfaceSet& oifs,
                             const ReplicateOptions& opts = {}) {
  Packet master = packet;
  if (opts.decrement_ttl) {
    if (master.ttl == 0) return 0;  // expired: zero copies, as before
    --master.ttl;
  }
  Network::Fanout fanout(network, node, std::move(master));
  std::size_t copies = 0;
  oifs.for_each([&](std::uint32_t iface) {
    if (opts.exclude_iface && iface == *opts.exclude_iface) return;
    if (opts.skip_down_links) {
      const LinkId link = network.topology().node(node).interfaces[iface];
      if (!network.topology().link(link).up) return;
    }
    if (fanout.add(iface)) ++copies;
  });
  return copies;
}

/// Replicate out *all* of `node`'s interfaces (subject to `opts`) — the
/// L2 repeater shape, avoiding an InterfaceSet allocation per frame.
inline std::size_t replicate_all(Network& network, NodeId node,
                                 const Packet& packet,
                                 const ReplicateOptions& opts = {}) {
  Packet master = packet;
  if (opts.decrement_ttl) {
    if (master.ttl == 0) return 0;
    --master.ttl;
  }
  Network::Fanout fanout(network, node, std::move(master));
  std::size_t copies = 0;
  const auto ports = network.topology().interface_count(node);
  for (std::uint32_t iface = 0; iface < ports; ++iface) {
    if (opts.exclude_iface && iface == *opts.exclude_iface) continue;
    if (opts.skip_down_links) {
      const LinkId link = network.topology().node(node).interfaces[iface];
      if (!network.topology().link(link).up) continue;
    }
    if (fanout.add(iface)) ++copies;
  }
  return copies;
}

}  // namespace express::net
