#include "net/node.hpp"

#include "net/network.hpp"

namespace express::net {

Node::Node(Network& network, NodeId id)
    : network_(&network),
      id_(id),
      address_(network.topology().node(id).address) {}

}  // namespace express::net
