#include "net/topology.hpp"

namespace express::net {

NodeId Topology::add_node(NodeKind kind, std::string name,
                          std::optional<ip::Address> address) {
  const auto id = static_cast<NodeId>(nodes_.size());
  NodeInfo info;
  info.kind = kind;
  info.name = name.empty() ? ("n" + std::to_string(id)) : std::move(name);
  info.address = address.value_or(
      ip::Address{static_cast<std::uint32_t>(0x0A000001U + id)});
  nodes_.push_back(std::move(info));
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, sim::Duration delay,
                          std::uint32_t cost, double bandwidth_bps) {
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(LinkInfo{a, b, delay, bandwidth_bps, cost, true});
  nodes_.at(a).interfaces.push_back(id);
  nodes_.at(b).interfaces.push_back(id);
  return id;
}

NodeId Topology::peer(LinkId link, NodeId from) const {
  const LinkInfo& l = links_.at(link);
  return l.a == from ? l.b : l.a;
}

std::optional<std::uint32_t> Topology::interface_on(NodeId node,
                                                    LinkId link) const {
  const auto& ifaces = nodes_.at(node).interfaces;
  for (std::uint32_t i = 0; i < ifaces.size(); ++i) {
    if (ifaces[i] == link) return i;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> Topology::interface_to(NodeId node,
                                                    NodeId neighbor) const {
  const auto& ifaces = nodes_.at(node).interfaces;
  for (std::uint32_t i = 0; i < ifaces.size(); ++i) {
    if (peer(ifaces[i], node) == neighbor) return i;
  }
  return std::nullopt;
}

NodeId Topology::neighbor_via(NodeId node, std::uint32_t iface) const {
  return peer(nodes_.at(node).interfaces.at(iface), node);
}

std::vector<NodeId> Topology::neighbors(NodeId node) const {
  std::vector<NodeId> out;
  for (LinkId l : nodes_.at(node).interfaces) {
    if (links_.at(l).up) out.push_back(peer(l, node));
  }
  return out;
}

std::optional<NodeId> Topology::find_by_address(ip::Address addr) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].address == addr) return i;
  }
  return std::nullopt;
}

}  // namespace express::net
