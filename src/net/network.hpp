// The network fabric: glues topology, routing, scheduler, and nodes.
//
// Transmission model: each link direction is a FIFO transmitter — a
// packet starts serializing when the line is free (so small packets
// never overtake large ones, as on real links), takes wire_size /
// bandwidth to serialize, then propagates for the link delay. Per-link
// byte and packet counters feed the bandwidth-cost experiments. Unicast
// convenience routing walks the shortest path link by link so delay and
// link accounting stay faithful without requiring every node to
// implement an IP forwarding plane.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ip/address.hpp"
#include "net/impairment.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "net/sharding.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace express::net {

struct LinkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_dropped_link_down = 0;
  std::uint64_t packets_dropped_no_route = 0;
  std::uint64_t packets_dropped_ttl = 0;
  std::uint64_t packets_dropped_loss = 0;  ///< impairment-model losses
  std::uint64_t packets_reordered = 0;     ///< impairment-model reorders
};

/// One delivery destination of a batched fan-out.
struct DeliveryTarget {
  NodeId to = 0;
  std::uint32_t iface = 0;  ///< arrival interface at `to`
};

class Network : private sim::ShardClient {
 public:
  explicit Network(Topology topology)
      : topology_(std::move(topology)),
        routing_(topology_),
        link_free_(topology_.link_count()) {
    for (NodeId i = 0; i < topology_.node_count(); ++i) {
      address_index_.emplace(topology_.node(i).address, i);
    }
    const obs::Scope scope{&plane_, obs::Entity::network()};
    stats_.packets_sent = scope.counter("net.packets_sent");
    stats_.bytes_sent = scope.counter("net.bytes_sent");
    stats_.dropped_link_down = scope.counter("net.drop.link_down");
    stats_.dropped_no_route = scope.counter("net.drop.no_route");
    stats_.dropped_ttl = scope.counter("net.drop.ttl");
    stats_.dropped_loss = scope.counter("net.drop.loss");
    stats_.reordered = scope.counter("net.reordered");
    link_stats_.resize(topology_.link_count());
    for (LinkId l = 0; l < topology_.link_count(); ++l) {
      const obs::Entity e = obs::Entity::link(l);
      link_stats_[l].packets = plane_.registry.counter("net.link.packets", e);
      link_stats_[l].bytes = plane_.registry.counter("net.link.bytes", e);
    }
  }

  /// The calling context's scheduler. Unsharded this is *the*
  /// scheduler; sharded it resolves to the active shard's scheduler
  /// (inside an engine window or a ShardContext), falling back to shard
  /// 0 — so node code that schedules via `network.scheduler()` lands on
  /// its own shard without knowing sharding exists.
  [[nodiscard]] sim::Scheduler& scheduler() {
    if (sh_ != nullptr && tl_owner_ == this) return sched_of(tl_shard_);
    return scheduler_;
  }
  /// The scheduler owning `id`'s shard (shard 0 when unsharded).
  [[nodiscard]] sim::Scheduler& scheduler_for(NodeId id) {
    return sh_ != nullptr ? sched_of(sh_->plan.shard_of[id]) : scheduler_;
  }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const UnicastRouting& routing() const { return routing_; }
  [[nodiscard]] sim::Time now() const {
    if (sh_ != nullptr && tl_owner_ == this && tl_shard_ != 0) {
      return sh_->shards[tl_shard_].sched->now();
    }
    return scheduler_.now();
  }

  /// This network's observability plane: every module attached to the
  /// network registers its metrics (and emits trace records) here, so
  /// concurrently-live networks never share counters.
  [[nodiscard]] obs::Plane& obs() { return plane_; }
  [[nodiscard]] const obs::Plane& obs() const { return plane_; }

  /// The obs entity a topology node observes as (router/host/lan by
  /// node kind), and the bound scope modules should register through.
  [[nodiscard]] obs::Entity node_entity(NodeId id) const {
    switch (topology_.node(id).kind) {
      case NodeKind::kHost:
        return obs::Entity::host(id);
      case NodeKind::kLanHub:
        return obs::Entity::lan(id);
      case NodeKind::kRouter:
        break;
    }
    return obs::Entity::router(id);
  }
  [[nodiscard]] obs::Scope node_scope(NodeId id) {
    return obs::Scope{&plane_, node_entity(id)};
  }

  /// Construct and register a node of type T at topology node `id`.
  /// T's constructor must take (Network&, NodeId, extra args...).
  /// Construction runs under a ShardContext for `id`, so anything the
  /// node schedules at attach time lands on its own shard's scheduler.
  template <typename T, typename... Args>
  T& attach(NodeId id, Args&&... args) {
    if (nodes_.size() < topology_.node_count()) {
      nodes_.resize(topology_.node_count());
    }
    ShardContext shard_ctx(*this, id);
    auto node = std::make_unique<T>(*this, id, std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.at(id) = std::move(node);
    return ref;
  }

  [[nodiscard]] Node* node(NodeId id) {
    return id < nodes_.size() ? nodes_[id].get() : nullptr;
  }
  [[nodiscard]] const Node* node(NodeId id) const {
    return id < nodes_.size() ? nodes_[id].get() : nullptr;
  }

  /// Resolve a unicast address to its topology node (O(1) index).
  [[nodiscard]] std::optional<NodeId> node_of(ip::Address address) const {
    auto it = address_index_.find(address);
    if (it == address_index_.end()) return std::nullopt;
    return it->second;
  }

  /// Transmit `packet` from `from` out its interface `iface`. Dropped
  /// (and counted) if the link is down.
  void send_on_interface(NodeId from, std::uint32_t iface, Packet packet);

  /// Batched replication builder used by net::replicate. Each add()
  /// reserves wire time out one interface exactly as transmit() would;
  /// consecutive copies arriving at the same instant are coalesced into
  /// ONE scheduler event that walks the target list, instead of one
  /// event (and one Packet copy) per copy. Coalescing only adjacent
  /// equal arrivals keeps the delivery order bit-for-bit identical to
  /// per-copy scheduling. The destructor flushes the open group.
  class Fanout {
   public:
    Fanout(Network& network, NodeId from, Packet packet)
        : net_(&network), from_(from), packet_(std::move(packet)),
          wire_bytes_(packet_.wire_size()) {}
    Fanout(const Fanout&) = delete;
    Fanout& operator=(const Fanout&) = delete;
    ~Fanout() { flush(); }

    /// Queue a copy out `iface`; returns false (and counts the drop)
    /// when the link is down. TTL policy is the caller's business —
    /// the packet is sent exactly as constructed.
    bool add(std::uint32_t iface);

   private:
    static constexpr std::uint32_t kNoBatch = ~std::uint32_t{0};

    void flush();

    Network* net_;
    NodeId from_ = 0;
    Packet packet_;
    std::uint32_t wire_bytes_ = 0;
    sim::Time arrival_{};            ///< arrival time of the open group
    std::uint32_t batch_ = kNoBatch; ///< pooled record once the group is >1
    DeliveryTarget first_{};         ///< sole target while the group is 1
    std::uint32_t queued_ = 0;       ///< copies in the open group
  };

  /// Test/bench knob: disable same-arrival coalescing so every copy
  /// gets its own delivery event (the pre-batching shape). Delivery
  /// order is identical either way; only event counts differ.
  void set_fanout_batching(bool on) { fanout_batching_ = on; }

  /// Transmit to a directly attached neighbor (resolves the interface).
  void send_to_neighbor(NodeId from, NodeId neighbor, Packet packet);

  /// Route a unicast packet hop-by-hop from `from` to the topology node
  /// owning packet.dst, charging every traversed link, and deliver it
  /// there. Packets to unreachable destinations are counted and dropped.
  /// Intermediate nodes do NOT see the packet (pure IP transit).
  void send_unicast(NodeId from, Packet packet);

  /// Fail or restore a link; recomputes routing and notifies all nodes.
  void set_link_up(LinkId link, bool up);

  /// Apply `config` to one link (both directions). Loss and reorder
  /// dice come from the network-owned impairment RNG; reseed via
  /// seed_impairments() before traffic for reproducible campaigns.
  void set_link_impairments(LinkId link, const ImpairmentConfig& config);

  /// Apply `config` to every link. Equivalent to calling
  /// set_link_impairments() per link; per-link overrides can follow.
  void set_default_impairments(const ImpairmentConfig& config);

  /// Reseed the shared impairment RNG (also resets Gilbert burst state
  /// and leaves per-link stream mode, if it was armed). A network whose
  /// links all carry neutral configs draws nothing.
  void seed_impairments(std::uint64_t seed);

  [[nodiscard]] const ImpairmentConfig& link_impairments(LinkId link) const {
    static const ImpairmentConfig kNeutral{};
    return link < impair_cfg_.size() ? impair_cfg_[link] : kNeutral;
  }

  /// Thin views over the registry slots (see DESIGN.md §11).
  [[nodiscard]] NetworkStats stats() const {
    NetworkStats s;
    s.packets_sent = stats_.packets_sent.value();
    s.bytes_sent = stats_.bytes_sent.value();
    s.packets_dropped_link_down = stats_.dropped_link_down.value();
    s.packets_dropped_no_route = stats_.dropped_no_route.value();
    s.packets_dropped_ttl = stats_.dropped_ttl.value();
    s.packets_dropped_loss = stats_.dropped_loss.value();
    s.packets_reordered = stats_.reordered.value();
    return s;
  }
  [[nodiscard]] LinkStats link_stats(LinkId link) const {
    const LinkCounters& lc = link_stats_.at(link);
    return LinkStats{lc.packets.value(), lc.bytes.value()};
  }

  /// Sum of bytes over all links (total delivered bandwidth-volume).
  [[nodiscard]] std::uint64_t total_link_bytes() const;

  /// Run the simulation until `deadline`. Sharded networks route
  /// through the parallel engine's window loop; results are identical
  /// either way (DESIGN.md §13).
  void run_until(sim::Time deadline) {
    if (sh_ != nullptr) {
      sh_->engine->run_until(deadline);
      return;
    }
    scheduler_.run_until(deadline);
  }
  void run() {
    if (sh_ != nullptr) {
      sh_->engine->run();
      return;
    }
    scheduler_.run();
  }

  // -- Sharded (parallel) execution — DESIGN.md §13 ---------------------

  /// Partition execution across plan.shards schedulers driven by a
  /// sim::ParallelEngine. Must be called before any attach(): nodes
  /// bind to their shard's scheduler at construction. K > 1 disables
  /// fan-out batching (its record pool is shared across shards; the
  /// documented set_fanout_batching contract keeps delivery order
  /// identical without it). Counters, traces, and snapshots stay
  /// deterministic for any worker count; see parallel.hpp for the full
  /// contract.
  void enable_sharding(ShardPlan plan, unsigned workers = 1);

  [[nodiscard]] bool sharded() const { return sh_ != nullptr; }
  [[nodiscard]] std::uint32_t shard_of(NodeId id) const {
    return sh_ != nullptr ? sh_->plan.shard_of[id] : 0;
  }

  /// Worker threads for window execution (>= 1; 1 = inline reference
  /// mode). No effect on results, only wall-clock. Unsharded: no-op.
  void set_parallel_workers(unsigned workers) {
    if (sh_ != nullptr) sh_->engine->set_workers(workers);
  }

  [[nodiscard]] sim::ParallelStats parallel_stats() const {
    return sh_ != nullptr ? sh_->engine->stats() : sim::ParallelStats{};
  }

  /// Earliest pending event across every shard (drains in-flight
  /// cross-shard queues first), or the plain scheduler probe when
  /// unsharded. Use this instead of scheduler().next_event_time() in
  /// mode-agnostic drivers (workload::ChaosCampaign does).
  [[nodiscard]] std::optional<sim::Time> next_event_time() {
    if (sh_ != nullptr) return sh_->engine->next_event_time();
    return scheduler_.next_event_time();
  }

  /// Every trace lane of this network, main ring first, then one per
  /// shard >= 1 — feed to obs::merged_trace_jsonl /
  /// canonical_trace_jsonl. Unsharded: just the main ring.
  [[nodiscard]] std::vector<const obs::Trace*> trace_lanes() const;

  /// Reseed impairments with one independent RNG stream per (link,
  /// direction) instead of the single shared stream. Draw order then
  /// depends only on each link's own traffic, so results are identical
  /// across shard layouts — REQUIRED when impairments are armed on a
  /// K > 1 network (roll_impairment throws otherwise), and available
  /// unsharded so A/B comparisons can run both modes with equal loss.
  void seed_impairments_per_link(std::uint64_t seed);

 private:
  // sim::ShardClient (private base): the engine's view of this network.
  [[nodiscard]] std::uint32_t shard_count() const override;
  [[nodiscard]] sim::Scheduler& shard_scheduler(std::uint32_t shard) override;
  [[nodiscard]] sim::Duration lookahead() const override;
  void begin_shard(std::uint32_t shard) override;
  void end_shard(std::uint32_t shard) override;
  void exchange(sim::ParallelStats& stats) override;

  void transmit(NodeId from, LinkId link, Packet packet);

  /// Single funnel for handing a packet to its destination node: emits
  /// the kPacketDelivered trace record, then dispatches.
  void deliver_packet(NodeId to, const Packet& packet, std::uint32_t iface);

  /// `t` is the drop's trace stamp: the dropping context's clock (a
  /// resumed cross-shard unicast walk carries its origination time so
  /// drop records match the single-threaded run byte for byte).
  void trace_drop(obs::DropReason reason, LinkId link, sim::Time t) {
    plane_.trace.emit(t, obs::Entity::network(),
                      obs::TraceType::kPacketDropped,
                      static_cast<std::uint64_t>(reason), link);
  }

  /// Reserve FIFO transmission time on one link direction starting no
  /// earlier than `earliest`; returns the arrival time at the peer.
  sim::Time reserve_link(NodeId from, LinkId link, std::uint32_t bytes,
                         sim::Time earliest);

  /// Impairment verdict for one copy crossing `link` out of `from`.
  /// Called AFTER reserve_link: a lost packet still occupied the wire,
  /// so surviving traffic keeps its exact FIFO timing whether or not
  /// loss is enabled. Callers gate on impairments_armed_ so the
  /// disarmed fast path stays a single branch with zero RNG draws.
  enum class ImpairmentVerdict : std::uint8_t { kDeliver, kDrop, kDelay };
  /// `trace_now` stamps loss/reorder records (a resumed cross-shard
  /// unicast walk passes its origination time, matching K=1 stamps).
  ImpairmentVerdict roll_impairment(NodeId from, LinkId link,
                                    const Packet& packet, sim::Time trace_now);

  /// Pooled storage for multi-target fan-out groups. Records are
  /// recycled through a free list with their target capacity intact,
  /// so steady-state batched delivery never touches the allocator.
  struct FanoutBatch {
    Packet packet;
    std::vector<DeliveryTarget> targets;
  };
  std::uint32_t acquire_fanout_batch();
  void deliver_fanout_batch(std::uint32_t id);

  /// Registry-backed counter handles (the NetworkStats/LinkStats PODs
  /// are assembled on demand by stats()/link_stats()).
  struct NetworkCounters {
    obs::Counter packets_sent;
    obs::Counter bytes_sent;
    obs::Counter dropped_link_down;
    obs::Counter dropped_no_route;
    obs::Counter dropped_ttl;
    obs::Counter dropped_loss;
    obs::Counter reordered;
  };
  struct LinkCounters {
    obs::Counter packets;
    obs::Counter bytes;
  };

  // -- Sharding state (null unless enable_sharding ran) -----------------

  /// Per-shard runtime. Shard 0 reuses the network's own scheduler and
  /// real registry slots; shards >= 1 own a private scheduler bound to a
  /// private Plane (so sim.sched.* metrics never share main-registry
  /// slots) plus plain-uint64 counter *lanes* behind Counter::external
  /// handles. Each lane is written only by its shard's thread during a
  /// window and folded into the real slots at barriers.
  struct Shard {
    obs::Plane plane;
    std::unique_ptr<sim::Scheduler> sched;  ///< null for shard 0
    std::array<std::uint64_t, 7> net_lane{};
    std::vector<std::array<std::uint64_t, 2>> link_lane;
    NetworkCounters counters;        ///< external handles into net_lane
    std::vector<LinkCounters> links; ///< external handles into link_lane
  };

  /// One packet handed across a shard boundary. Appended by the sending
  /// shard during a window, drained single-threaded at the next barrier.
  struct CrossEntry {
    sim::Time arrival{};   ///< delivery (or walk-resume) time at `to`
    sim::Time sent_now{};  ///< sender clock at origination (drop stamps)
    NodeId to = 0;
    std::uint32_t iface = 0;  ///< arrival interface (deliveries only)
    std::uint8_t resume = 0;  ///< 1: continue a unicast walk at `to`
    Packet packet;
  };
  /// Queue for one (link, direction): written by exactly one shard (the
  /// sending endpoint's), so appends need no lock.
  struct Outbox {
    std::vector<CrossEntry> entries;
  };

  struct Sharding {
    ShardPlan plan;
    /// Deque: Shard holds a Plane (registry is pinned-address) and is
    /// neither copyable nor movable; deque growth never relocates.
    std::deque<Shard> shards;
    std::vector<Outbox> outboxes;       ///< indexed link * 2 + direction
    std::vector<CrossEntry> drain;      ///< barrier scratch, sorted merge
    std::unique_ptr<sim::ParallelEngine> engine;
  };

  [[nodiscard]] sim::Scheduler& sched_of(std::uint32_t shard) {
    return shard == 0 ? scheduler_ : *sh_->shards[shard].sched;
  }
  /// Counter lanes for traffic executing on behalf of node `from`
  /// (always `from`'s own shard — the only thread allowed to touch it).
  [[nodiscard]] NetworkCounters& counters_for(NodeId from) {
    if (sh_ == nullptr) return stats_;
    const std::uint32_t s = sh_->plan.shard_of[from];
    return s == 0 ? stats_ : sh_->shards[s].counters;
  }
  [[nodiscard]] LinkCounters& link_counters_for(NodeId from, LinkId link) {
    if (sh_ == nullptr) return link_stats_[link];
    const std::uint32_t s = sh_->plan.shard_of[from];
    return s == 0 ? link_stats_[link] : sh_->shards[s].links[link];
  }

  /// Fold every lane (shards >= 1) into the real registry slots.
  void flush_lanes();
  /// Hand one packet over a shard boundary (barrier delivers it).
  void cross_enqueue(NodeId from, LinkId link, CrossEntry entry);
  /// Continue a unicast walk from `from` toward packet.dst: hop-by-hop
  /// link reservation starting at `at`, pausing again at the next shard
  /// boundary. `trace_now` stamps drop records (origination time).
  void unicast_walk(NodeId from, NodeId dest, Packet packet, sim::Time at,
                    sim::Time trace_now);

  friend class ShardContext;
  /// lint: shared-state-guarded (thread_local: each worker owns its context)
  static thread_local const Network* tl_owner_;
  static thread_local std::uint32_t tl_shard_;

  Topology topology_;
  UnicastRouting routing_;
  /// Declared before scheduler_ so the scheduler can bind to it.
  obs::Plane plane_;
  sim::Scheduler scheduler_{true, obs::Scope{&plane_, obs::Entity::network()}};
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<LinkCounters> link_stats_;
  /// Per link, per direction ([0]: a->b, [1]: b->a): when the
  /// transmitter becomes free (FIFO serialization).
  std::vector<std::array<sim::Time, 2>> link_free_;
  std::unordered_map<ip::Address, NodeId> address_index_;
  std::vector<FanoutBatch> fanout_pool_;
  std::vector<std::uint32_t> fanout_free_;  // recycled pool ids
  bool fanout_batching_ = true;
  /// Impairment state. The vectors stay empty until a config is set,
  /// and impairments_armed_ keeps the lossless packet path at one
  /// branch (no lookups, no RNG) — pinned traces depend on that.
  std::vector<ImpairmentConfig> impair_cfg_;
  /// Gilbert-Elliott "in bad state" flag per link direction.
  std::vector<std::array<std::uint8_t, 2>> impair_gilbert_bad_;
  sim::Rng impair_rng_;
  /// Per-(link, direction) streams, armed by seed_impairments_per_link.
  /// Sharded runs require these: each stream is drawn only by its
  /// sending shard, so draw order is independent of shard layout.
  std::vector<std::array<sim::Rng, 2>> impair_rng_link_;
  bool impair_per_link_ = false;
  bool impairments_armed_ = false;
  NetworkCounters stats_;
  std::unique_ptr<Sharding> sh_;
};

}  // namespace express::net
