// Multi-access LAN segments.
//
// The paper's edge picture is a router port with *many* end hosts on a
// shared wire (§3.2's UDP mode "is intended for use in edge routers,
// with many neighboring end hosts"; §3.3's queries are multicast on the
// LAN). A LanHub models the wire at layer 2: every frame received on
// one port is repeated out all other ports, unmodified (no TTL
// decrement, no addressing). Attach hosts and one router to a hub and
// the router sees them all through a single interface.
//
// Constraints (asserted by construction, documented here): hubs are
// leaves of the router topology — no hub-to-hub links (no L2 loops),
// and one router per segment.
#pragma once

#include "net/network.hpp"
#include "net/node.hpp"
#include "net/replicate.hpp"
#include "sim/time.hpp"

namespace express::net {

class LanHub : public Node {
 public:
  LanHub(Network& network, NodeId id) : Node(network, id) {}

  void handle_packet(const Packet& packet, std::uint32_t in_iface) override {
    ReplicateOptions opts;
    opts.exclude_iface = in_iface;
    opts.decrement_ttl = false;  // L2 repeat: no TTL change
    replicate_all(network(), id(), packet, opts);
  }
};

/// Build a LAN segment: a hub node attached to `router`, with
/// `host_count` hosts on the wire. Returns {hub, hosts...}. The caller
/// attaches LanHub / host node types after constructing the Network.
struct LanSegment {
  NodeId hub = kInvalidNode;
  std::vector<NodeId> hosts;
};

inline LanSegment add_lan_segment(Topology& topology, NodeId router,
                                  std::uint32_t host_count,
                                  sim::Duration delay = sim::microseconds(50),
                                  double bandwidth_bps = 100e6) {
  LanSegment segment;
  segment.hub = topology.add_node(NodeKind::kLanHub, "lan");
  topology.add_link(router, segment.hub, delay, 1, bandwidth_bps);
  for (std::uint32_t h = 0; h < host_count; ++h) {
    const NodeId host = topology.add_host();
    topology.add_link(segment.hub, host, delay, 1, bandwidth_bps);
    segment.hosts.push_back(host);
  }
  return segment;
}

}  // namespace express::net
