// Simulated packets.
//
// A packet carries the IPv4 addressing fields the protocols dispatch on,
// a byte payload (control protocols encode/decode real wire bytes), and
// bookkeeping used by tests and the bandwidth accounting. Subcast's
// IP-in-IP encapsulation is modelled with a shared inner packet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ip/address.hpp"
#include "ip/header.hpp"

namespace express::net {

struct Packet {
  ip::Address src;
  ip::Address dst;
  ip::Protocol protocol = ip::Protocol::kUdp;
  std::uint8_t ttl = 64;

  /// Control payload wire bytes (ECMP, IGMP, PIM messages...). Data
  /// packets may leave this empty and set `data_bytes` instead.
  std::vector<std::uint8_t> payload;

  /// Application data size in bytes, for packets whose content the
  /// simulation does not need byte-for-byte (e.g. a video frame).
  std::uint32_t data_bytes = 0;

  /// Application-level sequence tag so receivers/tests can identify
  /// exactly which transmissions arrived.
  std::uint64_t sequence = 0;

  /// Encapsulated packet for IP-in-IP subcast (protocol == kIpInIp).
  std::shared_ptr<const Packet> inner;

  /// Total on-wire size: IP header + control bytes + data bytes
  /// (+ the encapsulated packet when present).
  [[nodiscard]] std::uint32_t wire_size() const {
    std::uint32_t size = static_cast<std::uint32_t>(ip::Header::kSize) +
                         static_cast<std::uint32_t>(payload.size()) + data_bytes;
    if (inner) size += inner->wire_size();
    return size;
  }
};

}  // namespace express::net
