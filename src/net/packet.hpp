// Simulated packets.
//
// A packet carries the IPv4 addressing fields the protocols dispatch on,
// a byte payload (control protocols encode/decode real wire bytes), and
// bookkeeping used by tests and the bandwidth accounting. Subcast's
// IP-in-IP encapsulation is modelled with a shared inner packet.
//
// Payload bytes are copy-on-write: replicating a packet N ways (a
// router fan-out, a LAN hub repeat, hop-by-hop unicast) shares one
// immutable buffer instead of reallocating per copy — the per-packet
// software overhead the paper's §5 cost analysis warns against. Writers
// go through mutable_payload(), which clones only when the buffer is
// actually shared.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ip/address.hpp"
#include "ip/header.hpp"

namespace express::net {

/// Shared immutable byte buffer with copy-on-write mutation.
///
/// Only const views escape (span / const vector&), so every copy of a
/// Packet may alias the same bytes; mutate() detaches a private copy
/// first when the buffer is shared.
class Payload {
 public:
  Payload() = default;

  /// Implicit: protocols keep writing `packet.payload = encode(msg)`.
  Payload(std::vector<std::uint8_t> bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<std::vector<std::uint8_t>>(std::move(bytes))) {}

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    static const std::vector<std::uint8_t> kEmpty;
    return data_ ? *data_ : kEmpty;
  }

  // The codecs take std::span, tests copy into vectors: both read paths
  // stay source-compatible with the old plain-vector field.
  operator const std::vector<std::uint8_t>&() const { return bytes(); }
  operator std::span<const std::uint8_t>() const { return bytes(); }

  [[nodiscard]] std::size_t size() const { return data_ ? data_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Copy-on-write access: returns a uniquely-owned mutable buffer,
  /// cloning the bytes first if any other Packet shares them.
  [[nodiscard]] std::vector<std::uint8_t>& mutate() {
    if (!data_) {
      data_ = std::make_shared<std::vector<std::uint8_t>>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<std::vector<std::uint8_t>>(*data_);
    }
    return *data_;
  }

  /// True when both payloads alias the same underlying buffer (used by
  /// tests to prove replication shares rather than copies).
  [[nodiscard]] bool shares_buffer_with(const Payload& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

 private:
  // Logically shared_ptr<const vector>: nothing hands out mutable
  // access to a shared buffer. Stored non-const so mutate() can edit a
  // uniquely-owned buffer without cloning.
  std::shared_ptr<std::vector<std::uint8_t>> data_;
};

struct Packet {
  ip::Address src;
  ip::Address dst;
  ip::Protocol protocol = ip::Protocol::kUdp;
  std::uint8_t ttl = 64;

  /// Control payload wire bytes (ECMP, IGMP, PIM messages...). Data
  /// packets may leave this empty and set `data_bytes` instead.
  /// Shared copy-on-write between packet copies; write access goes
  /// through mutable_payload().
  Payload payload;

  /// Application data size in bytes, for packets whose content the
  /// simulation does not need byte-for-byte (e.g. a video frame).
  std::uint32_t data_bytes = 0;

  /// Application-level sequence tag so receivers/tests can identify
  /// exactly which transmissions arrived.
  std::uint64_t sequence = 0;

  /// Encapsulated packet for IP-in-IP subcast (protocol == kIpInIp).
  std::shared_ptr<const Packet> inner;

  /// Write access to the payload bytes; clones them first if shared
  /// with another packet, so siblings of a replication never alias a
  /// writer's edits.
  [[nodiscard]] std::vector<std::uint8_t>& mutable_payload() {
    return payload.mutate();
  }

  /// Total on-wire size: IP header + control bytes + data bytes
  /// (+ the encapsulated packet when present).
  [[nodiscard]] std::uint32_t wire_size() const {
    std::uint32_t size = static_cast<std::uint32_t>(ip::Header::kSize) +
                         static_cast<std::uint32_t>(payload.size()) + data_bytes;
    if (inner) size += inner->wire_size();
    return size;
  }
};

}  // namespace express::net
