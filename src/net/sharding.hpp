// Topology partitioning and shard context for the parallel engine.
//
// A ShardPlan assigns every topology node to one of K shards such that
// only router-router links cross shard boundaries: hosts and LAN hubs
// are co-located with their adjacent router, so the cheap, zero- or
// near-zero-latency edge links never constrain the lookahead. The plan
// is a pure function of (topology, K) — identical across runs and
// worker counts — and its lookahead (the minimum delay over cross-shard
// links) is what sim::ParallelEngine uses as the conservative window.
//
// ShardContext is the RAII guard that routes Network scheduling,
// counter lanes, and trace emission to a specific node's shard while
// code for that node runs outside an engine window (node construction
// in attach(), fault-heal notification loops, direct host calls at
// barriers). Inside windows the engine installs the context itself.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"

namespace express::net {

class Network;

/// Deterministic node -> shard assignment plus the derived lookahead.
struct ShardPlan {
  std::uint32_t shards = 1;
  std::vector<std::uint32_t> shard_of;  ///< per topology node
  /// Minimum delay over links whose endpoints land in different shards;
  /// Duration::max() when nothing crosses (K == 1).
  sim::Duration lookahead = sim::Duration::max();
  std::vector<LinkId> cross_links;  ///< links crossing shard boundaries

  [[nodiscard]] bool is_cross(LinkId link) const { return cross_flag_[link]; }

  std::vector<std::uint8_t> cross_flag_;  ///< per link, filled by partition
};

/// Partition `topology` into `shards` parts: balanced deterministic BFS
/// growth over the router graph (lowest-id seeds, neighbor order by
/// node id), then hosts/hubs join their nearest assigned neighbor.
/// Throws std::invalid_argument when shards == 0 or exceeds the router
/// count, and std::logic_error if a cross-shard link has zero delay
/// (that would make the conservative lookahead vacuous).
[[nodiscard]] ShardPlan partition_topology(const Topology& topology,
                                           std::uint32_t shards);

/// RAII: route the calling thread's Network interactions (scheduler(),
/// now(), counter lanes) to `node`'s shard. No-op on unsharded
/// networks. Nestable; restores the previous context on destruction.
class ShardContext {
 public:
  ShardContext(Network& network, NodeId node);
  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;
  ~ShardContext();

 private:
  const Network* prev_owner_ = nullptr;
  std::uint32_t prev_shard_ = 0;
  bool active_ = false;
};

}  // namespace express::net
