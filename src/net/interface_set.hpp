// A small dynamic bitset of interface indices.
//
// This is the network layer's canonical representation of "a set of
// interfaces on one node" — the currency of the shared replication
// primitive (net/replicate.hpp) and of every protocol's outgoing
// interface list. FIB entries hold the set of outgoing interfaces as a
// bitmap (the paper's 12-byte entry budgets 32 bits for it, Fig. 5).
// Router-internal state uses this growable variant so simulated hubs
// with high fanout also work; conversion to the packed wire/hardware
// format asserts the 32-interface budget.
#pragma once

#include <cstdint>
#include <vector>

namespace express::net {

class InterfaceSet {
 public:
  void set(std::uint32_t iface) {
    const std::size_t word = iface / 64;
    if (word >= bits_.size()) bits_.resize(word + 1, 0);
    bits_[word] |= (std::uint64_t{1} << (iface % 64));
  }

  void clear(std::uint32_t iface) {
    const std::size_t word = iface / 64;
    if (word < bits_.size()) bits_[word] &= ~(std::uint64_t{1} << (iface % 64));
  }

  [[nodiscard]] bool test(std::uint32_t iface) const {
    const std::size_t word = iface / 64;
    return word < bits_.size() &&
           (bits_[word] & (std::uint64_t{1} << (iface % 64))) != 0;
  }

  [[nodiscard]] bool empty() const {
    for (std::uint64_t w : bits_) {
      if (w != 0) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : bits_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Enumerate set interfaces in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t word = 0; word < bits_.size(); ++word) {
      std::uint64_t w = bits_[word];
      while (w != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(w));
        fn(static_cast<std::uint32_t>(word * 64 + bit));
        w &= w - 1;
      }
    }
  }

  /// Low 32 bits, for conversion to the packed FIB format. Valid only
  /// when no interface >= 32 is set (checked by the caller).
  [[nodiscard]] std::uint32_t low32() const {
    return bits_.empty() ? 0 : static_cast<std::uint32_t>(bits_[0] & 0xFFFFFFFFULL);
  }

  [[nodiscard]] bool fits_in_32() const {
    if (bits_.empty()) return true;
    if ((bits_[0] >> 32) != 0) return false;
    for (std::size_t i = 1; i < bits_.size(); ++i) {
      if (bits_[i] != 0) return false;
    }
    return true;
  }

  friend bool operator==(const InterfaceSet& a, const InterfaceSet& b) {
    const std::size_t n = std::max(a.bits_.size(), b.bits_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t wa = i < a.bits_.size() ? a.bits_[i] : 0;
      const std::uint64_t wb = i < b.bits_.size() ? b.bits_[i] : 0;
      if (wa != wb) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> bits_;
};

}  // namespace express::net
