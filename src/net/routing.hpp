// Unicast routing: link-state shortest paths over the topology.
//
// ECMP's tree-building leg is deliberately thin: subscriptions are routed
// toward the source with reverse-path forwarding on whatever the unicast
// routing protocol already computed (paper §3: "the RPF routing component
// of ECMP relies on, and scales with, existing unicast topology
// information"). This class is that existing information — an all-pairs
// shortest-path table recomputed on topology changes, exactly what a
// converged link-state IGP would give each router.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"

namespace express::net {

class UnicastRouting {
 public:
  explicit UnicastRouting(const Topology& topo) : topo_(&topo) { recompute(); }

  /// Rebuild all routing tables; call after any link up/down change.
  /// Incremented `version()` lets protocol code detect staleness.
  void recompute();

  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Next hop from `from` toward `to`; nullopt when unreachable or equal.
  [[nodiscard]] std::optional<NodeId> next_hop(NodeId from, NodeId to) const;

  /// Total path cost, or nullopt when unreachable.
  [[nodiscard]] std::optional<std::uint32_t> cost(NodeId from, NodeId to) const;

  /// Hop count of the shortest path (by cost), or nullopt when unreachable.
  [[nodiscard]] std::optional<std::uint32_t> hop_count(NodeId from, NodeId to) const;

  /// Propagation delay summed along the path, or nullopt when unreachable.
  [[nodiscard]] std::optional<sim::Duration> path_delay(NodeId from, NodeId to) const;

  /// Full node sequence from `from` to `to` inclusive; empty when
  /// unreachable. For from == to returns {from}.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  /// Reverse-path-forwarding neighbor: the neighbor of `node` on the
  /// shortest path toward `source`. This is where a router sends joins,
  /// and the only interface from which it accepts channel data.
  [[nodiscard]] std::optional<NodeId> rpf_neighbor(NodeId node, NodeId source) const {
    return next_hop(node, source);
  }

  /// Interface index of the RPF neighbor on `node`.
  [[nodiscard]] std::optional<std::uint32_t> rpf_interface(NodeId node,
                                                           NodeId source) const;

 private:
  static constexpr std::uint32_t kUnreachable =
      std::numeric_limits<std::uint32_t>::max();

  void dijkstra(NodeId origin);

  const Topology* topo_;
  std::uint64_t version_ = 0;
  // tables_[origin][dest] = {cost, first_hop_from_origin, hops, delay_ns}
  struct Entry {
    std::uint32_t cost = kUnreachable;
    NodeId first_hop = kInvalidNode;
    std::uint32_t hops = 0;
    std::int64_t delay_ns = 0;
  };
  std::vector<std::vector<Entry>> tables_;
};

}  // namespace express::net
