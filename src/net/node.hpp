// Protocol node base class.
//
// Every simulated element that receives packets — EXPRESS routers and
// hosts, PIM/CBT/DVMRP baseline routers, session relays — derives from
// Node and is attached to a Network, which invokes handle_packet() with
// the arrival interface. The arrival interface is semantically important:
// the EXPRESS fast path drops channel packets whose incoming interface
// does not match the FIB entry's RPF interface (paper §3.4).
#pragma once

#include <cstdint>

#include "ip/address.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"

namespace express::net {

class Network;

class Node {
 public:
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  virtual ~Node() = default;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] ip::Address address() const { return address_; }

  /// Deliver a packet that arrived on `in_interface` of this node.
  virtual void handle_packet(const Packet& packet, std::uint32_t in_interface) = 0;

  /// Called after the network recomputes unicast routing (link up/down).
  /// Routers use this to re-join channels over new paths (paper §3.2).
  virtual void on_routing_change() {}

  /// The fabric this node is attached to (middleware layered on a host,
  /// like the session relay, needs the scheduler and topology).
  [[nodiscard]] Network& network() const { return *network_; }

 protected:
  Node(Network& network, NodeId id);

 private:
  Network* network_;
  NodeId id_;
  ip::Address address_;
};

}  // namespace express::net
