// ECMP-over-TCP message batching (§5.3).
//
// A core router emits thousands of Counts per second; TCP mode streams
// them, so consecutive messages to the same neighbor share segments —
// the paper's "approximately 92 16-byte Count messages fit in a
// 1480-byte maximum-sized TCP segment". The Batcher queues encoded
// messages per neighbor and flushes a concatenated payload when either
// the coalescing window expires or a segment fills.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ecmp/codec.hpp"
#include "net/topology.hpp"
#include "sim/det.hpp"
#include "sim/scheduler.hpp"

namespace express::ecmp {

class Batcher {
 public:
  /// `flush` delivers one coalesced payload to a neighbor.
  using FlushFn =
      std::function<void(net::NodeId neighbor, std::vector<std::uint8_t> payload)>;

  Batcher(sim::Scheduler& scheduler, sim::Duration window, FlushFn flush)
      : scheduler_(&scheduler), window_(window), flush_(std::move(flush)) {}

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;
  ~Batcher() {
    // lint: order-independent (timer cancellations commute)
    for (auto& [neighbor, q] : queues_) q.timer.cancel();
  }

  /// Queue `msg` for `neighbor`. Flushes immediately when the segment
  /// fills; otherwise a timer flushes after the coalescing window. A
  /// flushed payload never exceeds kMaxSegmentBytes: when the encoded
  /// message would overflow the pending segment, the pending bytes go
  /// out first and the message starts a fresh segment.
  void enqueue(net::NodeId neighbor, const Message& msg) {
    Queue& q = queues_[neighbor];
    if (!q.bytes.empty() && q.bytes.size() + encoded_size(msg) > kMaxSegmentBytes) {
      flush_now(neighbor);
    }
    Queue& fresh = queues_[neighbor];  // flush_ may re-enter and rehash queues_
    encode(msg, fresh.bytes);
    ++fresh.messages;
    if (fresh.bytes.size() >= kMaxSegmentBytes) {
      flush_now(neighbor);
      return;
    }
    if (!fresh.timer.pending()) {
      fresh.timer = scheduler_->schedule_after(
          window_, [this, neighbor]() { flush_now(neighbor); });
    }
  }

  /// Flush one neighbor's queue immediately (no-op when empty).
  void flush_now(net::NodeId neighbor) {
    auto it = queues_.find(neighbor);
    if (it == queues_.end() || it->second.bytes.empty()) return;
    it->second.timer.cancel();
    std::vector<std::uint8_t> payload = std::move(it->second.bytes);
    it->second.bytes = {};
    it->second.messages = 0;
    ++segments_sent_;
    flush_(neighbor, std::move(payload));
  }

  /// Flush everything (e.g. before a deterministic measurement point).
  /// Neighbors flush in ascending NodeId order: iterating the hash map
  /// directly would make packet-emission order depend on the hash
  /// implementation, breaking bit-for-bit determinism across platforms.
  void flush_all() {
    for (net::NodeId neighbor : det::sorted_keys(queues_)) {
      flush_now(neighbor);  // no-op for queues that are already empty
    }
  }

  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }

 private:
  struct Queue {
    std::vector<std::uint8_t> bytes;
    std::size_t messages = 0;
    sim::EventHandle timer;
  };

  sim::Scheduler* scheduler_;
  sim::Duration window_;
  FlushFn flush_;
  std::unordered_map<net::NodeId, Queue> queues_;
  std::uint64_t segments_sent_ = 0;
};

}  // namespace express::ecmp
