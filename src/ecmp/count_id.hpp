// The ECMP countId space.
//
// ECMP generalizes subscribe/unsubscribe into counting: a countId names
// *what* is being counted. The paper reserves ids for the subscriber
// count (which doubles as tree maintenance), neighbor discovery, and an
// all-channels refresh solicitation; it designates ranges for
// network-layer resources (never forwarded to leaf hosts, §3.1 fn. 3),
// locally-defined use, and application-defined semantics (§2.2.1).
#pragma once

#include <cstdint>

namespace express::ecmp {

using CountId = std::uint16_t;

// --- Reserved ids (paper §3.2, §3.3) ---------------------------------
/// Number of subscribers in a subtree; maintains the distribution tree.
inline constexpr CountId kSubscriberId = 0;
/// Neighboring EXPRESS routers (periodic discovery / keepalive).
inline constexpr CountId kNeighborsId = 1;
/// Solicits Count retransmissions for all channels (general query).
inline constexpr CountId kAllChannelsId = 2;

// --- Network-layer resource counts [0x0100, 0x1000) -------------------
// Answered by routers about the tree itself; not forwarded to hosts.
inline constexpr CountId kNetworkRangeBegin = 0x0100;
inline constexpr CountId kNetworkRangeEnd = 0x1000;
/// Number of distribution-tree links in the subtree (the paper's
/// transit-domain settlement example).
inline constexpr CountId kLinkCountId = 0x0100;
/// Number of on-tree routers in the subtree.
inline constexpr CountId kRouterCountId = 0x0101;
/// Cost-weighted tree size (sum of link costs of subtree links).
inline constexpr CountId kWeightedTreeSizeId = 0x0102;

// --- Locally-defined range [0x1000, 0x4000) ---------------------------
inline constexpr CountId kLocalRangeBegin = 0x1000;
inline constexpr CountId kLocalRangeEnd = 0x4000;
/// Tree links within the initiating router's routing domain — the
/// paper's transit-settlement example ("the ingress router for transit
/// domain D might initiate a query to count the number of links used
/// within D"). The query never crosses a domain boundary.
inline constexpr CountId kDomainLinkCountId = kLocalRangeBegin;

// --- Application-defined range [0x4000, 0xFFFF] -----------------------
// Forwarded all the way to subscriber applications (votes, ACK/NACK
// collection for reliable multicast, ...).
inline constexpr CountId kAppRangeBegin = 0x4000;

[[nodiscard]] constexpr bool is_network_count(CountId id) {
  return id >= kNetworkRangeBegin && id < kNetworkRangeEnd;
}

[[nodiscard]] constexpr bool is_local_count(CountId id) {
  return id >= kLocalRangeBegin && id < kLocalRangeEnd;
}

[[nodiscard]] constexpr bool is_app_count(CountId id) {
  return id >= kAppRangeBegin;
}

/// Ids forwarded to leaf hosts: the subscriber count and the
/// application-defined range. Network/local counts stop at routers.
[[nodiscard]] constexpr bool forwarded_to_hosts(CountId id) {
  return id == kSubscriberId || is_app_count(id);
}

}  // namespace express::ecmp
