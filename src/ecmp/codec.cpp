#include "ecmp/codec.hpp"

#include <algorithm>
#include <limits>

namespace express::ecmp {

namespace {

constexpr std::uint8_t kFlagHasKey = 0x01;
constexpr std::uint8_t kFlagHasSeq = 0x02;
constexpr std::size_t kHeaderSize = 12;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xFFFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFU));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return (std::uint32_t{b[at]} << 24) | (std::uint32_t{b[at + 1]} << 16) |
         (std::uint32_t{b[at + 2]} << 8) | std::uint32_t{b[at + 3]};
}

std::uint64_t get_u64(std::span<const std::uint8_t> b, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u32(b, at)) << 32) | get_u32(b, at + 4);
}

void put_header(std::vector<std::uint8_t>& out, MessageType type,
                std::uint8_t flags, CountId count_id,
                const ip::ChannelId& channel) {
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(flags);
  put_u16(out, count_id);
  put_u32(out, channel.source.value());
  put_u32(out, channel.dest.value());
}

/// Counts are 32 bits on the wire (10M-subscriber channels fit with
/// headroom); saturate rather than wrap if an aggregate overflows.
std::uint32_t saturate_u32(std::int64_t v) {
  if (v < 0) return 0;
  return static_cast<std::uint32_t>(
      std::min<std::int64_t>(v, std::numeric_limits<std::uint32_t>::max()));
}

}  // namespace

std::size_t encoded_size(const Message& msg) {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, CountQuery>) {
          return kHeaderSize + 8;  // timeout_ms + seq
        } else if constexpr (std::is_same_v<T, Count>) {
          std::size_t size = kHeaderSize + 4;  // count
          if (m.query_seq != 0) size += 4;
          if (m.key) size += 8;
          return size;
        } else if constexpr (std::is_same_v<T, CountResponse>) {
          return kHeaderSize + 4;  // status + pad
        } else {
          return kHeaderSize + 8;  // key
        }
      },
      msg);
}

void encode(const Message& msg, std::vector<std::uint8_t>& out) {
  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, CountQuery>) {
          put_header(out, MessageType::kCountQuery, kFlagHasSeq, m.count_id,
                     m.channel);
          const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              m.timeout)
                              .count();
          put_u32(out, saturate_u32(ms));
          put_u32(out, m.query_seq);
        } else if constexpr (std::is_same_v<T, Count>) {
          std::uint8_t flags = 0;
          if (m.query_seq != 0) flags |= kFlagHasSeq;
          if (m.key) flags |= kFlagHasKey;
          put_header(out, MessageType::kCount, flags, m.count_id, m.channel);
          put_u32(out, saturate_u32(m.count));
          if (m.query_seq != 0) put_u32(out, m.query_seq);
          if (m.key) put_u64(out, *m.key);
        } else if constexpr (std::is_same_v<T, CountResponse>) {
          put_header(out, MessageType::kCountResponse, 0, m.count_id,
                     m.channel);
          out.push_back(static_cast<std::uint8_t>(m.status));
          out.push_back(0);
          out.push_back(0);
          out.push_back(0);
        } else {
          put_header(out, MessageType::kKeyRegister, kFlagHasKey, 0, m.channel);
          put_u64(out, m.key);
        }
      },
      msg);
}

std::vector<std::uint8_t> encode(const Message& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(msg));
  encode(msg, out);
  return out;
}

std::optional<std::pair<Message, std::size_t>> decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  const auto type = static_cast<MessageType>(bytes[0]);
  const std::uint8_t flags = bytes[1];
  const CountId count_id = get_u16(bytes, 2);
  ip::ChannelId channel{ip::Address{get_u32(bytes, 4)},
                        ip::Address{get_u32(bytes, 8)}};
  std::size_t at = kHeaderSize;
  auto need = [&](std::size_t n) { return bytes.size() >= at + n; };

  switch (type) {
    case MessageType::kCountQuery: {
      if (!need(8)) return std::nullopt;
      CountQuery q;
      q.channel = channel;
      q.count_id = count_id;
      q.timeout = sim::milliseconds(get_u32(bytes, at));
      q.query_seq = get_u32(bytes, at + 4);
      return std::pair<Message, std::size_t>{q, at + 8};
    }
    case MessageType::kCount: {
      if (!need(4)) return std::nullopt;
      Count c;
      c.channel = channel;
      c.count_id = count_id;
      c.count = get_u32(bytes, at);
      at += 4;
      if (flags & kFlagHasSeq) {
        if (!need(4)) return std::nullopt;
        c.query_seq = get_u32(bytes, at);
        at += 4;
      }
      if (flags & kFlagHasKey) {
        if (!need(8)) return std::nullopt;
        c.key = get_u64(bytes, at);
        at += 8;
      }
      return std::pair<Message, std::size_t>{c, at};
    }
    case MessageType::kCountResponse: {
      if (!need(4)) return std::nullopt;
      CountResponse r;
      r.channel = channel;
      r.count_id = count_id;
      const std::uint8_t status = bytes[at];
      if (status > static_cast<std::uint8_t>(Status::kNotOnTree)) {
        return std::nullopt;
      }
      r.status = static_cast<Status>(status);
      return std::pair<Message, std::size_t>{r, at + 4};
    }
    case MessageType::kKeyRegister: {
      if (!need(8)) return std::nullopt;
      KeyRegister k;
      k.channel = channel;
      k.key = get_u64(bytes, at);
      return std::pair<Message, std::size_t>{k, at + 8};
    }
  }
  return std::nullopt;
}

std::vector<Message> decode_all(std::span<const std::uint8_t> bytes) {
  std::vector<Message> out;
  std::size_t at = 0;
  while (at < bytes.size()) {
    auto parsed = decode(bytes.subspan(at));
    if (!parsed) break;
    out.push_back(std::move(parsed->first));
    at += parsed->second;
  }
  return out;
}

std::size_t messages_per_segment(const Message& msg) {
  const std::size_t size = encoded_size(msg);
  return size == 0 ? 0 : kMaxSegmentBytes / size;
}

}  // namespace express::ecmp
