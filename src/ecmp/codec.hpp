// ECMP wire codec.
//
// Fixed little parser with explicit bounds checks; messages are
// big-endian. An unsolicited Count without key is exactly 16 bytes,
// matching the paper's §5.3 arithmetic ("approximately 92 16-byte Count
// messages fit in a 1480-byte maximum-sized TCP segment"); the optional
// authenticator adds 8 bytes (§5.2). Batched encoding packs several
// messages into one segment the way ECMP-over-TCP does.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "ecmp/messages.hpp"

namespace express::ecmp {

using Message =
    std::variant<CountQuery, Count, CountResponse, KeyRegister>;

/// Serialized size of a message in bytes.
[[nodiscard]] std::size_t encoded_size(const Message& msg);

/// Append the wire form of `msg` to `out`.
void encode(const Message& msg, std::vector<std::uint8_t>& out);

/// Serialize one message.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& msg);

/// Parse one message from the front of `bytes`; on success also returns
/// the number of bytes consumed. Returns nullopt for truncated input,
/// unknown types, or malformed flags.
[[nodiscard]] std::optional<std::pair<Message, std::size_t>> decode(
    std::span<const std::uint8_t> bytes);

/// Parse a batch (e.g. one TCP segment worth); stops at the first
/// malformed message. All successfully parsed prefix messages returned.
[[nodiscard]] std::vector<Message> decode_all(
    std::span<const std::uint8_t> bytes);

/// Ethernet MSS the paper's segment-packing arithmetic assumes.
inline constexpr std::size_t kMaxSegmentBytes = 1480;

/// How many copies of `msg` fit in one maximum-sized segment.
[[nodiscard]] std::size_t messages_per_segment(const Message& msg);

}  // namespace express::ecmp
