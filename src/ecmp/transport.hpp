// ECMP session transport (paper §3.2, §3.3, §5.3).
//
// Transport is the one place a router's ECMP messages enter and leave
// the wire. It owns everything session-shaped:
//
//   * encode/decode and the control-byte + message-type counters,
//   * per-interface TCP/UDP mode and the UDP soft-state refresh clock,
//   * the neighbor table: liveness from any traffic plus periodic
//     neighbor-discovery queries and keepalive expiry (§3.3),
//   * §5.3 segment batching (TCP mode) via ecmp::Batcher,
//   * the shared control-sequence counter (discovery keepalives and
//     router-initiated counts interleave on one sequence space).
//
// Timer/retry knobs live in TransportPolicy so the protocol layers
// above never reach into raw durations.
//
// Module seam: the transport understands neighbors, packets, and
// sessions — never channels. It holds no subscription or counting
// state; protocol reactions (refresh this entry, this neighbor died,
// these channels need re-announcing) flow upward through
// TransportHooks and the Delivery struct, and the layers above decide
// what they mean. This keeps the session machinery reusable by any
// ECMP speaker and testable with scripted packets (see
// tests/test_transport.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ecmp/batcher.hpp"
#include "ecmp/codec.hpp"
#include "ecmp/messages.hpp"
#include "ecmp/session.hpp"
#include "ip/address.hpp"
#include "net/adjacency.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace express::ecmp {

/// Retry/timeout policy for ECMP sessions: every duration the transport
/// (or a layer above, via accessors) uses to arm a timer.
struct TransportPolicy {
  /// Multiple of the upstream-link RTT subtracted from a CountQuery's
  /// timeout at each hop, so children time out before parents (§3.1).
  double timeout_rtt_multiple = 2.0;

  /// Enable periodic neighbor discovery / keepalive queries (§3.3).
  bool neighbor_discovery = false;
  sim::Duration neighbor_query_interval = sim::seconds(30);
  sim::Duration neighbor_timeout = sim::seconds(95);

  /// UDP-mode soft state: per-channel refresh query interval and the
  /// number of unanswered intervals before a downstream entry expires.
  sim::Duration udp_query_interval = sim::seconds(60);
  std::uint32_t udp_robustness = 2;

  /// §5.3 TCP segment coalescing window. Unset = a packet per message.
  std::optional<sim::Duration> batch_window;

  /// How long a UDP-mode downstream entry lives without a refresh.
  [[nodiscard]] sim::Duration udp_lifetime() const {
    return udp_query_interval * udp_robustness + udp_query_interval / 2;
  }
  /// Reply deadline carried in UDP refresh queries.
  [[nodiscard]] sim::Duration udp_reply_timeout() const {
    return udp_query_interval / 2;
  }
};

struct TransportStats {
  std::uint64_t counts_sent = 0;
  std::uint64_t counts_received = 0;
  std::uint64_t queries_sent = 0;
  std::uint64_t queries_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t control_bytes_received = 0;
};

/// Upcalls from the session machinery into the protocol layers.
struct TransportHooks {
  /// One UDP soft-state refresh round is due (fires every
  /// udp_query_interval while any interface runs in UDP mode). Returns
  /// whether UDP soft state remains: when false the refresh clock
  /// stops, so torn-down neighbors (chaos router death) stop leaking
  /// scheduled events and refresh bytes. ensure_udp_refresh() re-arms
  /// it when new soft state appears.
  std::function<bool()> udp_refresh_round;
  /// A neighbor's session expired (keepalive timeout, §3.2/§3.3).
  std::function<void(net::NodeId)> neighbor_died;
};

/// An inbound ECMP packet, decoded and attributed to a live session.
struct Delivery {
  net::NodeId from = net::kInvalidNode;
  /// A previously failed session revived: the peer lost our state, so
  /// the subscription layer must re-announce its channels (§3.2).
  bool reestablished = false;
  std::vector<Message> messages;
};

class Transport {
 public:
  Transport(net::Network& network, net::NodeId node, TransportPolicy policy,
            TransportHooks hooks);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // --- wire I/O ------------------------------------------------------
  /// Send one message to a neighbor (batched in TCP mode when a batch
  /// window is configured). Classifies the message into the sent-side
  /// counters. Unreachable neighbors (partition) are dropped silently
  /// after byte accounting, like a failed TCP write.
  void send(net::NodeId neighbor, const Message& msg);

  /// LAN-wide general query out one multi-access interface (§3.2): one
  /// packet to the all-routers group covers every member on the wire.
  void send_lan_query(std::uint32_t iface, const CountQuery& query);

  /// Unicast one message to a non-adjacent ECMP speaker (e.g. the host
  /// that tunnelled a remote CountQuery here, §2.1). Routed as pure IP
  /// transit: intermediate routers never dispatch it.
  void send_remote(ip::Address dest, const Message& msg);

  /// Account, attribute, and decode an inbound ECMP packet.
  Delivery receive(const net::Packet& packet, std::uint32_t in_iface);

  // --- interface modes (§3.2) ----------------------------------------
  void set_mode(std::uint32_t iface, Mode mode);
  [[nodiscard]] Mode mode(std::uint32_t iface) const;

  /// Re-arm the UDP refresh clock if any interface runs in UDP mode.
  /// Called by the subscription layer when new UDP soft state is
  /// installed after the clock ran dry (see TransportHooks).
  void ensure_udp_refresh();
  /// True while a refresh tick is scheduled (test introspection).
  [[nodiscard]] bool udp_refresh_active() const {
    return udp_refresh_scheduled_;
  }

  // --- sequence numbers ----------------------------------------------
  /// Next value of the shared control-sequence counter (discovery
  /// keepalives and locally initiated counts share one space).
  std::uint32_t next_seq() { return next_seq_++; }

  // --- link timing ---------------------------------------------------
  /// Round-trip time of the link on `iface` (for §3.1 timeout budgets).
  [[nodiscard]] sim::Duration link_rtt(std::uint32_t iface) const;

  // --- introspection -------------------------------------------------
  [[nodiscard]] const TransportPolicy& policy() const { return policy_; }

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] TransportStats stats() const {
    TransportStats s;
    s.counts_sent = stats_.counts_sent.value();
    s.counts_received = stats_.counts_received.value();
    s.queries_sent = stats_.queries_sent.value();
    s.queries_received = stats_.queries_received.value();
    s.responses_sent = stats_.responses_sent.value();
    s.responses_received = stats_.responses_received.value();
    s.control_bytes_sent = stats_.control_bytes_sent.value();
    s.control_bytes_received = stats_.control_bytes_received.value();
    return s;
  }
  [[nodiscard]] const NeighborTable& neighbors() const { return neighbors_; }
  [[nodiscard]] std::uint64_t segments_sent() const {
    return batcher_ ? batcher_->segments_sent() : 0;
  }

 private:
  void transmit(net::NodeId neighbor, std::vector<std::uint8_t> payload);
  void classify_sent(const Message& msg);
  void schedule_udp_refresh();
  void udp_refresh_tick();
  void schedule_neighbor_discovery();
  void neighbor_discovery_tick();

  /// Registry-backed counter handles (TransportStats is assembled on
  /// demand by stats()).
  struct TransportCounters {
    obs::Counter counts_sent;
    obs::Counter counts_received;
    obs::Counter queries_sent;
    obs::Counter queries_received;
    obs::Counter responses_sent;
    obs::Counter responses_received;
    obs::Counter control_bytes_sent;
    obs::Counter control_bytes_received;
  };

  net::Network* network_;
  net::NodeId node_;
  TransportPolicy policy_;
  TransportHooks hooks_;
  obs::Scope scope_;
  TransportCounters stats_;
  std::unordered_map<std::uint32_t, Mode> iface_modes_;
  NeighborTable neighbors_;
  std::unique_ptr<Batcher> batcher_;  ///< §5.3 segment coalescing
  std::uint32_t next_seq_ = 1;
  bool udp_refresh_scheduled_ = false;
};

}  // namespace express::ecmp
