// ECMP neighbor sessions.
//
// ECMP runs over TCP or UDP per interface (paper §3.2): TCP mode keeps a
// connection per neighbor — one subscribe message and one unsubscribe per
// channel, a single keepalive detects failure, no per-channel refresh;
// UDP mode (for edge routers with many hosts) uses periodic CountQuery
// refreshes like IGMP, with no report suppression (like IGMPv3).
//
// The simulator does not re-implement the TCP state machine; what ECMP
// relies on is (a) reliable in-order delivery while the peer lives and
// (b) prompt failure detection. NeighborTable provides (b): liveness
// tracked from any ECMP traffic plus periodic neighbor-discovery
// queries (§3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"

namespace express::ecmp {

enum class Mode : std::uint8_t {
  kTcp,  ///< connection per neighbor; unsolicited joins/leaves only
  kUdp,  ///< soft state; periodic query/refresh, explicit leaves
};

struct NeighborSession {
  net::NodeId neighbor = net::kInvalidNode;
  std::uint32_t iface = 0;
  sim::Time last_heard{0};
  bool alive = true;
};

/// Tracks per-neighbor liveness for one router.
class NeighborTable {
 public:
  /// Record traffic (or an explicit keepalive/discovery reply) from
  /// `neighbor` on `iface` at time `now`. Returns true only when a
  /// previously *failed* session revives — the TCP re-establishment on
  /// which the downstream neighbor re-announces all its channels
  /// (§3.2). First contact returns false: the initial join itself is
  /// the announcement.
  bool heard_from(net::NodeId neighbor, std::uint32_t iface, sim::Time now);

  /// Sweep for sessions silent longer than `timeout`; marks them dead
  /// and returns them (the router then subtracts their counts, §3.2).
  std::vector<NeighborSession> expire(sim::Time now, sim::Duration timeout);

  /// Explicitly kill one session (e.g. link-down notification).
  /// Returns the session if it was alive.
  std::optional<NeighborSession> kill(net::NodeId neighbor);

  [[nodiscard]] bool is_alive(net::NodeId neighbor) const;
  [[nodiscard]] std::size_t alive_count() const;

  [[nodiscard]] const std::unordered_map<net::NodeId, NeighborSession>&
  sessions() const {
    return sessions_;
  }

 private:
  std::unordered_map<net::NodeId, NeighborSession> sessions_;
};

}  // namespace express::ecmp
