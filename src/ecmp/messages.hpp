// ECMP message set (paper §3): CountQuery, Count, CountResponse, plus
// the KeyRegister control the source uses for channelKey() (§2.1). The
// structs are the in-memory form; ecmp/codec.* provides the wire form.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ecmp/count_id.hpp"
#include "ip/channel.hpp"
#include "sim/time.hpp"

namespace express::ecmp {

enum class MessageType : std::uint8_t {
  kCountQuery = 1,
  kCount = 2,
  kCountResponse = 3,
  kKeyRegister = 4,
};

/// CountQuery(channel, countId, timeout) — fans out down the tree. Each
/// hop decrements the timeout by a small multiple of the upstream RTT so
/// children time out before their parents (§3.1).
struct CountQuery {
  ip::ChannelId channel;
  CountId count_id = kSubscriberId;
  sim::Duration timeout = sim::seconds(1);
  /// Correlates replies with queries; 0 is reserved for unsolicited
  /// (tree-maintenance / proactive) Counts.
  std::uint32_t query_seq = 0;
};

/// Count(channel, countId, count, [K]) — either an aggregated reply to a
/// CountQuery (query_seq != 0) or an unsolicited tree-maintenance /
/// proactive update (query_seq == 0). A non-zero unsolicited subscriber
/// Count is a join; a zero one is a leave (§3.2).
struct Count {
  ip::ChannelId channel;
  CountId count_id = kSubscriberId;
  std::int64_t count = 0;
  std::uint32_t query_seq = 0;
  std::optional<ip::ChannelKey> key;  ///< only on authenticated channels
};

enum class Status : std::uint8_t {
  kOk = 0,
  kUnsupportedCount = 1,
  kInvalidKey = 2,
  kNotOnTree = 3,
};

/// CountResponse(channel, countId, status) — acknowledges or rejects a
/// Count; carries subscription validation results downstream (§3.2).
struct CountResponse {
  ip::ChannelId channel;
  CountId count_id = kSubscriberId;
  Status status = Status::kOk;
};

/// channelKey(channel, K) service-interface call, carried from the
/// source host to its first-hop router. The router records the
/// authoritative key; thereafter only subscriptions presenting K are
/// accepted anywhere on the tree (validated hop-by-hop, cached).
struct KeyRegister {
  ip::ChannelId channel;
  ip::ChannelKey key = ip::kNoKey;
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kUnsupportedCount: return "unsupported-count";
    case Status::kInvalidKey: return "invalid-key";
    case Status::kNotOnTree: return "not-on-tree";
  }
  return "unknown";
}

}  // namespace express::ecmp
