#include "ecmp/session.hpp"

#include <algorithm>

namespace express::ecmp {

bool NeighborTable::heard_from(net::NodeId neighbor, std::uint32_t iface,
                               sim::Time now) {
  auto [it, inserted] = sessions_.try_emplace(neighbor);
  NeighborSession& s = it->second;
  const bool revived = !inserted && !s.alive;
  s.neighbor = neighbor;
  s.iface = iface;
  s.last_heard = now;
  s.alive = true;
  return revived;
}

std::vector<NeighborSession> NeighborTable::expire(sim::Time now,
                                                   sim::Duration timeout) {
  std::vector<NeighborSession> dead;
  // lint: order-independent (flag flips commute; result sorted below)
  for (auto& [id, s] : sessions_) {
    if (s.alive && now - s.last_heard > timeout) {
      s.alive = false;
      dead.push_back(s);
    }
  }
  // The caller fires neighbor-death teardown per entry: hand the dead
  // sessions over in neighbor order, not hash order.
  std::sort(dead.begin(), dead.end(),
            [](const NeighborSession& a, const NeighborSession& b) {
              return a.neighbor < b.neighbor;
            });
  return dead;
}

std::optional<NeighborSession> NeighborTable::kill(net::NodeId neighbor) {
  auto it = sessions_.find(neighbor);
  if (it == sessions_.end() || !it->second.alive) return std::nullopt;
  it->second.alive = false;
  return it->second;
}

bool NeighborTable::is_alive(net::NodeId neighbor) const {
  auto it = sessions_.find(neighbor);
  return it != sessions_.end() && it->second.alive;
}

std::size_t NeighborTable::alive_count() const {
  std::size_t n = 0;
  // lint: order-independent (commutative count)
  for (const auto& [id, s] : sessions_) {
    if (s.alive) ++n;
  }
  return n;
}

}  // namespace express::ecmp
