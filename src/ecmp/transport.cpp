#include "ecmp/transport.hpp"

#include <algorithm>
#include <utility>
#include <variant>

namespace express::ecmp {

Transport::Transport(net::Network& network, net::NodeId node,
                     TransportPolicy policy, TransportHooks hooks)
    : network_(&network),
      node_(node),
      policy_(policy),
      hooks_(std::move(hooks)),
      scope_(network.node_scope(node)) {
  stats_.counts_sent = scope_.counter("ecmp.transport.counts_sent");
  stats_.counts_received = scope_.counter("ecmp.transport.counts_received");
  stats_.queries_sent = scope_.counter("ecmp.transport.queries_sent");
  stats_.queries_received = scope_.counter("ecmp.transport.queries_received");
  stats_.responses_sent = scope_.counter("ecmp.transport.responses_sent");
  stats_.responses_received =
      scope_.counter("ecmp.transport.responses_received");
  stats_.control_bytes_sent =
      scope_.counter("ecmp.transport.control_bytes_sent");
  stats_.control_bytes_received =
      scope_.counter("ecmp.transport.control_bytes_received");
  if (policy_.neighbor_discovery) schedule_neighbor_discovery();
  if (policy_.batch_window) {
    batcher_ = std::make_unique<Batcher>(
        network.scheduler(), *policy_.batch_window,
        [this](net::NodeId neighbor, std::vector<std::uint8_t> payload) {
          transmit(neighbor, std::move(payload));
        });
  }
}

// ---------------------------------------------------------------------
// Wire I/O
// ---------------------------------------------------------------------

void Transport::classify_sent(const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Count>) {
          stats_.counts_sent.inc();
        } else if constexpr (std::is_same_v<T, CountQuery>) {
          stats_.queries_sent.inc();
        } else if constexpr (std::is_same_v<T, CountResponse>) {
          stats_.responses_sent.inc();
        }
        // KeyRegister is host-originated; routers only receive it.
      },
      msg);
}

void Transport::send(net::NodeId neighbor, const Message& msg) {
  classify_sent(msg);
  if (batcher_) {
    // §5.3 TCP mode: coalesce messages per neighbor into segments.
    batcher_->enqueue(neighbor, msg);
    return;
  }
  transmit(neighbor, encode(msg));
}

void Transport::transmit(net::NodeId neighbor,
                         std::vector<std::uint8_t> payload) {
  net::Packet packet;
  packet.src = network_->topology().node(node_).address;
  packet.dst = network_->topology().node(neighbor).address;
  packet.protocol = ip::Protocol::kEcmp;
  packet.payload = std::move(payload);
  stats_.control_bytes_sent.add(packet.payload.size());
  auto iface = net::iface_toward(*network_, node_, neighbor);
  if (!iface) return;  // unreachable (partition); like a failed TCP write
  network_->send_on_interface(node_, *iface, std::move(packet));
}

void Transport::send_lan_query(std::uint32_t iface, const CountQuery& query) {
  net::Packet packet;
  packet.src = network_->topology().node(node_).address;
  packet.dst = ip::kEcmpAllRouters;  // LAN-wide general query
  packet.protocol = ip::Protocol::kEcmp;
  packet.payload = encode(Message{query});
  stats_.control_bytes_sent.add(packet.payload.size());
  network_->send_on_interface(node_, iface, std::move(packet));
  stats_.queries_sent.inc();
}

void Transport::send_remote(ip::Address dest, const Message& msg) {
  classify_sent(msg);
  net::Packet packet;
  packet.src = network_->topology().node(node_).address;
  packet.dst = dest;
  packet.protocol = ip::Protocol::kEcmp;
  packet.payload = encode(msg);
  stats_.control_bytes_sent.add(packet.payload.size());
  network_->send_unicast(node_, std::move(packet));
}

Delivery Transport::receive(const net::Packet& packet,
                            std::uint32_t in_iface) {
  Delivery delivery;
  delivery.from = network_->node_of(packet.src).value_or(
      network_->topology().neighbor_via(node_, in_iface));
  stats_.control_bytes_received.add(packet.payload.size());
  delivery.reestablished =
      neighbors_.heard_from(delivery.from, in_iface, network_->now());
  delivery.messages = decode_all(packet.payload);
  for (const Message& msg : delivery.messages) {
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, Count>) {
            stats_.counts_received.inc();
          } else if constexpr (std::is_same_v<T, CountQuery>) {
            stats_.queries_received.inc();
          } else if constexpr (std::is_same_v<T, CountResponse>) {
            stats_.responses_received.inc();
          }
        },
        msg);
  }
  return delivery;
}

// ---------------------------------------------------------------------
// Interface modes + UDP refresh clock (§3.2)
// ---------------------------------------------------------------------

void Transport::set_mode(std::uint32_t iface, Mode mode) {
  iface_modes_[iface] = mode;
  if (mode == Mode::kUdp) schedule_udp_refresh();
}

Mode Transport::mode(std::uint32_t iface) const {
  auto it = iface_modes_.find(iface);
  return it == iface_modes_.end() ? Mode::kTcp : it->second;
}

void Transport::schedule_udp_refresh() {
  if (udp_refresh_scheduled_) return;
  udp_refresh_scheduled_ = true;
  // lint: fire-and-forget (self-rearming tick gated by udp_refresh_scheduled_; transport lives as long as its router)
  network_->scheduler().schedule_after(policy_.udp_query_interval,
                                       [this]() { udp_refresh_tick(); });
}

void Transport::udp_refresh_tick() {
  const bool more = hooks_.udp_refresh_round && hooks_.udp_refresh_round();
  if (!more) {
    // No UDP soft state left (all downstream entries expired or their
    // neighbors died): let the clock run dry instead of ticking — and
    // sending refresh queries — forever. ensure_udp_refresh() re-arms
    // it when the next UDP-mode join installs state.
    udp_refresh_scheduled_ = false;
    return;
  }
  // lint: fire-and-forget (self-rearming tick gated by udp_refresh_scheduled_; transport lives as long as its router)
  network_->scheduler().schedule_after(policy_.udp_query_interval,
                                       [this]() { udp_refresh_tick(); });
}

void Transport::ensure_udp_refresh() {
  const bool any_udp =
      std::any_of(iface_modes_.begin(), iface_modes_.end(),
                  [](const auto& kv) { return kv.second == Mode::kUdp; });
  if (any_udp) schedule_udp_refresh();
}

// ---------------------------------------------------------------------
// Neighbor discovery / keepalive (§3.3)
// ---------------------------------------------------------------------

void Transport::schedule_neighbor_discovery() {
  // lint: fire-and-forget (periodic neighbor-discovery tick; transport lives as long as its router)
  network_->scheduler().schedule_after(policy_.neighbor_query_interval,
                                       [this]() { neighbor_discovery_tick(); });
}

void Transport::neighbor_discovery_tick() {
  // §3.3: periodically multicast a neighbors CountQuery on each
  // interface; on point-to-point links that is a direct query.
  const auto& info = network_->topology().node(node_);
  for (std::uint32_t iface = 0; iface < info.interfaces.size(); ++iface) {
    const net::LinkId link = info.interfaces[iface];
    if (!network_->topology().link(link).up) continue;
    const net::NodeId peer = network_->topology().peer(link, node_);
    if (network_->topology().node(peer).kind != net::NodeKind::kRouter) {
      continue;
    }
    CountQuery query;
    query.channel = ip::ChannelId{info.address, ip::kEcmpAllRouters};
    query.count_id = kNeighborsId;
    query.timeout = policy_.neighbor_query_interval;
    query.query_seq = (next_seq_++ & 0xFFFF) | 0x40000000U;
    send(peer, query);
  }
  for (const auto& dead :
       neighbors_.expire(network_->now(), policy_.neighbor_timeout)) {
    // Keepalives cover router-router sessions only: hosts do not answer
    // neighbor queries; their liveness is UDP-mode soft state (§3.2) or
    // link failure.
    if (network_->topology().node(dead.neighbor).kind ==
            net::NodeKind::kRouter &&
        hooks_.neighbor_died) {
      hooks_.neighbor_died(dead.neighbor);
    }
  }
  schedule_neighbor_discovery();
}

sim::Duration Transport::link_rtt(std::uint32_t iface) const {
  const net::LinkId link =
      network_->topology().node(node_).interfaces.at(iface);
  return network_->topology().link(link).delay * 2;
}

}  // namespace express::ecmp
