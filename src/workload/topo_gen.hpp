// Topology generators for experiments.
//
// The paper's analysis assumes star worst cases, 25-hop paths, and trees
// with fanout ~2; the Fig. 8 simulation needs a few hundred receivers
// under one source. These builders produce those shapes plus a random
// two-level transit-stub graph standing in for wide-area structure.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/random.hpp"

namespace express::workload {

/// A generated topology together with the roles tests need.
struct GeneratedTopology {
  net::Topology topology;
  net::NodeId source_host = net::kInvalidNode;
  net::NodeId source_router = net::kInvalidNode;  ///< first-hop of the source
  std::vector<net::NodeId> receiver_hosts;
  std::vector<net::NodeId> routers;
};

struct LinkParams {
  sim::Duration core_delay = sim::milliseconds(5);
  sim::Duration edge_delay = sim::milliseconds(1);
  double core_bandwidth_bps = 1e9;
  double edge_bandwidth_bps = 100e6;
};

/// Star: one root router, `receivers` hosts each behind its own chain of
/// `hops` routers (hops >= 1). hops == 1 is the paper's no-sharing worst
/// case where an n-receiver channel occupies n*h entries.
GeneratedTopology make_star(std::uint32_t receivers, std::uint32_t hops = 1,
                            const LinkParams& links = {});

/// Complete k-ary tree of routers with the given depth; `hosts_per_leaf`
/// receiver hosts per leaf router, source host at the root.
GeneratedTopology make_kary_tree(std::uint32_t arity, std::uint32_t depth,
                                 const LinkParams& links = {},
                                 std::uint32_t hosts_per_leaf = 1);

/// Line (chain) of `routers` routers; source host on one end, one
/// receiver host on the other — a 25-router line reproduces the paper's
/// h = 25 path-length assumption.
GeneratedTopology make_line(std::uint32_t routers, const LinkParams& links = {});

/// Random two-level transit-stub-like graph: a ring+chords transit core
/// of `transit` routers, each with `stubs_per_transit` stub routers, each
/// stub serving `hosts_per_stub` receiver hosts. Deterministic in `rng`.
GeneratedTopology make_transit_stub(std::uint32_t transit,
                                    std::uint32_t stubs_per_transit,
                                    std::uint32_t hosts_per_stub,
                                    sim::Rng& rng,
                                    const LinkParams& links = {});

}  // namespace express::workload
