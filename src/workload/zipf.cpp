#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace express::workload {

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  cdf_.reserve(n);
  double sum = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(sum);
  }
  for (double& v : cdf_) v /= sum;
}

std::uint32_t ZipfSampler::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<std::uint32_t>(cdf_.size() - 1);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::uint32_t rank) const {
  if (rank >= cdf_.size()) return 0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace express::workload
