#include "workload/topo_gen.hpp"

#include <string>

namespace express::workload {

namespace {

net::NodeId add_receiver(GeneratedTopology& g, net::NodeId router,
                         const LinkParams& links, std::size_t index) {
  const net::NodeId host =
      g.topology.add_host("recv" + std::to_string(index));
  g.topology.add_link(router, host, links.edge_delay, 1,
                      links.edge_bandwidth_bps);
  g.receiver_hosts.push_back(host);
  return host;
}

}  // namespace

GeneratedTopology make_star(std::uint32_t receivers, std::uint32_t hops,
                            const LinkParams& links) {
  GeneratedTopology g;
  g.source_router = g.topology.add_router("root");
  g.routers.push_back(g.source_router);
  g.source_host = g.topology.add_host("src");
  g.topology.add_link(g.source_router, g.source_host, links.edge_delay, 1,
                      links.edge_bandwidth_bps);

  for (std::uint32_t r = 0; r < receivers; ++r) {
    net::NodeId prev = g.source_router;
    for (std::uint32_t h = 0; h < hops; ++h) {
      const net::NodeId router = g.topology.add_router(
          "r" + std::to_string(r) + "_" + std::to_string(h));
      g.topology.add_link(prev, router, links.core_delay, 1,
                          links.core_bandwidth_bps);
      g.routers.push_back(router);
      prev = router;
    }
    add_receiver(g, prev, links, r);
  }
  return g;
}

GeneratedTopology make_kary_tree(std::uint32_t arity, std::uint32_t depth,
                                 const LinkParams& links,
                                 std::uint32_t hosts_per_leaf) {
  GeneratedTopology g;
  g.source_router = g.topology.add_router("root");
  g.routers.push_back(g.source_router);
  g.source_host = g.topology.add_host("src");
  g.topology.add_link(g.source_router, g.source_host, links.edge_delay, 1,
                      links.edge_bandwidth_bps);

  std::vector<net::NodeId> level{g.source_router};
  for (std::uint32_t d = 1; d <= depth; ++d) {
    std::vector<net::NodeId> next;
    next.reserve(level.size() * arity);
    for (net::NodeId parent : level) {
      for (std::uint32_t a = 0; a < arity; ++a) {
        const net::NodeId child = g.topology.add_router(
            "d" + std::to_string(d) + "_" + std::to_string(next.size()));
        g.topology.add_link(parent, child, links.core_delay, 1,
                            links.core_bandwidth_bps);
        g.routers.push_back(child);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  std::size_t host_index = 0;
  for (net::NodeId leaf : level) {
    for (std::uint32_t h = 0; h < hosts_per_leaf; ++h) {
      add_receiver(g, leaf, links, host_index++);
    }
  }
  return g;
}

GeneratedTopology make_line(std::uint32_t routers, const LinkParams& links) {
  GeneratedTopology g;
  net::NodeId prev = net::kInvalidNode;
  for (std::uint32_t i = 0; i < routers; ++i) {
    const net::NodeId router = g.topology.add_router("r" + std::to_string(i));
    g.routers.push_back(router);
    if (i == 0) {
      g.source_router = router;
      g.source_host = g.topology.add_host("src");
      g.topology.add_link(router, g.source_host, links.edge_delay, 1,
                          links.edge_bandwidth_bps);
    } else {
      g.topology.add_link(prev, router, links.core_delay, 1,
                          links.core_bandwidth_bps);
    }
    prev = router;
  }
  add_receiver(g, prev, links, 0);
  return g;
}

GeneratedTopology make_transit_stub(std::uint32_t transit,
                                    std::uint32_t stubs_per_transit,
                                    std::uint32_t hosts_per_stub,
                                    sim::Rng& rng, const LinkParams& links) {
  GeneratedTopology g;
  std::vector<net::NodeId> core;
  core.reserve(transit);
  for (std::uint32_t t = 0; t < transit; ++t) {
    const net::NodeId router = g.topology.add_router("t" + std::to_string(t));
    core.push_back(router);
    g.routers.push_back(router);
    if (t > 0) {
      g.topology.add_link(core[t - 1], router, links.core_delay, 1,
                          links.core_bandwidth_bps);
    }
  }
  if (transit > 2) {
    // Close the ring and add a few random chords for path diversity.
    g.topology.add_link(core.back(), core.front(), links.core_delay, 1,
                        links.core_bandwidth_bps);
    const std::uint32_t chords = transit / 3;
    for (std::uint32_t c = 0; c < chords; ++c) {
      const auto a = rng.below(transit);
      const auto b = rng.below(transit);
      if (a == b || (a + 1) % transit == b || (b + 1) % transit == a) continue;
      g.topology.add_link(core[a], core[b], links.core_delay, 1,
                          links.core_bandwidth_bps);
    }
  }

  std::size_t host_index = 0;
  for (std::uint32_t t = 0; t < transit; ++t) {
    for (std::uint32_t s = 0; s < stubs_per_transit; ++s) {
      const net::NodeId stub = g.topology.add_router(
          "s" + std::to_string(t) + "_" + std::to_string(s));
      g.routers.push_back(stub);
      g.topology.add_link(core[t], stub, links.core_delay, 1,
                          links.core_bandwidth_bps);
      for (std::uint32_t h = 0; h < hosts_per_stub; ++h) {
        add_receiver(g, stub, links, host_index++);
      }
      if (g.source_router == net::kInvalidNode) {
        g.source_router = stub;
        g.source_host = g.topology.add_host("src");
        g.topology.add_link(stub, g.source_host, links.edge_delay, 1,
                            links.edge_bandwidth_bps);
      }
    }
  }
  return g;
}

}  // namespace express::workload
