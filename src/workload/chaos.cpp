#include "workload/chaos.hpp"

#include <algorithm>
#include <optional>

namespace express::workload {

namespace {

/// Links whose both endpoints are routers — the only ones chaos cuts.
std::vector<net::LinkId> core_links(const net::Topology& topology) {
  std::vector<net::LinkId> links;
  for (net::LinkId id = 0; id < topology.link_count(); ++id) {
    const net::LinkInfo& link = topology.link(id);
    if (topology.node(link.a).kind == net::NodeKind::kRouter &&
        topology.node(link.b).kind == net::NodeKind::kRouter) {
      links.push_back(id);
    }
  }
  return links;
}

sim::Duration draw_hold(const FaultPlanConfig& config, sim::Rng& rng) {
  const auto lo = config.min_hold.count();
  const auto hi = std::max(config.max_hold.count(), lo);
  return sim::Duration{rng.between(lo, hi)};
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkFlap:
      return "link_flap";
    case FaultKind::kRouterDown:
      return "router_down";
    case FaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

std::vector<Fault> make_fault_schedule(const net::Topology& topology,
                                       const FaultPlanConfig& config,
                                       sim::Rng& rng) {
  std::vector<Fault> schedule;
  const std::vector<net::LinkId> links = core_links(topology);
  if (links.empty()) return schedule;

  // Routers with at least one core link (candidates for kRouterDown).
  std::vector<net::NodeId> routers;
  for (net::LinkId id : links) {
    routers.push_back(topology.link(id).a);
    routers.push_back(topology.link(id).b);
  }
  std::sort(routers.begin(), routers.end());
  routers.erase(std::unique(routers.begin(), routers.end()), routers.end());

  const double total_weight = config.link_flap_weight +
                              config.router_down_weight +
                              config.partition_weight;
  schedule.reserve(config.fault_count);
  while (schedule.size() < config.fault_count) {
    Fault fault;
    fault.hold = draw_hold(config, rng);
    const double roll = rng.uniform() * total_weight;
    if (roll < config.link_flap_weight || links.size() < 2) {
      fault.kind = FaultKind::kLinkFlap;
      fault.links.push_back(links[rng.below(
          static_cast<std::uint32_t>(links.size()))]);
    } else if (roll < config.link_flap_weight + config.router_down_weight) {
      fault.kind = FaultKind::kRouterDown;
      fault.router =
          routers[rng.below(static_cast<std::uint32_t>(routers.size()))];
      for (net::LinkId id : links) {
        const net::LinkInfo& link = topology.link(id);
        if (link.a == fault.router || link.b == fault.router) {
          fault.links.push_back(id);
        }
      }
    } else {
      fault.kind = FaultKind::kPartition;
      const std::size_t width =
          std::min(config.partition_links, links.size() - 1);
      std::vector<net::LinkId> pool = links;
      for (std::size_t i = 0; i < width; ++i) {
        const std::uint32_t pick =
            rng.below(static_cast<std::uint32_t>(pool.size()));
        fault.links.push_back(pool[pick]);
        pool.erase(pool.begin() + pick);
      }
      std::sort(fault.links.begin(), fault.links.end());
    }
    schedule.push_back(std::move(fault));
  }
  return schedule;
}

sim::Duration ChaosReport::max_convergence() const {
  sim::Duration worst{0};
  for (const FaultOutcome& o : outcomes) {
    if (o.converged) worst = std::max(worst, o.convergence);
  }
  return worst;
}

double ChaosReport::mean_convergence_seconds() const {
  double sum = 0;
  std::size_t n = 0;
  for (const FaultOutcome& o : outcomes) {
    if (!o.converged) continue;
    sum += sim::to_seconds(o.convergence);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

ChaosReport run_chaos_campaign(net::Network& network,
                               const std::vector<Fault>& schedule,
                               const ChaosConfig& config,
                               const std::function<std::size_t()>& audit,
                               const std::function<void(std::size_t)>& churn) {
  ChaosReport report;

  if (config.link_impairments) {
    network.set_default_impairments(*config.link_impairments);
  }

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Fault& fault = schedule[i];
    FaultOutcome outcome;
    outcome.index = i;
    outcome.kind = fault.kind;

    if (churn) churn(i);
    network.run_until(network.now() + config.churn_window);

    outcome.injected_at = network.now();
    for (net::LinkId link : fault.links) {
      network.obs().trace.emit(network.now(), obs::Entity::link(link),
                               obs::TraceType::kFaultInject, i,
                               static_cast<std::uint64_t>(fault.kind));
      network.set_link_up(link, false);
    }
    network.run_until(network.now() + fault.hold);
    for (net::LinkId link : fault.links) {
      network.set_link_up(link, true);
      network.obs().trace.emit(network.now(), obs::Entity::link(link),
                               obs::TraceType::kFaultHeal, i,
                               static_cast<std::uint64_t>(fault.kind));
    }
    outcome.healed_at = network.now();

    // Settle: audit at every event boundary. Convergence is the first
    // clean sample never again invalidated before quiescence; the
    // event-driven sampling makes the measurement exact, not
    // poll-interval-quantized.
    std::optional<sim::Time> first_clean;
    const sim::Time deadline = outcome.healed_at + config.settle_cap;
    while (true) {
      const std::size_t violations = audit();
      ++outcome.audits;
      if (violations == 0) {
        if (!first_clean) first_clean = network.now();
      } else {
        first_clean.reset();
      }
      // Network-level probe: on a sharded network this spans every
      // shard (draining in-flight cross-shard queues first), so the
      // campaign runs unchanged in either execution mode.
      const std::optional<sim::Time> next = network.next_event_time();
      if (!next || *next > deadline) break;  // quiescent (or out of budget)
      network.run_until(*next);
    }
    const std::size_t final_violations = audit();
    ++outcome.audits;
    outcome.violations = final_violations;
    outcome.converged = final_violations == 0 && first_clean.has_value();
    if (outcome.converged) {
      outcome.convergence = *first_clean - outcome.healed_at;
    }

    ++report.faults_injected;
    report.violations += outcome.violations;
    report.audits_run += outcome.audits;
    if (!outcome.converged) ++report.unconverged;
    report.outcomes.push_back(outcome);
  }
  return report;
}

}  // namespace express::workload
