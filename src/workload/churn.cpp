#include "workload/churn.hpp"

#include <algorithm>

namespace express::workload {

namespace {

void sort_events(std::vector<ChurnEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at < b.at;
                   });
}

}  // namespace

std::vector<ChurnEvent> poisson_churn(std::uint32_t hosts,
                                      sim::Duration horizon,
                                      sim::Duration mean_lifetime,
                                      sim::Duration mean_offtime,
                                      sim::Rng& rng) {
  std::vector<ChurnEvent> events;
  const double horizon_s = sim::to_seconds(horizon);
  for (std::uint32_t h = 0; h < hosts; ++h) {
    double t = rng.uniform() * horizon_s;
    bool joined = false;
    while (t < horizon_s) {
      events.push_back(ChurnEvent{sim::seconds_f(t), h, !joined});
      joined = !joined;
      t += rng.exponential(joined ? sim::to_seconds(mean_lifetime)
                                  : sim::to_seconds(mean_offtime));
    }
    if (joined) {
      // Leave inside the horizon so runs end with an empty tree.
      events.push_back(ChurnEvent{horizon, h, false});
    }
  }
  sort_events(events);
  return events;
}

std::vector<ChurnEvent> fig8_schedule(const Fig8Params& params, sim::Rng& rng) {
  std::vector<ChurnEvent> events;
  events.reserve(params.subscribers * 2);
  const double burst_s = sim::to_seconds(params.burst_window);
  const double trickle_start = burst_s;
  const double trickle_end = sim::to_seconds(params.trickle_end);
  const double quiet_until = sim::to_seconds(params.quiet_until);
  const double leave_s = sim::to_seconds(params.leave_window);

  const std::uint32_t trickle =
      params.subscribers - params.initial_burst - params.second_burst;

  std::uint32_t host = 0;
  for (std::uint32_t i = 0; i < params.initial_burst; ++i, ++host) {
    events.push_back(ChurnEvent{sim::seconds_f(rng.uniform() * burst_s), host,
                                true});
  }
  for (std::uint32_t i = 0; i < trickle; ++i, ++host) {
    const double t =
        trickle_start + rng.uniform() * (trickle_end - trickle_start);
    events.push_back(ChurnEvent{sim::seconds_f(t), host, true});
  }
  for (std::uint32_t i = 0; i < params.second_burst; ++i, ++host) {
    events.push_back(ChurnEvent{
        sim::seconds_f(trickle_end + rng.uniform() * burst_s), host, true});
  }
  // Mass unsubscribe after the quiet period.
  for (std::uint32_t h = 0; h < host; ++h) {
    events.push_back(ChurnEvent{
        sim::seconds_f(quiet_until + rng.uniform() * leave_s), h, false});
  }
  sort_events(events);
  return events;
}

}  // namespace express::workload
