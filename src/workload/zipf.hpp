// Zipf-distributed channel popularity.
//
// The §5 scaling experiments spread subscribers across many channels;
// real audiences are heavy-tailed (a few Super Bowls, many small
// channels), so the channel chosen by each subscriber follows Zipf(s).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace express::workload {

class ZipfSampler {
 public:
  /// `n` ranks with exponent `s` (s = 1 is classic Zipf).
  ZipfSampler(std::uint32_t n, double s);

  /// Sample a rank in [0, n) with P(k) proportional to 1/(k+1)^s.
  [[nodiscard]] std::uint32_t sample(sim::Rng& rng) const;

  [[nodiscard]] double probability(std::uint32_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace express::workload
