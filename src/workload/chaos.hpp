// Seeded fault-injection campaigns ("chaos") for convergence soaks.
//
// EXPRESS is hard state: the interesting failures are not lost packets
// but *state* left behind by link flaps, dead routers, and partitions.
// This module generates deterministic fault schedules over any
// topology and drives them through a Network: per fault, an optional
// churn window, then the fault (one or more links down), a hold, the
// heal, and a settle phase that samples an auditor callback at event
// boundaries until the scheduler is quiescent — recording the first
// *stable* audit-clean instant as the fault's convergence time.
//
// Layering: this is a workload module; it knows links, schedulers, and
// callbacks, not EXPRESS. The auditor (src/audit) and the churn
// workload are injected as std::functions by the caller (tests,
// bench/soak_chaos), which keeps the driver reusable for the baseline
// protocols via a delivery-level audit callback.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/impairment.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace express::workload {

enum class FaultKind : std::uint8_t {
  kLinkFlap,    ///< one router-router link down, hold, up
  kRouterDown,  ///< all of one router's router-links down (neighbor death)
  kPartition,   ///< several links down at once
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kLinkFlap;
  std::vector<net::LinkId> links;               ///< links taken down
  net::NodeId router = net::kInvalidNode;       ///< for kRouterDown
  sim::Duration hold = sim::milliseconds(500);  ///< down time before heal
};

struct FaultPlanConfig {
  std::size_t fault_count = 200;
  sim::Duration min_hold = sim::milliseconds(200);
  sim::Duration max_hold = sim::seconds(2);
  /// Relative mix of the three kinds (need not sum to 1).
  double link_flap_weight = 0.6;
  double router_down_weight = 0.25;
  double partition_weight = 0.15;
  std::size_t partition_links = 3;  ///< links cut per partition fault
};

/// Deterministically draw `fault_count` faults over the router-router
/// links of `topology` (host drop cables and LAN segments are never
/// cut: host-side recovery is application-level in EXPRESS, §2.1).
/// Identical (topology, config, rng state) => identical schedule.
[[nodiscard]] std::vector<Fault> make_fault_schedule(
    const net::Topology& topology, const FaultPlanConfig& config,
    sim::Rng& rng);

struct ChaosConfig {
  /// Workload window before each fault (the churn callback schedules
  /// into it); the fault hits a network mid-churn, not an idle one.
  sim::Duration churn_window = sim::seconds(1);
  /// Settle budget after each heal: if the network has not quiesced
  /// within this, the fault is recorded as unconverged.
  sim::Duration settle_cap = sim::seconds(30);
  /// Optional per-link impairments applied to every link at campaign
  /// start (loss-enabled fault campaigns): the protocol must converge
  /// through faults *and* a lossy data plane at once. std::nullopt
  /// leaves the network's impairment configuration untouched.
  std::optional<net::ImpairmentConfig> link_impairments;
};

struct FaultOutcome {
  std::size_t index = 0;
  FaultKind kind = FaultKind::kLinkFlap;
  sim::Time injected_at{};
  sim::Time healed_at{};
  bool converged = false;
  /// Heal -> first audit-clean instant that then *stayed* clean through
  /// quiescence (a clean sample later invalidated by in-flight control
  /// traffic does not count).
  sim::Duration convergence{};
  std::uint64_t violations = 0;  ///< outstanding at quiescence
  std::uint64_t audits = 0;      ///< auditor invocations for this fault
};

struct ChaosReport {
  std::vector<FaultOutcome> outcomes;
  std::uint64_t faults_injected = 0;
  std::uint64_t violations = 0;  ///< total outstanding-at-quiescence
  std::uint64_t audits_run = 0;
  std::uint64_t unconverged = 0;

  [[nodiscard]] sim::Duration max_convergence() const;
  [[nodiscard]] double mean_convergence_seconds() const;
};

/// `audit` returns the current number of invariant violations (0 =
/// clean); `churn` (optional) is invoked before each fault with the
/// fault index to schedule workload activity into the churn window.
[[nodiscard]] ChaosReport run_chaos_campaign(
    net::Network& network, const std::vector<Fault>& schedule,
    const ChaosConfig& config, const std::function<std::size_t()>& audit,
    const std::function<void(std::size_t)>& churn = {});

}  // namespace express::workload
