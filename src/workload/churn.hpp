// Subscription churn generators.
//
// Produce time-stamped join/leave schedules over a pool of receiver
// hosts: steady Poisson churn for the maintenance-cost experiments and
// the exact Fig. 8 scenario (burst, trickle, burst, quiet, mass leave)
// for the proactive-counting reproduction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace express::workload {

struct ChurnEvent {
  sim::Time at{};
  std::uint32_t host_index = 0;
  bool join = true;
};

/// Steady-state churn: every host joins at a uniformly random time in
/// [0, horizon) and stays for an exponential lifetime with the given
/// mean (re-joining after an exponential off-time until the horizon).
std::vector<ChurnEvent> poisson_churn(std::uint32_t hosts, sim::Duration horizon,
                                      sim::Duration mean_lifetime,
                                      sim::Duration mean_offtime,
                                      sim::Rng& rng);

/// The Fig. 8 schedule (paper §6): "an initial burst of subscriptions at
/// time 0, followed by slow subscriptions until time 200, a burst of
/// subscriptions at time 200, then no activity until time 300, when all
/// hosts unsubscribe quickly." Peaks at `subscribers` (~250) members.
struct Fig8Params {
  std::uint32_t subscribers = 250;
  std::uint32_t initial_burst = 120;   ///< join within [0, burst_window)
  std::uint32_t second_burst = 80;     ///< join within [200, 200+burst_window)
  sim::Duration burst_window = sim::seconds(5);
  sim::Duration trickle_end = sim::seconds(200);
  sim::Duration quiet_until = sim::seconds(300);
  sim::Duration leave_window = sim::seconds(10);
};

std::vector<ChurnEvent> fig8_schedule(const Fig8Params& params, sim::Rng& rng);

}  // namespace express::workload
