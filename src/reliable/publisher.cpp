#include "reliable/publisher.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace express::reliable {

Publisher::Publisher(ExpressHost& host, ip::ChannelId channel,
                     PublisherConfig config)
    : host_(host),
      channel_(channel),
      config_(std::move(config)),
      scope_(host.network().node_scope(host.id())) {}

void Publisher::publish(std::uint32_t count) {
  for (std::uint32_t block = 1; block <= count; ++block) {
    host_.send(channel_, config_.block_bytes, block);
  }
  blocks_ = std::max(blocks_, count);
}

void Publisher::retransmit(std::uint32_t block) {
  ++retransmissions_;
  if (config_.repair_point) {
    // Subcast (§2.1): only the subtree below the relay point pays.
    host_.subcast(channel_, *config_.repair_point, config_.block_bytes, block);
  } else {
    host_.send(channel_, config_.block_bytes, block);
  }
}

void Publisher::run_repair_round(std::function<void(RepairReport)> done) {
  const std::uint32_t round = ++rounds_;
  auto report = std::make_shared<RepairReport>();
  report->round = round;
  auto outstanding = std::make_shared<std::uint32_t>(blocks_);
  if (blocks_ == 0) {
    if (done) done(*report);
    return;
  }
  for (std::uint32_t block = 1; block <= blocks_; ++block) {
    const auto count_id = static_cast<ecmp::CountId>(kNackBase + block);
    host_.count_query(
        channel_, count_id, config_.nack_timeout,
        [this, block, report, outstanding,
         done](CountResult result) {
          if (result.count > 0) {
            report->blocks_missing.push_back(block);
            report->total_nacks += result.count;
            retransmit(block);
          }
          if (--*outstanding == 0) {
            report->retransmitted =
                static_cast<std::uint32_t>(report->blocks_missing.size());
            if (done) done(*report);
          }
        });
  }
}

// ---------------------------------------------------------------------
// run_to_completion: repeat NACK rounds with subcast/channel-wide
// repair selection and bounded exponential backoff until loss-free.
// ---------------------------------------------------------------------

void Publisher::collect_nacks(std::uint32_t round,
                              std::function<void(RepairReport)> done) {
  auto report = std::make_shared<RepairReport>();
  report->round = round;
  auto outstanding = std::make_shared<std::uint32_t>(blocks_);
  for (std::uint32_t block = 1; block <= blocks_; ++block) {
    const auto count_id = static_cast<ecmp::CountId>(kNackBase + block);
    host_.count_query(channel_, count_id, config_.nack_timeout,
                      [block, report, outstanding, done](CountResult result) {
                        if (result.count > 0) {
                          report->blocks_missing.push_back(block);
                          report->total_nacks += result.count;
                        }
                        if (--*outstanding == 0 && done) {
                          // Replies resolve in wire order; canonicalise
                          // so repairs replay identically run-to-run.
                          std::sort(report->blocks_missing.begin(),
                                    report->blocks_missing.end());
                          done(*report);
                        }
                      });
  }
}

void Publisher::run_to_completion(std::function<void(CompletionReport)> done) {
  if (completing_) {
    throw std::logic_error("run_to_completion already in progress");
  }
  completing_ = true;
  completion_ = CompletionReport{};
  completion_done_ = std::move(done);
  backoff_ = config_.initial_backoff;
  if (blocks_ == 0) {
    completion_.complete = true;
    finish_completion();
    return;
  }
  completion_round();
}

void Publisher::completion_round() {
  const std::uint32_t round = ++rounds_;
  ++completion_.rounds;
  scope_.emit(host_.network().now(), obs::TraceType::kRepairRoundStart, round,
              blocks_);
  collect_nacks(round, [this](RepairReport report) {
    if (report.total_nacks == 0) {
      // Every block's NACK count reached zero: done.
      completion_.complete = true;
      completion_.residual_nacks = 0;
      scope_.emit(host_.network().now(), obs::TraceType::kRepairRoundEnd,
                  report.round, 0);
      finish_completion();
      return;
    }
    select_repair_path(std::make_shared<const RepairReport>(std::move(report)),
                       0);
  });
}

void Publisher::select_repair_path(
    std::shared_ptr<const RepairReport> report, std::size_t candidate) {
  if (candidate >= config_.repair_candidates.size()) {
    apply_round_repairs(*report, std::nullopt);  // no candidate covers
    return;
  }
  const ip::Address router = config_.repair_candidates[candidate];
  // Count the loss subtree below this candidate (§2.1): a remote
  // kNackTotalId query tunnelled to the router aggregates "blocks still
  // missing" over its subtree only.
  host_.count_query_at(
      router, channel_, kNackTotalId, config_.nack_timeout,
      [this, report, candidate, router](CountResult result) {
        // Covering test: the candidate's subtree holds ALL the loss iff
        // its missing-block total equals the channel-wide NACK total
        // (sum over its hosts of blocks missing == sum over blocks of
        // subscribers missing them). A partial count cannot prove
        // coverage, so it falls through to the next candidate.
        if (result.complete && result.count == report->total_nacks) {
          apply_round_repairs(*report, router);
        } else {
          select_repair_path(report, candidate + 1);
        }
      });
}

void Publisher::apply_round_repairs(const RepairReport& report,
                                    std::optional<ip::Address> via) {
  for (const std::uint32_t block : report.blocks_missing) {
    ++retransmissions_;
    ++completion_.retransmissions;
    if (via) {
      ++completion_.subcast_repairs;
      host_.subcast(channel_, *via, config_.block_bytes, block);
    } else {
      ++completion_.channel_repairs;
      host_.send(channel_, config_.block_bytes, block);
    }
    scope_.emit(host_.network().now(), obs::TraceType::kRetransmit, block,
                via ? 1 : 0);
  }
  scope_.emit(host_.network().now(), obs::TraceType::kRepairRoundEnd,
              report.round, static_cast<std::uint64_t>(report.total_nacks));
  if (completion_.rounds >= config_.max_rounds) {
    completion_.complete = false;
    completion_.residual_nacks = report.total_nacks;
    finish_completion();
    return;
  }
  // Bounded exponential backoff before re-counting, giving the repairs
  // time to land (and the network time to drain under burst loss).
  // lint: fire-and-forget (one-shot backoff continuation of an in-progress completion round)
  host_.network().scheduler().schedule_after(backoff_,
                                             [this]() { completion_round(); });
  backoff_ = std::min(backoff_ * 2, config_.max_backoff);
}

void Publisher::finish_completion() {
  completing_ = false;
  backoff_ = sim::Duration{};
  auto done = std::move(completion_done_);
  completion_done_ = {};
  if (done) done(completion_);
}

Subscriber::Subscriber(ExpressHost& host, ip::ChannelId channel,
                       std::uint32_t expected_blocks,
                       std::optional<ip::ChannelKey> key)
    : host_(host), channel_(channel), expected_(expected_blocks) {
  host_.set_data_handler([this](const net::Packet& packet, sim::Time) {
    if (ip::ChannelId{packet.src, packet.dst} != channel_) return;
    // Control-plane traffic (relay heartbeats etc.) shares the channel's
    // sequence space but carries no application data.
    if (packet.data_bytes == 0) return;
    if (packet.sequence >= 1 && packet.sequence <= expected_) {
      received_.insert(static_cast<std::uint32_t>(packet.sequence));
    }
  });
  for (std::uint32_t block = 1; block <= expected_blocks; ++block) {
    const auto count_id = static_cast<ecmp::CountId>(kNackBase + block);
    host_.set_count_handler(count_id, [this, block]() {
      return std::optional<std::int64_t>(received_.contains(block) ? 0 : 1);
    });
  }
  // "Blocks still missing at this host" — the repair-targeting total
  // (see kNackTotalId): summed over hosts it matches the per-block sum.
  host_.set_count_handler(kNackTotalId, [this]() {
    return std::optional<std::int64_t>(
        static_cast<std::int64_t>(expected_ - received_.size()));
  });
  host_.new_subscription(channel_, key);
}

std::vector<std::uint32_t> Subscriber::missing() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t block = 1; block <= expected_; ++block) {
    if (!received_.contains(block)) out.push_back(block);
  }
  return out;
}

}  // namespace express::reliable
