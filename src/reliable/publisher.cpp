#include "reliable/publisher.hpp"

#include <memory>

namespace express::reliable {

Publisher::Publisher(ExpressHost& host, ip::ChannelId channel,
                     PublisherConfig config)
    : host_(host), channel_(channel), config_(config) {}

void Publisher::publish(std::uint32_t count) {
  for (std::uint32_t block = 1; block <= count; ++block) {
    host_.send(channel_, config_.block_bytes, block);
  }
  blocks_ = std::max(blocks_, count);
}

void Publisher::retransmit(std::uint32_t block) {
  ++retransmissions_;
  if (config_.repair_point) {
    // Subcast (§2.1): only the subtree below the relay point pays.
    host_.subcast(channel_, *config_.repair_point, config_.block_bytes, block);
  } else {
    host_.send(channel_, config_.block_bytes, block);
  }
}

void Publisher::run_repair_round(std::function<void(RepairReport)> done) {
  const std::uint32_t round = ++rounds_;
  auto report = std::make_shared<RepairReport>();
  report->round = round;
  auto outstanding = std::make_shared<std::uint32_t>(blocks_);
  if (blocks_ == 0) {
    if (done) done(*report);
    return;
  }
  for (std::uint32_t block = 1; block <= blocks_; ++block) {
    const auto count_id = static_cast<ecmp::CountId>(kNackBase + block);
    host_.count_query(
        channel_, count_id, config_.nack_timeout,
        [this, block, report, outstanding,
         done](CountResult result) {
          if (result.count > 0) {
            report->blocks_missing.push_back(block);
            report->total_nacks += result.count;
            retransmit(block);
          }
          if (--*outstanding == 0) {
            report->retransmitted =
                static_cast<std::uint32_t>(report->blocks_missing.size());
            if (done) done(*report);
          }
        });
  }
}

Subscriber::Subscriber(ExpressHost& host, ip::ChannelId channel,
                       std::uint32_t expected_blocks,
                       std::optional<ip::ChannelKey> key)
    : host_(host), channel_(channel), expected_(expected_blocks) {
  host_.set_data_handler([this](const net::Packet& packet, sim::Time) {
    if (ip::ChannelId{packet.src, packet.dst} != channel_) return;
    if (packet.sequence >= 1 && packet.sequence <= expected_) {
      received_.insert(static_cast<std::uint32_t>(packet.sequence));
    }
  });
  for (std::uint32_t block = 1; block <= expected_blocks; ++block) {
    const auto count_id = static_cast<ecmp::CountId>(kNackBase + block);
    host_.set_count_handler(count_id, [this, block]() {
      return std::optional<std::int64_t>(received_.contains(block) ? 0 : 1);
    });
  }
  host_.new_subscription(channel_, key);
}

std::vector<std::uint32_t> Subscriber::missing() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t block = 1; block <= expected_; ++block) {
    if (!received_.contains(block)) out.push_back(block);
  }
  return out;
}

}  // namespace express::reliable
