// Reliable block distribution over an EXPRESS channel.
//
// The paper's recipe for "wide-area multicast file updates": multicast
// the blocks, then use the counting facility "to efficiently collect
// positive acknowledgements or negative acknowledgments to determine
// how many subscribers missed a particular packet" (§2.2.1), and repair
// with retransmission — channel-wide, or through a subcast relay point
// so only the affected subtree pays (§2.1). Unlike the application-
// layer feedback schemes of [3,10,19], the aggregation happens in the
// routers: no implosion risk, no client-side probability tuning (§7.3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "ecmp/count_id.hpp"
#include "express/host.hpp"

namespace express::reliable {

/// Base of the per-block NACK countId range (app-defined space).
/// Block b's NACK count lives at kNackBase + b.
inline constexpr ecmp::CountId kNackBase = ecmp::kAppRangeBegin + 0x200;

struct PublisherConfig {
  std::uint32_t block_bytes = 1400;
  sim::Duration nack_timeout = sim::seconds(2);  ///< per CountQuery
  /// Optional subcast relay: repairs are tunnelled through this on-tree
  /// router instead of retransmitted on the whole channel.
  std::optional<ip::Address> repair_point;
};

struct RepairReport {
  std::uint32_t round = 0;
  std::vector<std::uint32_t> blocks_missing;  ///< blocks with NACKs > 0
  std::int64_t total_nacks = 0;
  std::uint32_t retransmitted = 0;
};

class Publisher {
 public:
  /// `channel` must be sourced by `host`.
  Publisher(ExpressHost& host, ip::ChannelId channel,
            PublisherConfig config = {});

  /// Multicast blocks 1..count on the channel.
  void publish(std::uint32_t count);

  /// One NACK-collection round over all published blocks, followed by
  /// retransmission of every block some subscriber is missing. `done`
  /// fires with the round's report once all queries resolve.
  void run_repair_round(std::function<void(RepairReport)> done);

  [[nodiscard]] std::uint32_t blocks_published() const { return blocks_; }
  [[nodiscard]] std::uint32_t rounds_run() const { return rounds_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  void retransmit(std::uint32_t block);

  ExpressHost& host_;
  ip::ChannelId channel_;
  PublisherConfig config_;
  std::uint32_t blocks_ = 0;
  std::uint32_t rounds_ = 0;
  std::uint64_t retransmissions_ = 0;
};

/// Receiver side: tracks received blocks and answers per-block NACK
/// queries automatically.
class Subscriber {
 public:
  /// Subscribes `host` to `channel`, expecting `expected_blocks` blocks
  /// (known out of band, e.g. from the session advertisement).
  Subscriber(ExpressHost& host, ip::ChannelId channel,
             std::uint32_t expected_blocks,
             std::optional<ip::ChannelKey> key = std::nullopt);

  [[nodiscard]] bool complete() const {
    return received_.size() >= expected_;
  }
  [[nodiscard]] std::vector<std::uint32_t> missing() const;
  [[nodiscard]] std::size_t received_count() const { return received_.size(); }

 private:
  ExpressHost& host_;
  ip::ChannelId channel_;
  std::uint32_t expected_;
  std::set<std::uint32_t> received_;
};

}  // namespace express::reliable
