// Reliable block distribution over an EXPRESS channel.
//
// The paper's recipe for "wide-area multicast file updates": multicast
// the blocks, then use the counting facility "to efficiently collect
// positive acknowledgements or negative acknowledgments to determine
// how many subscribers missed a particular packet" (§2.2.1), and repair
// with retransmission — channel-wide, or through a subcast relay point
// so only the affected subtree pays (§2.1). Unlike the application-
// layer feedback schemes of [3,10,19], the aggregation happens in the
// routers: no implosion risk, no client-side probability tuning (§7.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "ecmp/count_id.hpp"
#include "express/host.hpp"
#include "ip/channel.hpp"
#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace express::reliable {

/// Base of the per-block NACK countId range (app-defined space).
/// Block b's NACK count lives at kNackBase + b.
inline constexpr ecmp::CountId kNackBase = ecmp::kAppRangeBegin + 0x200;

/// CountId answering "how many blocks is this subscriber still
/// missing". Key identity (§2.1 repair targeting): summed over hosts it
/// equals the sum of the per-block NACK counts, so a candidate repair
/// router's subtree covers ALL outstanding loss iff its kNackTotalId
/// aggregate equals the channel-wide per-block total.
inline constexpr ecmp::CountId kNackTotalId = kNackBase - 1;

struct PublisherConfig {
  std::uint32_t block_bytes = 1400;
  sim::Duration nack_timeout = sim::seconds(2);  ///< per CountQuery
  /// Optional subcast relay: repairs are tunnelled through this on-tree
  /// router instead of retransmitted on the whole channel.
  std::optional<ip::Address> repair_point;
  /// Candidate subcast repair points (on-tree routers, e.g. session
  /// relays' first-hop routers) for run_to_completion. Each round the
  /// publisher counts the loss subtree below each candidate in order
  /// and repairs through the first that covers every outstanding NACK;
  /// when none does, the round repairs channel-wide.
  std::vector<ip::Address> repair_candidates;
  /// Bounded exponential backoff between repair rounds: the first wait
  /// is `initial_backoff`, doubling up to `max_backoff`.
  sim::Duration initial_backoff = sim::seconds(1);
  sim::Duration max_backoff = sim::seconds(8);
  /// Give up (complete = false) after this many rounds.
  std::uint32_t max_rounds = 16;
};

struct RepairReport {
  std::uint32_t round = 0;
  std::vector<std::uint32_t> blocks_missing;  ///< blocks with NACKs > 0
  std::int64_t total_nacks = 0;
  std::uint32_t retransmitted = 0;
};

/// Outcome of run_to_completion.
struct CompletionReport {
  bool complete = false;           ///< every block's NACK count hit zero
  std::uint32_t rounds = 0;        ///< NACK-collection rounds run
  std::uint64_t retransmissions = 0;  ///< block retransmits, all rounds
  std::uint64_t subcast_repairs = 0;  ///< of which subcast via a candidate
  std::uint64_t channel_repairs = 0;  ///< of which channel-wide
  /// Outstanding NACK total measured by the final round (0 when
  /// complete; the last pre-repair count when max_rounds ran out).
  std::int64_t residual_nacks = 0;
};

class Publisher {
 public:
  /// `channel` must be sourced by `host`.
  Publisher(ExpressHost& host, ip::ChannelId channel,
            PublisherConfig config = {});

  /// Multicast blocks 1..count on the channel.
  void publish(std::uint32_t count);

  /// One NACK-collection round over all published blocks, followed by
  /// retransmission of every block some subscriber is missing. `done`
  /// fires with the round's report once all queries resolve.
  void run_repair_round(std::function<void(RepairReport)> done);

  /// Drive repair rounds until the NACK count for every block reaches
  /// zero, then invoke `done` with complete = true. Each round collects
  /// per-block NACK counts, sizes the loss subtree below each
  /// repair_candidate (remote kNackTotalId count, §2.1), retransmits
  /// the missing blocks — subcast through the first covering candidate,
  /// else channel-wide — and backs off exponentially (bounded) before
  /// re-counting. Gives up with complete = false after max_rounds.
  /// One completion run at a time.
  void run_to_completion(std::function<void(CompletionReport)> done);

  [[nodiscard]] std::uint32_t blocks_published() const { return blocks_; }
  [[nodiscard]] std::uint32_t rounds_run() const { return rounds_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  void retransmit(std::uint32_t block);
  /// NACK-collection only (no retransmission): `done` fires once every
  /// per-block query resolved, with blocks_missing sorted.
  void collect_nacks(std::uint32_t round,
                     std::function<void(RepairReport)> done);
  void completion_round();
  /// Probe repair_candidates[candidate...]; repairs through the first
  /// whose loss subtree covers the whole round, else channel-wide.
  void select_repair_path(std::shared_ptr<const RepairReport> report,
                          std::size_t candidate);
  void apply_round_repairs(const RepairReport& report,
                           std::optional<ip::Address> via);
  void finish_completion();

  ExpressHost& host_;
  ip::ChannelId channel_;
  PublisherConfig config_;
  obs::Scope scope_;
  std::uint32_t blocks_ = 0;
  std::uint32_t rounds_ = 0;
  std::uint64_t retransmissions_ = 0;
  // run_to_completion state.
  std::function<void(CompletionReport)> completion_done_;
  CompletionReport completion_;
  sim::Duration backoff_{};
  bool completing_ = false;
};

/// Receiver side: tracks received blocks and answers per-block NACK
/// queries automatically.
class Subscriber {
 public:
  /// Subscribes `host` to `channel`, expecting `expected_blocks` blocks
  /// (known out of band, e.g. from the session advertisement).
  Subscriber(ExpressHost& host, ip::ChannelId channel,
             std::uint32_t expected_blocks,
             std::optional<ip::ChannelKey> key = std::nullopt);

  [[nodiscard]] bool complete() const {
    return received_.size() >= expected_;
  }
  [[nodiscard]] std::vector<std::uint32_t> missing() const;
  [[nodiscard]] std::size_t received_count() const { return received_.size(); }

 private:
  ExpressHost& host_;
  ip::ChannelId channel_;
  std::uint32_t expected_;
  std::set<std::uint32_t> received_;
};

}  // namespace express::reliable
