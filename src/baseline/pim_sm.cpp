#include "baseline/pim_sm.hpp"

#include <limits>
#include <memory>

namespace express::baseline {

PimSmRouter::PimSmRouter(net::Network& network, net::NodeId id,
                         PimConfig config)
    : net::Node(network, id), config_(config),
      scope_(network.node_scope(id)), plane_(network, id) {
  stats_.joins_star_g = scope_.counter("baseline.pim.joins_star_g");
  stats_.joins_sg = scope_.counter("baseline.pim.joins_sg");
  stats_.prunes = scope_.counter("baseline.pim.prunes");
  stats_.registers_sent = scope_.counter("baseline.pim.registers_sent");
  stats_.registers_decapsulated =
      scope_.counter("baseline.pim.registers_decapsulated");
  stats_.register_stops = scope_.counter("baseline.pim.register_stops");
  stats_.data_copies_sent = scope_.counter("baseline.pim.data_copies_sent");
  stats_.drops = scope_.counter("baseline.pim.drops");
}

std::optional<net::NodeId> PimSmRouter::toward(ip::Address addr) const {
  auto node = network().node_of(addr);
  if (!node) return std::nullopt;
  return network().routing().next_hop(id(), *node);
}

std::optional<std::uint32_t> PimSmRouter::rpf_iface_toward(
    ip::Address addr) const {
  auto node = network().node_of(addr);
  if (!node) return std::nullopt;
  return network().routing().rpf_interface(id(), *node);
}

bool PimSmRouter::iface_is_host(std::uint32_t iface) const {
  const net::NodeId peer = network().topology().neighbor_via(id(), iface);
  return network().topology().node(peer).kind == net::NodeKind::kHost;
}

void PimSmRouter::handle_packet(const net::Packet& packet,
                                std::uint32_t in_iface) {
  if (packet.protocol == ip::Protocol::kPim ||
      packet.protocol == ip::Protocol::kIgmp) {
    for (const Msg& msg : decode_all(packet.payload)) {
      on_control(msg, in_iface);
    }
    return;
  }
  if (packet.protocol == ip::Protocol::kIpInIp && packet.dst == address()) {
    on_register(packet);
    return;
  }
  if (packet.protocol == ip::Protocol::kUdp && packet.dst.is_multicast()) {
    on_data(packet, in_iface);
  }
}

void PimSmRouter::join_shared_tree(ip::Address group) {
  StarG& state = star_g_[group];
  if (state.joined_upstream || is_rp()) return;
  auto up = toward(config_.rp);
  if (!up || network().topology().node(*up).kind != net::NodeKind::kRouter) {
    return;
  }
  Msg join;
  join.type = MsgType::kJoinStarG;
  join.group = group;
  send_control(*up, join);
  stats_.joins_star_g.inc();
  state.joined_upstream = true;
}

void PimSmRouter::join_source_tree(const ip::ChannelId& sg) {
  Sg& state = sg_[sg];
  if (state.joined_upstream) return;
  auto src_node = network().node_of(sg.source);
  if (!src_node) return;
  auto up = network().routing().rpf_neighbor(id(), *src_node);
  if (!up || network().topology().node(*up).kind != net::NodeKind::kRouter) {
    state.joined_upstream = true;  // source is directly attached
    return;
  }
  Msg join;
  join.type = MsgType::kJoinSG;
  join.group = sg.dest;
  join.source = sg.source;
  send_control(*up, join);
  stats_.joins_sg.inc();
  state.joined_upstream = true;
}

void PimSmRouter::on_control(const Msg& msg, std::uint32_t in_iface) {
  switch (msg.type) {
    case MsgType::kMembershipReport:
      members_[msg.group].insert(in_iface);
      star_g_[msg.group].oifs.insert(in_iface);
      join_shared_tree(msg.group);
      return;
    case MsgType::kLeaveGroup: {
      auto member = members_.find(msg.group);
      if (member != members_.end()) {
        member->second.erase(in_iface);
        if (member->second.empty()) members_.erase(member);
      }
      auto it = star_g_.find(msg.group);
      if (it == star_g_.end()) return;
      it->second.oifs.erase(in_iface);
      if (it->second.oifs.empty()) {
        if (it->second.joined_upstream && !is_rp()) {
          if (auto up = toward(config_.rp)) {
            Msg prune;
            prune.type = MsgType::kPruneStarG;
            prune.group = msg.group;
            send_control(*up, prune);
            stats_.prunes.inc();
          }
        }
        star_g_.erase(it);
      }
      return;
    }
    case MsgType::kJoinStarG:
      star_g_[msg.group].oifs.insert(in_iface);
      join_shared_tree(msg.group);
      return;
    case MsgType::kPruneStarG: {
      auto it = star_g_.find(msg.group);
      if (it == star_g_.end()) return;
      it->second.oifs.erase(in_iface);
      if (it->second.oifs.empty() && !is_rp()) {
        if (it->second.joined_upstream) {
          if (auto up = toward(config_.rp)) {
            Msg prune;
            prune.type = MsgType::kPruneStarG;
            prune.group = msg.group;
            send_control(*up, prune);
            stats_.prunes.inc();
          }
        }
        star_g_.erase(it);
      }
      return;
    }
    case MsgType::kJoinSG:
      sg_[ip::ChannelId{msg.source, msg.group}].oifs.insert(in_iface);
      join_source_tree(ip::ChannelId{msg.source, msg.group});
      return;
    case MsgType::kPruneSG:
      // RPT-prune: stop sending this source's packets down that branch
      // of the shared tree (the receiver switched to the SPT).
      rpt_pruned_[ip::ChannelId{msg.source, msg.group}].insert(in_iface);
      return;
    case MsgType::kRegisterStop:
      register_stopped_.insert(ip::ChannelId{msg.source, msg.group});
      stats_.register_stops.inc();
      return;
    case MsgType::kGraft:
      // DVMRP-only message; PIM-SM re-joins instead of grafting.
      return;
  }
}

void PimSmRouter::deliver(const net::Packet& packet,
                          const std::unordered_set<std::uint32_t>& oifs,
                          std::uint32_t in_iface) {
  net::InterfaceSet set;
  // lint: order-independent (bitmap build is commutative)
  for (std::uint32_t iface : oifs) set.set(iface);
  net::ReplicateOptions opts;
  opts.exclude_iface = in_iface;
  opts.skip_down_links = true;
  stats_.data_copies_sent.add(plane_.replicate(packet, set, opts));
}

void PimSmRouter::maybe_spt_switchover(const net::Packet& packet) {
  if (!config_.spt_switchover) return;
  const ip::ChannelId sg{packet.src, packet.dst};
  if (switched_.contains(sg)) return;
  auto member = members_.find(packet.dst);
  if (member == members_.end() || member->second.empty()) return;
  switched_.insert(sg);
  // Join the source tree with our member interfaces as the initial oifs.
  Sg& state = sg_[sg];
  // lint: order-independent (set union is commutative)
  for (std::uint32_t iface : member->second) state.oifs.insert(iface);
  join_source_tree(sg);
  // RPT-prune this source off the shared tree.
  if (auto up = toward(config_.rp)) {
    if (network().topology().node(*up).kind == net::NodeKind::kRouter) {
      Msg prune;
      prune.type = MsgType::kPruneSG;
      prune.group = packet.dst;
      prune.source = packet.src;
      send_control(*up, prune);
      stats_.prunes.inc();
    }
  }
}

std::unordered_set<std::uint32_t> PimSmRouter::inherited_oifs(
    const ip::ChannelId& sg) const {
  // PIM-SM oif inheritance: an (S,G) entry forwards to its own oifs
  // plus the (*,G) oifs, minus branches RPT-pruned for this source.
  // RPT-prunes remove only the shared-tree contribution: an interface
  // that explicitly (S,G)-joined keeps receiving.
  std::unordered_set<std::uint32_t> oifs;
  if (auto star = star_g_.find(sg.dest); star != star_g_.end()) {
    oifs = star->second.oifs;
  }
  if (auto pruned = rpt_pruned_.find(sg); pruned != rpt_pruned_.end()) {
    // lint: order-independent (set difference is commutative)
    for (std::uint32_t iface : pruned->second) oifs.erase(iface);
  }
  if (auto it = sg_.find(sg); it != sg_.end()) {
    // lint: order-independent (set union is commutative)
    for (std::uint32_t iface : it->second.oifs) oifs.insert(iface);
  }
  return oifs;
}

void PimSmRouter::on_data(const net::Packet& packet, std::uint32_t in_iface) {
  const ip::ChannelId sg{packet.src, packet.dst};

  // Directly attached source: first-hop duties.
  auto src_node = network().node_of(packet.src);
  const bool source_attached =
      src_node && iface_is_host(in_iface) &&
      network().topology().neighbor_via(id(), in_iface) == *src_node;

  if (source_attached) {
    // Install (S,G) register state so copies of this flow returning
    // from the RP fail the more-specific iif check and are dropped.
    Sg& state = sg_[sg];
    state.joined_upstream = true;  // the source is adjacent
    deliver(packet, inherited_oifs(sg), in_iface);
    if (!is_rp() && !register_stopped_.contains(sg)) {
      // Register triangle: encapsulate to the RP.
      net::Packet outer;
      outer.src = address();
      outer.dst = config_.rp;
      outer.protocol = ip::Protocol::kIpInIp;
      outer.inner = std::make_shared<net::Packet>(packet);
      stats_.registers_sent.inc();
      network().send_unicast(id(), std::move(outer));
    }
    return;
  }

  // Longest-match: when (S,G) state exists it governs exclusively; a
  // packet failing its iif check is dropped, never re-routed via (*,G).
  if (auto it = sg_.find(sg); it != sg_.end()) {
    auto rpf = rpf_iface_toward(packet.src);
    if (!rpf || *rpf != in_iface) {
      stats_.drops.inc();
      scope_.emit(network().now(), obs::TraceType::kPacketDropped,
                  static_cast<std::uint64_t>(obs::DropReason::kRpfFail),
                  packet.wire_size());
      return;
    }
    deliver(packet, inherited_oifs(sg), in_iface);
    it->second.native_seen = true;
    if (is_rp() && it->second.registering_router != ip::Address{}) {
      // Native (S,G) reached the RP: tell the first hop to stop
      // registering.
      Msg stop;
      stop.type = MsgType::kRegisterStop;
      stop.group = packet.dst;
      stop.source = packet.src;
      net::Packet out;
      out.src = address();
      out.dst = it->second.registering_router;
      out.protocol = ip::Protocol::kPim;
      out.payload = encode(stop);
      network().send_unicast(id(), std::move(out));
      it->second.registering_router = ip::Address{};
    }
    maybe_spt_switchover(packet);
    return;
  }

  // Shared tree: iif must face the RP.
  if (auto it = star_g_.find(packet.dst); it != star_g_.end()) {
    auto rpf = rpf_iface_toward(config_.rp);
    if ((rpf && *rpf == in_iface) || is_rp()) {
      auto oifs = it->second.oifs;
      if (auto pruned = rpt_pruned_.find(sg); pruned != rpt_pruned_.end()) {
        for (std::uint32_t iface : pruned->second) oifs.erase(iface);
      }
      deliver(packet, oifs, in_iface);
      maybe_spt_switchover(packet);
      return;
    }
  }
  stats_.drops.inc();
  scope_.emit(network().now(), obs::TraceType::kPacketDropped,
              static_cast<std::uint64_t>(obs::DropReason::kNoRoute),
              packet.wire_size());
}

void PimSmRouter::on_register(const net::Packet& packet) {
  if (!is_rp() || !packet.inner) return;
  stats_.registers_decapsulated.inc();
  const net::Packet& inner = *packet.inner;
  const ip::ChannelId sg{inner.src, inner.dst};

  // SPT bit: once native (S,G) data flows, register copies are
  // duplicates — drop them (the RegisterStop is already on its way).
  if (auto existing = sg_.find(sg);
      existing != sg_.end() && existing->second.native_seen) {
    existing->second.registering_router = packet.src;
    return;
  }

  // Forward the decapsulated packet down the shared tree.
  if (auto it = star_g_.find(inner.dst); it != star_g_.end()) {
    auto oifs = it->second.oifs;
    if (auto pruned = rpt_pruned_.find(sg); pruned != rpt_pruned_.end()) {
      for (std::uint32_t iface : pruned->second) oifs.erase(iface);
    }
    // No meaningful in_iface for a decapsulated packet.
    deliver(inner, oifs, std::numeric_limits<std::uint32_t>::max());
  }

  // Build the native path: join toward the source, remember who to stop.
  Sg& state = sg_[sg];
  state.registering_router = packet.src;
  join_source_tree(sg);
}

void PimSmRouter::send_control(net::NodeId neighbor, const Msg& msg) {
  net::Packet packet;
  packet.src = address();
  packet.dst = network().topology().node(neighbor).address;
  packet.protocol = ip::Protocol::kPim;
  packet.payload = encode(msg);
  network().send_to_neighbor(id(), neighbor, std::move(packet));
}

}  // namespace express::baseline
