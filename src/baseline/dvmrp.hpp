// DVMRP / PIM-DM-style broadcast-and-prune baseline.
//
// The paper dismisses this family for wide-area use: data for (S, G) is
// *flooded* along the RPF tree to every router in the domain, and
// routers with no downstream interest prune — so every router that the
// flood reaches holds (S, G) state whether or not it has subscribers,
// and silence costs bandwidth everywhere. This implementation exists so
// the benches can measure exactly that off-tree traffic and state
// against EXPRESS's subscription-only trees.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/wire.hpp"
#include "express/forwarding.hpp"
#include "ip/channel.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace express::baseline {

struct DvmrpConfig {
  /// How long a received prune suppresses flooding on an interface
  /// before the flood (and re-pruning) resumes.
  sim::Duration prune_lifetime = sim::seconds(120);
};

struct DvmrpStats {
  std::uint64_t data_packets_forwarded = 0;
  std::uint64_t data_copies_sent = 0;
  std::uint64_t flood_copies = 0;   ///< copies sent to router links (speculative)
  std::uint64_t rpf_drops = 0;
  std::uint64_t prunes_sent = 0;
  std::uint64_t prunes_received = 0;
  std::uint64_t grafts_sent = 0;
  std::uint64_t grafts_received = 0;
};

class DvmrpRouter : public net::Node {
 public:
  DvmrpRouter(net::Network& network, net::NodeId id, DvmrpConfig config = {});

  void handle_packet(const net::Packet& packet, std::uint32_t in_iface) override;

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] DvmrpStats stats() const {
    DvmrpStats s;
    s.data_packets_forwarded = stats_.data_packets_forwarded.value();
    s.data_copies_sent = stats_.data_copies_sent.value();
    s.flood_copies = stats_.flood_copies.value();
    s.rpf_drops = stats_.rpf_drops.value();
    s.prunes_sent = stats_.prunes_sent.value();
    s.prunes_received = stats_.prunes_received.value();
    s.grafts_sent = stats_.grafts_sent.value();
    s.grafts_received = stats_.grafts_received.value();
    return s;
  }
  /// (S,G) forwarding-cache entries — present at every router the flood
  /// reached, the group model's state-scaling problem.
  [[nodiscard]] std::size_t state_entries() const { return sg_.size(); }
  [[nodiscard]] bool has_members(ip::Address group) const {
    auto it = members_.find(group);
    return it != members_.end() && !it->second.empty();
  }

 private:
  struct SgState {
    std::unordered_map<std::uint32_t, sim::Time> pruned_until;  ///< per iface
    bool prune_sent_upstream = false;
    sim::Time prune_expiry{};
  };

  void on_control(const Msg& msg, std::uint32_t in_iface);
  void forward_data(const net::Packet& packet, std::uint32_t in_iface);
  void send_control(net::NodeId neighbor, const Msg& msg);
  [[nodiscard]] bool iface_is_host(std::uint32_t iface) const;

  /// Registry-backed counter handles (DvmrpStats is assembled on
  /// demand by stats()).
  struct DvmrpCounters {
    obs::Counter data_packets_forwarded;
    obs::Counter data_copies_sent;
    obs::Counter flood_copies;
    obs::Counter rpf_drops;
    obs::Counter prunes_sent;
    obs::Counter prunes_received;
    obs::Counter grafts_sent;
    obs::Counter grafts_received;
  };

  DvmrpConfig config_;
  obs::Scope scope_;
  DvmrpCounters stats_;
  /// Shared data plane: DVMRP resolves flood-minus-prunes into an
  /// outgoing set, then replicates through the protocol-agnostic plane.
  express::ForwardingPlane plane_;
  std::unordered_map<ip::Address, std::unordered_set<std::uint32_t>> members_;
  std::unordered_map<ip::ChannelId, SgState> sg_;  ///< keyed (S, G)
};

}  // namespace express::baseline
