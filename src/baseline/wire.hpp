// Wire format shared by the baseline group-model protocols.
//
// The baselines (DVMRP-style broadcast-and-prune, PIM-SM, CBT, IGMP
// membership) exist so the benches can reproduce the paper's
// comparisons: state cost, path stretch through RPs/cores, off-tree
// traffic, and join latency. One compact TLV-free record covers all of
// their control messages; each protocol uses its own IP protocol number.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ip/address.hpp"

namespace express::baseline {

enum class MsgType : std::uint8_t {
  kMembershipReport = 1,  ///< IGMP-style host join, group-scoped
  kLeaveGroup = 2,        ///< IGMP-style host leave
  kJoinStarG = 3,         ///< PIM (*,G) join toward the RP / CBT join toward core
  kPruneStarG = 4,        ///< leave the shared tree
  kJoinSG = 5,            ///< PIM (S,G) join toward the source (SPT)
  kPruneSG = 6,           ///< DVMRP prune / PIM (S,G) RPT-prune
  kGraft = 7,             ///< DVMRP graft (undo a prune)
  kRegisterStop = 8,      ///< PIM RP -> first-hop: native path established
};

struct Msg {
  MsgType type = MsgType::kMembershipReport;
  ip::Address group;
  ip::Address source;          ///< zero for (*,G) messages
  std::uint32_t holdtime_ms = 0;

  static constexpr std::size_t kSize = 14;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const Msg& msg);
void encode_to(const Msg& msg, std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<Msg> decode(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<Msg> decode_all(std::span<const std::uint8_t> bytes);

}  // namespace express::baseline
