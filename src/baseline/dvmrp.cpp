#include "baseline/dvmrp.hpp"

#include "sim/det.hpp"

namespace express::baseline {

DvmrpRouter::DvmrpRouter(net::Network& network, net::NodeId id,
                         DvmrpConfig config)
    : net::Node(network, id), config_(config),
      scope_(network.node_scope(id)), plane_(network, id) {
  stats_.data_packets_forwarded =
      scope_.counter("baseline.dvmrp.data_packets_forwarded");
  stats_.data_copies_sent = scope_.counter("baseline.dvmrp.data_copies_sent");
  stats_.flood_copies = scope_.counter("baseline.dvmrp.flood_copies");
  stats_.rpf_drops = scope_.counter("baseline.dvmrp.rpf_drops");
  stats_.prunes_sent = scope_.counter("baseline.dvmrp.prunes_sent");
  stats_.prunes_received = scope_.counter("baseline.dvmrp.prunes_received");
  stats_.grafts_sent = scope_.counter("baseline.dvmrp.grafts_sent");
  stats_.grafts_received = scope_.counter("baseline.dvmrp.grafts_received");
}

bool DvmrpRouter::iface_is_host(std::uint32_t iface) const {
  const net::NodeId peer = network().topology().neighbor_via(id(), iface);
  return network().topology().node(peer).kind == net::NodeKind::kHost;
}

void DvmrpRouter::handle_packet(const net::Packet& packet,
                                std::uint32_t in_iface) {
  if (packet.protocol == ip::Protocol::kIgmp) {
    for (const Msg& msg : decode_all(packet.payload)) {
      on_control(msg, in_iface);
    }
    return;
  }
  if (packet.protocol == ip::Protocol::kUdp && packet.dst.is_multicast()) {
    forward_data(packet, in_iface);
  }
}

void DvmrpRouter::on_control(const Msg& msg, std::uint32_t in_iface) {
  // DVMRP speaks only the IGMP/prune/graft subset of the shared
  // baseline MsgType vocabulary; PIM/CBT frames are ignorable noise.
  // lint: partial-switch (DVMRP-relevant subset; rest intentionally ignored)
  switch (msg.type) {
    case MsgType::kMembershipReport: {
      members_[msg.group].insert(in_iface);
      // Graft back any branches we pruned for this group (§ DVMRP),
      // emitting the Graft burst in (S, G) order rather than hash order.
      for (auto* kv : det::sorted_items(sg_)) {
        auto& [channel, state] = *kv;
        if (channel.dest != msg.group || !state.prune_sent_upstream) continue;
        state.prune_sent_upstream = false;
        if (auto src = network().node_of(channel.source)) {
          if (auto up = network().routing().rpf_neighbor(id(), *src)) {
            Msg graft;
            graft.type = MsgType::kGraft;
            graft.group = msg.group;
            graft.source = channel.source;
            send_control(*up, graft);
            stats_.grafts_sent.inc();
          }
        }
      }
      return;
    }
    case MsgType::kLeaveGroup: {
      auto it = members_.find(msg.group);
      if (it != members_.end()) {
        it->second.erase(in_iface);
        if (it->second.empty()) members_.erase(it);
      }
      return;
    }
    case MsgType::kPruneSG: {
      stats_.prunes_received.inc();
      const ip::ChannelId key{msg.source, msg.group};
      sg_[key].pruned_until[in_iface] =
          network().now() + sim::milliseconds(msg.holdtime_ms);
      return;
    }
    case MsgType::kGraft: {
      stats_.grafts_received.inc();
      const ip::ChannelId key{msg.source, msg.group};
      auto it = sg_.find(key);
      if (it == sg_.end()) return;
      it->second.pruned_until.erase(in_iface);
      if (it->second.prune_sent_upstream) {
        it->second.prune_sent_upstream = false;
        if (auto src = network().node_of(msg.source)) {
          if (auto up = network().routing().rpf_neighbor(id(), *src)) {
            Msg graft = msg;
            send_control(*up, graft);
            stats_.grafts_sent.inc();
          }
        }
      }
      return;
    }
    default:
      return;  // not a DVMRP message
  }
}

void DvmrpRouter::forward_data(const net::Packet& packet,
                               std::uint32_t in_iface) {
  auto src_node = network().node_of(packet.src);
  if (!src_node) return;
  auto rpf = network().routing().rpf_interface(id(), *src_node);
  if (!rpf || *rpf != in_iface) {
    stats_.rpf_drops.inc();
    scope_.emit(network().now(), obs::TraceType::kPacketDropped,
                static_cast<std::uint64_t>(obs::DropReason::kRpfFail),
                packet.wire_size());
    return;
  }

  const ip::ChannelId key{packet.src, packet.dst};
  SgState& state = sg_[key];  // broadcast-and-prune state at *every* router
  const sim::Time now = network().now();

  // Expire stale prunes lazily: flooding resumes after prune_lifetime.
  std::erase_if(state.pruned_until,
                [&](const auto& kv) { return kv.second <= now; });

  std::vector<std::uint32_t> oifs;
  const auto iface_count = network().topology().interface_count(id());
  for (std::uint32_t iface = 0; iface < iface_count; ++iface) {
    if (iface == in_iface) continue;
    const net::LinkId link = network().topology().node(id()).interfaces[iface];
    if (!network().topology().link(link).up) continue;
    if (iface_is_host(iface)) {
      auto member = members_.find(packet.dst);
      if (member != members_.end() && member->second.contains(iface)) {
        oifs.push_back(iface);
      }
      continue;
    }
    if (state.pruned_until.contains(iface)) continue;
    oifs.push_back(iface);
    stats_.flood_copies.inc();
  }

  if (oifs.empty()) {
    // Leaf with no interest: prune toward the source (once per lifetime).
    if (!state.prune_sent_upstream || state.prune_expiry <= now) {
      auto up = network().routing().rpf_neighbor(id(), *src_node);
      if (up && network().topology().node(*up).kind == net::NodeKind::kRouter) {
        Msg prune;
        prune.type = MsgType::kPruneSG;
        prune.group = packet.dst;
        prune.source = packet.src;
        prune.holdtime_ms = static_cast<std::uint32_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                config_.prune_lifetime)
                .count());
        send_control(*up, prune);
        stats_.prunes_sent.inc();
        state.prune_sent_upstream = true;
        state.prune_expiry = now + config_.prune_lifetime;
      }
    }
    return;
  }

  stats_.data_packets_forwarded.inc();
  net::InterfaceSet set;
  for (std::uint32_t iface : oifs) set.set(iface);
  // Link state was already checked while building `oifs`.
  net::ReplicateOptions opts;
  stats_.data_copies_sent.add(plane_.replicate(packet, set, opts));
}

void DvmrpRouter::send_control(net::NodeId neighbor, const Msg& msg) {
  net::Packet packet;
  packet.src = address();
  packet.dst = network().topology().node(neighbor).address;
  packet.protocol = ip::Protocol::kIgmp;
  packet.payload = encode(msg);
  network().send_to_neighbor(id(), neighbor, std::move(packet));
}

}  // namespace express::baseline
