// Group-model host: the any-source counterpart of ExpressHost.
//
// In the group model a host joins an address E and receives traffic
// from *every* sender to E — there is no source designation. That is
// precisely the weakness the paper's EXPRESS channel model removes;
// GroupHost makes it measurable. An optional IGMPv3-style include
// filter demonstrates the paper's §2.2.2 point: filtering happens at
// the receiver, after the unwanted traffic has already consumed the
// last-hop link.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/wire.hpp"
#include "ip/address.hpp"
#include "ip/header.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace express::baseline {

struct GroupHostStats {
  std::uint64_t data_received = 0;       ///< delivered to the application
  std::uint64_t data_filtered = 0;       ///< arrived, dropped by IGMPv3 filter
  std::uint64_t unwanted_data = 0;       ///< arrived for a group never joined
  std::uint64_t bytes_on_last_hop = 0;   ///< all group bytes that hit this host
  std::uint64_t data_sent = 0;
};

class GroupHost : public net::Node {
 public:
  GroupHost(net::Network& network, net::NodeId id);

  void handle_packet(const net::Packet& packet, std::uint32_t in_iface) override;

  /// IGMP-style join/leave of group E (any-source).
  void join_group(ip::Address group, ip::Protocol control = ip::Protocol::kIgmp);
  void leave_group(ip::Address group, ip::Protocol control = ip::Protocol::kIgmp);

  /// IGMPv3-style include filter: deliver only these sources. The
  /// filter is host-local; traffic from other senders still crosses the
  /// last-hop link (counted in bytes_on_last_hop / data_filtered).
  void set_include_filter(ip::Address group,
                          std::vector<ip::Address> sources);
  void clear_filter(ip::Address group);

  /// Any host may send to any group — the group model's open-sender
  /// property (and its abuse vector).
  void send_to_group(ip::Address group, std::uint32_t bytes,
                     std::uint64_t sequence = 0);

  struct Delivery {
    ip::Address group;
    ip::Address source;
    std::uint64_t sequence = 0;
    std::uint32_t bytes = 0;
    sim::Time at{};
  };
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }
  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] GroupHostStats stats() const {
    GroupHostStats s;
    s.data_received = stats_.data_received.value();
    s.data_filtered = stats_.data_filtered.value();
    s.unwanted_data = stats_.unwanted_data.value();
    s.bytes_on_last_hop = stats_.bytes_on_last_hop.value();
    s.data_sent = stats_.data_sent.value();
    return s;
  }
  [[nodiscard]] bool member_of(ip::Address group) const {
    return groups_.contains(group);
  }

 private:
  std::unordered_set<ip::Address> groups_;
  std::unordered_map<ip::Address, std::unordered_set<ip::Address>> filters_;
  /// Registry-backed counter handles (GroupHostStats is assembled on
  /// demand by stats()).
  struct GroupHostCounters {
    obs::Counter data_received;
    obs::Counter data_filtered;
    obs::Counter unwanted_data;
    obs::Counter bytes_on_last_hop;
    obs::Counter data_sent;
  };

  std::vector<Delivery> deliveries_;
  obs::Scope scope_;
  GroupHostCounters stats_;
};

}  // namespace express::baseline
