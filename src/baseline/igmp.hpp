// IGMP membership mechanics, for comparison with ECMP's UDP mode.
//
// Two pieces:
//  * A shared-LAN round model for IGMPv2 report suppression vs the
//    suppression-free IGMPv3 / ECMP behaviour (§3.2: "Unlike IGMPv2,
//    but like the proposed IGMPv3, there is no report suppression").
//    Suppression saves LAN bandwidth but hides the member count — the
//    very information ECMP is designed to collect.
//  * IGMPv3-style source filter records (include/exclude lists), which
//    the paper calls "far more general" than EXPRESS's single-source
//    designation — at the cost of protocol complexity. The filter
//    algebra here is what a v3 host stack maintains per group.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ip/address.hpp"
#include "sim/random.hpp"

namespace express::baseline {

struct IgmpRoundResult {
  std::uint32_t reports_sent = 0;     ///< reports that reached the wire
  std::uint32_t reports_suppressed = 0;
  /// What the querier can conclude: with suppression only "members > 0";
  /// without it, the exact member count.
  std::int64_t observed_count = 0;
  bool count_is_exact = false;
};

/// Simulate one general-query round on a shared LAN with `members`
/// members. With suppression (IGMPv2) each member draws a response
/// delay uniform in [0, max_response); the earliest report suppresses
/// all later ones. Without suppression (IGMPv3 / ECMP UDP mode) every
/// member reports.
IgmpRoundResult igmp_query_round(std::uint32_t members, bool suppression,
                                 sim::Rng& rng);

/// IGMPv3 per-(interface, group) source filter state.
class SourceFilter {
 public:
  enum class Mode : std::uint8_t { kInclude, kExclude };

  /// Initial state: INCLUDE({}) — receive nothing.
  SourceFilter() = default;

  static SourceFilter include(std::vector<ip::Address> sources);
  static SourceFilter exclude(std::vector<ip::Address> sources);

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const std::unordered_set<ip::Address>& sources() const {
    return sources_;
  }

  /// Would traffic from `source` be delivered under this filter?
  [[nodiscard]] bool accepts(ip::Address source) const;

  /// Merge another app's filter on the same group (RFC 3376 §3.2 rules:
  /// the interface state is the union of what any app wants).
  void merge(const SourceFilter& other);

  /// True if this filter is equivalent to an EXPRESS channel
  /// subscription: INCLUDE of exactly one source.
  [[nodiscard]] bool is_single_source() const {
    return mode_ == Mode::kInclude && sources_.size() == 1;
  }

 private:
  Mode mode_ = Mode::kInclude;
  std::unordered_set<ip::Address> sources_;
};

}  // namespace express::baseline
