// PIM-SM baseline: rendezvous-point shared trees with optional SPT
// switchover.
//
// The paper contrasts EXPRESS with PIM-SM on three axes the benches
// measure: (1) data detours through the network-selected RP (path
// stretch); (2) the register encapsulation triangle from the source's
// first hop to the RP; (3) the shared-tree-vs-source-tree state/delay
// tradeoff, which PIM resolves inside the network while EXPRESS leaves
// tree placement to the application (session relays). This is a
// functional subset: static RP, hard-state joins, (*,G) and (S,G)
// trees, Register/RegisterStop, and last-hop SPT switchover with
// RPT-prune.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/wire.hpp"
#include "express/forwarding.hpp"
#include "ip/channel.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "obs/obs.hpp"

namespace express::baseline {

struct PimConfig {
  ip::Address rp;  ///< rendezvous point for all groups (static mapping)
  /// Last-hop routers join the source tree after the first packet
  /// received on the shared tree, then RPT-prune the source.
  bool spt_switchover = false;
};

struct PimStats {
  std::uint64_t joins_star_g = 0;
  std::uint64_t joins_sg = 0;
  std::uint64_t prunes = 0;
  std::uint64_t registers_sent = 0;
  std::uint64_t registers_decapsulated = 0;
  std::uint64_t register_stops = 0;
  std::uint64_t data_copies_sent = 0;
  std::uint64_t drops = 0;
};

class PimSmRouter : public net::Node {
 public:
  PimSmRouter(net::Network& network, net::NodeId id, PimConfig config);

  void handle_packet(const net::Packet& packet, std::uint32_t in_iface) override;

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] PimStats stats() const {
    PimStats s;
    s.joins_star_g = stats_.joins_star_g.value();
    s.joins_sg = stats_.joins_sg.value();
    s.prunes = stats_.prunes.value();
    s.registers_sent = stats_.registers_sent.value();
    s.registers_decapsulated = stats_.registers_decapsulated.value();
    s.register_stops = stats_.register_stops.value();
    s.data_copies_sent = stats_.data_copies_sent.value();
    s.drops = stats_.drops.value();
    return s;
  }
  /// Multicast routing entries: (*,G) plus (S,G) — the state the paper's
  /// §5.1 argues shared trees do not actually save for single-source use.
  [[nodiscard]] std::size_t state_entries() const {
    return star_g_.size() + sg_.size();
  }
  [[nodiscard]] bool is_rp() const { return address() == config_.rp; }
  [[nodiscard]] bool on_shared_tree(ip::Address group) const {
    return star_g_.contains(group);
  }
  [[nodiscard]] bool on_source_tree(const ip::ChannelId& sg) const {
    return sg_.contains(sg);
  }

 private:
  struct StarG {
    std::unordered_set<std::uint32_t> oifs;  ///< router + member-host ifaces
    bool joined_upstream = false;
  };
  struct Sg {
    std::unordered_set<std::uint32_t> oifs;
    bool joined_upstream = false;
    /// SPT bit: native (S,G) data has arrived, so register copies are
    /// redundant and suppressed at the RP.
    bool native_seen = false;
    /// first-hop router address, learned from Register, for RegisterStop.
    ip::Address registering_router;
  };

  void on_control(const Msg& msg, std::uint32_t in_iface);
  void on_data(const net::Packet& packet, std::uint32_t in_iface);
  [[nodiscard]] std::unordered_set<std::uint32_t> inherited_oifs(
      const ip::ChannelId& sg) const;
  void on_register(const net::Packet& packet);
  void deliver(const net::Packet& packet,
               const std::unordered_set<std::uint32_t>& oifs,
               std::uint32_t in_iface);
  void join_shared_tree(ip::Address group);
  void join_source_tree(const ip::ChannelId& sg);
  void send_control(net::NodeId neighbor, const Msg& msg);
  void maybe_spt_switchover(const net::Packet& packet);
  [[nodiscard]] std::optional<net::NodeId> toward(ip::Address addr) const;
  [[nodiscard]] std::optional<std::uint32_t> rpf_iface_toward(
      ip::Address addr) const;
  [[nodiscard]] bool iface_is_host(std::uint32_t iface) const;

  /// Registry-backed counter handles (PimStats is assembled on demand
  /// by stats()).
  struct PimCounters {
    obs::Counter joins_star_g;
    obs::Counter joins_sg;
    obs::Counter prunes;
    obs::Counter registers_sent;
    obs::Counter registers_decapsulated;
    obs::Counter register_stops;
    obs::Counter data_copies_sent;
    obs::Counter drops;
  };

  PimConfig config_;
  obs::Scope scope_;
  PimCounters stats_;
  /// Shared data plane: PIM computes its outgoing set per packet (oif
  /// inheritance) and hands replication to the protocol-agnostic plane.
  ForwardingPlane plane_;
  std::unordered_map<ip::Address, std::unordered_set<std::uint32_t>> members_;
  std::unordered_map<ip::Address, StarG> star_g_;
  std::unordered_map<ip::ChannelId, Sg> sg_;
  /// (S,G) RPT-prunes received per shared-tree interface.
  std::unordered_map<ip::ChannelId, std::unordered_set<std::uint32_t>>
      rpt_pruned_;
  /// First-hop state: sources told to stop registering (native path up).
  std::unordered_set<ip::ChannelId> register_stopped_;
  /// Last-hop state: sources already switched to the SPT.
  std::unordered_set<ip::ChannelId> switched_;
};

}  // namespace express::baseline
