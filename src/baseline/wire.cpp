#include "baseline/wire.hpp"

namespace express::baseline {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t at) {
  return (std::uint32_t{b[at]} << 24) | (std::uint32_t{b[at + 1]} << 16) |
         (std::uint32_t{b[at + 2]} << 8) | std::uint32_t{b[at + 3]};
}

}  // namespace

void encode_to(const Msg& msg, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(msg.type));
  out.push_back(0);  // reserved
  put_u32(out, msg.group.value());
  put_u32(out, msg.source.value());
  put_u32(out, msg.holdtime_ms);
}

std::vector<std::uint8_t> encode(const Msg& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(Msg::kSize);
  encode_to(msg, out);
  return out;
}

std::optional<Msg> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < Msg::kSize) return std::nullopt;
  const std::uint8_t type = bytes[0];
  if (type < 1 || type > static_cast<std::uint8_t>(MsgType::kRegisterStop)) {
    return std::nullopt;
  }
  Msg msg;
  msg.type = static_cast<MsgType>(type);
  msg.group = ip::Address{get_u32(bytes, 2)};
  msg.source = ip::Address{get_u32(bytes, 6)};
  msg.holdtime_ms = get_u32(bytes, 10);
  return msg;
}

std::vector<Msg> decode_all(std::span<const std::uint8_t> bytes) {
  std::vector<Msg> out;
  std::size_t at = 0;
  while (at + Msg::kSize <= bytes.size()) {
    auto msg = decode(bytes.subspan(at));
    if (!msg) break;
    out.push_back(*msg);
    at += Msg::kSize;
  }
  return out;
}

}  // namespace express::baseline
