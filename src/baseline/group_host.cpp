#include "baseline/group_host.hpp"

#include <stdexcept>

namespace express::baseline {

GroupHost::GroupHost(net::Network& network, net::NodeId id)
    : net::Node(network, id) {
  if (network.topology().node(id).interfaces.size() != 1) {
    throw std::logic_error("group hosts are single-homed in this simulator");
  }
  scope_ = network.node_scope(id);
  stats_.data_received = scope_.counter("baseline.group_host.data_received");
  stats_.data_filtered = scope_.counter("baseline.group_host.data_filtered");
  stats_.unwanted_data = scope_.counter("baseline.group_host.unwanted_data");
  stats_.bytes_on_last_hop =
      scope_.counter("baseline.group_host.bytes_on_last_hop");
  stats_.data_sent = scope_.counter("baseline.group_host.data_sent");
}

void GroupHost::join_group(ip::Address group, ip::Protocol control) {
  groups_.insert(group);
  scope_.emit(network().now(), obs::TraceType::kSubscriptionChange,
              std::uint64_t{group.value()}, 1);
  Msg msg;
  msg.type = MsgType::kMembershipReport;
  msg.group = group;
  net::Packet packet;
  packet.src = address();
  packet.dst = group;
  packet.protocol = control;
  packet.payload = encode(msg);
  network().send_on_interface(id(), 0, std::move(packet));
}

void GroupHost::leave_group(ip::Address group, ip::Protocol control) {
  groups_.erase(group);
  scope_.emit(network().now(), obs::TraceType::kSubscriptionChange,
              std::uint64_t{group.value()}, 0);
  filters_.erase(group);
  Msg msg;
  msg.type = MsgType::kLeaveGroup;
  msg.group = group;
  net::Packet packet;
  packet.src = address();
  packet.dst = group;
  packet.protocol = control;
  packet.payload = encode(msg);
  network().send_on_interface(id(), 0, std::move(packet));
}

void GroupHost::set_include_filter(ip::Address group,
                                   std::vector<ip::Address> sources) {
  auto& set = filters_[group];
  set.clear();
  for (ip::Address s : sources) set.insert(s);
}

void GroupHost::clear_filter(ip::Address group) { filters_.erase(group); }

void GroupHost::send_to_group(ip::Address group, std::uint32_t bytes,
                              std::uint64_t sequence) {
  net::Packet packet;
  packet.src = address();
  packet.dst = group;
  packet.protocol = ip::Protocol::kUdp;
  packet.data_bytes = bytes;
  packet.sequence = sequence;
  stats_.data_sent.inc();
  network().send_on_interface(id(), 0, std::move(packet));
}

void GroupHost::handle_packet(const net::Packet& packet,
                              std::uint32_t in_iface) {
  (void)in_iface;
  if (!packet.dst.is_multicast()) return;
  if (packet.protocol != ip::Protocol::kUdp) return;  // control is not ours
  stats_.bytes_on_last_hop.add(packet.wire_size());
  if (!groups_.contains(packet.dst)) {
    stats_.unwanted_data.inc();
    return;
  }
  if (auto it = filters_.find(packet.dst);
      it != filters_.end() && !it->second.contains(packet.src)) {
    stats_.data_filtered.inc();  // IGMPv3 include-filter drop, at the host
    return;
  }
  stats_.data_received.inc();
  deliveries_.push_back(Delivery{packet.dst, packet.src, packet.sequence,
                                 packet.data_bytes, network().now()});
}

}  // namespace express::baseline
