#include "baseline/cbt.hpp"

#include <limits>
#include <memory>

namespace express::baseline {

CbtRouter::CbtRouter(net::Network& network, net::NodeId id, CbtConfig config)
    : net::Node(network, id), config_(config),
      scope_(network.node_scope(id)), plane_(network, id) {
  stats_.joins_sent = scope_.counter("baseline.cbt.joins_sent");
  stats_.prunes_sent = scope_.counter("baseline.cbt.prunes_sent");
  stats_.data_copies_sent = scope_.counter("baseline.cbt.data_copies_sent");
  stats_.encapsulated_to_core =
      scope_.counter("baseline.cbt.encapsulated_to_core");
  stats_.decapsulated_at_core =
      scope_.counter("baseline.cbt.decapsulated_at_core");
  stats_.drops = scope_.counter("baseline.cbt.drops");
}

void CbtRouter::handle_packet(const net::Packet& packet,
                              std::uint32_t in_iface) {
  if (packet.protocol == ip::Protocol::kCbt ||
      packet.protocol == ip::Protocol::kIgmp) {
    for (const Msg& msg : decode_all(packet.payload)) {
      on_control(msg, in_iface);
    }
    return;
  }
  if (packet.protocol == ip::Protocol::kIpInIp && packet.dst == address()) {
    // Off-tree sender's encapsulated packet reaching the core.
    if (!is_core() || !packet.inner) return;
    stats_.decapsulated_at_core.inc();
    inject(*packet.inner, std::numeric_limits<std::uint32_t>::max());
    return;
  }
  if (packet.protocol == ip::Protocol::kUdp && packet.dst.is_multicast()) {
    on_data(packet, in_iface);
  }
}

void CbtRouter::join_toward_core(ip::Address group) {
  Tree& tree = trees_[group];
  if (tree.has_upstream || is_core()) return;
  auto core_node = network().node_of(config_.core);
  if (!core_node) return;
  auto up = network().routing().rpf_neighbor(id(), *core_node);
  if (!up || network().topology().node(*up).kind != net::NodeKind::kRouter) {
    return;
  }
  auto iface = network().topology().interface_to(id(), *up);
  if (!iface) return;
  tree.upstream_iface = *iface;
  tree.has_upstream = true;
  tree.ifaces.insert(*iface);  // bidirectional: the upstream is a tree link
  Msg join;
  join.type = MsgType::kJoinStarG;
  join.group = group;
  send_control(*up, join);
  stats_.joins_sent.inc();
}

void CbtRouter::on_control(const Msg& msg, std::uint32_t in_iface) {
  // CBT speaks only the IGMP/join/quit subset of the shared baseline
  // MsgType vocabulary; PIM/DVMRP frames are ignorable noise.
  // lint: partial-switch (CBT-relevant subset; rest intentionally ignored)
  switch (msg.type) {
    case MsgType::kMembershipReport:
      members_[msg.group].insert(in_iface);
      trees_[msg.group].ifaces.insert(in_iface);
      join_toward_core(msg.group);
      return;
    case MsgType::kJoinStarG:
      trees_[msg.group].ifaces.insert(in_iface);
      join_toward_core(msg.group);
      return;
    case MsgType::kLeaveGroup: {
      auto member = members_.find(msg.group);
      if (member != members_.end()) {
        member->second.erase(in_iface);
        if (member->second.empty()) members_.erase(member);
      }
      [[fallthrough]];
    }
    case MsgType::kPruneStarG: {
      auto it = trees_.find(msg.group);
      if (it == trees_.end()) return;
      Tree& tree = it->second;
      tree.ifaces.erase(in_iface);
      // If only the upstream link remains, the branch is dead: prune up.
      const bool only_upstream =
          tree.has_upstream && tree.ifaces.size() == 1 &&
          tree.ifaces.contains(tree.upstream_iface);
      if (tree.ifaces.empty() || only_upstream) {
        if (tree.has_upstream) {
          const net::NodeId up =
              network().topology().neighbor_via(id(), tree.upstream_iface);
          Msg prune;
          prune.type = MsgType::kPruneStarG;
          prune.group = msg.group;
          send_control(up, prune);
          stats_.prunes_sent.inc();
        }
        trees_.erase(it);
      }
      return;
    }
    default:
      return;
  }
}

void CbtRouter::inject(const net::Packet& packet, std::uint32_t except_iface) {
  auto it = trees_.find(packet.dst);
  if (it == trees_.end()) {
    stats_.drops.inc();
    scope_.emit(network().now(), obs::TraceType::kPacketDropped,
                static_cast<std::uint64_t>(obs::DropReason::kNoRoute),
                packet.wire_size());
    return;
  }
  net::InterfaceSet set;
  // lint: order-independent (bitmap build is commutative)
  for (std::uint32_t iface : it->second.ifaces) set.set(iface);
  net::ReplicateOptions opts;
  opts.exclude_iface = except_iface;
  opts.skip_down_links = true;
  stats_.data_copies_sent.add(plane_.replicate(packet, set, opts));
}

void CbtRouter::on_data(const net::Packet& packet, std::uint32_t in_iface) {
  auto it = trees_.find(packet.dst);
  const bool arrival_on_tree =
      it != trees_.end() && it->second.ifaces.contains(in_iface);
  if (arrival_on_tree) {
    // Bidirectional forwarding: everywhere except where it came from.
    inject(packet, in_iface);
    return;
  }
  // Off-tree or non-member sender: the first-hop router tunnels the
  // packet to the core, which injects it into the tree.
  const net::NodeId peer = network().topology().neighbor_via(id(), in_iface);
  const bool from_attached_host =
      network().topology().node(peer).kind == net::NodeKind::kHost;
  if (!from_attached_host) {
    stats_.drops.inc();
    scope_.emit(network().now(), obs::TraceType::kPacketDropped,
                static_cast<std::uint64_t>(obs::DropReason::kRpfFail),
                packet.wire_size());
    return;
  }
  if (is_core()) {
    inject(packet, in_iface);
    return;
  }
  net::Packet outer;
  outer.src = address();
  outer.dst = config_.core;
  outer.protocol = ip::Protocol::kIpInIp;
  outer.inner = std::make_shared<net::Packet>(packet);
  stats_.encapsulated_to_core.inc();
  network().send_unicast(id(), std::move(outer));
}

void CbtRouter::send_control(net::NodeId neighbor, const Msg& msg) {
  net::Packet packet;
  packet.src = address();
  packet.dst = network().topology().node(neighbor).address;
  packet.protocol = ip::Protocol::kCbt;
  packet.payload = encode(msg);
  network().send_to_neighbor(id(), neighbor, std::move(packet));
}

}  // namespace express::baseline
