#include "baseline/igmp.hpp"

#include <algorithm>

namespace express::baseline {

IgmpRoundResult igmp_query_round(std::uint32_t members, bool suppression,
                                 sim::Rng& rng) {
  IgmpRoundResult result;
  if (members == 0) {
    result.count_is_exact = true;
    return result;
  }
  if (!suppression) {
    result.reports_sent = members;
    result.observed_count = members;
    result.count_is_exact = true;
    return result;
  }
  // v2: every member draws a delay; the earliest wins, the rest hear it
  // and suppress. (On a real LAN a few extra reports race through; the
  // single-winner model is the intended steady state.)
  double best = 2.0;
  for (std::uint32_t m = 0; m < members; ++m) {
    best = std::min(best, rng.uniform());
  }
  (void)best;
  result.reports_sent = 1;
  result.reports_suppressed = members - 1;
  result.observed_count = 1;  // querier learns only "at least one"
  result.count_is_exact = (members == 1);
  return result;
}

SourceFilter SourceFilter::include(std::vector<ip::Address> sources) {
  SourceFilter f;
  f.mode_ = Mode::kInclude;
  for (ip::Address s : sources) f.sources_.insert(s);
  return f;
}

SourceFilter SourceFilter::exclude(std::vector<ip::Address> sources) {
  SourceFilter f;
  f.mode_ = Mode::kExclude;
  for (ip::Address s : sources) f.sources_.insert(s);
  return f;
}

bool SourceFilter::accepts(ip::Address source) const {
  const bool listed = sources_.contains(source);
  return mode_ == Mode::kInclude ? listed : !listed;
}

void SourceFilter::merge(const SourceFilter& other) {
  // RFC 3376: the interface must accept anything either record accepts.
  if (mode_ == Mode::kInclude && other.mode_ == Mode::kInclude) {
    // lint: order-independent (set union is commutative)
    for (ip::Address s : other.sources_) sources_.insert(s);
    return;
  }
  if (mode_ == Mode::kExclude && other.mode_ == Mode::kExclude) {
    // EXCLUDE(A) union EXCLUDE(B) accepts ~A or ~B = ~(A intersect B).
    std::unordered_set<ip::Address> intersection;
    // lint: order-independent (set intersection is commutative)
    for (ip::Address s : sources_) {
      if (other.sources_.contains(s)) intersection.insert(s);
    }
    sources_ = std::move(intersection);
    return;
  }
  // Mixed: EXCLUDE(X) union INCLUDE(Y) = EXCLUDE(X - Y).
  const SourceFilter& excl = (mode_ == Mode::kExclude) ? *this : other;
  const SourceFilter& incl = (mode_ == Mode::kExclude) ? other : *this;
  std::unordered_set<ip::Address> remaining;
  // lint: order-independent (set difference is commutative)
  for (ip::Address s : excl.sources_) {
    if (!incl.sources_.contains(s)) remaining.insert(s);
  }
  mode_ = Mode::kExclude;
  sources_ = std::move(remaining);
}

}  // namespace express::baseline
