// CBT baseline: core-based bidirectional shared trees.
//
// One tree per group rooted at a configured core; members join toward
// the core, and data flows *bidirectionally* on tree links — up toward
// the core and down every other branch — so a single (*, G) entry per
// on-tree router serves all senders. Off-tree senders unicast-
// encapsulate to the core. The paper's §4.4 comparison: transit through
// the core behaves like a session relay but without application control
// of its placement, and with no per-source escape hatch short of a new
// group.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "baseline/wire.hpp"
#include "express/forwarding.hpp"
#include "ip/address.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "obs/obs.hpp"

namespace express::baseline {

struct CbtConfig {
  ip::Address core;  ///< core router for all groups (static mapping)
};

struct CbtStats {
  std::uint64_t joins_sent = 0;
  std::uint64_t prunes_sent = 0;
  std::uint64_t data_copies_sent = 0;
  std::uint64_t encapsulated_to_core = 0;
  std::uint64_t decapsulated_at_core = 0;
  std::uint64_t drops = 0;
};

class CbtRouter : public net::Node {
 public:
  CbtRouter(net::Network& network, net::NodeId id, CbtConfig config);

  void handle_packet(const net::Packet& packet, std::uint32_t in_iface) override;

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] CbtStats stats() const {
    CbtStats s;
    s.joins_sent = stats_.joins_sent.value();
    s.prunes_sent = stats_.prunes_sent.value();
    s.data_copies_sent = stats_.data_copies_sent.value();
    s.encapsulated_to_core = stats_.encapsulated_to_core.value();
    s.decapsulated_at_core = stats_.decapsulated_at_core.value();
    s.drops = stats_.drops.value();
    return s;
  }
  [[nodiscard]] bool is_core() const { return address() == config_.core; }
  [[nodiscard]] bool on_tree(ip::Address group) const {
    return trees_.contains(group);
  }
  /// One (*, G) entry per group — CBT's state economy.
  [[nodiscard]] std::size_t state_entries() const { return trees_.size(); }

 private:
  struct Tree {
    /// All tree interfaces: member hosts, downstream routers, and the
    /// upstream toward the core. Bidirectional: data arriving on any of
    /// them fans out to all the others.
    std::unordered_set<std::uint32_t> ifaces;
    std::uint32_t upstream_iface = 0;
    bool has_upstream = false;
  };

  void on_control(const Msg& msg, std::uint32_t in_iface);
  void on_data(const net::Packet& packet, std::uint32_t in_iface);
  void inject(const net::Packet& packet, std::uint32_t except_iface);
  void join_toward_core(ip::Address group);
  void send_control(net::NodeId neighbor, const Msg& msg);

  /// Registry-backed counter handles (CbtStats is assembled on demand
  /// by stats()).
  struct CbtCounters {
    obs::Counter joins_sent;
    obs::Counter prunes_sent;
    obs::Counter data_copies_sent;
    obs::Counter encapsulated_to_core;
    obs::Counter decapsulated_at_core;
    obs::Counter drops;
  };

  CbtConfig config_;
  obs::Scope scope_;
  CbtCounters stats_;
  /// Shared data plane: CBT's bidirectional tree interfaces feed the
  /// protocol-agnostic replication primitive.
  express::ForwardingPlane plane_;
  std::unordered_map<ip::Address, Tree> trees_;
  std::unordered_map<ip::Address, std::unordered_set<std::uint32_t>> members_;
};

}  // namespace express::baseline
