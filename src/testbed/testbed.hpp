// A wired-up EXPRESS network: generated topology + routers + hosts.
//
// Shared by the test suite, the benchmark harness, and the examples —
// the few lines of glue every experiment needs: attach an ExpressRouter
// to every router node and an ExpressHost to every host node, and keep
// typed references to the pieces (source, receivers, root router).
#pragma once

#include <memory>
#include <vector>

#include "express/host.hpp"
#include "express/router.hpp"
#include "net/network.hpp"
#include "net/sharding.hpp"
#include "sim/time.hpp"
#include "workload/topo_gen.hpp"

namespace express {

/// Knobs for Testbed construction beyond the router config.
struct TestbedOptions {
  RouterConfig router_config{};
  /// 0: plain single-threaded network. >= 1: partition the topology
  /// into this many shards (net::partition_topology) and drive them
  /// with the parallel engine — 1 exercises the engine's passthrough
  /// mode, which is byte-identical to the plain run.
  std::uint32_t shards = 0;
  /// Worker threads for sharded window execution (results identical
  /// for any count; 1 = inline reference mode).
  unsigned workers = 1;
};

class Testbed {
 public:
  explicit Testbed(workload::GeneratedTopology generated,
                   RouterConfig router_config = {})
      : Testbed(std::move(generated),
                TestbedOptions{.router_config = router_config}) {}

  Testbed(workload::GeneratedTopology generated,
          const TestbedOptions& options)
      : roles_(std::move(generated)),
        network_(std::make_unique<net::Network>(std::move(roles_.topology))) {
    if (options.shards >= 1) {
      network_->enable_sharding(
          net::partition_topology(network_->topology(), options.shards),
          options.workers);
    }
    for (net::NodeId router : roles_.routers) {
      routers_.push_back(
          &network_->attach<ExpressRouter>(router, options.router_config));
    }
    source_ = &network_->attach<ExpressHost>(roles_.source_host);
    for (net::NodeId host : roles_.receiver_hosts) {
      receivers_.push_back(&network_->attach<ExpressHost>(host));
    }
  }

  [[nodiscard]] net::Network& net() { return *network_; }
  [[nodiscard]] ExpressHost& source() { return *source_; }
  [[nodiscard]] ExpressHost& receiver(std::size_t i) { return *receivers_.at(i); }
  [[nodiscard]] std::size_t receiver_count() const { return receivers_.size(); }
  [[nodiscard]] ExpressRouter& router(std::size_t i) { return *routers_.at(i); }
  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }

  /// The source's first-hop router (the channel tree root).
  [[nodiscard]] ExpressRouter& source_router() {
    for (std::size_t i = 0; i < roles_.routers.size(); ++i) {
      if (roles_.routers[i] == roles_.source_router) return *routers_[i];
    }
    return *routers_.front();
  }

  [[nodiscard]] const workload::GeneratedTopology& roles() const {
    return roles_;
  }

  /// Advance the simulation by `d`.
  void run_for(sim::Duration d) { network_->run_until(network_->now() + d); }

  /// Network-wide FIB entries (sums all routers).
  [[nodiscard]] std::size_t total_fib_entries() const {
    std::size_t n = 0;
    for (const ExpressRouter* r : routers_) n += r->fib().size();
    return n;
  }

  /// Network-wide §5.2 management state (sums all routers).
  [[nodiscard]] std::size_t total_management_bytes() const {
    std::size_t n = 0;
    for (const ExpressRouter* r : routers_) n += r->management_state_bytes();
    return n;
  }

  /// Network-wide ECMP control bytes sent by routers and hosts.
  [[nodiscard]] std::uint64_t total_control_bytes() const {
    std::uint64_t n = 0;
    for (const ExpressRouter* r : routers_) n += r->stats().control_bytes_sent;
    n += source_->stats().control_bytes_sent;
    for (const ExpressHost* h : receivers_) n += h->stats().control_bytes_sent;
    return n;
  }

 private:
  workload::GeneratedTopology roles_;
  std::unique_ptr<net::Network> network_;
  std::vector<ExpressRouter*> routers_;
  std::vector<ExpressHost*> receivers_;
  ExpressHost* source_ = nullptr;
};

}  // namespace express
