// Hard-state channel membership (paper §3.2, §3.5).
//
// SubscriptionTable is the authoritative store of everything a router
// knows about its channels: per-neighbor downstream subscriber counts,
// the upstream (RPF) relationship, and the authentication cache — the
// validated K(S,E) per channel plus the authoritative key registry for
// directly attached sources. Its methods are the *state transitions* of
// the ECMP subscription machine: join, leave, refresh, upstream
// join/prune planning, and the validation-verdict bookkeeping.
//
// Module seam: the table is pure hard state. It sends no messages,
// owns no timers, and installs no FIB entries — each mutating method
// instead returns an effect description (who to acknowledge, who to
// reject, whether to rejoin upstream) that the router turns into ECMP
// messages, FIB refreshes, and observer callbacks. Topology/routing
// queries it needs (RPF interfaces, node kinds, domains) are answered
// by the const net::Network& passed per call; it never mutates the
// network. This is what makes the subscription logic unit-testable
// without a simulation running (see tests/test_subscription.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ecmp/count_id.hpp"
#include "ip/channel.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace express {

struct SubscriptionStats {
  std::uint64_t subscribe_events = 0;    ///< downstream entries created
  std::uint64_t unsubscribe_events = 0;  ///< downstream entries removed
  std::uint64_t joins_sent = 0;          ///< 0 -> non-zero Counts planned upstream
  std::uint64_t prunes_sent = 0;         ///< non-zero -> 0 Counts planned upstream
  std::uint64_t auth_rejects = 0;
  std::uint64_t key_registrations = 0;
};

struct DownstreamEntry {
  std::int64_t count = 0;
  ip::ChannelKey key = ip::kNoKey;
  bool validated = false;     ///< accepted (locally or by upstream)
  sim::Time last_refresh{0};  ///< UDP-mode soft-state timestamp
};

/// One channel's hard state at this router.
struct Channel {
  /// Ordered by neighbor id: downstream sweeps emit messages and pick
  /// retry keys, so iteration order is protocol-visible — a hash map
  /// here would make accept/reject/rejoin behaviour depend on the hash
  /// seed and insertion history (the nondeterminism class PR 3's
  /// flush_all fix addressed dynamically; DESIGN.md §7 bans statically).
  std::map<net::NodeId, DownstreamEntry> downstream;
  std::optional<ip::ChannelKey> cached_key;  ///< validated K(S,E)
  /// Key carried in our not-yet-validated upstream join: the upstream
  /// verdict applies to exactly this key, so concurrently accepted
  /// joins that presented a different key are re-validated separately.
  std::optional<ip::ChannelKey> pending_sent_key;
  bool validated_upstream = false;
  std::int64_t advertised_upstream = 0;  ///< last Count sent up (0 = off-tree)
  net::NodeId upstream = net::kInvalidNode;
  std::uint32_t rpf_iface = 0;

  [[nodiscard]] std::int64_t subtree_count() const {
    std::int64_t total = 0;
    for (const auto& [neighbor, entry] : downstream) total += entry.count;
    return total;
  }
};

/// What the router must transmit after plan_upstream_update().
enum class UpstreamSend : std::uint8_t {
  kNone,
  kJoin,   ///< send Count(total, key) to the upstream
  kPrune,  ///< send Count(0) to the upstream
  kDrift,  ///< aggregate changed: let the proactive engine decide
};

struct [[nodiscard]] UpstreamPlan {
  UpstreamSend send = UpstreamSend::kNone;
  std::int64_t total = 0;
  std::optional<ip::ChannelKey> key;  ///< key to carry on a join
  bool remove_channel = false;        ///< channel emptied: tear it down
};

/// Effects of an upstream validation verdict (CountResponse).
struct [[nodiscard]] VerdictEffects {
  std::vector<net::NodeId> accept;  ///< send kOk downstream
  std::vector<net::NodeId> reject;  ///< send kInvalidKey (entries erased)
  bool membership_changed = false;  ///< refresh FIB + notify observer
  bool channel_gone = false;        ///< no subscribers remain: tear down
  bool rejoin = false;              ///< re-run the upstream update
  std::optional<ip::ChannelKey> rejoin_key;
};

struct [[nodiscard]] RouteSwitch {
  bool prune_old = false;  ///< send Count(0) to the previous upstream
  net::NodeId old_upstream = net::kInvalidNode;
  std::int64_t total = 0;
};

/// One action of a UDP soft-state refresh round, in execution order.
struct UdpAction {
  enum class Kind : std::uint8_t { kUnicastQuery, kLanQuery, kExpire };
  Kind kind = Kind::kUnicastQuery;
  ip::ChannelId channel;
  net::NodeId neighbor = net::kInvalidNode;
  std::uint32_t iface = 0;
};

class SubscriptionTable {
 public:
  /// `scope` binds the table's counters (express.sub.*) to an
  /// observability plane; the default resolves to the global plane
  /// under a fresh anonymous entity.
  explicit SubscriptionTable(obs::Scope scope = {}) : scope_(scope.resolved()) {
    stats_.subscribe_events = scope_.counter("express.sub.subscribe_events");
    stats_.unsubscribe_events =
        scope_.counter("express.sub.unsubscribe_events");
    stats_.joins_sent = scope_.counter("express.sub.joins_sent");
    stats_.prunes_sent = scope_.counter("express.sub.prunes_sent");
    stats_.auth_rejects = scope_.counter("express.sub.auth_rejects");
    stats_.key_registrations =
        scope_.counter("express.sub.key_registrations");
  }

  // --- storage -------------------------------------------------------
  [[nodiscard]] Channel* find(const ip::ChannelId& channel);
  [[nodiscard]] const Channel* find(const ip::ChannelId& channel) const;
  Channel& get_or_create(const ip::ChannelId& channel, bool& created);
  void erase(const ip::ChannelId& channel) { channels_.erase(channel); }
  [[nodiscard]] bool contains(const ip::ChannelId& channel) const {
    return channels_.contains(channel);
  }
  [[nodiscard]] std::unordered_map<ip::ChannelId, Channel>& channels() {
    return channels_;
  }
  [[nodiscard]] const std::unordered_map<ip::ChannelId, Channel>& channels()
      const {
    return channels_;
  }
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] std::int64_t subtree_count(const ip::ChannelId& channel) const;

  // --- authentication (§3.5) -----------------------------------------
  /// Record the authoritative K(S,E) a directly attached source
  /// registered here (§2.1).
  void register_key(const ip::ChannelId& channel, ip::ChannelKey key);
  /// Is `key` acceptable for a join? `at_root` is the router-computed
  /// "we are the first hop / validation authority" predicate;
  /// `locally_decidable` reports whether the answer is final or the
  /// join must be validated upstream.
  [[nodiscard]] bool key_acceptable(const ip::ChannelId& channel,
                                    const Channel& state,
                                    std::optional<ip::ChannelKey> key,
                                    bool at_root,
                                    bool& locally_decidable) const;
  /// A locally decided rejection: count it, and drop the channel again
  /// if this join had just created it.
  void reject_join(const ip::ChannelId& channel, bool created);

  // --- membership transitions (§3.2) ---------------------------------
  /// Leave: drop `from`'s downstream entry. False when nothing changed.
  bool remove_downstream(const ip::ChannelId& channel, net::NodeId from);
  /// Count refresh over an already-validated session: no re-validation
  /// (§3.5). False when the fast path does not apply.
  bool refresh_existing(const ip::ChannelId& channel, net::NodeId from,
                        std::int64_t count, sim::Time now);
  /// Join or update `from`'s entry; `is_new` reports a 0 -> non-zero
  /// transition (a subscribe event).
  DownstreamEntry& apply_join(Channel& state, net::NodeId from,
                              std::int64_t count,
                              std::optional<ip::ChannelKey> key,
                              bool locally_decidable, sim::Time now,
                              bool& is_new);

  /// Decide what (if anything) to send upstream after a membership
  /// change, mutating advertised/pending-key state accordingly.
  UpstreamPlan plan_upstream_update(const ip::ChannelId& channel,
                                    Channel& state,
                                    std::optional<ip::ChannelKey> key_to_forward,
                                    bool upstream_is_router);

  /// Apply an upstream CountResponse verdict (§3.2): cache the
  /// validated key, accept/reject pending joins, plan the rejoin.
  VerdictEffects apply_upstream_verdict(const ip::ChannelId& channel,
                                        bool accepted);

  /// Route change (§3.2): move the channel to a new upstream after the
  /// hysteresis delay; the old advertisement becomes a prune.
  RouteSwitch apply_route_switch(const ip::ChannelId& channel,
                                 net::NodeId new_upstream,
                                 std::optional<std::uint32_t> new_rpf_iface,
                                 bool old_upstream_is_router);

  /// Downstream entries whose link or route died (connection reset).
  [[nodiscard]] std::vector<std::pair<ip::ChannelId, net::NodeId>>
  collect_dead_children(const net::Network& network, net::NodeId self) const;

  /// One UDP soft-state round (§3.2): refresh queries for live entries
  /// (one LAN-wide general query per multi-access interface), then the
  /// expirations, in legacy execution order.
  [[nodiscard]] std::vector<UdpAction> udp_refresh_actions(
      const net::Network& network, net::NodeId self, sim::Time now,
      sim::Duration lifetime,
      const std::function<bool(std::uint32_t)>& iface_is_udp) const;

  // --- counting support (§3.1) ---------------------------------------
  /// This router's own contribution to a network-layer count.
  [[nodiscard]] std::int64_t local_contribution(const Channel& state,
                                                ecmp::CountId count_id,
                                                const net::Network& network,
                                                net::NodeId self) const;
  /// Downstream tree neighbors a CountQuery fans out to: hosts only for
  /// host-visible ids; domain-scoped counts stay inside the domain.
  [[nodiscard]] std::vector<net::NodeId> query_children(
      const Channel& state, ecmp::CountId count_id,
      const net::Network& network, net::NodeId self) const;

  // --- introspection -------------------------------------------------
  /// §5.2 management-state estimate for channels + key registry.
  [[nodiscard]] std::size_t management_state_bytes() const;

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] SubscriptionStats stats() const {
    SubscriptionStats s;
    s.subscribe_events = stats_.subscribe_events.value();
    s.unsubscribe_events = stats_.unsubscribe_events.value();
    s.joins_sent = stats_.joins_sent.value();
    s.prunes_sent = stats_.prunes_sent.value();
    s.auth_rejects = stats_.auth_rejects.value();
    s.key_registrations = stats_.key_registrations.value();
    return s;
  }

 private:
  /// Registry-backed counter handles (SubscriptionStats is assembled on
  /// demand by stats()).
  struct SubscriptionCounters {
    obs::Counter subscribe_events;
    obs::Counter unsubscribe_events;
    obs::Counter joins_sent;
    obs::Counter prunes_sent;
    obs::Counter auth_rejects;
    obs::Counter key_registrations;
  };

  std::unordered_map<ip::ChannelId, Channel> channels_;
  /// Authoritative keys registered by directly attached sources.
  std::unordered_map<ip::ChannelId, ip::ChannelKey> key_registry_;
  obs::Scope scope_;
  SubscriptionCounters stats_;
};

}  // namespace express
