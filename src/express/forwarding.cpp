#include "express/forwarding.hpp"

namespace express {

bool ForwardingPlane::forward(const net::Packet& packet,
                              std::uint32_t in_iface) {
  const ip::ChannelId channel{packet.src, packet.dst};
  const net::InterfaceSet* oifs = fib_.lookup(channel, in_iface);
  if (oifs == nullptr) {
    // Counted by the FIB; classify the drop for the trace.
    scope_.emit(network_->now(), obs::TraceType::kPacketDropped,
                static_cast<std::uint64_t>(
                    fib_.find(channel) == nullptr ? obs::DropReason::kNoFibEntry
                                                  : obs::DropReason::kRpfFail),
                channel.packed());
    return false;
  }
  stats_.data_packets_forwarded.inc();
  net::ReplicateOptions opts;
  opts.exclude_iface = in_iface;
  stats_.data_copies_sent.add(
      net::replicate(*network_, node_, packet, *oifs, opts));
  return true;
}

bool ForwardingPlane::relay_subcast(const net::Packet& packet) {
  if (!packet.inner) return false;
  const ip::ChannelId channel{packet.inner->src, packet.inner->dst};
  const FibEntry* entry = fib_.find(channel);
  if (entry == nullptr) return false;  // not an on-channel router
  stats_.subcasts_relayed.inc();
  net::ReplicateOptions opts;
  opts.decrement_ttl = false;  // the inner packet starts fresh here
  stats_.data_copies_sent.add(
      net::replicate(*network_, node_, *packet.inner, entry->oifs, opts));
  return true;
}

std::size_t ForwardingPlane::replicate(const net::Packet& packet,
                                       const net::InterfaceSet& oifs,
                                       const net::ReplicateOptions& opts) {
  const std::size_t copies = net::replicate(*network_, node_, packet, oifs, opts);
  stats_.data_copies_sent.add(copies);
  return copies;
}

}  // namespace express
