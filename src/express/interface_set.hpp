// Compatibility alias: InterfaceSet moved to the network layer
// (net/interface_set.hpp) so the shared replication primitive
// (net/replicate.hpp) and the protocol baselines can use it without
// depending on EXPRESS internals. EXPRESS code keeps spelling it
// express::InterfaceSet.
#pragma once

#include "net/interface_set.hpp"

namespace express {

using InterfaceSet = net::InterfaceSet;

}  // namespace express
