// The EXPRESS router: ECMP state machine + channel fast path.
//
// One class implements everything the paper asks of an on-tree router:
//
//  * Distribution-tree maintenance (§3.2): a non-zero subscriberId Count
//    from a neighbor is a join, zero is a leave; the router aggregates
//    per-interface subscriber counts, installs/removes FIB entries, and
//    propagates joins/leaves toward the source along the unicast RPF
//    path. No rendezvous points, no flooding.
//  * Generic counting (§3.1): CountQuery fan-out to downstream tree
//    neighbors with the per-hop timeout decrement, Count aggregation,
//    and partial replies on timeout. Routers may initiate queries
//    themselves (network-layer resource counts never reach hosts).
//  * Authenticated subscriptions (§3.2/§3.5): the source registers
//    K(S,E) at its first-hop router; joins carry the key upstream until
//    a router that knows it validates or rejects via CountResponse, and
//    validated keys are cached so later joins are checked locally.
//  * TCP/UDP transport modes (§3.2) per interface, neighbor discovery
//    and keepalive (§3.3), route-change re-join with hysteresis (§3.2),
//    subcast decapsulation (§2.1), and proactive counting (§6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "counting/error_curve.hpp"
#include "ecmp/batcher.hpp"
#include "ecmp/codec.hpp"
#include "ecmp/count_id.hpp"
#include "ecmp/messages.hpp"
#include "ecmp/session.hpp"
#include "express/fib.hpp"
#include "net/network.hpp"
#include "net/node.hpp"

namespace express {

struct RouterConfig {
  /// Multiple of the upstream-link RTT subtracted from a CountQuery's
  /// timeout at each hop, so children time out before parents (§3.1).
  double timeout_rtt_multiple = 2.0;

  /// Delay before acting on an upstream change, to damp route flaps (§3.2).
  sim::Duration route_change_hysteresis = sim::seconds(1);

  /// Enable periodic neighbor discovery / keepalive queries (§3.3).
  bool neighbor_discovery = false;
  sim::Duration neighbor_query_interval = sim::seconds(30);
  sim::Duration neighbor_timeout = sim::seconds(95);

  /// UDP-mode soft state: per-channel refresh query interval and the
  /// number of unanswered intervals before a downstream entry expires.
  sim::Duration udp_query_interval = sim::seconds(60);
  std::uint32_t udp_robustness = 2;

  /// When set, subscriber counts are maintained proactively (§6):
  /// aggregate changes are pushed upstream per the error-tolerance curve
  /// instead of only at 0 <-> non-zero transitions.
  std::optional<counting::CurveParams> proactive;

  /// TCP-mode segment batching (§5.3): coalesce ECMP messages to each
  /// neighbor for up to this window (or until a 1480-byte segment
  /// fills) before transmitting. Unset = one packet per message.
  std::optional<sim::Duration> batch_window;
};

struct RouterStats {
  std::uint64_t subscribe_events = 0;     ///< downstream entries created
  std::uint64_t unsubscribe_events = 0;   ///< downstream entries removed
  std::uint64_t counts_received = 0;
  std::uint64_t counts_sent = 0;
  std::uint64_t queries_received = 0;
  std::uint64_t queries_sent = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t control_bytes_received = 0;
  std::uint64_t joins_sent = 0;           ///< 0 -> non-zero Counts upstream
  std::uint64_t prunes_sent = 0;          ///< non-zero -> 0 Counts upstream
  std::uint64_t proactive_updates_sent = 0;
  std::uint64_t data_packets_forwarded = 0;  ///< input packets replicated
  std::uint64_t data_copies_sent = 0;        ///< total output copies
  std::uint64_t subcasts_relayed = 0;
  std::uint64_t auth_rejects = 0;
  std::uint64_t key_registrations = 0;
};

/// Aggregate result of a count collection.
struct CountResult {
  std::int64_t count = 0;
  bool complete = false;  ///< false when assembled from a partial timeout
};

class ExpressRouter : public net::Node {
 public:
  ExpressRouter(net::Network& network, net::NodeId id, RouterConfig config = {});

  void handle_packet(const net::Packet& packet, std::uint32_t in_iface) override;
  void on_routing_change() override;

  /// Transport mode for an interface (default TCP, §3.2: TCP for core
  /// routers, UDP for edge interfaces with many end hosts).
  void set_interface_mode(std::uint32_t iface, ecmp::Mode mode);
  [[nodiscard]] ecmp::Mode interface_mode(std::uint32_t iface) const;

  /// Router-initiated count (§3.1): any on-tree router can measure its
  /// subtree without source cooperation, e.g. a transit domain's ingress
  /// counting the links the channel uses inside the domain.
  void initiate_count(const ip::ChannelId& channel, ecmp::CountId count_id,
                      sim::Duration timeout,
                      std::function<void(CountResult)> done);

  // --- Introspection for tests, benches, and operators ---------------
  [[nodiscard]] const Fib& fib() const { return fib_; }
  [[nodiscard]] const RouterStats& stats() const { return stats_; }
  [[nodiscard]] bool on_tree(const ip::ChannelId& channel) const {
    return channels_.contains(channel);
  }
  /// Current subscriber-count sum over downstream neighbors (the
  /// router's c_cur in the proactive-counting algorithm).
  [[nodiscard]] std::int64_t subtree_count(const ip::ChannelId& channel) const;
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  /// §5.2 management-level (non-fast-path) state estimate in bytes.
  [[nodiscard]] std::size_t management_state_bytes() const;
  /// Upstream neighbor currently used for a channel, if joined.
  [[nodiscard]] std::optional<net::NodeId> upstream_of(
      const ip::ChannelId& channel) const;

  /// Observer invoked whenever a channel's subtree count changes at this
  /// router; Fig. 8 samples this at the tree root.
  using TotalObserver =
      std::function<void(const ip::ChannelId&, std::int64_t, sim::Time)>;
  void set_total_observer(TotalObserver observer) {
    total_observer_ = std::move(observer);
  }

 private:
  struct DownstreamEntry {
    std::int64_t count = 0;
    ip::ChannelKey key = ip::kNoKey;
    bool validated = false;        ///< accepted (locally or by upstream)
    sim::Time last_refresh{0};     ///< UDP-mode soft-state timestamp
  };

  struct ChannelState {
    std::unordered_map<net::NodeId, DownstreamEntry> downstream;
    std::optional<ip::ChannelKey> cached_key;  ///< validated K(S,E)
    /// Key carried in our not-yet-validated upstream join: the upstream
    /// verdict applies to exactly this key, so concurrently accepted
    /// joins that presented a different key are re-validated separately.
    std::optional<ip::ChannelKey> pending_sent_key;
    bool validated_upstream = false;
    std::int64_t advertised_upstream = 0;  ///< last Count sent up (0 = off-tree)
    net::NodeId upstream = net::kInvalidNode;
    std::uint32_t rpf_iface = 0;
    std::optional<counting::ProactiveState> proactive;
    sim::EventHandle proactive_check;
    sim::EventHandle pending_switch;  ///< hysteresis timer for route change
  };

  struct PendingQuery {
    ip::ChannelId channel;
    ecmp::CountId count_id = ecmp::kSubscriberId;
    std::uint32_t query_seq = 0;
    std::optional<net::NodeId> requester;  ///< upstream; nullopt = local origin
    std::int64_t sum = 0;
    std::uint32_t outstanding = 0;
    bool timed_out = false;
    sim::EventHandle timer;
    std::function<void(CountResult)> local_done;
  };

  // --- message handling ----------------------------------------------
  void handle_ecmp(const net::Packet& packet, std::uint32_t in_iface);
  void on_count(const ecmp::Count& msg, net::NodeId from, std::uint32_t iface);
  void on_query(const ecmp::CountQuery& msg, net::NodeId from,
                std::uint32_t iface);
  void on_response(const ecmp::CountResponse& msg, net::NodeId from);
  void on_key_register(const ecmp::KeyRegister& msg, net::NodeId from);
  void forward_data(const net::Packet& packet, std::uint32_t in_iface);
  void relay_subcast(const net::Packet& packet);

  // --- subscription machinery ----------------------------------------
  void apply_subscriber_count(const ip::ChannelId& channel, net::NodeId from,
                              std::uint32_t iface, std::int64_t count,
                              std::optional<ip::ChannelKey> key);
  void update_upstream(const ip::ChannelId& channel, ChannelState& state,
                       std::optional<ip::ChannelKey> key_to_forward);
  void remove_channel(const ip::ChannelId& channel);
  void refresh_fib(const ip::ChannelId& channel, ChannelState& state);
  void evaluate_proactive(const ip::ChannelId& channel, ChannelState& state);
  /// Validation outcome flowing back down (CountResponse from upstream).
  void resolve_validation(const ip::ChannelId& channel, ecmp::Status status);
  [[nodiscard]] bool key_acceptable(const ip::ChannelId& channel,
                                    const ChannelState& state,
                                    std::optional<ip::ChannelKey> key,
                                    bool& locally_decidable) const;

  // --- counting machinery ---------------------------------------------
  void start_query(const ip::ChannelId& channel, ecmp::CountId count_id,
                   sim::Duration timeout, std::optional<net::NodeId> requester,
                   std::uint32_t query_seq,
                   std::function<void(CountResult)> local_done);
  void finish_query(std::uint64_t key, bool timed_out);
  [[nodiscard]] std::int64_t local_contribution(const ip::ChannelId& channel,
                                                const ChannelState& state,
                                                ecmp::CountId count_id) const;

  // --- transport -------------------------------------------------------
  void send_message(net::NodeId neighbor, const ecmp::Message& msg);
  void schedule_udp_refresh();
  void udp_refresh_tick();
  void schedule_neighbor_discovery();
  void neighbor_discovery_tick();
  void neighbor_died(net::NodeId neighbor);
  [[nodiscard]] net::NodeId source_node(const ip::ChannelId& channel) const;
  [[nodiscard]] sim::Duration upstream_rtt(std::uint32_t iface) const;
  /// Interface leading to `neighbor`: directly attached, or through a
  /// LAN hub (resolved via the routing table).
  [[nodiscard]] std::optional<std::uint32_t> iface_toward(
      net::NodeId neighbor) const;
  /// True if this interface attaches to a multi-access LAN segment.
  [[nodiscard]] bool iface_is_lan(std::uint32_t iface) const;

  [[nodiscard]] static std::uint64_t pending_key(const ip::ChannelId& channel,
                                                 ecmp::CountId count_id,
                                                 std::uint32_t query_seq);

  RouterConfig config_;
  Fib fib_;
  RouterStats stats_;
  std::unordered_map<ip::ChannelId, ChannelState> channels_;
  /// Authoritative keys registered by directly attached sources.
  std::unordered_map<ip::ChannelId, ip::ChannelKey> key_registry_;
  std::unordered_map<std::uint64_t, PendingQuery> pending_queries_;
  std::unordered_map<std::uint32_t, ecmp::Mode> iface_modes_;
  ecmp::NeighborTable neighbors_;
  std::unique_ptr<ecmp::Batcher> batcher_;  ///< §5.3 segment coalescing
  TotalObserver total_observer_;
  std::uint32_t next_local_seq_ = 1;
  bool udp_refresh_scheduled_ = false;
};

}  // namespace express
