// The EXPRESS router: thin wiring over the layered ECMP stack.
//
// The router composes four modules, each owning one concern from the
// paper, and implements only the protocol *reactions* that tie them
// together:
//
//   ForwardingPlane    (express/forwarding)      §3.4 data fast path
//   SubscriptionTable  (express/subscription)    §3.2/§3.5 hard state
//   CountingEngine     (express/counting_engine) §3.1/§6 aggregation
//   ecmp::Transport    (ecmp/transport)          §3.2/§3.3/§5.3 sessions
//
// A packet flows: Transport::receive() decodes and attributes it; the
// router dispatches each message; membership transitions go through the
// SubscriptionTable, whose returned effect structs the router turns
// into FIB refreshes (ForwardingPlane), upstream Counts (Transport),
// and observer callbacks; CountQuery fan-out and proactive drift timers
// live in the CountingEngine, which replies through a Transport-backed
// callback. The modules never include one another — the router is the
// only place their vocabularies meet.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "counting/error_curve.hpp"
#include "ecmp/count_id.hpp"
#include "ecmp/messages.hpp"
#include "ecmp/session.hpp"
#include "ecmp/transport.hpp"
#include "express/counting_engine.hpp"
#include "express/fib.hpp"
#include "express/forwarding.hpp"
#include "express/subscription.hpp"
#include "ip/channel.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace express {

struct RouterConfig {
  /// Multiple of the upstream-link RTT subtracted from a CountQuery's
  /// timeout at each hop, so children time out before parents (§3.1).
  double timeout_rtt_multiple = 2.0;

  /// Delay before acting on an upstream change, to damp route flaps (§3.2).
  sim::Duration route_change_hysteresis = sim::seconds(1);

  /// Enable periodic neighbor discovery / keepalive queries (§3.3).
  bool neighbor_discovery = false;
  sim::Duration neighbor_query_interval = sim::seconds(30);
  sim::Duration neighbor_timeout = sim::seconds(95);

  /// UDP-mode soft state: per-channel refresh query interval and the
  /// number of unanswered intervals before a downstream entry expires.
  sim::Duration udp_query_interval = sim::seconds(60);
  std::uint32_t udp_robustness = 2;

  /// When set, subscriber counts are maintained proactively (§6):
  /// aggregate changes are pushed upstream per the error-tolerance curve
  /// instead of only at 0 <-> non-zero transitions.
  std::optional<counting::CurveParams> proactive;

  /// TCP-mode segment batching (§5.3): coalesce ECMP messages to each
  /// neighbor for up to this window (or until a 1480-byte segment
  /// fills) before transmitting. Unset = one packet per message.
  std::optional<sim::Duration> batch_window;
};

/// Unified router counters, aggregated on demand from the per-module
/// stats (see forwarding_stats() et al. for the raw per-layer views).
struct RouterStats {
  std::uint64_t subscribe_events = 0;     ///< downstream entries created
  std::uint64_t unsubscribe_events = 0;   ///< downstream entries removed
  std::uint64_t counts_received = 0;
  std::uint64_t counts_sent = 0;
  std::uint64_t queries_received = 0;
  std::uint64_t queries_sent = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t control_bytes_received = 0;
  std::uint64_t joins_sent = 0;           ///< 0 -> non-zero Counts upstream
  std::uint64_t prunes_sent = 0;          ///< non-zero -> 0 Counts upstream
  std::uint64_t proactive_updates_sent = 0;
  std::uint64_t data_packets_forwarded = 0;  ///< input packets replicated
  std::uint64_t data_copies_sent = 0;        ///< total output copies
  std::uint64_t subcasts_relayed = 0;
  std::uint64_t auth_rejects = 0;
  std::uint64_t key_registrations = 0;
  /// Neighbor-death / dead-child updates skipped because the adjacency
  /// view no longer resolves an interface toward the neighbor (the link
  /// vanished before the event fired). Previously misattributed to
  /// interface 0.
  std::uint64_t unresolved_neighbor_updates = 0;
};

class ExpressRouter : public net::Node {
 public:
  ExpressRouter(net::Network& network, net::NodeId id, RouterConfig config = {});
  /// Cancels any hysteresis timers still pending against the scheduler.
  ~ExpressRouter() override;

  void handle_packet(const net::Packet& packet, std::uint32_t in_iface) override;
  void on_routing_change() override;

  /// Transport mode for an interface (default TCP, §3.2: TCP for core
  /// routers, UDP for edge interfaces with many end hosts).
  void set_interface_mode(std::uint32_t iface, ecmp::Mode mode) {
    transport_.set_mode(iface, mode);
  }
  [[nodiscard]] ecmp::Mode interface_mode(std::uint32_t iface) const {
    return transport_.mode(iface);
  }
  /// True while the UDP soft-state refresh clock is armed (it runs dry
  /// when no UDP downstream state remains; see TransportHooks).
  [[nodiscard]] bool udp_refresh_active() const {
    return transport_.udp_refresh_active();
  }

  /// Router-initiated count (§3.1): any on-tree router can measure its
  /// subtree without source cooperation, e.g. a transit domain's ingress
  /// counting the links the channel uses inside the domain.
  void initiate_count(const ip::ChannelId& channel, ecmp::CountId count_id,
                      sim::Duration timeout,
                      std::function<void(CountResult)> done);

  // --- Introspection for tests, benches, and operators ---------------
  [[nodiscard]] const Fib& fib() const { return forwarding_.fib(); }
  /// Unified view across the modules; see the per-module accessors for
  /// layer-local counters.
  [[nodiscard]] RouterStats stats() const {
    const SubscriptionStats sub = table_.stats();
    const ecmp::TransportStats wire = transport_.stats();
    const ForwardingStats fwd = forwarding_.stats();
    RouterStats s;
    s.subscribe_events = sub.subscribe_events;
    s.unsubscribe_events = sub.unsubscribe_events;
    s.joins_sent = sub.joins_sent;
    s.prunes_sent = sub.prunes_sent;
    s.auth_rejects = sub.auth_rejects;
    s.key_registrations = sub.key_registrations;
    s.counts_received = wire.counts_received;
    s.counts_sent = wire.counts_sent;
    s.queries_received = wire.queries_received;
    s.queries_sent = wire.queries_sent;
    s.responses_sent = wire.responses_sent;
    s.responses_received = wire.responses_received;
    s.control_bytes_sent = wire.control_bytes_sent;
    s.control_bytes_received = wire.control_bytes_received;
    s.proactive_updates_sent = counting_.stats().proactive_updates_sent;
    s.data_packets_forwarded = fwd.data_packets_forwarded;
    s.data_copies_sent = fwd.data_copies_sent;
    s.subcasts_relayed = fwd.subcasts_relayed;
    s.unresolved_neighbor_updates = unresolved_neighbor_updates_.value();
    return s;
  }
  // Per-module views are returned by value: each module assembles its
  // POD from registry slots on demand.
  [[nodiscard]] ForwardingStats forwarding_stats() const {
    return forwarding_.stats();
  }
  [[nodiscard]] SubscriptionStats subscription_stats() const {
    return table_.stats();
  }
  [[nodiscard]] CountingStats counting_stats() const {
    return counting_.stats();
  }
  [[nodiscard]] ecmp::TransportStats transport_stats() const {
    return transport_.stats();
  }
  [[nodiscard]] bool on_tree(const ip::ChannelId& channel) const {
    return table_.contains(channel);
  }
  /// Current subscriber-count sum over downstream neighbors (the
  /// router's c_cur in the proactive-counting algorithm).
  [[nodiscard]] std::int64_t subtree_count(const ip::ChannelId& channel) const {
    return table_.subtree_count(channel);
  }
  [[nodiscard]] std::size_t channel_count() const {
    return table_.channel_count();
  }
  /// §5.2 management-level (non-fast-path) state estimate in bytes.
  [[nodiscard]] std::size_t management_state_bytes() const {
    return table_.management_state_bytes() + 32 * counting_.pending_rounds();
  }
  /// Upstream neighbor currently used for a channel, if joined.
  [[nodiscard]] std::optional<net::NodeId> upstream_of(
      const ip::ChannelId& channel) const {
    const Channel* state = table_.find(channel);
    if (state == nullptr || state->upstream == net::kInvalidNode) {
      return std::nullopt;
    }
    return state->upstream;
  }
  /// Raw hard-state membership table (read-only, for the invariant
  /// auditor and tests).
  [[nodiscard]] const SubscriptionTable& subscriptions() const {
    return table_;
  }
  /// Mutable membership state, for *fault injection only*: audit tests
  /// corrupt it deliberately to prove the auditor catches each class of
  /// inconsistency. Protocol code must never use this.
  [[nodiscard]] SubscriptionTable& corrupt_subscriptions_for_test() {
    return table_;
  }
  [[nodiscard]] const RouterConfig& config() const { return config_; }
  /// Route switches currently held back by hysteresis — nonzero means
  /// the RPF invariant is legitimately unsettled (§3.2).
  [[nodiscard]] std::size_t pending_route_switches() const {
    return pending_switches_.size();
  }

  /// Observer invoked whenever a channel's subtree count changes at this
  /// router; Fig. 8 samples this at the tree root.
  using TotalObserver =
      std::function<void(const ip::ChannelId&, std::int64_t, sim::Time)>;
  void set_total_observer(TotalObserver observer) {
    total_observer_ = std::move(observer);
  }

 private:
  // --- message handling ----------------------------------------------
  void handle_ecmp(const net::Packet& packet, std::uint32_t in_iface);
  void on_count(const ecmp::Count& msg, net::NodeId from, std::uint32_t iface);
  void on_query(const ecmp::CountQuery& msg, net::NodeId from,
                std::uint32_t iface);
  void on_response(const ecmp::CountResponse& msg, net::NodeId from);
  void on_key_register(const ecmp::KeyRegister& msg, net::NodeId from);

  // --- subscription reactions ----------------------------------------
  void apply_subscriber_count(const ip::ChannelId& channel, net::NodeId from,
                              std::uint32_t iface, std::int64_t count,
                              std::optional<ip::ChannelKey> key);
  void update_upstream(const ip::ChannelId& channel, Channel& state,
                       std::optional<ip::ChannelKey> key_to_forward);
  /// Can a write to `neighbor` reach it right now? False while the
  /// direct link is down (a dead TCP connection, §3.2): a Count sent
  /// then is a failed write and must not count as an advertisement.
  [[nodiscard]] bool neighbor_reachable(net::NodeId neighbor) const;
  void remove_channel(const ip::ChannelId& channel);
  void refresh_fib(const ip::ChannelId& channel, const Channel& state);
  void notify_total(const ip::ChannelId& channel) {
    const std::int64_t total = table_.subtree_count(channel);
    scope_.emit(network().now(), obs::TraceType::kSubscriptionChange,
                channel.packed(), static_cast<std::uint64_t>(total));
    if (total_observer_) {
      total_observer_(channel, total, network().now());
    }
  }
  /// Validation outcome flowing back down (CountResponse from upstream).
  void resolve_validation(const ip::ChannelId& channel, ecmp::Status status);
  /// §3.2: retransmit Counts for every channel upstream through `to`.
  void reannounce_to(net::NodeId to);
  [[nodiscard]] bool at_root(const ip::ChannelId& channel,
                             const Channel& state) const;

  // --- counting reactions --------------------------------------------
  void start_query(const ip::ChannelId& channel, ecmp::CountId count_id,
                   sim::Duration timeout, std::optional<net::NodeId> requester,
                   std::uint32_t query_seq,
                   std::function<void(CountResult)> local_done);
  /// Re-evaluate proactive drift; sends the update Count when due (§6).
  void maybe_send_proactive(const ip::ChannelId& channel);

  // --- transport reactions -------------------------------------------
  void send_count(net::NodeId to, const ip::ChannelId& channel,
                  std::int64_t value, std::optional<ip::ChannelKey> key,
                  ecmp::CountId count_id = ecmp::kSubscriberId,
                  std::uint32_t query_seq = 0) {
    transport_.send(to, ecmp::Count{channel, count_id, value, query_seq, key});
  }
  void send_response(net::NodeId to, const ip::ChannelId& channel,
                     ecmp::Status status) {
    transport_.send(
        to, ecmp::CountResponse{channel, ecmp::kSubscriberId, status});
  }
  void send_query(net::NodeId to, const ip::ChannelId& channel,
                  ecmp::CountId count_id, sim::Duration timeout,
                  std::uint32_t query_seq) {
    transport_.send(to,
                    ecmp::CountQuery{channel, count_id, timeout, query_seq});
  }
  /// One UDP soft-state refresh round; returns whether UDP soft state
  /// remains (false lets the transport's refresh clock run dry).
  bool udp_refresh_round();
  void neighbor_died(net::NodeId neighbor);
  /// Remote CountQuery tunnelled IP-in-IP to this router (§2.1).
  void on_remote_query(const net::Packet& inner);

  // --- route changes --------------------------------------------------
  void execute_route_switch(const ip::ChannelId& channel);

  [[nodiscard]] net::NodeId source_node(const ip::ChannelId& channel) const {
    return network().node_of(channel.source).value_or(net::kInvalidNode);
  }

  RouterConfig config_;
  /// Bound before the modules so their constructors can register
  /// against this router's entity.
  obs::Scope scope_;
  ForwardingPlane forwarding_;
  SubscriptionTable table_;
  CountingEngine counting_;
  ecmp::Transport transport_;
  /// Hysteresis timers for pending upstream switches (§3.2).
  std::unordered_map<ip::ChannelId, sim::EventHandle> pending_switches_;
  obs::Counter unresolved_neighbor_updates_;
  TotalObserver total_observer_;
};

}  // namespace express
