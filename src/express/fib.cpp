#include "express/fib.hpp"

namespace express {

const InterfaceSet* Fib::lookup(const ip::ChannelId& channel,
                                std::uint32_t in_iface) {
  ++stats_.lookups;
  auto it = entries_.find(channel);
  if (it == entries_.end()) {
    ++stats_.no_entry_drops;
    return nullptr;
  }
  if (it->second.iif != in_iface) {
    ++stats_.rpf_drops;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.oifs;
}

std::optional<PackedFibEntry> pack(const ip::ChannelId& channel,
                                   const FibEntry& entry) {
  if (!channel.dest.is_single_source()) return std::nullopt;
  if (entry.iif >= 32 || !entry.oifs.fits_in_32()) return std::nullopt;
  PackedFibEntry p{};
  p.source = channel.source.value();
  const std::uint32_t index = channel.dest.channel_index();
  p.dest24[0] = static_cast<std::uint8_t>(index >> 16);
  p.dest24[1] = static_cast<std::uint8_t>((index >> 8) & 0xFF);
  p.dest24[2] = static_cast<std::uint8_t>(index & 0xFF);
  p.iif = static_cast<std::uint8_t>(entry.iif);
  p.oifs = entry.oifs.low32();
  return p;
}

std::pair<ip::ChannelId, FibEntry> unpack(const PackedFibEntry& packed) {
  const std::uint32_t index = (std::uint32_t{packed.dest24[0]} << 16) |
                              (std::uint32_t{packed.dest24[1]} << 8) |
                              std::uint32_t{packed.dest24[2]};
  ip::ChannelId channel{ip::Address{packed.source},
                        ip::Address::single_source(index)};
  FibEntry entry;
  entry.iif = packed.iif;
  for (std::uint32_t i = 0; i < 32; ++i) {
    if (packed.oifs & (1U << i)) entry.oifs.set(i);
  }
  return {channel, entry};
}

}  // namespace express
