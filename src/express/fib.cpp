#include "express/fib.hpp"

namespace express {

namespace {
constexpr std::size_t kInitialSlots = 16;
}  // namespace

FibEntry& FlatFib::upsert(const ip::ChannelId& channel) {
  // Grow at 7/8 load so probe chains stay short. Rebuilding re-inserts
  // in dense order, which keeps the index a pure function of history.
  if (keys_.empty() || (dense_.size() + 1) * 8 > keys_.size() * 7) {
    grow_index();
  }
  const std::uint64_t key = key_of(channel);
  std::uint64_t slot = mix(key) & mask_;
  while (keys_[slot] != kEmptySlot) {
    if (keys_[slot] == key) return dense_[pos_[slot]].second;
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = key;
  pos_[slot] = static_cast<std::uint32_t>(dense_.size());
  dense_.emplace_back(channel, FibEntry{});
  entries_gauge_.set(dense_.size());
  return dense_.back().second;
}

void FlatFib::erase(const ip::ChannelId& channel) {
  const std::uint32_t slot = find_slot(key_of(channel));
  if (slot == kNotFound) return;

  // Swap-remove in the dense store, repointing the index slot of the
  // entry that moved into the vacated position.
  const std::uint32_t at = pos_[slot];
  const std::uint32_t last = static_cast<std::uint32_t>(dense_.size() - 1);
  if (at != last) {
    dense_[at] = std::move(dense_[last]);
    pos_[find_slot(key_of(dense_[at].first))] = at;
  }
  dense_.pop_back();

  // Tombstone-free deletion: backward-shift the probe chain into the
  // hole. An element at `cur` may fill the hole only if its home slot
  // does not lie cyclically after the hole (else the shift would move
  // it in front of its home and break its own probe chain).
  std::uint64_t hole = slot;
  std::uint64_t cur = (hole + 1) & mask_;
  while (keys_[cur] != kEmptySlot) {
    const std::uint64_t home = mix(keys_[cur]) & mask_;
    if (((cur - home) & mask_) >= ((cur - hole) & mask_)) {
      keys_[hole] = keys_[cur];
      pos_[hole] = pos_[cur];
      hole = cur;
    }
    cur = (cur + 1) & mask_;
  }
  keys_[hole] = kEmptySlot;
  entries_gauge_.set(dense_.size());
}

void FlatFib::grow_index() {
  const std::size_t slots = keys_.empty() ? kInitialSlots : keys_.size() * 2;
  keys_.assign(slots, kEmptySlot);
  pos_.assign(slots, 0);
  mask_ = slots - 1;
  for (std::uint32_t at = 0; at < dense_.size(); ++at) {
    std::uint64_t slot = mix(key_of(dense_[at].first)) & mask_;
    while (keys_[slot] != kEmptySlot) slot = (slot + 1) & mask_;
    keys_[slot] = key_of(dense_[at].first);
    pos_[slot] = at;
  }
}

const net::InterfaceSet* FlatFib::lookup(const ip::ChannelId& channel,
                                         std::uint32_t in_iface) {
  stats_.lookups.inc();
  const std::uint32_t slot = find_slot(key_of(channel));
  if (slot == kNotFound) {
    // lint: drop-untraced (caller ForwardingPlane::forward classifies and traces; FIB has no clock)
    stats_.no_entry_drops.inc();
    return nullptr;
  }
  const FibEntry& entry = dense_[pos_[slot]].second;
  if (entry.iif != in_iface) {
    // lint: drop-untraced (caller ForwardingPlane::forward classifies and traces; FIB has no clock)
    stats_.rpf_drops.inc();
    return nullptr;
  }
  stats_.hits.inc();
  return &entry.oifs;
}

std::optional<PackedFibEntry> pack(const ip::ChannelId& channel,
                                   const FibEntry& entry) {
  if (!channel.dest.is_single_source()) return std::nullopt;
  if (entry.iif >= 32 || !entry.oifs.fits_in_32()) return std::nullopt;
  PackedFibEntry p{};
  p.source = channel.source.value();
  const std::uint32_t index = channel.dest.channel_index();
  p.dest24[0] = static_cast<std::uint8_t>(index >> 16);
  p.dest24[1] = static_cast<std::uint8_t>((index >> 8) & 0xFF);
  p.dest24[2] = static_cast<std::uint8_t>(index & 0xFF);
  p.iif = static_cast<std::uint8_t>(entry.iif);
  p.oifs = entry.oifs.low32();
  return p;
}

std::pair<ip::ChannelId, FibEntry> unpack(const PackedFibEntry& packed) {
  const std::uint32_t index = (std::uint32_t{packed.dest24[0]} << 16) |
                              (std::uint32_t{packed.dest24[1]} << 8) |
                              std::uint32_t{packed.dest24[2]};
  ip::ChannelId channel{ip::Address{packed.source},
                        ip::Address::single_source(index)};
  FibEntry entry;
  entry.iif = packed.iif;
  for (std::uint32_t i = 0; i < 32; ++i) {
    if (packed.oifs & (1U << i)) entry.oifs.set(i);
  }
  return {channel, entry};
}

}  // namespace express
