// The protocol-agnostic data plane (paper §3.4).
//
// ForwardingPlane owns one node's FIB and its replication counters and
// implements the three data-path operations every experiment exercises:
//
//   * forward()       — the EXPRESS fast path: exact-match (S, E)
//                       lookup, RPF check (inside Fib::lookup), then
//                       replication to the outgoing set with TTL
//                       decrement and arrival-interface exclusion.
//   * relay_subcast() — §2.1 subcast: a source-validated inner packet
//                       injected into the channel tree at this router.
//                       No TTL decrement and no arrival exclusion — the
//                       decapsulated packet starts fresh here.
//   * replicate()     — raw interface-set replication for protocols
//                       that compute their outgoing set per packet
//                       (PIM-SM's oif inheritance, CBT's bidirectional
//                       tree, DVMRP's flood-minus-prunes). This is what
//                       lets the baselines delete their private copies
//                       of the replication loop.
//
// Module seam: the plane knows packets, the FIB, and interfaces. It
// knows nothing of ECMP messages, subscriptions, keys, counting, or
// transports — those layers *install* FIB entries; this layer only
// consumes them. The router control plane talks to the plane through
// fib() upserts/erases; nothing flows the other way.
#pragma once

#include <cstdint>

#include "express/fib.hpp"
#include "net/network.hpp"
#include "net/replicate.hpp"
#include "obs/obs.hpp"

namespace express {

struct ForwardingStats {
  std::uint64_t data_packets_forwarded = 0;  ///< input packets replicated
  std::uint64_t data_copies_sent = 0;        ///< total output copies
  std::uint64_t subcasts_relayed = 0;
};

class ForwardingPlane {
 public:
  ForwardingPlane(net::Network& network, net::NodeId node)
      : network_(&network), node_(node),
        scope_(network.node_scope(node)),
        fib_(scope_) {
    stats_.data_packets_forwarded =
        scope_.counter("express.fwd.data_packets_forwarded");
    stats_.data_copies_sent = scope_.counter("express.fwd.data_copies_sent");
    stats_.subcasts_relayed = scope_.counter("express.fwd.subcasts_relayed");
  }

  /// EXPRESS fast path: look up (packet.src, packet.dst), replicate to
  /// the outgoing set (minus the arrival interface), decrementing TTL.
  /// Packets matching no entry or failing RPF are counted and dropped
  /// by the FIB. Returns true when the packet was forwarded.
  bool forward(const net::Packet& packet, std::uint32_t in_iface);

  /// §2.1 subcast: inject `packet.inner` (already validated as coming
  /// from the channel source) into the tree at this node. The inner
  /// packet is replicated to the full outgoing set as-is.
  bool relay_subcast(const net::Packet& packet);

  /// Protocol-agnostic replication for callers that computed their own
  /// outgoing set. Counts copies in this plane's stats and returns the
  /// number sent.
  std::size_t replicate(const net::Packet& packet,
                        const net::InterfaceSet& oifs,
                        const net::ReplicateOptions& opts);

  [[nodiscard]] Fib& fib() { return fib_; }
  [[nodiscard]] const Fib& fib() const { return fib_; }

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] ForwardingStats stats() const {
    ForwardingStats s;
    s.data_packets_forwarded = stats_.data_packets_forwarded.value();
    s.data_copies_sent = stats_.data_copies_sent.value();
    s.subcasts_relayed = stats_.subcasts_relayed.value();
    return s;
  }

 private:
  /// Registry-backed counter handles (ForwardingStats is assembled on
  /// demand by stats()).
  struct ForwardingCounters {
    obs::Counter data_packets_forwarded;
    obs::Counter data_copies_sent;
    obs::Counter subcasts_relayed;
  };

  net::Network* network_;
  net::NodeId node_;
  obs::Scope scope_;
  Fib fib_;
  ForwardingCounters stats_;
};

}  // namespace express
