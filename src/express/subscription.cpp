#include "express/subscription.hpp"

#include <set>
#include <utility>

#include "net/adjacency.hpp"
#include "sim/det.hpp"

namespace express {

Channel* SubscriptionTable::find(const ip::ChannelId& channel) {
  auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : &it->second;
}

const Channel* SubscriptionTable::find(const ip::ChannelId& channel) const {
  auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : &it->second;
}

Channel& SubscriptionTable::get_or_create(const ip::ChannelId& channel,
                                          bool& created) {
  auto [it, inserted] = channels_.try_emplace(channel);
  created = inserted;
  return it->second;
}

std::int64_t SubscriptionTable::subtree_count(
    const ip::ChannelId& channel) const {
  const Channel* state = find(channel);
  return state == nullptr ? 0 : state->subtree_count();
}

void SubscriptionTable::register_key(const ip::ChannelId& channel,
                                     ip::ChannelKey key) {
  key_registry_[channel] = key;
  stats_.key_registrations.inc();
}

bool SubscriptionTable::key_acceptable(const ip::ChannelId& channel,
                                       const Channel& state,
                                       std::optional<ip::ChannelKey> key,
                                       bool at_root,
                                       bool& locally_decidable) const {
  // Authoritative knowledge: the source registered K(S,E) here (§2.1).
  if (auto it = key_registry_.find(channel); it != key_registry_.end()) {
    locally_decidable = true;
    return key.has_value() && *key == it->second;
  }
  // Cached from a previous upstream validation (§3.2).
  if (state.cached_key) {
    locally_decidable = true;
    return key.has_value() && *key == *state.cached_key;
  }
  if (at_root) {
    // First-hop router of an unauthenticated channel: accept anything
    // (a supplied key on an open channel is simply ignored).
    locally_decidable = true;
    return true;
  }
  if (state.validated_upstream && !state.cached_key) {
    // Already validated keyless: the channel is open.
    locally_decidable = true;
    return true;
  }
  // We cannot decide; accept tentatively and let upstream validate.
  locally_decidable = false;
  return true;
}

void SubscriptionTable::reject_join(const ip::ChannelId& channel,
                                    bool created) {
  stats_.auth_rejects.inc();
  if (created) channels_.erase(channel);
}

bool SubscriptionTable::remove_downstream(const ip::ChannelId& channel,
                                          net::NodeId from) {
  Channel* state = find(channel);
  if (state == nullptr || state->downstream.erase(from) == 0) return false;
  stats_.unsubscribe_events.inc();
  return true;
}

bool SubscriptionTable::refresh_existing(const ip::ChannelId& channel,
                                         net::NodeId from, std::int64_t count,
                                         sim::Time now) {
  // Updates over an already-validated session (count refreshes,
  // proactive aggregates) need no re-validation: routers are trusted at
  // the network layer once the subscription was accepted (§3.5).
  Channel* state = find(channel);
  if (state == nullptr) return false;
  auto it = state->downstream.find(from);
  if (it == state->downstream.end() || !it->second.validated ||
      it->second.count <= 0) {
    return false;
  }
  it->second.count = count;
  it->second.last_refresh = now;
  return true;
}

DownstreamEntry& SubscriptionTable::apply_join(Channel& state,
                                               net::NodeId from,
                                               std::int64_t count,
                                               std::optional<ip::ChannelKey> key,
                                               bool locally_decidable,
                                               sim::Time now, bool& is_new) {
  DownstreamEntry& entry = state.downstream[from];
  is_new = (entry.count == 0);
  entry.count = count;
  // A refresh without a key must not clobber the key the original join
  // presented (it is what the pending validation verdict applies to).
  if (key) entry.key = *key;
  entry.last_refresh = now;
  if (is_new) {
    stats_.subscribe_events.inc();
    entry.validated = locally_decidable;
  }
  return entry;
}

UpstreamPlan SubscriptionTable::plan_upstream_update(
    const ip::ChannelId& channel, Channel& state,
    std::optional<ip::ChannelKey> key_to_forward, bool upstream_is_router) {
  (void)channel;
  UpstreamPlan plan;
  plan.total = state.subtree_count();

  if (!upstream_is_router) {
    // We are the tree root (first hop from the source host): validation
    // authority rests with our key registry; nothing propagates further.
    state.validated_upstream = true;
    plan.remove_channel = (plan.total == 0);
    return plan;
  }

  if (state.advertised_upstream == 0 && plan.total > 0) {
    plan.send = UpstreamSend::kJoin;
    if (state.cached_key) {
      plan.key = *state.cached_key;
    } else if (key_to_forward) {
      plan.key = *key_to_forward;
    }
    if (!state.validated_upstream) state.pending_sent_key = plan.key;
    state.advertised_upstream = plan.total;
    stats_.joins_sent.inc();
  } else if (state.advertised_upstream > 0 && plan.total == 0) {
    plan.send = UpstreamSend::kPrune;
    state.advertised_upstream = 0;
    plan.remove_channel = true;
    stats_.prunes_sent.inc();
  } else if (plan.total != state.advertised_upstream) {
    plan.send = UpstreamSend::kDrift;
  }
  // An empty channel is torn down even when there is nothing to prune:
  // with the advertisement already voided by a dead upstream link, the
  // last leave arrives at advertised == 0 and skips the kPrune branch.
  if (plan.total == 0) plan.remove_channel = true;
  return plan;
}

VerdictEffects SubscriptionTable::apply_upstream_verdict(
    const ip::ChannelId& channel, bool accepted) {
  VerdictEffects fx;
  Channel* ptr = find(channel);
  if (ptr == nullptr) return fx;
  Channel& state = *ptr;

  if (accepted) {
    state.validated_upstream = true;
    // The verdict covers exactly the key we forwarded: it becomes the
    // cached K(S,E); pending joins that presented a *different* key are
    // rejected against it (or accepted if no key was involved — open
    // channel).
    if (state.pending_sent_key && *state.pending_sent_key != ip::kNoKey) {
      state.cached_key = *state.pending_sent_key;
    }
    state.pending_sent_key.reset();
    for (auto& [neighbor, entry] : state.downstream) {
      if (entry.validated) continue;
      if (state.cached_key && entry.key != *state.cached_key) {
        fx.reject.push_back(neighbor);
        continue;
      }
      entry.validated = true;
      fx.accept.push_back(neighbor);
    }
    for (net::NodeId neighbor : fx.reject) {
      state.downstream.erase(neighbor);
      stats_.auth_rejects.inc();
    }
    fx.membership_changed = !fx.reject.empty();
    return fx;
  }

  // Our join was rejected — the rejection applies to the key we sent.
  const ip::ChannelKey rejected_key =
      state.pending_sent_key.value_or(ip::kNoKey);
  state.pending_sent_key.reset();
  std::optional<ip::ChannelKey> retry_key;
  for (auto& [neighbor, entry] : state.downstream) {
    if (entry.validated) continue;
    if (entry.key == rejected_key) {
      fx.reject.push_back(neighbor);
    } else if (!retry_key) {
      retry_key = entry.key;  // a different key deserves its own try
    }
  }
  for (net::NodeId neighbor : fx.reject) {
    state.downstream.erase(neighbor);
    stats_.auth_rejects.inc();
  }
  // The upstream router holds no state for us now.
  state.advertised_upstream = 0;
  fx.membership_changed = true;
  if (state.subtree_count() == 0) {
    fx.channel_gone = true;
  } else if (state.cached_key) {
    // Validated subscribers remain: rejoin with the known-good key.
    fx.rejoin = true;
    fx.rejoin_key = state.cached_key;
  } else {
    // Unvalidated joins with a different key remain: try theirs.
    fx.rejoin = true;
    fx.rejoin_key = retry_key;
  }
  return fx;
}

RouteSwitch SubscriptionTable::apply_route_switch(
    const ip::ChannelId& channel, net::NodeId new_upstream,
    std::optional<std::uint32_t> new_rpf_iface, bool old_upstream_is_router) {
  RouteSwitch sw;
  Channel* state = find(channel);
  if (state == nullptr) return sw;
  sw.total = state->subtree_count();
  sw.old_upstream = state->upstream;
  // Zero Count to the old upstream, current Count to the new.
  if (old_upstream_is_router && state->advertised_upstream > 0) {
    sw.prune_old = true;
    stats_.prunes_sent.inc();
  }
  state->upstream = new_upstream;
  if (new_rpf_iface) state->rpf_iface = *new_rpf_iface;
  state->advertised_upstream = 0;
  return sw;
}

std::vector<std::pair<ip::ChannelId, net::NodeId>>
SubscriptionTable::collect_dead_children(const net::Network& network,
                                         net::NodeId self) const {
  std::vector<std::pair<ip::ChannelId, net::NodeId>> dead;
  // The caller replays `dead` as zero-count leaves, so its order is
  // protocol-visible: iterate channels sorted, not in hash order.
  for (const auto* kv : det::sorted_items(channels_)) {
    const auto& [channel, state] = *kv;
    for (const auto& [neighbor, entry] : state.downstream) {
      auto direct = network.topology().interface_to(self, neighbor);
      if (direct) {
        const net::LinkId link =
            network.topology().node(self).interfaces.at(*direct);
        if (!network.topology().link(link).up) {
          dead.emplace_back(channel, neighbor);
        }
      } else if (!network.routing().cost(self, neighbor)) {
        // LAN-attached (or multi-hop) neighbor now unreachable.
        dead.emplace_back(channel, neighbor);
      }
    }
  }
  return dead;
}

std::vector<UdpAction> SubscriptionTable::udp_refresh_actions(
    const net::Network& network, net::NodeId self, sim::Time now,
    sim::Duration lifetime,
    const std::function<bool(std::uint32_t)>& iface_is_udp) const {
  std::vector<UdpAction> actions;
  std::vector<UdpAction> expired;
  std::set<std::pair<ip::ChannelId, std::uint32_t>> lan_queried;
  // Queries/expirations execute in the returned order and the LAN-query
  // dedup keeps only the first hit per (channel, wire): sorted iteration
  // pins both to the channel/neighbor ids instead of the hash seed.
  for (const auto* kv : det::sorted_items(channels_)) {
    const auto& [channel, state] = *kv;
    for (const auto& [neighbor, entry] : state.downstream) {
      auto iface = net::iface_toward(network, self, neighbor);
      if (!iface || !iface_is_udp(*iface)) continue;
      UdpAction action;
      action.channel = channel;
      action.neighbor = neighbor;
      action.iface = *iface;
      if (now - entry.last_refresh > lifetime) {
        action.kind = UdpAction::Kind::kExpire;
        expired.push_back(action);
        continue;
      }
      if (net::iface_is_lan(network, self, *iface)) {
        // One LAN-wide general query per (channel, wire) covers every
        // member on the segment (§3.2: all UDP neighbors respond).
        if (!lan_queried.insert({channel, *iface}).second) continue;
        action.kind = UdpAction::Kind::kLanQuery;
      } else {
        action.kind = UdpAction::Kind::kUnicastQuery;
      }
      actions.push_back(action);
    }
  }
  actions.insert(actions.end(), expired.begin(), expired.end());
  return actions;
}

std::int64_t SubscriptionTable::local_contribution(
    const Channel& state, ecmp::CountId count_id, const net::Network& network,
    net::NodeId self) const {
  switch (count_id) {
    case ecmp::kLinkCountId: {
      std::int64_t links = 0;
      for (const auto& [neighbor, entry] : state.downstream) {
        if (entry.count > 0) ++links;
      }
      return links;
    }
    case ecmp::kDomainLinkCountId: {
      // Only tree links whose far end stays inside our domain count
      // toward that domain's settlement.
      const std::uint16_t my_domain = network.topology().node(self).domain;
      std::int64_t links = 0;
      for (const auto& [neighbor, entry] : state.downstream) {
        if (entry.count > 0 &&
            network.topology().node(neighbor).domain == my_domain) {
          ++links;
        }
      }
      return links;
    }
    case ecmp::kRouterCountId:
      return 1;
    case ecmp::kWeightedTreeSizeId: {
      std::int64_t weight = 0;
      for (const auto& [neighbor, entry] : state.downstream) {
        if (entry.count <= 0) continue;
        if (auto iface = net::iface_toward(network, self, neighbor)) {
          const net::LinkId link =
              network.topology().node(self).interfaces.at(*iface);
          weight += network.topology().link(link).cost;
        }
      }
      return weight;
    }
    default:
      return 0;  // subscriber and app-defined counts live at the hosts
  }
}

std::vector<net::NodeId> SubscriptionTable::query_children(
    const Channel& state, ecmp::CountId count_id, const net::Network& network,
    net::NodeId self) const {
  // Children: downstream tree neighbors. Network-layer counts stop at
  // routers (§3.1 footnote 3); subscriber/app counts reach leaf hosts;
  // domain-scoped counts never cross a domain boundary.
  const std::uint16_t my_domain = network.topology().node(self).domain;
  std::vector<net::NodeId> children;
  for (const auto& [neighbor, entry] : state.downstream) {
    if (entry.count <= 0) continue;
    const auto& info = network.topology().node(neighbor);
    if (info.kind == net::NodeKind::kHost &&
        !ecmp::forwarded_to_hosts(count_id)) {
      continue;
    }
    if (count_id == ecmp::kDomainLinkCountId && info.domain != my_domain) {
      continue;
    }
    children.push_back(neighbor);
  }
  return children;
}

std::size_t SubscriptionTable::management_state_bytes() const {
  // §5.2 model: ~32 bytes per count record, one record per downstream
  // neighbor plus one upstream record per channel, plus 8 bytes for a
  // cached key; the key registry costs 8 bytes per source.
  std::size_t bytes = 0;
  // lint: order-independent (commutative sum over entries)
  for (const auto& [channel, state] : channels_) {
    bytes += 32 * (state.downstream.size() + 1);
    if (state.cached_key) bytes += 8;
  }
  bytes += 8 * key_registry_.size();
  return bytes;
}

}  // namespace express
