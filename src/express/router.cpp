#include "express/router.hpp"

#include <utility>
#include <variant>
#include <vector>

#include "net/adjacency.hpp"
#include "sim/det.hpp"

namespace express {

namespace {

ecmp::TransportPolicy make_policy(const RouterConfig& config) {
  ecmp::TransportPolicy policy;
  policy.timeout_rtt_multiple = config.timeout_rtt_multiple;
  policy.neighbor_discovery = config.neighbor_discovery;
  policy.neighbor_query_interval = config.neighbor_query_interval;
  policy.neighbor_timeout = config.neighbor_timeout;
  policy.udp_query_interval = config.udp_query_interval;
  policy.udp_robustness = config.udp_robustness;
  policy.batch_window = config.batch_window;
  return policy;
}

}  // namespace

ExpressRouter::ExpressRouter(net::Network& network, net::NodeId id,
                             RouterConfig config)
    : net::Node(network, id),
      config_(config),
      scope_(network.node_scope(id)),
      forwarding_(network, id),
      table_(scope_),
      counting_(
          network.scheduler(),
          [this](net::NodeId requester, const ip::ChannelId& channel,
                 ecmp::CountId count_id, std::int64_t sum,
                 std::uint32_t query_seq) {
            send_count(requester, channel, sum, std::nullopt, count_id,
                       query_seq);
          },
          [this](const ip::ChannelId& channel) {
            maybe_send_proactive(channel);
          },
          scope_),
      transport_(network, id, make_policy(config),
                 ecmp::TransportHooks{
                     [this]() { return udp_refresh_round(); },
                     [this](net::NodeId neighbor) { neighbor_died(neighbor); },
                 }) {
  unresolved_neighbor_updates_ =
      scope_.counter("express.router.unresolved_neighbor_updates");
}

ExpressRouter::~ExpressRouter() {
  // lint: order-independent (timer cancellations commute)
  for (auto& [channel, handle] : pending_switches_) handle.cancel();
}

// ---------------------------------------------------------------------
// Packet dispatch
// ---------------------------------------------------------------------

void ExpressRouter::handle_packet(const net::Packet& packet,
                                  std::uint32_t in_iface) {
  if (packet.protocol == ip::Protocol::kEcmp) {
    handle_ecmp(packet, in_iface);
    return;
  }
  if (packet.protocol == ip::Protocol::kIpInIp && packet.dst == address()) {
    // Only the original sender may tunnel to us (§7.1): the outer
    // unicast source must match the inner source.
    if (packet.inner && packet.inner->src == packet.src) {
      if (packet.inner->protocol == ip::Protocol::kEcmp) {
        // Remote CountQuery tunnelled to this on-tree router (§2.1):
        // the reliable publisher sizing a candidate repair subtree.
        on_remote_query(*packet.inner);
      } else {
        forwarding_.relay_subcast(packet);
      }
    }
    return;
  }
  if (packet.dst.is_single_source()) {
    forwarding_.forward(packet, in_iface);
    return;
  }
  // Stray unicast: routers are pure transit in this simulator; the
  // network layer routes unicast directly, so anything else is dropped.
}

void ExpressRouter::handle_ecmp(const net::Packet& packet,
                                std::uint32_t in_iface) {
  const ecmp::Delivery delivery = transport_.receive(packet, in_iface);
  // §3.2: on (re)connection, re-announce every channel we have going
  // upstream through this neighbor.
  if (delivery.reestablished) reannounce_to(delivery.from);

  for (const ecmp::Message& msg : delivery.messages) {
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, ecmp::Count>) {
            on_count(m, delivery.from, in_iface);
          } else if constexpr (std::is_same_v<T, ecmp::CountQuery>) {
            on_query(m, delivery.from, in_iface);
          } else if constexpr (std::is_same_v<T, ecmp::CountResponse>) {
            on_response(m, delivery.from);
          } else {
            on_key_register(m, delivery.from);
          }
        },
        msg);
  }
}

void ExpressRouter::reannounce_to(net::NodeId to) {
  // Re-announcements stream over one connection: emit them in channel
  // order so the wire trace replays identically run-to-run.
  for (const auto* kv : det::sorted_items(table_.channels())) {
    const auto& [channel, state] = *kv;
    if (state.upstream != to || state.advertised_upstream == 0) continue;
    send_count(to, channel, state.subtree_count(), state.cached_key);
  }
}

// ---------------------------------------------------------------------
// Count handling: tree maintenance + query replies
// ---------------------------------------------------------------------

void ExpressRouter::on_count(const ecmp::Count& msg, net::NodeId from,
                             std::uint32_t iface) {
  if (msg.count_id == ecmp::kNeighborsId) return;  // discovery reply
  if (msg.query_seq != 0) {
    // Reply to an outstanding CountQuery: aggregate, don't touch state.
    counting_.absorb(msg.channel, msg.count_id, msg.query_seq, msg.count);
    return;
  }
  if (msg.count_id == ecmp::kSubscriberId) {
    apply_subscriber_count(msg.channel, from, iface, msg.count, msg.key);
  }
  // Unsolicited counts with other ids are not part of the protocol.
}

void ExpressRouter::apply_subscriber_count(const ip::ChannelId& channel,
                                           net::NodeId from,
                                           std::uint32_t iface,
                                           std::int64_t count,
                                           std::optional<ip::ChannelKey> key) {
  const sim::Time now = network().now();

  if (count <= 0) {
    // Leave (§3.2): zero Count unsubscribes this neighbor.
    Channel* state = table_.find(channel);
    if (state == nullptr || !table_.remove_downstream(channel, from)) return;
    refresh_fib(channel, *state);
    notify_total(channel);
    if (transport_.mode(iface) == ecmp::Mode::kUdp) {
      // IGMPv2-style: re-query the interface after a leave to catch
      // members we would otherwise believe gone.
      send_query(from, channel, ecmp::kSubscriberId,
                 transport_.policy().udp_reply_timeout(), 0);
    }
    update_upstream(channel, *state, std::nullopt);
    return;
  }

  // Join or refresh. New UDP-mode soft state must keep the refresh
  // clock alive — re-arm it here in case it ran dry after the previous
  // entries expired or their neighbors died.
  if (transport_.mode(iface) == ecmp::Mode::kUdp) {
    transport_.ensure_udp_refresh();
  }
  bool created = false;
  Channel& state = table_.get_or_create(channel, created);
  if (!created && table_.refresh_existing(channel, from, count, now)) {
    refresh_fib(channel, state);
    notify_total(channel);
    update_upstream(channel, state, std::nullopt);
    return;
  }
  if (created) {
    const net::NodeId src = source_node(channel);
    if (src != net::kInvalidNode) {
      if (auto up = network().routing().rpf_neighbor(id(), src)) {
        state.upstream = *up;
      }
      if (auto rif = network().routing().rpf_interface(id(), src)) {
        state.rpf_iface = *rif;
      }
    }
    if (config_.proactive) {
      counting_.enable_proactive(channel, *config_.proactive);
    }
  }

  bool decidable = false;
  const bool acceptable = table_.key_acceptable(
      channel, state, key, at_root(channel, state), decidable);
  if (decidable && !acceptable) {
    table_.reject_join(channel, created);
    if (created) counting_.erase_channel(channel);
    send_response(from, channel, ecmp::Status::kInvalidKey);
    return;
  }

  bool is_new = false;
  DownstreamEntry& entry =
      table_.apply_join(state, from, count, key, decidable, now, is_new);
  refresh_fib(channel, state);
  notify_total(channel);
  update_upstream(channel, state, key);

  if (is_new && (decidable || state.validated_upstream)) {
    entry.validated = true;
    send_response(from, channel, ecmp::Status::kOk);
  }
}

bool ExpressRouter::at_root(const ip::ChannelId& channel,
                            const Channel& state) const {
  const net::NodeId src = source_node(channel);
  return src == net::kInvalidNode ||
         (state.upstream != net::kInvalidNode &&
          network().topology().node(state.upstream).kind !=
              net::NodeKind::kRouter) ||
         network().routing().rpf_neighbor(id(), src) == std::nullopt;
}

void ExpressRouter::update_upstream(
    const ip::ChannelId& channel, Channel& state,
    std::optional<ip::ChannelKey> key_to_forward) {
  const bool upstream_is_router =
      state.upstream != net::kInvalidNode &&
      network().topology().node(state.upstream).kind == net::NodeKind::kRouter;
  const UpstreamPlan plan = table_.plan_upstream_update(
      channel, state, key_to_forward, upstream_is_router);
  switch (plan.send) {
    case UpstreamSend::kJoin:
      if (neighbor_reachable(state.upstream)) {
        send_count(state.upstream, channel, plan.total, plan.key);
        counting_.note_advertised(channel, plan.total);
      } else {
        // Failed TCP write (§3.2): the upstream never saw this Count.
        // Leave the advertisement unsynced so the reconnection
        // re-announce in on_routing_change resends it after the heal.
        state.advertised_upstream = 0;
      }
      break;
    case UpstreamSend::kPrune:
      // A prune lost to a dead link is harmless: the upstream dropped
      // this child's entry in its own dead-link cleanup.
      if (neighbor_reachable(state.upstream)) {
        send_count(state.upstream, channel, 0, std::nullopt);
      }
      break;
    case UpstreamSend::kDrift:
      maybe_send_proactive(channel);
      break;
    case UpstreamSend::kNone:
      break;
  }
  if (plan.remove_channel) remove_channel(channel);
}

bool ExpressRouter::neighbor_reachable(net::NodeId neighbor) const {
  const auto iface = network().topology().interface_to(id(), neighbor);
  if (!iface) {
    // LAN-attached (or multi-hop) neighbor: reachable iff routed.
    return network().routing().cost(id(), neighbor).has_value();
  }
  const net::LinkId link = network().topology().node(id()).interfaces.at(*iface);
  return network().topology().link(link).up;
}

void ExpressRouter::maybe_send_proactive(const ip::ChannelId& channel) {
  Channel* state = table_.find(channel);
  if (state == nullptr) return;
  if (state->upstream == net::kInvalidNode ||
      !neighbor_reachable(state->upstream)) {
    return;  // no live upstream connection: the drift waits for the heal
  }
  const std::int64_t total = state->subtree_count();
  if (!counting_.evaluate(channel, total, state->validated_upstream)) return;
  send_count(state->upstream, channel, total, state->cached_key);
  counting_.proactive_update_sent(channel, total);
  state->advertised_upstream = total;
}

void ExpressRouter::refresh_fib(const ip::ChannelId& channel,
                                const Channel& state) {
  FibEntry& entry = forwarding_.fib().upsert(channel);
  entry.iif = state.rpf_iface;
  entry.oifs = net::InterfaceSet{};
  for (const auto& [neighbor, down] : state.downstream) {
    if (down.count <= 0) continue;
    if (auto iface = net::iface_toward(network(), id(), neighbor)) {
      entry.oifs.set(*iface);
    }
  }
}

void ExpressRouter::remove_channel(const ip::ChannelId& channel) {
  if (!table_.contains(channel)) return;
  counting_.erase_channel(channel);
  if (auto it = pending_switches_.find(channel);
      it != pending_switches_.end()) {
    it->second.cancel();
    pending_switches_.erase(it);
  }
  table_.erase(channel);
  forwarding_.fib().erase(channel);
}

void ExpressRouter::resolve_validation(const ip::ChannelId& channel,
                                       ecmp::Status status) {
  if (status != ecmp::Status::kOk && status != ecmp::Status::kInvalidKey) {
    return;
  }
  const VerdictEffects fx =
      table_.apply_upstream_verdict(channel, status == ecmp::Status::kOk);
  Channel* state = table_.find(channel);
  if (state == nullptr) return;
  for (net::NodeId neighbor : fx.accept) {
    send_response(neighbor, channel, ecmp::Status::kOk);
  }
  for (net::NodeId neighbor : fx.reject) {
    send_response(neighbor, channel, ecmp::Status::kInvalidKey);
  }
  if (fx.membership_changed) {
    refresh_fib(channel, *state);
    notify_total(channel);
  }
  if (fx.channel_gone) {
    remove_channel(channel);
  } else if (fx.rejoin) {
    update_upstream(channel, *state, fx.rejoin_key);
  }
}

void ExpressRouter::on_response(const ecmp::CountResponse& msg,
                                net::NodeId from) {
  const Channel* state = table_.find(msg.channel);
  if (state == nullptr) return;
  if (state->upstream != from) return;  // only upstream verdicts count
  resolve_validation(msg.channel, msg.status);
}

void ExpressRouter::on_key_register(const ecmp::KeyRegister& msg,
                                    net::NodeId from) {
  // Only the channel source itself, directly attached, may register.
  const auto& info = network().topology().node(from);
  if (info.kind != net::NodeKind::kHost || info.address != msg.channel.source) {
    return;
  }
  table_.register_key(msg.channel, msg.key);
  send_response(from, msg.channel, ecmp::Status::kOk);
}

// ---------------------------------------------------------------------
// CountQuery fan-out and aggregation (§3.1)
// ---------------------------------------------------------------------

void ExpressRouter::on_query(const ecmp::CountQuery& msg, net::NodeId from,
                             std::uint32_t iface) {
  if (msg.count_id == ecmp::kNeighborsId) {
    send_count(from, msg.channel, 1, std::nullopt, ecmp::kNeighborsId,
               msg.query_seq);
    return;
  }
  if (msg.count_id == ecmp::kAllChannelsId) {
    // General query (§3.3): retransmit Counts for every channel we have
    // going upstream through the querier.
    reannounce_to(from);
    return;
  }
  if (msg.query_seq == 0 && msg.count_id == ecmp::kSubscriberId) {
    // UDP-mode refresh: answer with an unsolicited current Count.
    const Channel* state = table_.find(msg.channel);
    if (state == nullptr) return;
    send_count(from, msg.channel, state->subtree_count(), state->cached_key);
    return;
  }
  // §3.1: decrement the timeout by a small multiple of the RTT to the
  // upstream neighbor before fanning out, so we reply (possibly
  // partially) before our parent gives up on us.
  const sim::Duration remaining = CountingEngine::decremented_timeout(
      msg.timeout, transport_.link_rtt(iface), config_.timeout_rtt_multiple);
  start_query(msg.channel, msg.count_id, remaining, from, msg.query_seq,
              nullptr);
}

void ExpressRouter::on_remote_query(const net::Packet& inner) {
  const ip::Address requester = inner.src;
  for (const ecmp::Message& msg : ecmp::decode_all(inner.payload)) {
    const auto* q = std::get_if<ecmp::CountQuery>(&msg);
    if (q == nullptr) continue;
    const ecmp::CountQuery query = *q;
    start_query(query.channel, query.count_id, query.timeout, std::nullopt,
                query.query_seq, [this, requester, query](CountResult result) {
                  // Reply straight to the querying host as pure IP
                  // transit — a hop-by-hop ECMP send would be consumed
                  // by the first intermediate router.
                  transport_.send_remote(
                      requester, ecmp::Message{ecmp::Count{
                                     query.channel, query.count_id,
                                     result.count, query.query_seq}});
                });
  }
}

void ExpressRouter::initiate_count(const ip::ChannelId& channel,
                                   ecmp::CountId count_id,
                                   sim::Duration timeout,
                                   std::function<void(CountResult)> done) {
  const std::uint32_t seq =
      (static_cast<std::uint32_t>(id() & 0x7FFF) << 16) |
      (transport_.next_seq() & 0xFFFF) | 0x80000000U;
  start_query(channel, count_id, timeout, std::nullopt, seq, std::move(done));
}

void ExpressRouter::start_query(const ip::ChannelId& channel,
                                ecmp::CountId count_id, sim::Duration timeout,
                                std::optional<net::NodeId> requester,
                                std::uint32_t query_seq,
                                std::function<void(CountResult)> local_done) {
  const Channel* state = table_.find(channel);
  if (state == nullptr) {
    // Off-tree: reply zero immediately.
    counting_.start_round(channel, count_id, timeout, requester, query_seq, 0,
                          0, std::move(local_done));
    return;
  }
  const std::int64_t local =
      table_.local_contribution(*state, count_id, network(), id());
  const std::vector<net::NodeId> children =
      table_.query_children(*state, count_id, network(), id());
  if (!counting_.start_round(channel, count_id, timeout, requester, query_seq,
                             local, static_cast<std::uint32_t>(children.size()),
                             std::move(local_done))) {
    return;  // resolved inline (no children)
  }
  for (net::NodeId child : children) {
    send_query(child, channel, count_id, timeout, query_seq);
  }
}

}  // namespace express
