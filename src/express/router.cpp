#include "express/router.hpp"

#include <algorithm>
#include <set>
#include <cassert>

namespace express {

namespace {

constexpr sim::Duration kMinQueryTimeout = sim::milliseconds(10);

}  // namespace

ExpressRouter::ExpressRouter(net::Network& network, net::NodeId id,
                             RouterConfig config)
    : net::Node(network, id), config_(config) {
  if (config_.neighbor_discovery) schedule_neighbor_discovery();
  if (config_.batch_window) {
    batcher_ = std::make_unique<ecmp::Batcher>(
        network.scheduler(), *config_.batch_window,
        [this](net::NodeId neighbor, std::vector<std::uint8_t> payload) {
          net::Packet packet;
          packet.src = address();
          packet.dst = this->network().topology().node(neighbor).address;
          packet.protocol = ip::Protocol::kEcmp;
          packet.payload = std::move(payload);
          stats_.control_bytes_sent += packet.payload.size();
          if (auto iface = iface_toward(neighbor)) {
            this->network().send_on_interface(this->id(), *iface,
                                              std::move(packet));
          }
        });
  }
}

// ---------------------------------------------------------------------
// Packet dispatch
// ---------------------------------------------------------------------

void ExpressRouter::handle_packet(const net::Packet& packet,
                                  std::uint32_t in_iface) {
  if (packet.protocol == ip::Protocol::kEcmp) {
    handle_ecmp(packet, in_iface);
    return;
  }
  if (packet.protocol == ip::Protocol::kIpInIp && packet.dst == address()) {
    relay_subcast(packet);
    return;
  }
  if (packet.dst.is_single_source()) {
    forward_data(packet, in_iface);
    return;
  }
  // Stray unicast: routers are pure transit in this simulator; the
  // network layer routes unicast directly, so anything else is dropped.
}

void ExpressRouter::handle_ecmp(const net::Packet& packet,
                                std::uint32_t in_iface) {
  const net::NodeId from =
      network().node_of(packet.src).value_or(
          network().topology().neighbor_via(id(), in_iface));
  stats_.control_bytes_received += packet.payload.size();

  const bool reestablished =
      neighbors_.heard_from(from, in_iface, network().now());
  if (reestablished) {
    // §3.2: on (re)connection, re-announce every channel we have going
    // upstream through this neighbor.
    for (auto& [channel, state] : channels_) {
      if (state.upstream == from && state.advertised_upstream > 0) {
        ecmp::Count count;
        count.channel = channel;
        count.count = subtree_count(channel);
        if (state.cached_key) count.key = *state.cached_key;
        send_message(from, count);
        ++stats_.counts_sent;
      }
    }
  }

  for (const ecmp::Message& msg : ecmp::decode_all(packet.payload)) {
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, ecmp::Count>) {
            on_count(m, from, in_iface);
          } else if constexpr (std::is_same_v<T, ecmp::CountQuery>) {
            on_query(m, from, in_iface);
          } else if constexpr (std::is_same_v<T, ecmp::CountResponse>) {
            on_response(m, from);
          } else {
            on_key_register(m, from);
          }
        },
        msg);
  }
}

// ---------------------------------------------------------------------
// Data fast path (§3.4)
// ---------------------------------------------------------------------

void ExpressRouter::forward_data(const net::Packet& packet,
                                 std::uint32_t in_iface) {
  const ip::ChannelId channel{packet.src, packet.dst};
  const InterfaceSet* oifs = fib_.lookup(channel, in_iface);
  if (oifs == nullptr) return;  // counted and dropped by the FIB
  ++stats_.data_packets_forwarded;
  oifs->for_each([&](std::uint32_t iface) {
    if (iface == in_iface) return;
    net::Packet copy = packet;
    if (copy.ttl == 0) return;
    --copy.ttl;
    network().send_on_interface(id(), iface, std::move(copy));
    ++stats_.data_copies_sent;
  });
}

void ExpressRouter::relay_subcast(const net::Packet& packet) {
  if (!packet.inner) return;
  // Only the channel source may subcast (§7.1): the outer unicast source
  // must be the inner channel source.
  if (packet.inner->src != packet.src) return;
  const ip::ChannelId channel{packet.inner->src, packet.inner->dst};
  const FibEntry* entry = fib_.find(channel);
  if (entry == nullptr) return;  // not an on-channel router
  ++stats_.subcasts_relayed;
  entry->oifs.for_each([&](std::uint32_t iface) {
    net::Packet copy = *packet.inner;
    network().send_on_interface(id(), iface, std::move(copy));
    ++stats_.data_copies_sent;
  });
}

// ---------------------------------------------------------------------
// Count handling: tree maintenance + query replies
// ---------------------------------------------------------------------

void ExpressRouter::on_count(const ecmp::Count& msg, net::NodeId from,
                             std::uint32_t iface) {
  ++stats_.counts_received;
  if (msg.count_id == ecmp::kNeighborsId) return;  // discovery reply

  if (msg.query_seq != 0) {
    // Reply to an outstanding CountQuery: aggregate, don't touch state.
    const std::uint64_t key =
        pending_key(msg.channel, msg.count_id, msg.query_seq);
    auto it = pending_queries_.find(key);
    if (it == pending_queries_.end()) return;  // late reply after timeout
    it->second.sum += msg.count;
    if (--it->second.outstanding == 0) finish_query(key, false);
    return;
  }

  if (msg.count_id == ecmp::kSubscriberId) {
    apply_subscriber_count(msg.channel, from, iface, msg.count, msg.key);
  }
  // Unsolicited counts with other ids are not part of the protocol.
}

void ExpressRouter::apply_subscriber_count(const ip::ChannelId& channel,
                                           net::NodeId from,
                                           std::uint32_t iface,
                                           std::int64_t count,
                                           std::optional<ip::ChannelKey> key) {
  const sim::Time now = network().now();

  if (count <= 0) {
    // Leave (§3.2): zero Count unsubscribes this neighbor.
    auto it = channels_.find(channel);
    if (it == channels_.end()) return;
    ChannelState& state = it->second;
    if (state.downstream.erase(from) == 0) return;
    ++stats_.unsubscribe_events;
    refresh_fib(channel, state);
    if (total_observer_) total_observer_(channel, subtree_count(channel), now);
    if (interface_mode(iface) == ecmp::Mode::kUdp) {
      // IGMPv2-style: re-query the interface after a leave to catch
      // members we would otherwise believe gone.
      ecmp::CountQuery q;
      q.channel = channel;
      q.count_id = ecmp::kSubscriberId;
      q.timeout = config_.udp_query_interval / 2;
      q.query_seq = 0;
      send_message(from, q);
      ++stats_.queries_sent;
    }
    update_upstream(channel, state, std::nullopt);
    return;
  }

  // Join or refresh.
  auto [it, created] = channels_.try_emplace(channel);
  ChannelState& state = it->second;
  // Updates over an already-validated session (count refreshes,
  // proactive aggregates) need no re-validation: routers are trusted at
  // the network layer once the subscription was accepted (§3.5).
  if (!created) {
    if (auto existing = state.downstream.find(from);
        existing != state.downstream.end() && existing->second.validated &&
        existing->second.count > 0) {
      existing->second.count = count;
      existing->second.last_refresh = now;
      refresh_fib(channel, state);
      if (total_observer_) {
        total_observer_(channel, subtree_count(channel), now);
      }
      update_upstream(channel, state, std::nullopt);
      return;
    }
  }
  if (created) {
    const net::NodeId src = source_node(channel);
    if (src != net::kInvalidNode) {
      if (auto up = network().routing().rpf_neighbor(id(), src)) {
        state.upstream = *up;
      }
      if (auto rif = network().routing().rpf_interface(id(), src)) {
        state.rpf_iface = *rif;
      }
    }
    if (config_.proactive) {
      state.proactive.emplace(*config_.proactive);
    }
  }

  bool decidable = false;
  const bool acceptable = key_acceptable(channel, state, key, decidable);
  if (decidable && !acceptable) {
    ++stats_.auth_rejects;
    ecmp::CountResponse reject;
    reject.channel = channel;
    reject.status = ecmp::Status::kInvalidKey;
    send_message(from, reject);
    ++stats_.responses_sent;
    if (created) channels_.erase(channel);
    return;
  }

  DownstreamEntry& entry = state.downstream[from];
  const bool is_new = (entry.count == 0);
  entry.count = count;
  // A refresh without a key must not clobber the key the original join
  // presented (it is what the pending validation verdict applies to).
  if (key) entry.key = *key;
  entry.last_refresh = now;
  if (is_new) {
    ++stats_.subscribe_events;
    entry.validated = decidable;
  }

  refresh_fib(channel, state);
  if (total_observer_) total_observer_(channel, subtree_count(channel), now);
  update_upstream(channel, state, key);

  if (is_new && (decidable || state.validated_upstream)) {
    entry.validated = true;
    ecmp::CountResponse ok;
    ok.channel = channel;
    ok.status = ecmp::Status::kOk;
    send_message(from, ok);
    ++stats_.responses_sent;
  }
}

bool ExpressRouter::key_acceptable(const ip::ChannelId& channel,
                                   const ChannelState& state,
                                   std::optional<ip::ChannelKey> key,
                                   bool& locally_decidable) const {
  // Authoritative knowledge: the source registered K(S,E) here (§2.1).
  if (auto it = key_registry_.find(channel); it != key_registry_.end()) {
    locally_decidable = true;
    return key.has_value() && *key == it->second;
  }
  // Cached from a previous upstream validation (§3.2).
  if (state.cached_key) {
    locally_decidable = true;
    return key.has_value() && *key == *state.cached_key;
  }
  const net::NodeId src = source_node(channel);
  const bool at_root =
      src == net::kInvalidNode ||
      (state.upstream != net::kInvalidNode &&
       network().topology().node(state.upstream).kind !=
           net::NodeKind::kRouter) ||
      network().routing().rpf_neighbor(id(), src) == std::nullopt;
  if (at_root) {
    // First-hop router of an unauthenticated channel: accept anything
    // (a supplied key on an open channel is simply ignored).
    locally_decidable = true;
    return true;
  }
  if (state.validated_upstream && !state.cached_key) {
    // Already validated keyless: the channel is open.
    locally_decidable = true;
    return true;
  }
  // We cannot decide; accept tentatively and let upstream validate.
  locally_decidable = false;
  return true;
}

void ExpressRouter::update_upstream(const ip::ChannelId& channel,
                                    ChannelState& state,
                                    std::optional<ip::ChannelKey> key_to_forward) {
  const std::int64_t total = subtree_count(channel);
  const bool upstream_is_router =
      state.upstream != net::kInvalidNode &&
      network().topology().node(state.upstream).kind == net::NodeKind::kRouter;

  if (!upstream_is_router) {
    // We are the tree root (first hop from the source host): validation
    // authority rests with our key registry; nothing propagates further.
    state.validated_upstream = true;
    if (total == 0) remove_channel(channel);
    return;
  }

  if (state.advertised_upstream == 0 && total > 0) {
    ecmp::Count join;
    join.channel = channel;
    join.count = total;
    if (state.cached_key) {
      join.key = *state.cached_key;
    } else if (key_to_forward) {
      join.key = *key_to_forward;
    }
    if (!state.validated_upstream) state.pending_sent_key = join.key;
    send_message(state.upstream, join);
    ++stats_.counts_sent;
    ++stats_.joins_sent;
    state.advertised_upstream = total;
    if (state.proactive) state.proactive->mark_sent(total, network().now());
  } else if (state.advertised_upstream > 0 && total == 0) {
    ecmp::Count leave;
    leave.channel = channel;
    leave.count = 0;
    send_message(state.upstream, leave);
    ++stats_.counts_sent;
    ++stats_.prunes_sent;
    state.advertised_upstream = 0;
    remove_channel(channel);
  } else if (state.proactive && total != state.advertised_upstream) {
    evaluate_proactive(channel, state);
  }
}

void ExpressRouter::evaluate_proactive(const ip::ChannelId& channel,
                                       ChannelState& state) {
  if (!state.proactive) return;
  const std::int64_t total = subtree_count(channel);
  if (total == 0) return;  // handled by the prune path
  const sim::Time now = network().now();
  if (!state.validated_upstream) {
    // Hold updates until the join is accepted; re-check shortly.
    state.proactive_check.cancel();
    state.proactive_check = network().scheduler().schedule_after(
        sim::milliseconds(100), [this, channel]() {
          auto it = channels_.find(channel);
          if (it == channels_.end()) return;
          evaluate_proactive(channel, it->second);
        });
    return;
  }
  if (state.proactive->should_send(total, now)) {
    ecmp::Count update;
    update.channel = channel;
    update.count = total;
    if (state.cached_key) update.key = *state.cached_key;
    send_message(state.upstream, update);
    ++stats_.counts_sent;
    ++stats_.proactive_updates_sent;
    state.proactive->mark_sent(total, now);
    state.advertised_upstream = total;
    state.proactive_check.cancel();
    return;
  }
  // Drift exists but is tolerated for now; re-check when the decaying
  // tolerance crosses the current drift (always within tau of the last
  // update). Arrivals in between re-evaluate and pull the check earlier.
  state.proactive_check.cancel();
  if (auto delay = state.proactive->next_send_delay(total, now)) {
    state.proactive_check = network().scheduler().schedule_after(
        *delay + sim::microseconds(1), [this, channel]() {
          auto it = channels_.find(channel);
          if (it == channels_.end()) return;
          evaluate_proactive(channel, it->second);
        });
  }
}

void ExpressRouter::refresh_fib(const ip::ChannelId& channel,
                                ChannelState& state) {
  FibEntry& entry = fib_.upsert(channel);
  entry.iif = state.rpf_iface;
  entry.oifs = InterfaceSet{};
  for (const auto& [neighbor, down] : state.downstream) {
    if (down.count <= 0) continue;
    if (auto iface = iface_toward(neighbor)) {
      entry.oifs.set(*iface);
    }
  }
}

void ExpressRouter::remove_channel(const ip::ChannelId& channel) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return;
  it->second.proactive_check.cancel();
  it->second.pending_switch.cancel();
  channels_.erase(it);
  fib_.erase(channel);
}

void ExpressRouter::resolve_validation(const ip::ChannelId& channel,
                                       ecmp::Status status) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return;
  ChannelState& state = it->second;

  if (status == ecmp::Status::kOk) {
    state.validated_upstream = true;
    // The verdict covers exactly the key we forwarded: it becomes the
    // cached K(S,E); pending joins that presented a *different* key are
    // rejected against it (or accepted if no key was involved — open
    // channel).
    if (state.pending_sent_key && *state.pending_sent_key != ip::kNoKey) {
      state.cached_key = *state.pending_sent_key;
    }
    state.pending_sent_key.reset();
    std::vector<net::NodeId> mismatched;
    for (auto& [neighbor, entry] : state.downstream) {
      if (entry.validated) continue;
      if (state.cached_key && entry.key != *state.cached_key) {
        mismatched.push_back(neighbor);
        continue;
      }
      entry.validated = true;
      ecmp::CountResponse ok;
      ok.channel = channel;
      ok.status = ecmp::Status::kOk;
      send_message(neighbor, ok);
      ++stats_.responses_sent;
    }
    for (net::NodeId neighbor : mismatched) {
      state.downstream.erase(neighbor);
      ++stats_.auth_rejects;
      ecmp::CountResponse reject;
      reject.channel = channel;
      reject.status = ecmp::Status::kInvalidKey;
      send_message(neighbor, reject);
      ++stats_.responses_sent;
    }
    if (!mismatched.empty()) {
      refresh_fib(channel, state);
      if (total_observer_) {
        total_observer_(channel, subtree_count(channel), network().now());
      }
    }
    return;
  }

  if (status == ecmp::Status::kInvalidKey) {
    // Our join was rejected — the rejection applies to the key we sent.
    const ip::ChannelKey rejected_key =
        state.pending_sent_key.value_or(ip::kNoKey);
    state.pending_sent_key.reset();
    std::vector<net::NodeId> rejected;
    std::optional<ip::ChannelKey> retry_key;
    for (auto& [neighbor, entry] : state.downstream) {
      if (entry.validated) continue;
      if (entry.key == rejected_key) {
        rejected.push_back(neighbor);
      } else if (!retry_key) {
        retry_key = entry.key;  // a different key deserves its own try
      }
    }
    for (net::NodeId neighbor : rejected) {
      state.downstream.erase(neighbor);
      ++stats_.auth_rejects;
      ecmp::CountResponse reject;
      reject.channel = channel;
      reject.status = ecmp::Status::kInvalidKey;
      send_message(neighbor, reject);
      ++stats_.responses_sent;
    }
    // The upstream router holds no state for us now.
    state.advertised_upstream = 0;
    refresh_fib(channel, state);
    if (total_observer_) {
      total_observer_(channel, subtree_count(channel), network().now());
    }
    if (subtree_count(channel) == 0) {
      remove_channel(channel);
    } else if (state.cached_key) {
      // Validated subscribers remain: rejoin with the known-good key.
      update_upstream(channel, state, state.cached_key);
    } else {
      // Unvalidated joins with a different key remain: try theirs.
      update_upstream(channel, state, retry_key);
    }
  }
}

void ExpressRouter::on_response(const ecmp::CountResponse& msg,
                                net::NodeId from) {
  ++stats_.responses_received;
  auto it = channels_.find(msg.channel);
  if (it == channels_.end()) return;
  if (it->second.upstream != from) return;  // only upstream verdicts count
  resolve_validation(msg.channel, msg.status);
}

void ExpressRouter::on_key_register(const ecmp::KeyRegister& msg,
                                    net::NodeId from) {
  // Only the channel source itself, directly attached, may register.
  const auto& info = network().topology().node(from);
  if (info.kind != net::NodeKind::kHost || info.address != msg.channel.source) {
    return;
  }
  key_registry_[msg.channel] = msg.key;
  ++stats_.key_registrations;
  ecmp::CountResponse ok;
  ok.channel = msg.channel;
  ok.status = ecmp::Status::kOk;
  send_message(from, ok);
  ++stats_.responses_sent;
}

// ---------------------------------------------------------------------
// CountQuery fan-out and aggregation (§3.1)
// ---------------------------------------------------------------------

void ExpressRouter::on_query(const ecmp::CountQuery& msg, net::NodeId from,
                             std::uint32_t iface) {
  ++stats_.queries_received;

  if (msg.count_id == ecmp::kNeighborsId) {
    ecmp::Count reply;
    reply.channel = msg.channel;
    reply.count_id = ecmp::kNeighborsId;
    reply.count = 1;
    reply.query_seq = msg.query_seq;
    send_message(from, reply);
    ++stats_.counts_sent;
    return;
  }

  if (msg.count_id == ecmp::kAllChannelsId) {
    // General query (§3.3): retransmit Counts for every channel we have
    // going upstream through the querier.
    for (auto& [channel, state] : channels_) {
      if (state.upstream != from || state.advertised_upstream == 0) continue;
      ecmp::Count count;
      count.channel = channel;
      count.count = subtree_count(channel);
      if (state.cached_key) count.key = *state.cached_key;
      send_message(from, count);
      ++stats_.counts_sent;
    }
    return;
  }

  if (msg.query_seq == 0 && msg.count_id == ecmp::kSubscriberId) {
    // UDP-mode refresh: answer with an unsolicited current Count.
    auto it = channels_.find(msg.channel);
    if (it == channels_.end()) return;
    ecmp::Count count;
    count.channel = msg.channel;
    count.count = subtree_count(msg.channel);
    if (it->second.cached_key) count.key = *it->second.cached_key;
    send_message(from, count);
    ++stats_.counts_sent;
    return;
  }

  // §3.1: decrement the timeout by a small multiple of the RTT to the
  // upstream neighbor before fanning out, so we reply (possibly
  // partially) before our parent gives up on us.
  const sim::Duration rtt = upstream_rtt(iface);
  sim::Duration remaining =
      msg.timeout -
      std::chrono::duration_cast<sim::Duration>(
          rtt * config_.timeout_rtt_multiple);
  remaining = std::max(remaining, kMinQueryTimeout);
  start_query(msg.channel, msg.count_id, remaining, from, msg.query_seq,
              nullptr);
}

void ExpressRouter::initiate_count(const ip::ChannelId& channel,
                                   ecmp::CountId count_id,
                                   sim::Duration timeout,
                                   std::function<void(CountResult)> done) {
  const std::uint32_t seq =
      (static_cast<std::uint32_t>(id() & 0x7FFF) << 16) |
      (next_local_seq_++ & 0xFFFF) | 0x80000000U;
  start_query(channel, count_id, timeout, std::nullopt, seq, std::move(done));
}

void ExpressRouter::start_query(const ip::ChannelId& channel,
                                ecmp::CountId count_id, sim::Duration timeout,
                                std::optional<net::NodeId> requester,
                                std::uint32_t query_seq,
                                std::function<void(CountResult)> local_done) {
  auto reply = [&](std::int64_t value) {
    if (requester) {
      ecmp::Count count;
      count.channel = channel;
      count.count_id = count_id;
      count.count = value;
      count.query_seq = query_seq;
      send_message(*requester, count);
      ++stats_.counts_sent;
    } else if (local_done) {
      local_done(CountResult{value, true});
    }
  };

  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    reply(0);
    return;
  }
  ChannelState& state = it->second;
  const std::int64_t local = local_contribution(channel, state, count_id);

  // Children: downstream tree neighbors. Network-layer counts stop at
  // routers (§3.1 footnote 3); subscriber/app counts reach leaf hosts;
  // domain-scoped counts never cross a domain boundary.
  const std::uint16_t my_domain = network().topology().node(id()).domain;
  std::vector<net::NodeId> children;
  for (const auto& [neighbor, entry] : state.downstream) {
    if (entry.count <= 0) continue;
    const auto& info = network().topology().node(neighbor);
    if (info.kind == net::NodeKind::kHost &&
        !ecmp::forwarded_to_hosts(count_id)) {
      continue;
    }
    if (count_id == ecmp::kDomainLinkCountId && info.domain != my_domain) {
      continue;
    }
    children.push_back(neighbor);
  }
  if (children.empty()) {
    reply(local);
    return;
  }

  const std::uint64_t key = pending_key(channel, count_id, query_seq);
  PendingQuery& pending = pending_queries_[key];
  pending.channel = channel;
  pending.count_id = count_id;
  pending.query_seq = query_seq;
  pending.requester = requester;
  pending.sum = local;
  pending.outstanding = static_cast<std::uint32_t>(children.size());
  pending.local_done = std::move(local_done);
  pending.timer = network().scheduler().schedule_after(
      timeout, [this, key]() { finish_query(key, true); });

  for (net::NodeId child : children) {
    ecmp::CountQuery query;
    query.channel = channel;
    query.count_id = count_id;
    query.timeout = timeout;
    query.query_seq = query_seq;
    send_message(child, query);
    ++stats_.queries_sent;
  }
}

void ExpressRouter::finish_query(std::uint64_t key, bool timed_out) {
  auto it = pending_queries_.find(key);
  if (it == pending_queries_.end()) return;
  PendingQuery pending = std::move(it->second);
  pending_queries_.erase(it);
  pending.timer.cancel();

  if (pending.requester) {
    // Partial or complete, the sum goes upstream (§3.1: a router that
    // times out sends a partial reply before its parent times out).
    ecmp::Count count;
    count.channel = pending.channel;
    count.count_id = pending.count_id;
    count.count = pending.sum;
    count.query_seq = pending.query_seq;
    send_message(*pending.requester, count);
    ++stats_.counts_sent;
  } else if (pending.local_done) {
    pending.local_done(CountResult{pending.sum, !timed_out});
  }
}

std::int64_t ExpressRouter::local_contribution(const ip::ChannelId& channel,
                                               const ChannelState& state,
                                               ecmp::CountId count_id) const {
  (void)channel;
  switch (count_id) {
    case ecmp::kLinkCountId: {
      std::int64_t links = 0;
      for (const auto& [neighbor, entry] : state.downstream) {
        if (entry.count > 0) ++links;
      }
      return links;
    }
    case ecmp::kDomainLinkCountId: {
      // Only tree links whose far end stays inside our domain count
      // toward that domain's settlement.
      const std::uint16_t my_domain = network().topology().node(id()).domain;
      std::int64_t links = 0;
      for (const auto& [neighbor, entry] : state.downstream) {
        if (entry.count > 0 &&
            network().topology().node(neighbor).domain == my_domain) {
          ++links;
        }
      }
      return links;
    }
    case ecmp::kRouterCountId:
      return 1;
    case ecmp::kWeightedTreeSizeId: {
      std::int64_t weight = 0;
      for (const auto& [neighbor, entry] : state.downstream) {
        if (entry.count <= 0) continue;
        if (auto iface = iface_toward(neighbor)) {
          const net::LinkId link =
              network().topology().node(id()).interfaces.at(*iface);
          weight += network().topology().link(link).cost;
        }
      }
      return weight;
    }
    default:
      return 0;  // subscriber and app-defined counts live at the hosts
  }
}

// ---------------------------------------------------------------------
// Transport, discovery, UDP soft state
// ---------------------------------------------------------------------

void ExpressRouter::send_message(net::NodeId neighbor,
                                 const ecmp::Message& msg) {
  if (batcher_) {
    // §5.3 TCP mode: coalesce messages per neighbor into segments.
    batcher_->enqueue(neighbor, msg);
    return;
  }
  net::Packet packet;
  packet.src = address();
  packet.dst = network().topology().node(neighbor).address;
  packet.protocol = ip::Protocol::kEcmp;
  packet.payload = ecmp::encode(msg);
  stats_.control_bytes_sent += packet.payload.size();
  auto iface = iface_toward(neighbor);
  if (!iface) return;  // unreachable (partition); counted by caller effects
  network().send_on_interface(id(), *iface, std::move(packet));
}

void ExpressRouter::set_interface_mode(std::uint32_t iface, ecmp::Mode mode) {
  iface_modes_[iface] = mode;
  if (mode == ecmp::Mode::kUdp) schedule_udp_refresh();
}

ecmp::Mode ExpressRouter::interface_mode(std::uint32_t iface) const {
  auto it = iface_modes_.find(iface);
  return it == iface_modes_.end() ? ecmp::Mode::kTcp : it->second;
}

void ExpressRouter::schedule_udp_refresh() {
  if (udp_refresh_scheduled_) return;
  udp_refresh_scheduled_ = true;
  network().scheduler().schedule_after(config_.udp_query_interval,
                                       [this]() { udp_refresh_tick(); });
}

void ExpressRouter::udp_refresh_tick() {
  const sim::Time now = network().now();
  const sim::Duration lifetime =
      config_.udp_query_interval * config_.udp_robustness +
      config_.udp_query_interval / 2;

  // Expire soft state on UDP interfaces, then re-query live members.
  // On multi-access (LAN) interfaces one general query per channel
  // covers every member on the wire (§3.2: all UDP neighbors respond,
  // no suppression).
  std::vector<std::pair<ip::ChannelId, net::NodeId>> expired;
  std::set<std::pair<ip::ChannelId, std::uint32_t>> lan_queried;
  for (auto& [channel, state] : channels_) {
    for (auto& [neighbor, entry] : state.downstream) {
      auto iface = iface_toward(neighbor);
      if (!iface || interface_mode(*iface) != ecmp::Mode::kUdp) continue;
      if (now - entry.last_refresh > lifetime) {
        expired.emplace_back(channel, neighbor);
        continue;
      }
      ecmp::CountQuery query;
      query.channel = channel;
      query.count_id = ecmp::kSubscriberId;
      query.timeout = config_.udp_query_interval / 2;
      query.query_seq = 0;
      if (iface_is_lan(*iface)) {
        if (!lan_queried.insert({channel, *iface}).second) continue;
        net::Packet packet;
        packet.src = address();
        packet.dst = ip::kEcmpAllRouters;  // LAN-wide general query
        packet.protocol = ip::Protocol::kEcmp;
        packet.payload = ecmp::encode(ecmp::Message{query});
        stats_.control_bytes_sent += packet.payload.size();
        network().send_on_interface(id(), *iface, std::move(packet));
        ++stats_.queries_sent;
      } else {
        send_message(neighbor, query);
        ++stats_.queries_sent;
      }
    }
  }
  for (const auto& [channel, neighbor] : expired) {
    auto iface = iface_toward(neighbor);
    apply_subscriber_count(channel, neighbor, iface.value_or(0), 0,
                           std::nullopt);
  }

  network().scheduler().schedule_after(config_.udp_query_interval,
                                       [this]() { udp_refresh_tick(); });
}

void ExpressRouter::schedule_neighbor_discovery() {
  network().scheduler().schedule_after(
      config_.neighbor_query_interval, [this]() { neighbor_discovery_tick(); });
}

void ExpressRouter::neighbor_discovery_tick() {
  // §3.3: periodically multicast a neighbors CountQuery on each
  // interface; on point-to-point links that is a direct query.
  const auto& info = network().topology().node(id());
  for (std::uint32_t iface = 0; iface < info.interfaces.size(); ++iface) {
    const net::LinkId link = info.interfaces[iface];
    if (!network().topology().link(link).up) continue;
    const net::NodeId peer = network().topology().peer(link, id());
    if (network().topology().node(peer).kind != net::NodeKind::kRouter) continue;
    ecmp::CountQuery query;
    query.channel = ip::ChannelId{address(), ip::kEcmpAllRouters};
    query.count_id = ecmp::kNeighborsId;
    query.timeout = config_.neighbor_query_interval;
    query.query_seq = (next_local_seq_++ & 0xFFFF) | 0x40000000U;
    send_message(peer, query);
    ++stats_.queries_sent;
  }
  for (const auto& dead :
       neighbors_.expire(network().now(), config_.neighbor_timeout)) {
    // Keepalives cover router-router sessions only: hosts do not answer
    // neighbor queries; their liveness is UDP-mode soft state (§3.2) or
    // link failure.
    if (network().topology().node(dead.neighbor).kind ==
        net::NodeKind::kRouter) {
      neighbor_died(dead.neighbor);
    }
  }
  schedule_neighbor_discovery();
}

void ExpressRouter::neighbor_died(net::NodeId neighbor) {
  // §3.2 TCP mode: the count associated with a failed connection is
  // subtracted from the sum provided upstream.
  std::vector<ip::ChannelId> affected;
  for (auto& [channel, state] : channels_) {
    if (state.downstream.contains(neighbor)) affected.push_back(channel);
  }
  for (const ip::ChannelId& channel : affected) {
    auto iface = network().topology().interface_to(id(), neighbor);
    apply_subscriber_count(channel, neighbor, iface.value_or(0), 0,
                           std::nullopt);
  }
}

// ---------------------------------------------------------------------
// Route changes (§3.2)
// ---------------------------------------------------------------------

void ExpressRouter::on_routing_change() {
  // First, drop downstream entries whose link died (connection reset).
  std::vector<std::pair<ip::ChannelId, net::NodeId>> dead_children;
  for (auto& [channel, state] : channels_) {
    for (const auto& [neighbor, entry] : state.downstream) {
      auto direct = network().topology().interface_to(id(), neighbor);
      if (direct) {
        const net::LinkId link =
            network().topology().node(id()).interfaces.at(*direct);
        if (!network().topology().link(link).up) {
          dead_children.emplace_back(channel, neighbor);
        }
      } else if (!network().routing().cost(id(), neighbor)) {
        // LAN-attached (or multi-hop) neighbor now unreachable.
        dead_children.emplace_back(channel, neighbor);
      }
    }
  }
  for (const auto& [channel, neighbor] : dead_children) {
    auto iface = iface_toward(neighbor);
    apply_subscriber_count(channel, neighbor, iface.value_or(0), 0,
                           std::nullopt);
  }

  // Then re-evaluate the upstream of every remaining channel, with
  // hysteresis to damp oscillation (§3.2).
  for (auto& [channel, state] : channels_) {
    const net::NodeId src = source_node(channel);
    if (src == net::kInvalidNode) continue;

    // A dead upstream link resets the ECMP connection: the peer is
    // subtracting our count right now, so our advertisement is void.
    if (state.upstream != net::kInvalidNode &&
        state.advertised_upstream > 0) {
      auto up_iface = network().topology().interface_to(id(), state.upstream);
      if (up_iface) {
        const net::LinkId link =
            network().topology().node(id()).interfaces.at(*up_iface);
        if (!network().topology().link(link).up) {
          state.advertised_upstream = 0;
        }
      }
    }

    auto new_up = network().routing().rpf_neighbor(id(), src);
    if (!new_up || *new_up == state.upstream) {
      state.pending_switch.cancel();
      // Connection re-established with the same upstream after an
      // outage: re-announce (§3.2 unsolicited Counts on establishment).
      if (new_up && state.advertised_upstream == 0 &&
          subtree_count(channel) > 0) {
        update_upstream(channel, state, state.cached_key);
      }
      continue;
    }
    if (state.pending_switch.pending()) continue;  // already scheduled
    const ip::ChannelId ch = channel;
    state.pending_switch = network().scheduler().schedule_after(
        config_.route_change_hysteresis, [this, ch]() {
          auto it = channels_.find(ch);
          if (it == channels_.end()) return;
          ChannelState& s = it->second;
          const net::NodeId src_node = source_node(ch);
          if (src_node == net::kInvalidNode) return;
          auto up = network().routing().rpf_neighbor(id(), src_node);
          if (!up || *up == s.upstream) return;  // flap settled; stay put

          const std::int64_t total = subtree_count(ch);
          // Zero Count to the old upstream, current Count to the new.
          if (s.upstream != net::kInvalidNode &&
              network().topology().node(s.upstream).kind ==
                  net::NodeKind::kRouter &&
              s.advertised_upstream > 0) {
            ecmp::Count leave;
            leave.channel = ch;
            leave.count = 0;
            send_message(s.upstream, leave);
            ++stats_.counts_sent;
            ++stats_.prunes_sent;
          }
          s.upstream = *up;
          if (auto rif = network().routing().rpf_interface(id(), src_node)) {
            s.rpf_iface = *rif;
          }
          s.advertised_upstream = 0;
          refresh_fib(ch, s);
          if (total > 0) {
            update_upstream(ch, s, s.cached_key);
          } else {
            remove_channel(ch);
          }
        });
  }
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

std::int64_t ExpressRouter::subtree_count(const ip::ChannelId& channel) const {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return 0;
  std::int64_t total = 0;
  for (const auto& [neighbor, entry] : it->second.downstream) {
    total += entry.count;
  }
  return total;
}

std::optional<net::NodeId> ExpressRouter::upstream_of(
    const ip::ChannelId& channel) const {
  auto it = channels_.find(channel);
  if (it == channels_.end() || it->second.upstream == net::kInvalidNode) {
    return std::nullopt;
  }
  return it->second.upstream;
}

std::size_t ExpressRouter::management_state_bytes() const {
  // §5.2 model: ~32 bytes per count record, one record per downstream
  // neighbor plus one upstream record per channel, plus 8 bytes for a
  // cached key; pending count activities cost a record each.
  std::size_t bytes = 0;
  for (const auto& [channel, state] : channels_) {
    bytes += 32 * (state.downstream.size() + 1);
    if (state.cached_key) bytes += 8;
  }
  bytes += 32 * pending_queries_.size();
  bytes += 8 * key_registry_.size();
  return bytes;
}

net::NodeId ExpressRouter::source_node(const ip::ChannelId& channel) const {
  return network().node_of(channel.source).value_or(net::kInvalidNode);
}

sim::Duration ExpressRouter::upstream_rtt(std::uint32_t iface) const {
  const net::LinkId link = network().topology().node(id()).interfaces.at(iface);
  return network().topology().link(link).delay * 2;
}

std::optional<std::uint32_t> ExpressRouter::iface_toward(
    net::NodeId neighbor) const {
  if (auto direct = network().topology().interface_to(id(), neighbor)) {
    return direct;
  }
  // LAN-attached neighbor: the path runs through the hub.
  return network().routing().rpf_interface(id(), neighbor);
}

bool ExpressRouter::iface_is_lan(std::uint32_t iface) const {
  const net::NodeId peer = network().topology().neighbor_via(id(), iface);
  return network().topology().node(peer).kind == net::NodeKind::kLanHub;
}

std::uint64_t ExpressRouter::pending_key(const ip::ChannelId& channel,
                                         ecmp::CountId count_id,
                                         std::uint32_t query_seq) {
  std::uint64_t x = std::hash<ip::ChannelId>{}(channel);
  x ^= (static_cast<std::uint64_t>(count_id) << 32) ^ query_seq;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x;
}

}  // namespace express
