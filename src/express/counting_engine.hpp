// Count collection and proactive-count drift tracking (paper §3.1, §6).
//
// CountingEngine owns the *aggregation* side of ECMP counting at one
// router: the table of pending CountQuery rounds (per-subtree partial
// sums, outstanding-child counters, and the timeout timer producing
// partial replies), plus the §6 proactive-counting state — one
// error-tolerance curve per channel deciding when subscriber-count
// drift is large enough to push upstream, and the recheck timers that
// re-evaluate when the decaying tolerance crosses the current drift.
//
// Module seam: the engine schedules timers and aggregates integers; it
// sends nothing and holds no channel membership. Replies leave through
// the two callbacks injected at construction (ReplyFn for upstream
// Counts, RecheckFn re-entering the router's proactive evaluation), and
// membership facts (subtree totals, upstream validation) are passed in
// per call. It therefore needs no Network and no SubscriptionTable,
// which keeps query aggregation testable against a bare Scheduler (see
// tests/test_counting_engine.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "counting/error_curve.hpp"
#include "ecmp/count_id.hpp"
#include "ip/channel.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"

namespace express {

struct CountingStats {
  std::uint64_t rounds_started = 0;    ///< pending aggregation rounds created
  std::uint64_t rounds_completed = 0;  ///< all children replied in time
  std::uint64_t rounds_timed_out = 0;  ///< partial reply after timeout
  std::uint64_t proactive_updates_sent = 0;
};

/// Aggregate result of a count collection.
struct [[nodiscard]] CountResult {
  std::int64_t count = 0;
  bool complete = false;  ///< false when assembled from a partial timeout
};

class CountingEngine {
 public:
  /// Deliver an aggregated (possibly partial) sum upstream.
  using ReplyFn = std::function<void(net::NodeId requester,
                                     const ip::ChannelId& channel,
                                     ecmp::CountId count_id, std::int64_t sum,
                                     std::uint32_t query_seq)>;
  /// Re-enter the router's proactive evaluation for a channel (fired by
  /// the drift-recheck timers).
  using RecheckFn = std::function<void(const ip::ChannelId& channel)>;
  using LocalDone = std::function<void(CountResult)>;

  /// `scope` binds the engine's counters (express.counting.*) and
  /// count-round trace records to an observability plane; the default
  /// resolves to the global plane under a fresh anonymous entity.
  CountingEngine(sim::Scheduler& scheduler, ReplyFn reply, RecheckFn recheck,
                 obs::Scope scope = {})
      : scheduler_(&scheduler),
        reply_(std::move(reply)),
        recheck_(std::move(recheck)),
        scope_(scope.resolved()) {
    stats_.rounds_started = scope_.counter("express.counting.rounds_started");
    stats_.rounds_completed =
        scope_.counter("express.counting.rounds_completed");
    stats_.rounds_timed_out =
        scope_.counter("express.counting.rounds_timed_out");
    stats_.proactive_updates_sent =
        scope_.counter("express.counting.proactive_updates_sent");
    round_ns_ = scope_.histogram("express.counting.round_ns");
  }
  ~CountingEngine();

  CountingEngine(const CountingEngine&) = delete;
  CountingEngine& operator=(const CountingEngine&) = delete;

  /// §3.1 per-hop timeout decrement: subtract `rtt_multiple` upstream
  /// RTTs so children reply (possibly partially) before parents give up,
  /// clamped to a 10 ms floor.
  [[nodiscard]] static sim::Duration decremented_timeout(
      sim::Duration timeout, sim::Duration upstream_rtt, double rtt_multiple);

  // --- query rounds (§3.1) -------------------------------------------
  /// Open an aggregation round seeded with this router's own
  /// contribution. With no children the round resolves immediately
  /// (reply/local_done fire inline) and false is returned; otherwise the
  /// timeout timer is armed — *before* the caller fans the query out,
  /// preserving event order — and true is returned.
  bool start_round(const ip::ChannelId& channel, ecmp::CountId count_id,
                   sim::Duration timeout, std::optional<net::NodeId> requester,
                   std::uint32_t query_seq, std::int64_t local,
                   std::uint32_t children, LocalDone local_done);

  /// Absorb a child's Count reply into its pending round. Returns false
  /// for late replies after the round already timed out.
  bool absorb(const ip::ChannelId& channel, ecmp::CountId count_id,
              std::uint32_t query_seq, std::int64_t value);

  // --- proactive counting (§6) ---------------------------------------
  void enable_proactive(const ip::ChannelId& channel,
                        const counting::CurveParams& params);
  [[nodiscard]] bool proactive_enabled(const ip::ChannelId& channel) const {
    return proactive_.contains(channel);
  }
  /// Evaluate drift for a channel: true when the router should push an
  /// update Count upstream *now* (then call proactive_update_sent);
  /// otherwise the appropriate recheck timer has been (re)armed.
  bool evaluate(const ip::ChannelId& channel, std::int64_t total,
                bool validated_upstream);
  /// The aggregate just went upstream on the join path: reset the curve.
  void note_advertised(const ip::ChannelId& channel, std::int64_t total);
  /// A proactive update was sent: reset the curve and the recheck timer.
  void proactive_update_sent(const ip::ChannelId& channel, std::int64_t total);

  /// Channel torn down: drop its proactive state and recheck timer.
  void erase_channel(const ip::ChannelId& channel);

  // --- introspection -------------------------------------------------
  [[nodiscard]] std::size_t pending_rounds() const {
    return pending_.size();
  }

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] CountingStats stats() const {
    CountingStats s;
    s.rounds_started = stats_.rounds_started.value();
    s.rounds_completed = stats_.rounds_completed.value();
    s.rounds_timed_out = stats_.rounds_timed_out.value();
    s.proactive_updates_sent = stats_.proactive_updates_sent.value();
    return s;
  }

 private:
  struct PendingRound {
    ip::ChannelId channel;
    ecmp::CountId count_id = ecmp::kSubscriberId;
    std::uint32_t query_seq = 0;
    std::optional<net::NodeId> requester;  ///< upstream; nullopt = local origin
    std::int64_t sum = 0;
    std::uint32_t outstanding = 0;
    sim::Time started{0};  ///< round-latency histogram anchor
    sim::EventHandle timer;
    LocalDone local_done;
  };

  struct ProactiveChannel {
    counting::ProactiveState state;
    sim::EventHandle check;  ///< drift-recheck timer

    explicit ProactiveChannel(const counting::CurveParams& params)
        : state(params) {}
  };

  void finish_round(std::uint64_t key, bool timed_out);

  [[nodiscard]] static std::uint64_t round_key(const ip::ChannelId& channel,
                                               ecmp::CountId count_id,
                                               std::uint32_t query_seq);

  /// Registry-backed counter handles (CountingStats is assembled on
  /// demand by stats()).
  struct CountingCounters {
    obs::Counter rounds_started;
    obs::Counter rounds_completed;
    obs::Counter rounds_timed_out;
    obs::Counter proactive_updates_sent;
  };

  sim::Scheduler* scheduler_;
  ReplyFn reply_;
  RecheckFn recheck_;
  std::unordered_map<std::uint64_t, PendingRound> pending_;
  std::unordered_map<ip::ChannelId, ProactiveChannel> proactive_;
  obs::Scope scope_;
  CountingCounters stats_;
  obs::Histogram round_ns_;
};

}  // namespace express
