// The EXPRESS Forwarding Information Base.
//
// One entry per channel per on-tree router, keyed by the full (S, E)
// pair — an exact-match lookup, unlike longest-prefix unicast lookup.
// The forwarding rule (paper §3.4) is the conventional multicast fast
// path unchanged: match (S, E); if the arrival interface equals the
// entry's RPF interface, replicate to the outgoing set; otherwise drop.
// A packet matching no entry is *counted and dropped* — never sent to a
// rendezvous point (PIM-SM) or flooded (DVMRP/PIM-DM).
//
// PackedFibEntry is the paper's Fig. 5 hardware format: 12 bytes
// assuming <= 32 interfaces, the basis of the §5.1 memory-cost analysis.
//
// FlatFib is the software analogue of that hardware table: an
// open-addressed, power-of-two hash whose probe key is the packed
// 64-bit (source, dest) word — for single-source channels the high
// byte of dest is the constant 232/8 prefix, so the key is effectively
// (source 32b, dest24) as in Fig. 5. The index is two parallel flat
// arrays (key word + dense position, 12 bytes per slot, no heap nodes);
// entries themselves live contiguously in a dense vector so a lookup
// is one mix, a short linear probe, and a single indexed load.
// Deletion is tombstone-free: the index backward-shifts the probe
// chain and the dense store swap-removes.
//
// Iteration-order contract: entries() exposes the dense store, whose
// order is a deterministic function of the upsert/erase history (NOT
// sorted, NOT insertion order once erase has run). Effectful iteration
// must go through det::sorted_items — detlint enforces this, same as
// for unordered_map.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ip/channel.hpp"
#include "net/interface_set.hpp"
#include "obs/obs.hpp"

namespace express {

/// Fig. 5: | source 32b | dest 24b | iif 5b (byte here) | oifs 32b | = 12 B.
struct PackedFibEntry {
  std::uint32_t source = 0;
  std::uint8_t dest24[3] = {0, 0, 0};  ///< channel index within 232/8
  std::uint8_t iif = 0;   ///< incoming (RPF) interface, 5 bits used
  std::uint32_t oifs = 0;  ///< outgoing interface bitmap
};
static_assert(sizeof(PackedFibEntry) == 12, "Fig. 5 fixes the entry at 12 bytes");

struct FibEntry {
  std::uint32_t iif = 0;    ///< only packets arriving here are forwarded
  net::InterfaceSet oifs;   ///< replication set
};

struct FibStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;            ///< counted once per lookup() call
  std::uint64_t no_entry_drops = 0;  ///< counted-and-dropped (no match)
  std::uint64_t rpf_drops = 0;       ///< matched but wrong arrival interface
};

class FlatFib {
 public:
  /// `scope` binds the FIB's counters (express.fib.*) to an
  /// observability plane; the default resolves to the global plane
  /// under a fresh anonymous entity.
  explicit FlatFib(obs::Scope scope = {}) : scope_(scope.resolved()) {
    stats_.lookups = scope_.counter("express.fib.lookups");
    stats_.hits = scope_.counter("express.fib.hits");
    stats_.no_entry_drops = scope_.counter("express.fib.no_entry_drops");
    stats_.rpf_drops = scope_.counter("express.fib.rpf_drops");
    entries_gauge_ = scope_.gauge("express.fib.entries");
  }

  /// Insert or return the entry for `channel`. The reference (like any
  /// find() result) is invalidated by the next upsert or erase.
  FibEntry& upsert(const ip::ChannelId& channel);

  void erase(const ip::ChannelId& channel);

  /// Pure probe: never touches the stats counters, so control-plane
  /// peeks cannot inflate the hit rate (stats are per lookup(), not
  /// per probe).
  [[nodiscard]] const FibEntry* find(const ip::ChannelId& channel) const {
    const std::uint32_t slot = find_slot(key_of(channel));
    return slot == kNotFound ? nullptr : &dense_[pos_[slot]].second;
  }

  [[nodiscard]] FibEntry* find(const ip::ChannelId& channel) {
    const std::uint32_t slot = find_slot(key_of(channel));
    return slot == kNotFound ? nullptr : &dense_[pos_[slot]].second;
  }

  /// Fast-path lookup: returns the replication set when the packet
  /// should be forwarded, nullptr when it must be dropped (either no
  /// entry or RPF failure). Exactly one probe and one stats update per
  /// call, regardless of how often find() ran on the same packet.
  [[nodiscard]] const net::InterfaceSet* lookup(const ip::ChannelId& channel,
                                                std::uint32_t in_iface);

  [[nodiscard]] std::size_t size() const { return dense_.size(); }

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] FibStats stats() const {
    FibStats s;
    s.lookups = stats_.lookups.value();
    s.hits = stats_.hits.value();
    s.no_entry_drops = stats_.no_entry_drops.value();
    s.rpf_drops = stats_.rpf_drops.value();
    return s;
  }

  /// Bytes this FIB would occupy in the Fig. 5 packed format.
  [[nodiscard]] std::size_t packed_bytes() const {
    return dense_.size() * sizeof(PackedFibEntry);
  }

  /// The dense entry store, in table order (deterministic but
  /// history-dependent; see the header comment). Wrap in
  /// det::sorted_items before any effectful iteration.
  [[nodiscard]] const std::vector<std::pair<ip::ChannelId, FibEntry>>&
  entries() const {
    return dense_;
  }

 private:
  static constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};
  static constexpr std::uint32_t kNotFound = ~std::uint32_t{0};

  /// Packed probe key: | source 32b | dest 32b |. Bijective on the
  /// channel id, so slots store the key word and never re-compare ids.
  static std::uint64_t key_of(const ip::ChannelId& channel) {
    return (std::uint64_t{channel.source.value()} << 32) |
           std::uint64_t{channel.dest.value()};
  }

  /// splitmix64 finalizer — same mix as std::hash<ip::ChannelId>.
  static std::uint64_t mix(std::uint64_t key) {
    key ^= key >> 33;
    key *= 0xFF51AFD7ED558CCDull;
    key ^= key >> 33;
    key *= 0xC4CEB9FE1A85EC53ull;
    key ^= key >> 33;
    return key;
  }

  /// Linear probe for an occupied slot holding `key`.
  [[nodiscard]] std::uint32_t find_slot(std::uint64_t key) const {
    if (keys_.empty()) return kNotFound;
    std::uint64_t slot = mix(key) & mask_;
    while (keys_[slot] != kEmptySlot) {
      if (keys_[slot] == key) return static_cast<std::uint32_t>(slot);
      slot = (slot + 1) & mask_;
    }
    return kNotFound;
  }

  void grow_index();

  /// Registry-backed counter handles (FibStats is assembled on demand).
  struct FibCounters {
    obs::Counter lookups;
    obs::Counter hits;
    obs::Counter no_entry_drops;
    obs::Counter rpf_drops;
  };

  /// Dense entry store; index slots point into it by position.
  std::vector<std::pair<ip::ChannelId, FibEntry>> dense_;
  std::vector<std::uint64_t> keys_;  ///< packed key per slot, kEmptySlot if free
  std::vector<std::uint32_t> pos_;   ///< dense_ position per occupied slot
  std::uint64_t mask_ = 0;           ///< keys_.size() - 1 (power of two)
  obs::Scope scope_;
  FibCounters stats_;
  obs::Counter entries_gauge_;
};

/// The FIB used throughout the stack (forwarding plane, baselines,
/// audit). Kept as an alias so call sites read `Fib` while detlint and
/// the property tests can name the concrete container.
using Fib = FlatFib;

/// Convert a runtime entry to the Fig. 5 packed format. Requires the
/// channel to be single-source, iif < 32, and all oifs < 32.
[[nodiscard]] std::optional<PackedFibEntry> pack(const ip::ChannelId& channel,
                                                 const FibEntry& entry);

/// Reconstruct (channel, entry) from the packed form. The source address
/// round-trips exactly; the destination is rebuilt in 232/8.
[[nodiscard]] std::pair<ip::ChannelId, FibEntry> unpack(const PackedFibEntry& packed);

}  // namespace express
