// The EXPRESS Forwarding Information Base.
//
// One entry per channel per on-tree router, keyed by the full (S, E)
// pair — an exact-match lookup, unlike longest-prefix unicast lookup.
// The forwarding rule (paper §3.4) is the conventional multicast fast
// path unchanged: match (S, E); if the arrival interface equals the
// entry's RPF interface, replicate to the outgoing set; otherwise drop.
// A packet matching no entry is *counted and dropped* — never sent to a
// rendezvous point (PIM-SM) or flooded (DVMRP/PIM-DM).
//
// PackedFibEntry is the paper's Fig. 5 hardware format: 12 bytes
// assuming <= 32 interfaces, the basis of the §5.1 memory-cost analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "express/interface_set.hpp"
#include "ip/channel.hpp"

namespace express {

/// Fig. 5: | source 32b | dest 24b | iif 5b (byte here) | oifs 32b | = 12 B.
struct PackedFibEntry {
  std::uint32_t source = 0;
  std::uint8_t dest24[3] = {0, 0, 0};  ///< channel index within 232/8
  std::uint8_t iif = 0;   ///< incoming (RPF) interface, 5 bits used
  std::uint32_t oifs = 0;  ///< outgoing interface bitmap
};
static_assert(sizeof(PackedFibEntry) == 12, "Fig. 5 fixes the entry at 12 bytes");

struct FibEntry {
  std::uint32_t iif = 0;   ///< only packets arriving here are forwarded
  InterfaceSet oifs;       ///< replication set
};

struct FibStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t no_entry_drops = 0;  ///< counted-and-dropped (no match)
  std::uint64_t rpf_drops = 0;       ///< matched but wrong arrival interface
};

class Fib {
 public:
  /// Insert or overwrite the entry for `channel`.
  FibEntry& upsert(const ip::ChannelId& channel) { return entries_[channel]; }

  void erase(const ip::ChannelId& channel) { entries_.erase(channel); }

  [[nodiscard]] const FibEntry* find(const ip::ChannelId& channel) const {
    auto it = entries_.find(channel);
    return it == entries_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] FibEntry* find(const ip::ChannelId& channel) {
    auto it = entries_.find(channel);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Fast-path lookup: returns the replication set when the packet
  /// should be forwarded, nullopt when it must be dropped (either no
  /// entry or RPF failure). Updates the drop counters.
  [[nodiscard]] const InterfaceSet* lookup(const ip::ChannelId& channel,
                                           std::uint32_t in_iface);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const FibStats& stats() const { return stats_; }

  /// Bytes this FIB would occupy in the Fig. 5 packed format.
  [[nodiscard]] std::size_t packed_bytes() const {
    return entries_.size() * sizeof(PackedFibEntry);
  }

  [[nodiscard]] const std::unordered_map<ip::ChannelId, FibEntry>& entries() const {
    return entries_;
  }

 private:
  std::unordered_map<ip::ChannelId, FibEntry> entries_;
  FibStats stats_;
};

/// Convert a runtime entry to the Fig. 5 packed format. Requires the
/// channel to be single-source, iif < 32, and all oifs < 32.
[[nodiscard]] std::optional<PackedFibEntry> pack(const ip::ChannelId& channel,
                                                 const FibEntry& entry);

/// Reconstruct (channel, entry) from the packed form. The source address
/// round-trips exactly; the destination is rebuilt in 232/8.
[[nodiscard]] std::pair<ip::ChannelId, FibEntry> unpack(const PackedFibEntry& packed);

}  // namespace express
