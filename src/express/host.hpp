// The EXPRESS host stack: the paper's service interface (§2.1).
//
//   newSubscription(channel [, K])  -> result callback (ok / invalid key)
//   deleteSubscription(channel)
//   channelKey(channel, K)          -> source marks the channel authenticated
//   CountQuery(channel, countId, timeout) -> aggregated best-effort count
//
// plus channel allocation out of the host's private 2^24 space
// (§2.2.1: "each host can autonomously allocate channels", duplicates
// avoided with a local database), data transmission, subcast relaying,
// and the subscriber-side duties: answering subscriber/app CountQueries
// and receiving channel data.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ecmp/codec.hpp"
#include "ecmp/count_id.hpp"
#include "ecmp/messages.hpp"
#include "express/router.hpp"
#include "ip/channel.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace express {

struct HostStats {
  std::uint64_t data_received = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t unwanted_data = 0;  ///< channel data we never subscribed to
  std::uint64_t counts_sent = 0;
  std::uint64_t queries_answered = 0;
  std::uint64_t control_bytes_sent = 0;
};

class ExpressHost : public net::Node {
 public:
  /// Hosts are single-homed: interface 0 leads to the first-hop router.
  ExpressHost(net::Network& network, net::NodeId id);
  /// Cancels the lost-reply guard timers of still-pending count queries.
  ~ExpressHost() override;

  void handle_packet(const net::Packet& packet, std::uint32_t in_iface) override;

  // --- source-side interface ------------------------------------------
  /// Allocate the next channel from this host's private 2^24 space.
  ip::ChannelId allocate_channel();

  /// channelKey(channel, K(S,E)): inform the network that `channel` is
  /// authenticated. Only meaningful for channels this host sources.
  void channel_key(const ip::ChannelId& channel, ip::ChannelKey key);

  /// Multicast `bytes` of application data on a channel this host
  /// sources. `sequence` tags the transmission for delivery checks;
  /// `header` is an optional application header carried in the payload
  /// (the session-relay middleware uses it for its framing).
  void send(const ip::ChannelId& channel, std::uint32_t bytes,
            std::uint64_t sequence = 0,
            std::vector<std::uint8_t> header = {});

  /// Application-level unicast to another host (e.g. a secondary sender
  /// relaying through a session relay, §4.1).
  void send_app_unicast(ip::Address dest, std::uint32_t bytes,
                        std::uint64_t sequence = 0,
                        std::vector<std::uint8_t> header = {});

  /// Subcast (§2.1): unicast an encapsulated channel packet to an
  /// on-tree router, which decapsulates and forwards to the subtree.
  void subcast(const ip::ChannelId& channel, ip::Address relay_router,
               std::uint32_t bytes, std::uint64_t sequence = 0);

  /// CountQuery(channel, countId, timeout): best-effort aggregate over
  /// the channel's subscribers (or tree, for network-layer ids).
  void count_query(const ip::ChannelId& channel, ecmp::CountId count_id,
                   sim::Duration timeout,
                   std::function<void(CountResult)> done);

  /// CountQuery aimed at a remote on-tree router: the query is
  /// tunnelled IP-in-IP to `subtree_router` (subcast-style targeting,
  /// §2.1), which counts over ITS subtree only and unicasts the
  /// aggregate back. The reliable publisher uses this to size the loss
  /// subtree below a candidate repair point.
  void count_query_at(ip::Address subtree_router, const ip::ChannelId& channel,
                      ecmp::CountId count_id, sim::Duration timeout,
                      std::function<void(CountResult)> done);

  // --- subscriber-side interface --------------------------------------
  using SubscribeCallback = std::function<void(ecmp::Status)>;

  /// newSubscription(channel [, K]): request delivery of (S, E). The
  /// callback reports kOk, or kInvalidKey for a missing/improper key on
  /// an authenticated channel.
  void new_subscription(const ip::ChannelId& channel,
                        std::optional<ip::ChannelKey> key = std::nullopt,
                        SubscribeCallback done = {});

  /// deleteSubscription(channel).
  void delete_subscription(const ip::ChannelId& channel);

  [[nodiscard]] bool subscribed(const ip::ChannelId& channel) const {
    return local_count(channel) > 0;
  }

  /// Subscribing apps on this host for `channel` (0 when none) — the
  /// leaf term of the invariant auditor's count-conservation check.
  [[nodiscard]] std::int64_t local_count(const ip::ChannelId& channel) const {
    auto it = subscriptions_.find(channel);
    return it != subscriptions_.end() ? it->second.local_count : 0;
  }

  /// Application hook answering an app-defined countId (§2.2.1: e.g. a
  /// vote dialog); return nullopt to abstain (no reply; the router's
  /// timeout then yields a partial count upstream).
  void set_count_handler(ecmp::CountId count_id,
                         std::function<std::optional<std::int64_t>()> handler);

  /// Invoked for every delivered channel data packet.
  using DataHandler =
      std::function<void(const net::Packet& packet, sim::Time at)>;
  void set_data_handler(DataHandler handler) { data_handler_ = std::move(handler); }

  /// Invoked for unicast application data addressed to this host.
  void set_unicast_handler(DataHandler handler) {
    unicast_handler_ = std::move(handler);
  }

  struct Delivery {
    ip::ChannelId channel;
    std::uint64_t sequence = 0;
    std::uint32_t bytes = 0;
    sim::Time at{};
  };
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] HostStats stats() const {
    HostStats s;
    s.data_received = stats_.data_received.value();
    s.data_sent = stats_.data_sent.value();
    s.unwanted_data = stats_.unwanted_data.value();
    s.counts_sent = stats_.counts_sent.value();
    s.queries_answered = stats_.queries_answered.value();
    s.control_bytes_sent = stats_.control_bytes_sent.value();
    return s;
  }

  /// Failure injection: a silent host ignores all incoming packets (a
  /// crashed subscriber that never answers refresh queries — the case
  /// UDP-mode soft state exists to clean up, §3.2).
  void set_silent(bool silent) { silent_ = silent; }

 private:
  struct Subscription {
    std::int64_t local_count = 0;  ///< subscribing apps on this host
    std::optional<ip::ChannelKey> key;
    SubscribeCallback pending_result;
  };

  /// Registry-backed counter handles (HostStats is assembled on demand
  /// by stats()).
  struct HostCounters {
    obs::Counter data_received;
    obs::Counter data_sent;
    obs::Counter unwanted_data;
    obs::Counter counts_sent;
    obs::Counter queries_answered;
    obs::Counter control_bytes_sent;
  };

  void send_ecmp(const ecmp::Message& msg);
  /// Register a pending CountQuery callback (with its lost-reply guard
  /// timer) and return the query sequence number to send.
  std::uint32_t register_pending_query(sim::Duration timeout,
                                       std::function<void(CountResult)> done);
  void on_query(const ecmp::CountQuery& query);
  void on_count(const ecmp::Count& count);
  void on_response(const ecmp::CountResponse& response);
  [[nodiscard]] net::NodeId first_hop() const { return first_hop_; }

  net::NodeId first_hop_ = net::kInvalidNode;
  std::uint32_t next_channel_index_ = 1;  ///< local allocation database
  std::uint32_t next_query_seq_ = 1;
  std::unordered_map<ip::ChannelId, Subscription> subscriptions_;
  std::unordered_map<std::uint32_t,
                     std::pair<std::function<void(CountResult)>, sim::EventHandle>>
      pending_queries_;
  std::unordered_map<ecmp::CountId,
                     std::function<std::optional<std::int64_t>()>>
      count_handlers_;
  DataHandler data_handler_;
  DataHandler unicast_handler_;
  std::vector<Delivery> deliveries_;
  obs::Scope scope_;
  HostCounters stats_;
  bool silent_ = false;
  bool on_lan_ = false;  ///< first hop is a shared-media segment
};

}  // namespace express
