// ExpressRouter reactions to environment events — transport timers
// (UDP soft-state refresh, neighbor death) and unicast route changes —
// as opposed to the protocol message path in router.cpp.
#include <optional>
#include <utility>
#include <vector>

#include "express/router.hpp"
#include "net/adjacency.hpp"
#include "sim/det.hpp"

namespace express {

// ---------------------------------------------------------------------
// Transport reactions
// ---------------------------------------------------------------------

bool ExpressRouter::udp_refresh_round() {
  const std::vector<UdpAction> actions = table_.udp_refresh_actions(
      network(), id(), network().now(), transport_.policy().udp_lifetime(),
      [this](std::uint32_t iface) {
        return transport_.mode(iface) == ecmp::Mode::kUdp;
      });
  for (const UdpAction& action : actions) {
    switch (action.kind) {
      case UdpAction::Kind::kUnicastQuery:
        // A dead neighbor (chaos router death, downed link) cannot
        // answer: skip the query instead of leaking refresh bytes onto
        // the dead link. The entry still ages out via kExpire.
        if (!neighbor_reachable(action.neighbor)) break;
        send_query(action.neighbor, action.channel, ecmp::kSubscriberId,
                   transport_.policy().udp_reply_timeout(), 0);
        break;
      case UdpAction::Kind::kLanQuery:
        transport_.send_lan_query(
            action.iface,
            ecmp::CountQuery{action.channel, ecmp::kSubscriberId,
                             transport_.policy().udp_reply_timeout(), 0});
        break;
      case UdpAction::Kind::kExpire:
        apply_subscriber_count(action.channel, action.neighbor, action.iface,
                               0, std::nullopt);
        break;
    }
  }
  // An empty action list means no downstream entry lives on a UDP
  // interface: tell the transport to let the refresh clock run dry.
  return !actions.empty();
}

void ExpressRouter::neighbor_died(net::NodeId neighbor) {
  // §3.2 TCP mode: the count associated with a failed connection is
  // subtracted from the sum provided upstream.
  std::vector<ip::ChannelId> affected;
  // The zero-counts below mutate tree state and send prunes upstream in
  // `affected` order: collect it sorted, not in hash order.
  for (const auto* kv : det::sorted_items(table_.channels())) {
    if (kv->second.downstream.contains(neighbor)) {
      affected.push_back(kv->first);
    }
  }
  for (const ip::ChannelId& channel : affected) {
    auto iface = network().topology().interface_to(id(), neighbor);
    if (!iface) {
      // The adjacency no longer knows this neighbor (link removed before
      // the death fired). Applying the zero-count with a made-up
      // interface would mutate the wrong interface's state; leave the
      // entry for soft-state expiry / reconnection to settle instead.
      unresolved_neighbor_updates_.inc();
      continue;
    }
    apply_subscriber_count(channel, neighbor, *iface, 0, std::nullopt);
  }
}

// ---------------------------------------------------------------------
// Route changes (§3.2)
// ---------------------------------------------------------------------

void ExpressRouter::on_routing_change() {
  // First, drop downstream entries whose link died (connection reset).
  for (const auto& [channel, neighbor] :
       table_.collect_dead_children(network(), id())) {
    auto iface = net::iface_toward(network(), id(), neighbor);
    if (!iface) {
      // No interface resolves toward the child (e.g. a LAN host whose
      // hub link died): skip rather than misattribute the zero-count to
      // interface 0 — UDP soft state expires the entry if the outage
      // persists, and a heal leaves the subscription intact.
      unresolved_neighbor_updates_.inc();
      continue;
    }
    apply_subscriber_count(channel, neighbor, *iface, 0, std::nullopt);
  }

  // Then re-evaluate the upstream of every remaining channel, with
  // hysteresis to damp oscillation (§3.2). The loop body sends Counts
  // and arms hysteresis timers, so it must run in channel order; the
  // snapshot also keeps the sweep safe when a re-announce empties and
  // removes a channel mid-iteration.
  for (auto* kv : det::sorted_items(table_.channels())) {
    auto& [channel, state] = *kv;
    const net::NodeId src = source_node(channel);
    if (src == net::kInvalidNode) continue;

    // A dead upstream link resets the ECMP connection: the peer is
    // subtracting our count right now, so our advertisement is void.
    if (state.upstream != net::kInvalidNode &&
        state.advertised_upstream > 0) {
      auto up_iface = network().topology().interface_to(id(), state.upstream);
      if (up_iface) {
        const net::LinkId link =
            network().topology().node(id()).interfaces.at(*up_iface);
        if (!network().topology().link(link).up) {
          state.advertised_upstream = 0;
        }
      }
    }

    auto new_up = network().routing().rpf_neighbor(id(), src);
    if (!new_up || *new_up == state.upstream) {
      if (auto it = pending_switches_.find(channel);
          it != pending_switches_.end()) {
        it->second.cancel();
        pending_switches_.erase(it);
      }
      // Connection re-established with the same upstream after an
      // outage: re-announce (§3.2 unsolicited Counts on establishment).
      if (new_up && state.advertised_upstream == 0 &&
          state.subtree_count() > 0) {
        update_upstream(channel, state, state.cached_key);
      }
      continue;
    }
    sim::EventHandle& handle = pending_switches_[channel];
    if (handle.pending()) continue;  // already scheduled
    const ip::ChannelId ch = channel;
    handle = network().scheduler().schedule_after(
        config_.route_change_hysteresis,
        [this, ch]() { execute_route_switch(ch); });
  }
}

void ExpressRouter::execute_route_switch(const ip::ChannelId& channel) {
  pending_switches_.erase(channel);
  Channel* state = table_.find(channel);
  if (state == nullptr) return;
  const net::NodeId src = source_node(channel);
  if (src == net::kInvalidNode) return;
  auto up = network().routing().rpf_neighbor(id(), src);
  if (!up || *up == state->upstream) return;  // flap settled; stay put

  const bool old_is_router =
      state->upstream != net::kInvalidNode &&
      network().topology().node(state->upstream).kind == net::NodeKind::kRouter;
  const RouteSwitch sw = table_.apply_route_switch(
      channel, *up, network().routing().rpf_interface(id(), src),
      old_is_router);
  // Zero Count to the old upstream, current Count to the new.
  if (sw.prune_old) send_count(sw.old_upstream, channel, 0, std::nullopt);
  refresh_fib(channel, *state);
  if (sw.total > 0) {
    update_upstream(channel, *state, state->cached_key);
  } else {
    remove_channel(channel);
  }
}

}  // namespace express
