#include "express/host.hpp"

#include <stdexcept>

#include "sim/det.hpp"

namespace express {

ExpressHost::ExpressHost(net::Network& network, net::NodeId id)
    : net::Node(network, id) {
  const auto& info = network.topology().node(id);
  if (info.kind != net::NodeKind::kHost) {
    throw std::logic_error("ExpressHost attached to a non-host node");
  }
  if (info.interfaces.size() != 1) {
    throw std::logic_error("hosts are single-homed in this simulator");
  }
  first_hop_ = network.topology().neighbor_via(id, 0);
  on_lan_ = network.topology().node(first_hop_).kind == net::NodeKind::kLanHub;
  scope_ = network.node_scope(id);
  stats_.data_received = scope_.counter("express.host.data_received");
  stats_.data_sent = scope_.counter("express.host.data_sent");
  stats_.unwanted_data = scope_.counter("express.host.unwanted_data");
  stats_.counts_sent = scope_.counter("express.host.counts_sent");
  stats_.queries_answered = scope_.counter("express.host.queries_answered");
  stats_.control_bytes_sent =
      scope_.counter("express.host.control_bytes_sent");
}

ExpressHost::~ExpressHost() {
  // lint: order-independent (timer cancellations commute)
  for (auto& [seq, pending] : pending_queries_) pending.second.cancel();
}

// ---------------------------------------------------------------------
// Source side
// ---------------------------------------------------------------------

ip::ChannelId ExpressHost::allocate_channel() {
  // §2.2.1: allocation is purely host-local; the OS database is this
  // counter, and 2^24 channels are available before exhaustion.
  if (next_channel_index_ >= (1U << 24)) {
    throw std::runtime_error("per-host channel space exhausted");
  }
  return ip::ChannelId{address(),
                       ip::Address::single_source(next_channel_index_++)};
}

void ExpressHost::channel_key(const ip::ChannelId& channel, ip::ChannelKey key) {
  ecmp::KeyRegister msg;
  msg.channel = channel;
  msg.key = key;
  send_ecmp(msg);
}

void ExpressHost::send(const ip::ChannelId& channel, std::uint32_t bytes,
                       std::uint64_t sequence,
                       std::vector<std::uint8_t> header) {
  if (channel.source != address()) {
    throw std::logic_error("only the designated source may send to a channel");
  }
  net::Packet packet;
  packet.src = address();
  packet.dst = channel.dest;
  packet.protocol = ip::Protocol::kUdp;
  packet.data_bytes = bytes;
  packet.sequence = sequence;
  packet.payload = std::move(header);
  stats_.data_sent.inc();
  network().send_on_interface(id(), 0, std::move(packet));
}

void ExpressHost::send_app_unicast(ip::Address dest, std::uint32_t bytes,
                                   std::uint64_t sequence,
                                   std::vector<std::uint8_t> header) {
  net::Packet packet;
  packet.src = address();
  packet.dst = dest;
  packet.protocol = ip::Protocol::kUdp;
  packet.data_bytes = bytes;
  packet.sequence = sequence;
  packet.payload = std::move(header);
  network().send_unicast(id(), std::move(packet));
}

void ExpressHost::subcast(const ip::ChannelId& channel, ip::Address relay_router,
                          std::uint32_t bytes, std::uint64_t sequence) {
  if (channel.source != address()) {
    throw std::logic_error("only the channel source may subcast");
  }
  auto inner = std::make_shared<net::Packet>();
  inner->src = address();
  inner->dst = channel.dest;
  inner->protocol = ip::Protocol::kUdp;
  inner->data_bytes = bytes;
  inner->sequence = sequence;

  net::Packet outer;
  outer.src = address();
  outer.dst = relay_router;
  outer.protocol = ip::Protocol::kIpInIp;
  outer.inner = std::move(inner);
  stats_.data_sent.inc();
  network().send_unicast(id(), std::move(outer));
}

std::uint32_t ExpressHost::register_pending_query(
    sim::Duration timeout, std::function<void(CountResult)> done) {
  const std::uint32_t seq = next_query_seq_++;
  // Safety net: if the reply is lost (e.g. first-hop link failure),
  // resolve locally with a zero partial result after a grace period.
  auto guard = network().scheduler().schedule_after(
      timeout + timeout / 2 + sim::seconds(1), [this, seq]() {
        auto it = pending_queries_.find(seq);
        if (it == pending_queries_.end()) return;
        auto cb = std::move(it->second.first);
        pending_queries_.erase(it);
        if (cb) cb(CountResult{0, false});
      });
  pending_queries_.emplace(seq, std::make_pair(std::move(done), guard));
  return seq;
}

void ExpressHost::count_query(const ip::ChannelId& channel,
                              ecmp::CountId count_id, sim::Duration timeout,
                              std::function<void(CountResult)> done) {
  const std::uint32_t seq = register_pending_query(timeout, std::move(done));
  ecmp::CountQuery query;
  query.channel = channel;
  query.count_id = count_id;
  query.timeout = timeout;
  query.query_seq = seq;
  send_ecmp(query);
}

void ExpressHost::count_query_at(ip::Address subtree_router,
                                 const ip::ChannelId& channel,
                                 ecmp::CountId count_id, sim::Duration timeout,
                                 std::function<void(CountResult)> done) {
  const std::uint32_t seq = register_pending_query(timeout, std::move(done));
  ecmp::CountQuery query;
  query.channel = channel;
  query.count_id = count_id;
  query.timeout = timeout;
  query.query_seq = seq;

  // Tunnel the query to the target router like a subcast (§2.1): the
  // outer source must equal the inner source for the router to accept.
  auto inner = std::make_shared<net::Packet>();
  inner->src = address();
  inner->dst = subtree_router;
  inner->protocol = ip::Protocol::kEcmp;
  inner->payload = ecmp::encode(ecmp::Message{query});
  stats_.control_bytes_sent.add(inner->payload.size());

  net::Packet outer;
  outer.src = address();
  outer.dst = subtree_router;
  outer.protocol = ip::Protocol::kIpInIp;
  outer.inner = std::move(inner);
  network().send_unicast(id(), std::move(outer));
}

// ---------------------------------------------------------------------
// Subscriber side
// ---------------------------------------------------------------------

void ExpressHost::new_subscription(const ip::ChannelId& channel,
                                   std::optional<ip::ChannelKey> key,
                                   SubscribeCallback done) {
  Subscription& sub = subscriptions_[channel];
  ++sub.local_count;
  if (key) sub.key = key;
  if (sub.local_count == 1) {
    sub.pending_result = std::move(done);
  } else if (done) {
    // Additional local app: the network already delivers here.
    done(ecmp::Status::kOk);
  }

  // Announce the (possibly updated) local subscriber count so the
  // first-hop router's per-interface count stays exact (§3.2).
  ecmp::Count join;
  join.channel = channel;
  join.count = sub.local_count;
  join.key = sub.key;
  stats_.counts_sent.inc();
  scope_.emit(network().now(), obs::TraceType::kSubscriptionChange,
              channel.packed(), static_cast<std::uint64_t>(sub.local_count));
  send_ecmp(join);
}

void ExpressHost::delete_subscription(const ip::ChannelId& channel) {
  auto it = subscriptions_.find(channel);
  if (it == subscriptions_.end() || it->second.local_count == 0) return;
  ecmp::Count update;
  update.channel = channel;
  update.count = --it->second.local_count;
  if (update.count > 0) {
    update.key = it->second.key;  // other local apps remain; refresh count
  } else {
    subscriptions_.erase(it);
  }
  stats_.counts_sent.inc();
  scope_.emit(network().now(), obs::TraceType::kSubscriptionChange,
              channel.packed(), static_cast<std::uint64_t>(update.count));
  send_ecmp(update);
}

void ExpressHost::set_count_handler(
    ecmp::CountId count_id,
    std::function<std::optional<std::int64_t>()> handler) {
  count_handlers_[count_id] = std::move(handler);
}

// ---------------------------------------------------------------------
// Packet handling
// ---------------------------------------------------------------------

void ExpressHost::handle_packet(const net::Packet& packet,
                                std::uint32_t in_iface) {
  (void)in_iface;
  if (silent_) return;
  if (packet.protocol == ip::Protocol::kEcmp) {
    // On shared media we also hear frames meant for others: accept only
    // our unicast address or the well-known ECMP group.
    if (packet.dst != address() && packet.dst != ip::kEcmpAllRouters) return;
    for (const ecmp::Message& msg : ecmp::decode_all(packet.payload)) {
      std::visit(
          [&](const auto& m) {
            using T = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<T, ecmp::CountQuery>) {
              on_query(m);
            } else if constexpr (std::is_same_v<T, ecmp::Count>) {
              on_count(m);
            } else if constexpr (std::is_same_v<T, ecmp::CountResponse>) {
              on_response(m);
            }
            // KeyRegister is host->router only; ignore.
          },
          msg);
    }
    return;
  }

  if (packet.dst == address()) {
    if (unicast_handler_) unicast_handler_(packet, network().now());
    return;
  }

  if (packet.dst.is_single_source()) {
    const ip::ChannelId channel{packet.src, packet.dst};
    if (!subscribed(channel)) {
      if (on_lan_) return;  // normal on shared media: the NIC filters
      // On a point-to-point access link the channel model guarantees we
      // only receive from sources we designated; count any violation
      // (tests assert zero).
      stats_.unwanted_data.inc();
      return;
    }
    stats_.data_received.inc();
    deliveries_.push_back(Delivery{channel, packet.sequence, packet.data_bytes,
                                   network().now()});
    if (data_handler_) data_handler_(packet, network().now());
  }
}

void ExpressHost::on_query(const ecmp::CountQuery& query) {
  if (query.count_id == ecmp::kNeighborsId) {
    ecmp::Count reply;
    reply.channel = query.channel;
    reply.count_id = ecmp::kNeighborsId;
    reply.count = 1;
    reply.query_seq = query.query_seq;
    stats_.counts_sent.inc();
    send_ecmp(reply);
    return;
  }

  if (query.count_id == ecmp::kAllChannelsId) {
    // General query: re-announce every active subscription (§3.3), in
    // channel order so the Count burst is reproducible on the wire.
    for (const auto* kv : det::sorted_items(subscriptions_)) {
      const auto& [channel, sub] = *kv;
      if (sub.local_count == 0) continue;
      ecmp::Count count;
      count.channel = channel;
      count.count = sub.local_count;
      count.key = sub.key;
      stats_.counts_sent.inc();
      send_ecmp(count);
    }
    return;
  }

  if (query.count_id == ecmp::kSubscriberId) {
    auto it = subscriptions_.find(query.channel);
    const std::int64_t value =
        it == subscriptions_.end() ? 0 : it->second.local_count;
    if (query.query_seq == 0 && value == 0) return;  // nothing to refresh
    ecmp::Count reply;
    reply.channel = query.channel;
    reply.count_id = ecmp::kSubscriberId;
    reply.count = value;
    reply.query_seq = query.query_seq;
    if (query.query_seq == 0 && it != subscriptions_.end()) {
      reply.key = it->second.key;  // refresh keeps the key alive
    }
    stats_.counts_sent.inc();
    stats_.queries_answered.inc();
    send_ecmp(reply);
    return;
  }

  if (ecmp::is_app_count(query.count_id)) {
    // §3.1: the OS forwards app-defined queries to the application.
    auto handler = count_handlers_.find(query.count_id);
    if (handler == count_handlers_.end()) return;  // abstain
    auto value = handler->second();
    if (!value) return;  // application declined to answer
    ecmp::Count reply;
    reply.channel = query.channel;
    reply.count_id = query.count_id;
    reply.count = *value;
    reply.query_seq = query.query_seq;
    stats_.counts_sent.inc();
    stats_.queries_answered.inc();
    send_ecmp(reply);
  }
}

void ExpressHost::on_count(const ecmp::Count& count) {
  if (count.query_seq == 0) return;
  auto it = pending_queries_.find(count.query_seq);
  if (it == pending_queries_.end()) return;
  auto cb = std::move(it->second.first);
  it->second.second.cancel();
  pending_queries_.erase(it);
  if (cb) cb(CountResult{count.count, true});
}

void ExpressHost::on_response(const ecmp::CountResponse& response) {
  auto it = subscriptions_.find(response.channel);
  if (it == subscriptions_.end()) {
    return;  // e.g. ack of a channelKey registration
  }
  if (response.status == ecmp::Status::kInvalidKey) {
    SubscribeCallback cb = std::move(it->second.pending_result);
    subscriptions_.erase(it);
    if (cb) cb(ecmp::Status::kInvalidKey);
    return;
  }
  if (it->second.pending_result) {
    SubscribeCallback cb = std::move(it->second.pending_result);
    it->second.pending_result = {};
    cb(response.status);
  }
}

void ExpressHost::send_ecmp(const ecmp::Message& msg) {
  net::Packet packet;
  packet.src = address();
  // On a point-to-point access link the peer is the router; on a shared
  // LAN the hub repeats to everyone, so control goes to the well-known
  // ECMP address (§3.2) and the router picks it up.
  packet.dst = on_lan_ ? ip::kEcmpAllRouters
                       : network().topology().node(first_hop_).address;
  packet.protocol = ip::Protocol::kEcmp;
  packet.payload = ecmp::encode(msg);
  stats_.control_bytes_sent.add(packet.payload.size());
  network().send_on_interface(id(), 0, std::move(packet));
}

}  // namespace express
