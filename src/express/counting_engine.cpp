#include "express/counting_engine.hpp"

#include <algorithm>
#include <chrono>
#include <functional>

namespace express {

namespace {

constexpr sim::Duration kMinQueryTimeout = sim::milliseconds(10);

}  // namespace

CountingEngine::~CountingEngine() {
  // lint: order-independent (timer cancellations commute)
  for (auto& [key, round] : pending_) round.timer.cancel();
  // lint: order-independent (timer cancellations commute)
  for (auto& [channel, p] : proactive_) p.check.cancel();
}

sim::Duration CountingEngine::decremented_timeout(sim::Duration timeout,
                                                  sim::Duration upstream_rtt,
                                                  double rtt_multiple) {
  sim::Duration remaining =
      timeout - std::chrono::duration_cast<sim::Duration>(upstream_rtt *
                                                          rtt_multiple);
  return std::max(remaining, kMinQueryTimeout);
}

bool CountingEngine::start_round(const ip::ChannelId& channel,
                                 ecmp::CountId count_id, sim::Duration timeout,
                                 std::optional<net::NodeId> requester,
                                 std::uint32_t query_seq, std::int64_t local,
                                 std::uint32_t children, LocalDone local_done) {
  if (children == 0) {
    if (requester) {
      reply_(*requester, channel, count_id, local, query_seq);
    } else if (local_done) {
      local_done(CountResult{local, true});
    }
    return false;
  }
  const std::uint64_t key = round_key(channel, count_id, query_seq);
  PendingRound& round = pending_[key];
  round.channel = channel;
  round.count_id = count_id;
  round.query_seq = query_seq;
  round.requester = requester;
  round.sum = local;
  round.outstanding = children;
  round.started = scheduler_->now();
  round.local_done = std::move(local_done);
  round.timer = scheduler_->schedule_after(
      timeout, [this, key]() { finish_round(key, true); });
  stats_.rounds_started.inc();
  scope_.emit(round.started, obs::TraceType::kCountRoundStart, channel.packed(),
              query_seq, children);
  return true;
}

bool CountingEngine::absorb(const ip::ChannelId& channel,
                            ecmp::CountId count_id, std::uint32_t query_seq,
                            std::int64_t value) {
  const std::uint64_t key = round_key(channel, count_id, query_seq);
  auto it = pending_.find(key);
  if (it == pending_.end()) return false;  // late reply after timeout
  it->second.sum += value;
  if (--it->second.outstanding == 0) finish_round(key, false);
  return true;
}

void CountingEngine::finish_round(std::uint64_t key, bool timed_out) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingRound round = std::move(it->second);
  pending_.erase(it);
  round.timer.cancel();
  if (timed_out) {
    stats_.rounds_timed_out.inc();
  } else {
    stats_.rounds_completed.inc();
  }
  const sim::Time now = scheduler_->now();
  round_ns_.observe(static_cast<std::uint64_t>((now - round.started).count()));
  scope_.emit(now, obs::TraceType::kCountRoundEnd, round.channel.packed(),
              round.query_seq, timed_out ? 1 : 0);

  if (round.requester) {
    // Partial or complete, the sum goes upstream (§3.1: a router that
    // times out sends a partial reply before its parent times out).
    reply_(*round.requester, round.channel, round.count_id, round.sum,
           round.query_seq);
  } else if (round.local_done) {
    round.local_done(CountResult{round.sum, !timed_out});
  }
}

void CountingEngine::enable_proactive(const ip::ChannelId& channel,
                                      const counting::CurveParams& params) {
  proactive_.try_emplace(channel, params);
}

bool CountingEngine::evaluate(const ip::ChannelId& channel, std::int64_t total,
                              bool validated_upstream) {
  auto it = proactive_.find(channel);
  if (it == proactive_.end()) return false;
  ProactiveChannel& p = it->second;
  if (total == 0) return false;  // handled by the prune path
  const sim::Time now = scheduler_->now();
  if (!validated_upstream) {
    // Hold updates until the join is accepted; re-check shortly.
    p.check.cancel();
    p.check = scheduler_->schedule_after(
        sim::milliseconds(100), [this, channel]() { recheck_(channel); });
    return false;
  }
  if (p.state.should_send(total, now)) return true;
  // Drift exists but is tolerated for now; re-check when the decaying
  // tolerance crosses the current drift (always within tau of the last
  // update). Arrivals in between re-evaluate and pull the check earlier.
  p.check.cancel();
  if (auto delay = p.state.next_send_delay(total, now)) {
    p.check = scheduler_->schedule_after(
        *delay + sim::microseconds(1), [this, channel]() { recheck_(channel); });
  }
  return false;
}

void CountingEngine::note_advertised(const ip::ChannelId& channel,
                                     std::int64_t total) {
  auto it = proactive_.find(channel);
  if (it == proactive_.end()) return;
  it->second.state.mark_sent(total, scheduler_->now());
}

void CountingEngine::proactive_update_sent(const ip::ChannelId& channel,
                                           std::int64_t total) {
  auto it = proactive_.find(channel);
  if (it == proactive_.end()) return;
  stats_.proactive_updates_sent.inc();
  it->second.state.mark_sent(total, scheduler_->now());
  it->second.check.cancel();
}

void CountingEngine::erase_channel(const ip::ChannelId& channel) {
  auto it = proactive_.find(channel);
  if (it == proactive_.end()) return;
  it->second.check.cancel();
  proactive_.erase(it);
}

std::uint64_t CountingEngine::round_key(const ip::ChannelId& channel,
                                        ecmp::CountId count_id,
                                        std::uint32_t query_seq) {
  std::uint64_t x = std::hash<ip::ChannelId>{}(channel);
  x ^= (static_cast<std::uint64_t>(count_id) << 32) ^ query_seq;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x;
}

}  // namespace express
