// Backup session relays (§4.2).
//
// "An application can select to use additional backup SRs for fault-
// tolerance, controlling their number, placement, and switch-over
// policy." StandbyCluster pairs a primary SR with a backup: the backup
// host subscribes to the primary channel, watches heartbeats, and
// activates its own relay when the primary goes silent. Participants
// fail over independently (hot: already subscribed; cold: subscribe on
// detection).
#pragma once

#include <optional>

#include "relay/participant.hpp"
#include "relay/session_relay.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace express::relay {

struct StandbyConfig {
  std::uint32_t activate_after_missed = 3;
  sim::Duration heartbeat_interval = sim::seconds(1);
};

class StandbyCluster {
 public:
  /// `backup_host` must be a different host than the primary SR's; it
  /// runs `backup` (inactive) and promotes it on primary failure.
  StandbyCluster(SessionRelay& primary, SessionRelay& backup,
                 ExpressHost& backup_host, StandbyConfig config = {});
  ~StandbyCluster() { stop(); }

  [[nodiscard]] bool backup_active() const { return backup_.active(); }
  [[nodiscard]] std::optional<sim::Time> promoted_at() const {
    return promoted_at_;
  }

  /// Start monitoring (subscribes the backup host to the primary channel).
  void start();
  /// Stop monitoring: cancels the watchdog timer (promotion no longer
  /// fires). Idempotent; also runs on destruction.
  void stop() { timer_.cancel(); }

 private:
  void arm_timer();
  void promote();

  SessionRelay& primary_;
  SessionRelay& backup_;
  ExpressHost& backup_host_;
  StandbyConfig config_;
  std::optional<sim::Time> promoted_at_;
  sim::EventHandle timer_;
};

}  // namespace express::relay
