// Participant middleware for SR-based sessions (§4.1/§4.2).
//
// Wraps a receiver host: subscribes to the session channel(s), parses
// relay frames, tracks the floor, monitors SR heartbeats, and fails
// over to a backup channel — pre-subscribed ("hot") or subscribed on
// failure ("cold"), the two standby options the paper names.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "express/host.hpp"
#include "ip/channel.hpp"
#include "net/packet.hpp"
#include "relay/wire.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace express::relay {

enum class StandbyMode : std::uint8_t { kNone, kHot, kCold };

struct ParticipantConfig {
  StandbyMode standby = StandbyMode::kNone;
  /// Heartbeats missed before declaring the primary SR dead.
  std::uint32_t failover_after_missed = 3;
  sim::Duration heartbeat_interval = sim::seconds(1);
};

struct SessionDelivery {
  ip::Address speaker;        ///< original sender, per the relay frame
  std::uint64_t relay_seq = 0;
  std::uint32_t bytes = 0;
  sim::Time at{};
  bool via_backup = false;
};

class Participant {
 public:
  Participant(ExpressHost& host, ip::ChannelId primary,
              ip::Address primary_sr,
              std::optional<ip::ChannelId> backup = std::nullopt,
              std::optional<ip::Address> backup_sr = std::nullopt,
              ParticipantConfig config = {});

  /// Subscribe to the session (and the backup channel in hot standby).
  void join();
  void leave();

  /// Unicast a data frame to the currently active SR.
  void speak(std::uint32_t bytes);
  void request_floor();
  void release_floor();

  // --- §4.1 direct-channel switchover -------------------------------
  /// For a secondary sender "going to transmit for an extended period":
  /// allocate an own channel and ask the SR to announce it to the
  /// session. Other participants with auto-subscribe (default) join it.
  ip::ChannelId create_direct_channel();
  /// Transmit on the direct channel created above (bypasses the SR).
  void send_direct(std::uint32_t bytes, std::uint64_t app_seq = 0);
  /// Opt out of automatically joining announced direct channels.
  void set_auto_subscribe(bool enabled) { auto_subscribe_ = enabled; }
  [[nodiscard]] const std::vector<ip::ChannelId>& announced_channels() const {
    return announced_;
  }

  [[nodiscard]] bool has_floor() const {
    return floor_holder_ == host_.address();
  }
  [[nodiscard]] std::optional<ip::Address> floor_holder() const {
    return floor_holder_;
  }
  [[nodiscard]] const std::vector<SessionDelivery>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] bool failed_over() const { return failed_over_; }
  [[nodiscard]] std::optional<sim::Time> failover_at() const {
    return failover_at_;
  }
  /// Gap detection over relay sequence numbers (§4.2 reliable relaying).
  [[nodiscard]] std::vector<std::uint64_t> missing_seqs() const;
  [[nodiscard]] bool received_seq(std::uint64_t seq) const {
    return seen_seqs_.contains(seq);
  }

 private:
  void on_channel_data(const net::Packet& packet, sim::Time at);
  void arm_failover_timer();
  void fail_over();
  [[nodiscard]] ip::Address active_sr() const {
    return failed_over_ && backup_sr_ ? *backup_sr_ : primary_sr_;
  }

  ExpressHost& host_;
  ip::ChannelId primary_;
  ip::Address primary_sr_;
  std::optional<ip::ChannelId> backup_;
  std::optional<ip::Address> backup_sr_;
  ParticipantConfig config_;

  bool joined_ = false;
  bool failed_over_ = false;
  bool auto_subscribe_ = true;
  std::optional<sim::Time> failover_at_;
  std::optional<ip::Address> floor_holder_;
  std::optional<ip::ChannelId> direct_channel_;  ///< this host's own (§4.1)
  std::vector<ip::ChannelId> announced_;         ///< channels the SR announced
  std::uint64_t direct_seq_ = 1;
  std::vector<SessionDelivery> deliveries_;
  std::set<std::uint64_t> seen_seqs_;
  sim::EventHandle failover_timer_;
};

}  // namespace express::relay
