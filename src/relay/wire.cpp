#include "relay/wire.hpp"

namespace express::relay {

std::vector<std::uint8_t> encode(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(Frame::kSize);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  const std::uint32_t addr = frame.speaker.value();
  out.push_back(static_cast<std::uint8_t>(addr >> 24));
  out.push_back(static_cast<std::uint8_t>((addr >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((addr >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(addr & 0xFF));
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>((frame.relay_seq >> shift) & 0xFF));
  }
  return out;
}

std::optional<Frame> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < Frame::kSize) return std::nullopt;
  const std::uint8_t type = bytes[0];
  if (type < 1 ||
      type > static_cast<std::uint8_t>(FrameType::kChannelAnnounce)) {
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.speaker = ip::Address{(std::uint32_t{bytes[1]} << 24) |
                              (std::uint32_t{bytes[2]} << 16) |
                              (std::uint32_t{bytes[3]} << 8) |
                              std::uint32_t{bytes[4]}};
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    seq = (seq << 8) | bytes[static_cast<std::size_t>(5 + i)];
  }
  frame.relay_seq = seq;
  return frame;
}

Frame make_channel_announce(const ip::ChannelId& channel) {
  Frame frame;
  frame.type = FrameType::kChannelAnnounce;
  frame.speaker = channel.source;
  frame.relay_seq = channel.dest.channel_index();
  return frame;
}

ip::ChannelId announced_channel(const Frame& frame) {
  return ip::ChannelId{
      frame.speaker,
      ip::Address::single_source(static_cast<std::uint32_t>(frame.relay_seq))};
}

}  // namespace express::relay
