// Session monitoring over ECMP counting — the RTCP replacement (§4.5).
//
// "Many uses of RTCP, such as measuring group size and average loss
// rate, are readily implemented with the CountQuery mechanism." The
// monitor runs at the session source (or SR): it periodically collects
// the subscriber count and the sum of participants' loss reports
// (missing relay sequence numbers), with none of RTCP's multi-sender
// rate-sharing machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ecmp/count_id.hpp"
#include "express/host.hpp"
#include "ip/channel.hpp"
#include "relay/participant.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace express::relay {

/// App-defined countId carrying each participant's cumulative loss
/// count (number of missing relay sequence numbers).
inline constexpr ecmp::CountId kLossReportId = ecmp::kAppRangeBegin + 0x100;

/// Register the loss-report responder on a participant's host so the
/// monitor's queries see its gap count.
void enable_loss_reports(Participant& participant, ExpressHost& host);

class SessionMonitor {
 public:
  struct Sample {
    sim::Time at{};
    std::int64_t group_size = 0;
    std::int64_t total_losses = 0;
    bool complete = true;
  };

  SessionMonitor(ExpressHost& source_host, ip::ChannelId channel)
      : host_(source_host), channel_(channel) {}

  /// One measurement round: group size, then losses; `done` fires when
  /// both aggregates are in.
  void poll(sim::Duration timeout, std::function<void(Sample)> done);

  /// Sample every `interval` until the session ends; results accumulate
  /// in samples().
  void start_periodic(sim::Duration interval, sim::Duration timeout);
  void stop() { periodic_.cancel(); }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

 private:
  ExpressHost& host_;
  ip::ChannelId channel_;
  std::vector<Sample> samples_;
  sim::EventHandle periodic_;
};

}  // namespace express::relay
