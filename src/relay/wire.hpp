// Session-relay framing (§4.1).
//
// The SR speaks two ways: unicast control/data from participants to the
// relay host, and relayed frames multicast on the SR's EXPRESS channel.
// Every frame carries the original sender and the SR-assigned sequence
// number (§4.2: "the SR can add sequence numbers to relayed packets, as
// required in reliable multicast protocols").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ip/address.hpp"
#include "ip/channel.hpp"

namespace express::relay {

enum class FrameType : std::uint8_t {
  kData = 1,            ///< relayed application data
  kHeartbeat = 2,       ///< SR liveness beacon on the channel
  kFloorRequest = 3,    ///< participant -> SR
  kFloorGrant = 4,      ///< SR -> channel: `speaker` holds the floor
  kFloorRelease = 5,    ///< participant -> SR
  kFloorDeny = 6,       ///< SR -> channel (or implied): request refused
  /// §4.1 alternative to pure relaying: a long-running secondary sender
  /// creates its own channel and "uses the SR to ask all other session
  /// participants to subscribe to the new channel". `speaker` is the
  /// new channel's source S; `relay_seq`'s low 24 bits are E's index.
  kChannelAnnounce = 7,
};

struct Frame {
  FrameType type = FrameType::kData;
  ip::Address speaker;          ///< original sender / floor subject
  std::uint64_t relay_seq = 0;  ///< SR-assigned sequence number

  static constexpr std::size_t kSize = 13;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const Frame& frame);
[[nodiscard]] std::optional<Frame> decode(std::span<const std::uint8_t> bytes);

/// Pack / unpack the announced channel of a kChannelAnnounce frame.
[[nodiscard]] Frame make_channel_announce(const ip::ChannelId& channel);
[[nodiscard]] ip::ChannelId announced_channel(const Frame& frame);

}  // namespace express::relay
