#include "relay/monitor.hpp"

#include <memory>

namespace express::relay {

void enable_loss_reports(Participant& participant, ExpressHost& host) {
  host.set_count_handler(kLossReportId, [&participant]() {
    return std::optional<std::int64_t>(
        static_cast<std::int64_t>(participant.missing_seqs().size()));
  });
}

void SessionMonitor::poll(sim::Duration timeout,
                          std::function<void(Sample)> done) {
  auto sample = std::make_shared<Sample>();
  sample->at = host_.network().now();
  auto pending = std::make_shared<int>(2);
  auto finish = [done = std::move(done), sample, pending]() {
    if (--*pending == 0 && done) done(*sample);
  };
  host_.count_query(channel_, ecmp::kSubscriberId, timeout,
                    [sample, finish](CountResult r) {
                      sample->group_size = r.count;
                      sample->complete = sample->complete && r.complete;
                      finish();
                    });
  host_.count_query(channel_, kLossReportId, timeout,
                    [sample, finish](CountResult r) {
                      sample->total_losses = r.count;
                      sample->complete = sample->complete && r.complete;
                      finish();
                    });
}

void SessionMonitor::start_periodic(sim::Duration interval,
                                    sim::Duration timeout) {
  periodic_ = host_.network().scheduler().schedule_after(
      interval, [this, interval, timeout]() {
        poll(timeout, [this](Sample s) { samples_.push_back(s); });
        start_periodic(interval, timeout);
      });
}

}  // namespace express::relay
