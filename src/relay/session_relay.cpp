#include "relay/session_relay.hpp"

namespace express::relay {

SessionRelay::SessionRelay(ExpressHost& host, RelayConfig config)
    : host_(host), config_(config), channel_(host.allocate_channel()),
      scope_(obs::Scope{&host.network().obs(),
                        obs::Entity::relay(host.id())}) {
  stats_.frames_relayed = scope_.counter("relay.frames_relayed");
  stats_.dropped_unauthorized = scope_.counter("relay.dropped_unauthorized");
  stats_.dropped_no_floor = scope_.counter("relay.dropped_no_floor");
  stats_.floor_grants = scope_.counter("relay.floor_grants");
  stats_.floor_denials = scope_.counter("relay.floor_denials");
  stats_.heartbeats_sent = scope_.counter("relay.heartbeats_sent");
  stats_.channels_announced = scope_.counter("relay.channels_announced");
  host_.set_unicast_handler(
      [this](const net::Packet& packet, sim::Time) { on_unicast(packet); });
}

void SessionRelay::start() {
  active_ = true;
  heartbeat();
}

void SessionRelay::stop() {
  active_ = false;
  heartbeat_timer_.cancel();
}

void SessionRelay::heartbeat() {
  if (!active_) return;
  Frame beat;
  beat.type = FrameType::kHeartbeat;
  beat.speaker = host_.address();
  beat.relay_seq = next_seq_++;
  host_.send(channel_, 0, beat.relay_seq, encode(beat));
  stats_.heartbeats_sent.inc();
  heartbeat_timer_ = host_.network().scheduler().schedule_after(
      config_.heartbeat_interval, [this]() { heartbeat(); });
}

void SessionRelay::send_as_primary(std::uint32_t bytes, std::uint64_t app_seq) {
  (void)app_seq;
  if (!active_) return;
  relay_frame(host_.address(), bytes);
}

void SessionRelay::relay_frame(ip::Address original_sender,
                               std::uint32_t bytes) {
  Frame frame;
  frame.type = FrameType::kData;
  frame.speaker = original_sender;
  frame.relay_seq = next_data_seq_++;
  host_.send(channel_, bytes, frame.relay_seq, encode(frame));
  stats_.frames_relayed.inc();
}

void SessionRelay::announce(FrameType type, ip::Address speaker) {
  Frame frame;
  frame.type = type;
  frame.speaker = speaker;
  frame.relay_seq = next_seq_++;
  host_.send(channel_, 0, frame.relay_seq, encode(frame));
}

void SessionRelay::grant_next_floor() {
  floor_holder_.reset();
  while (!floor_queue_.empty()) {
    const ip::Address next = floor_queue_.front();
    floor_queue_.pop_front();
    std::uint32_t& used = grants_used_[next];
    if (used >= config_.max_floor_grants_per_member) {
      stats_.floor_denials.inc();
      announce(FrameType::kFloorDeny, next);
      continue;
    }
    ++used;
    floor_holder_ = next;
    stats_.floor_grants.inc();
    announce(FrameType::kFloorGrant, next);
    return;
  }
}

void SessionRelay::on_unicast(const net::Packet& packet) {
  if (!active_) return;
  auto frame = decode(packet.payload);
  if (!frame) return;

  if (!authorized(packet.src)) {
    // §4.1: "the application can strictly monitor and control the
    // traffic over the multicast channel" — unlike an RP or core.
    stats_.dropped_unauthorized.inc();
    scope_.emit(host_.network().now(), obs::TraceType::kPacketDropped,
                static_cast<std::uint64_t>(obs::DropReason::kPolicy),
                packet.wire_size());
    return;
  }

  switch (frame->type) {
    case FrameType::kData: {
      if (config_.floor_control && floor_holder_ != packet.src) {
        stats_.dropped_no_floor.inc();
        scope_.emit(host_.network().now(), obs::TraceType::kPacketDropped,
                    static_cast<std::uint64_t>(obs::DropReason::kPolicy),
                    packet.wire_size());
        return;
      }
      relay_frame(packet.src, packet.data_bytes);
      return;
    }
    case FrameType::kFloorRequest: {
      floor_queue_.push_back(packet.src);
      if (!floor_holder_) grant_next_floor();
      return;
    }
    case FrameType::kFloorRelease: {
      if (floor_holder_ == packet.src) grant_next_floor();
      return;
    }
    case FrameType::kChannelAnnounce: {
      // §4.1: a long-running secondary sender created its own channel
      // and asks the SR to tell everyone to subscribe. Only the channel
      // source itself may request the announcement.
      if (frame->speaker != packet.src) return;
      Frame announce = *frame;
      host_.send(channel_, 0, next_seq_++, encode(announce));
      stats_.channels_announced.inc();
      return;
    }
    case FrameType::kHeartbeat:
    case FrameType::kFloorGrant:
    case FrameType::kFloorDeny:
      return;  // channel-direction frames are not valid upstream
  }
}

}  // namespace express::relay
