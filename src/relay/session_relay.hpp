// The session relay (§4.1): application-level rendezvous for almost-
// single-source sessions.
//
// The SR host sources the EXPRESS channel (SR, E) every participant
// subscribes to. Secondary senders unicast their frames to the SR,
// which enforces access control and floor control ("an intelligent
// audience microphone", §4.2), stamps relay sequence numbers, and
// multicasts on the channel. Unlike a PIM-SM rendezvous point or CBT
// core, all of this policy lives in the application: placement, backup
// (hot/cold standby), who may speak, and how often.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "express/host.hpp"
#include "ip/channel.hpp"
#include "net/packet.hpp"
#include "obs/obs.hpp"
#include "relay/wire.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace express::relay {

struct RelayConfig {
  /// Require authorize() before a sender's frames are relayed.
  bool access_control = true;
  /// Serialize speakers: only the floor holder's data is relayed.
  bool floor_control = false;
  /// §4.2: "no member disrupts the session with excessive questions".
  std::uint32_t max_floor_grants_per_member = 1000;
  /// Liveness beacons multicast on the channel (standby failover cue).
  sim::Duration heartbeat_interval = sim::seconds(1);
};

struct RelayStats {
  std::uint64_t frames_relayed = 0;
  std::uint64_t dropped_unauthorized = 0;
  std::uint64_t dropped_no_floor = 0;
  std::uint64_t floor_grants = 0;
  std::uint64_t floor_denials = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t channels_announced = 0;  ///< §4.1 direct-channel switchovers
};

class SessionRelay {
 public:
  /// Takes over the host's unicast handler and allocates the session
  /// channel from the host's channel space.
  SessionRelay(ExpressHost& host, RelayConfig config = {});

  [[nodiscard]] const ip::ChannelId& channel() const { return channel_; }

  /// The relay's host stack — lets session middleware compose with the
  /// reliable layer (e.g. a reliable::Publisher sourcing the session
  /// channel through the relay host).
  [[nodiscard]] ExpressHost& host() { return host_; }

  /// Thin view over the registry slots (see DESIGN.md §11).
  [[nodiscard]] RelayStats stats() const {
    RelayStats s;
    s.frames_relayed = stats_.frames_relayed.value();
    s.dropped_unauthorized = stats_.dropped_unauthorized.value();
    s.dropped_no_floor = stats_.dropped_no_floor.value();
    s.floor_grants = stats_.floor_grants.value();
    s.floor_denials = stats_.floor_denials.value();
    s.heartbeats_sent = stats_.heartbeats_sent.value();
    s.channels_announced = stats_.channels_announced.value();
    return s;
  }
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::optional<ip::Address> floor_holder() const {
    return floor_holder_;
  }

  /// Begin heartbeating and relaying.
  void start();

  /// Simulate SR failure (or graceful shutdown): stops heartbeats and
  /// relaying. A standby cluster detects this via heartbeat loss.
  void stop();

  void authorize(ip::Address sender) { authorized_.insert(sender); }
  void revoke(ip::Address sender) { authorized_.erase(sender); }
  [[nodiscard]] bool authorized(ip::Address sender) const {
    return !config_.access_control || authorized_.contains(sender);
  }

  /// The SR host speaking as the primary source (§4.1: the lecturer
  /// "either resides on the SR or relays its packets to it").
  void send_as_primary(std::uint32_t bytes, std::uint64_t app_seq = 0);

  /// Next sequence number for *data* frames (contiguous, so receivers
  /// detect losses by gaps); control frames use a separate space.
  [[nodiscard]] std::uint64_t next_data_seq() const { return next_data_seq_; }

 private:
  void on_unicast(const net::Packet& packet);
  void relay_frame(ip::Address original_sender, std::uint32_t bytes);
  void grant_next_floor();
  void announce(FrameType type, ip::Address speaker);
  void heartbeat();

  /// Registry-backed counter handles (RelayStats is assembled on demand
  /// by stats()).
  struct RelayCounters {
    obs::Counter frames_relayed;
    obs::Counter dropped_unauthorized;
    obs::Counter dropped_no_floor;
    obs::Counter floor_grants;
    obs::Counter floor_denials;
    obs::Counter heartbeats_sent;
    obs::Counter channels_announced;
  };

  ExpressHost& host_;
  RelayConfig config_;
  ip::ChannelId channel_;
  obs::Scope scope_;
  RelayCounters stats_;
  bool active_ = false;
  std::uint64_t next_seq_ = 1;       ///< control frames (heartbeat, floor)
  std::uint64_t next_data_seq_ = 1;  ///< relayed data, gap-detectable
  std::unordered_set<ip::Address> authorized_;
  std::optional<ip::Address> floor_holder_;
  std::deque<ip::Address> floor_queue_;
  std::unordered_map<ip::Address, std::uint32_t> grants_used_;
  sim::EventHandle heartbeat_timer_;
};

}  // namespace express::relay
