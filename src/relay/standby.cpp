#include "relay/standby.hpp"

namespace express::relay {

StandbyCluster::StandbyCluster(SessionRelay& primary, SessionRelay& backup,
                               ExpressHost& backup_host, StandbyConfig config)
    : primary_(primary),
      backup_(backup),
      backup_host_(backup_host),
      config_(config) {}

void StandbyCluster::start() {
  backup_host_.new_subscription(primary_.channel());
  backup_host_.set_data_handler([this](const net::Packet& packet, sim::Time) {
    const ip::ChannelId from{packet.src, packet.dst};
    if (from == primary_.channel() && !backup_.active()) arm_timer();
  });
  arm_timer();
}

void StandbyCluster::arm_timer() {
  timer_.cancel();
  timer_ = backup_host_.network().scheduler().schedule_after(
      config_.heartbeat_interval * config_.activate_after_missed +
          config_.heartbeat_interval / 2,
      [this]() { promote(); });
}

void StandbyCluster::promote() {
  if (backup_.active()) return;
  promoted_at_ = backup_host_.network().now();
  backup_.start();
}

}  // namespace express::relay
