#include "relay/participant.hpp"

#include <algorithm>

namespace express::relay {

Participant::Participant(ExpressHost& host, ip::ChannelId primary,
                         ip::Address primary_sr,
                         std::optional<ip::ChannelId> backup,
                         std::optional<ip::Address> backup_sr,
                         ParticipantConfig config)
    : host_(host),
      primary_(primary),
      primary_sr_(primary_sr),
      backup_(backup),
      backup_sr_(backup_sr),
      config_(config) {
  host_.set_data_handler(
      [this](const net::Packet& packet, sim::Time at) {
        on_channel_data(packet, at);
      });
}

void Participant::join() {
  joined_ = true;
  host_.new_subscription(primary_);
  if (config_.standby == StandbyMode::kHot && backup_) {
    // Hot standby (§4.2): pre-subscribe for fast fail-over, paying the
    // second channel's state while the primary is healthy.
    host_.new_subscription(*backup_);
  }
  arm_failover_timer();
}

void Participant::leave() {
  joined_ = false;
  failover_timer_.cancel();
  host_.delete_subscription(primary_);
  if (backup_ && (config_.standby == StandbyMode::kHot || failed_over_)) {
    host_.delete_subscription(*backup_);
  }
}

void Participant::speak(std::uint32_t bytes) {
  Frame frame;
  frame.type = FrameType::kData;
  frame.speaker = host_.address();
  host_.send_app_unicast(active_sr(), bytes, 0, encode(frame));
}

void Participant::request_floor() {
  Frame frame;
  frame.type = FrameType::kFloorRequest;
  frame.speaker = host_.address();
  host_.send_app_unicast(active_sr(), 0, 0, encode(frame));
}

void Participant::release_floor() {
  Frame frame;
  frame.type = FrameType::kFloorRelease;
  frame.speaker = host_.address();
  host_.send_app_unicast(active_sr(), 0, 0, encode(frame));
}

ip::ChannelId Participant::create_direct_channel() {
  direct_channel_ = host_.allocate_channel();
  Frame request = make_channel_announce(*direct_channel_);
  host_.send_app_unicast(active_sr(), 0, 0, encode(request));
  return *direct_channel_;
}

void Participant::send_direct(std::uint32_t bytes, std::uint64_t app_seq) {
  (void)app_seq;
  if (!direct_channel_) return;
  Frame frame;
  frame.type = FrameType::kData;
  frame.speaker = host_.address();
  frame.relay_seq = direct_seq_++;
  host_.send(*direct_channel_, bytes, frame.relay_seq, encode(frame));
}

void Participant::arm_failover_timer() {
  if (config_.standby == StandbyMode::kNone || !backup_) return;
  failover_timer_.cancel();
  failover_timer_ = host_.network().scheduler().schedule_after(
      config_.heartbeat_interval * config_.failover_after_missed +
          config_.heartbeat_interval / 2,
      [this]() { fail_over(); });
}

void Participant::fail_over() {
  if (!joined_ || failed_over_ || !backup_) return;
  failed_over_ = true;
  failover_at_ = host_.network().now();
  if (config_.standby == StandbyMode::kCold) {
    // Cold standby: the backup channel is only set up now.
    host_.new_subscription(*backup_);
  }
}

std::vector<std::uint64_t> Participant::missing_seqs() const {
  std::vector<std::uint64_t> missing;
  if (seen_seqs_.empty()) return missing;
  std::uint64_t expected = *seen_seqs_.begin();
  for (std::uint64_t seq : seen_seqs_) {
    while (expected < seq) missing.push_back(expected++);
    expected = seq + 1;
  }
  return missing;
}

void Participant::on_channel_data(const net::Packet& packet, sim::Time at) {
  const ip::ChannelId from{packet.src, packet.dst};
  const bool via_backup = backup_ && from == *backup_;
  const bool via_direct =
      std::find(announced_.begin(), announced_.end(), from) != announced_.end();
  if (from != primary_ && !via_backup && !via_direct) return;

  auto frame = decode(packet.payload);
  if (!frame) return;

  if (via_direct) {
    // Direct-channel traffic: record like relayed data (the sequence
    // space is the direct sender's own).
    if (frame->type == FrameType::kData) {
      deliveries_.push_back(SessionDelivery{frame->speaker, frame->relay_seq,
                                            packet.data_bytes, at, false});
    }
    return;
  }

  if (!via_backup) {
    // Any primary-channel frame proves the SR is alive.
    arm_failover_timer();
  }

  switch (frame->type) {
    case FrameType::kData:
      seen_seqs_.insert(frame->relay_seq);
      deliveries_.push_back(SessionDelivery{frame->speaker, frame->relay_seq,
                                            packet.data_bytes, at, via_backup});
      return;
    case FrameType::kHeartbeat:
      return;  // timer already re-armed above
    case FrameType::kFloorGrant:
      floor_holder_ = frame->speaker;
      return;
    case FrameType::kFloorDeny:
      if (floor_holder_ == frame->speaker) floor_holder_.reset();
      return;
    case FrameType::kChannelAnnounce: {
      const ip::ChannelId direct = announced_channel(*frame);
      if (direct.source == host_.address()) return;  // our own announce
      announced_.push_back(direct);
      if (auto_subscribe_) host_.new_subscription(direct);
      return;
    }
    case FrameType::kFloorRequest:
    case FrameType::kFloorRelease:
      return;  // participant-direction frames; ignore on the channel
  }
}

}  // namespace express::relay
