// Proactive-counting error-tolerance curves (paper §6, Fig. 7).
//
// Instead of the source polling, routers push a Count upstream whenever
// the drift between the current subtree count and the last advertised
// value exceeds a tolerance that *decays with time since the last
// update*:
//
//     e(dt) = e_max * (-ln(dt / tau)) / alpha      (0 beyond tau)
//
// tau is the x-intercept — the maximum delay until any change is
// transmitted upstream; alpha controls the decay rate, and e_max scales
// the curve (the error tolerated one "decay unit" before tau). The
// curve diverges as dt -> 0: immediately after an update even large
// drift is briefly tolerated, which is what batches burst arrivals into
// few messages — the inverse crossing time tau * exp(-alpha*e/e_max)
// shrinks rapidly with the drift, so large changes still propagate in
// sub-second time while a slow trickle is batched. This uncapped
// reading reproduces Fig. 8's ~2/3 bandwidth ratio between alpha = 2.5
// and alpha = 4; see EXPERIMENTS.md for the interpretation notes.
#pragma once

#include <optional>

#include "sim/time.hpp"

namespace express::counting {

struct CurveParams {
  double e_max = 0.3;        ///< error scale of the curve
  double tau_seconds = 120;  ///< x-intercept: max delay before any change is sent
  double alpha = 4.0;        ///< decay rate (paper compares 4 vs 2.5)
};

class ErrorCurve {
 public:
  constexpr explicit ErrorCurve(CurveParams params = {}) : params_(params) {}

  [[nodiscard]] const CurveParams& params() const { return params_; }

  /// Tolerated relative error `dt` seconds after the last update.
  [[nodiscard]] double tolerance(double dt_seconds) const;

  /// Smallest dt at which an error of magnitude `error` is no longer
  /// tolerated: dt* = tau * exp(-alpha * error / e_max), which decays
  /// toward 0 for large errors; error <= 0 returns tau.
  [[nodiscard]] double time_until_send(double error) const;

 private:
  CurveParams params_;
};

/// Relative drift between the advertised and current count, computed as
/// the paper's §4.1 drift relative to the advertised value:
/// |current - advertised| / |advertised|. Transitions *from* zero (the
/// parent believes nothing is there) have unbounded relative error and
/// are reported as +infinity; drift toward zero is 1.0, the full
/// advertised value.
[[nodiscard]] double relative_error(std::int64_t advertised, std::int64_t current);

/// Per-(channel, countId) proactive bookkeeping at one router: when to
/// push and when to re-check.
class ProactiveState {
 public:
  explicit ProactiveState(CurveParams params) : curve_(params) {}

  /// True if the drift from `current` at time `now` exceeds tolerance.
  [[nodiscard]] bool should_send(std::int64_t current, sim::Time now) const;

  /// Remaining time until the decaying tolerance crosses the *current*
  /// drift — when the update is due if nothing else changes. Always
  /// <= tau from the last send, so any change is flushed within tau.
  /// alpha batches: a lower alpha keeps tolerance higher for longer, so
  /// more arrivals accumulate into one update. nullopt when no drift.
  [[nodiscard]] std::optional<sim::Duration> next_send_delay(
      std::int64_t current, sim::Time now) const;

  /// Record that `value` was advertised upstream at `now`.
  void mark_sent(std::int64_t value, sim::Time now) {
    advertised_ = value;
    last_sent_ = now;
    ever_sent_ = true;
  }

  [[nodiscard]] std::int64_t advertised() const { return advertised_; }

 private:
  ErrorCurve curve_;
  std::int64_t advertised_ = 0;
  sim::Time last_sent_{0};
  bool ever_sent_ = false;
};

}  // namespace express::counting
