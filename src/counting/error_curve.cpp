#include "counting/error_curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace express::counting {

double ErrorCurve::tolerance(double dt_seconds) const {
  if (dt_seconds <= 0) return std::numeric_limits<double>::infinity();
  if (dt_seconds >= params_.tau_seconds) return 0.0;
  return params_.e_max * (-std::log(dt_seconds / params_.tau_seconds)) /
         params_.alpha;
}

double ErrorCurve::time_until_send(double error) const {
  if (error <= 0) return params_.tau_seconds;
  return params_.tau_seconds * std::exp(-params_.alpha * error / params_.e_max);
}

double relative_error(std::int64_t advertised, std::int64_t current) {
  if (advertised == current) return 0.0;
  // §4.1 measures drift relative to the value the parent still holds —
  // the *advertised* count. Dividing by min(|advertised|, |current|)
  // made the error asymmetric: a shrinking count looked larger than the
  // same-sized growth and over-triggered proactive updates.
  if (advertised == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(std::llabs(current - advertised)) /
         static_cast<double>(std::llabs(advertised));
}

bool ProactiveState::should_send(std::int64_t current, sim::Time now) const {
  if (!ever_sent_) return current != 0;
  const double err = relative_error(advertised_, current);
  if (err == 0.0) return false;
  const double dt = sim::to_seconds(now - last_sent_);
  return err > curve_.tolerance(dt);
}

std::optional<sim::Duration> ProactiveState::next_send_delay(
    std::int64_t current, sim::Time now) const {
  if (!ever_sent_) {
    return current != 0 ? std::optional<sim::Duration>(sim::Duration{0})
                        : std::nullopt;
  }
  const double err = relative_error(advertised_, current);
  if (err == 0.0) return std::nullopt;
  const double due = curve_.time_until_send(err);  // <= tau by construction
  const double remaining = due - sim::to_seconds(now - last_sent_);
  return sim::seconds_f(std::max(remaining, 0.0));
}

}  // namespace express::counting
