// §5.2: management-level (process/DRAM, non-fast-path) state per channel.
//
// Each count activity record is [channel, countId, count] ~16 bytes,
// doubled to 32 to allow for implementation fields. With average fanout
// 2 there are three records per channel (two children + one upstream),
// two count activities outstanding, plus 8 bytes for a cached K(S,E):
// 32 * 3 * 2 + 8 = 200 bytes per channel of cheap DRAM.
#pragma once

namespace express::costmodel {

struct MgmtCostParams {
  double record_bytes = 32;      ///< 16B logical record, doubled for impl fields
  double average_fanout = 2;     ///< records = fanout + 1 (upstream)
  double outstanding_counts = 2; ///< concurrent count activities per channel
  double key_bytes = 8;          ///< cached K(S,E)
  /// $1 per megabyte of DRAM (paper's price point).
  double memory_cost_per_byte = 1.0 / (1024.0 * 1024.0);
  double router_lifetime_seconds = 31'536'000.0;
};

[[nodiscard]] constexpr double bytes_per_channel(const MgmtCostParams& p = {}) {
  return p.record_bytes * (p.average_fanout + 1) * p.outstanding_counts +
         p.key_bytes;
}

/// Dollar cost of one channel's management state for the router's
/// lifetime (the paper: "less than 1/50th of a cent").
[[nodiscard]] constexpr double channel_lifetime_cost(
    const MgmtCostParams& p = {}) {
  return bytes_per_channel(p) * p.memory_cost_per_byte;
}

}  // namespace express::costmodel
