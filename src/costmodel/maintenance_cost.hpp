// §5.3 / §6: the cost of maintaining channel state, analytically.
//
// The paper's million-channel scenario: a core router carrying C active
// channels of lifetime L with average fanout f receives 2f Count events
// per channel per lifetime (a subscribe and an unsubscribe from each
// child) and sends 2 (its own join and leave upstream). At C = 1e6,
// L = 20 min, f = 2 that is 3,333 receives + 1,667 sends ≈ 5,000 events
// per second, and — at 16 bytes per Count, 92 per 1480-byte segment —
// about 424 kb/s of inbound control traffic.
#pragma once

#include <cstddef>

namespace express::costmodel {

struct MaintenanceParams {
  double active_channels = 1'000'000;
  double channel_lifetime_seconds = 1200;  ///< 20-minute sessions
  double average_fanout = 2;
  double count_message_bytes = 16;  ///< unsolicited Count, no key (codec-checked)
  double segment_bytes = 1480;      ///< Ethernet MSS
};

struct MaintenanceLoad {
  double events_received_per_second = 0;
  double events_sent_per_second = 0;
  double total_events_per_second = 0;
  double segments_received_per_second = 0;
  double control_bits_received_per_second = 0;
  double messages_per_segment = 0;
};

[[nodiscard]] constexpr MaintenanceLoad maintenance_load(
    const MaintenanceParams& p = {}) {
  MaintenanceLoad out;
  // Each channel contributes one subscribe + one unsubscribe per child
  // per lifetime inbound, and one join + one leave outbound.
  out.events_received_per_second =
      p.active_channels * 2 * p.average_fanout / p.channel_lifetime_seconds;
  out.events_sent_per_second =
      p.active_channels * 2 / p.channel_lifetime_seconds;
  out.total_events_per_second =
      out.events_received_per_second + out.events_sent_per_second;
  out.messages_per_segment = p.segment_bytes / p.count_message_bytes;
  out.segments_received_per_second =
      out.events_received_per_second /
      static_cast<double>(static_cast<long long>(out.messages_per_segment));
  out.control_bits_received_per_second =
      out.segments_received_per_second * p.segment_bytes * 8;
  return out;
}

/// CPU utilization implied by an event rate and a measured per-event
/// cycle cost (the paper's 4,500 ev/s at 3,500 cycles -> 4% of a 400 MHz
/// Pentium-II; we report the same formula against today's measurement).
[[nodiscard]] constexpr double cpu_utilization(double events_per_second,
                                               double cycles_per_event,
                                               double cpu_hz) {
  return events_per_second * cycles_per_event / cpu_hz;
}

}  // namespace express::costmodel
