// Fig. 6: the FIB memory cost model, plus the §5.1 worked examples.
//
//   p_sr = m * e * t_s / (t_r * u)
//
// m = FIB memory purchase cost per byte, e = bytes per entry, t_s =
// session duration, t_r = router lifetime, u = FIB utilization. The 1/u
// term charges each active session a share of the headroom the FIB must
// keep for peak demand. A session spanning k channels with n receivers
// each h hops from the source occupies at most k*n*h entries network-wide
// (the star-topology worst case; sharing in the tree only lowers it).
#pragma once

#include <cstdint>

namespace express::costmodel {

struct FibCostParams {
  /// $55 per megabyte of 4ns SRAM (the paper's early-1998 quote [17]).
  double memory_cost_per_byte = 55.0 / (1024.0 * 1024.0);
  /// Fig. 5 packed entry.
  double bytes_per_entry = 12.0;
  /// One-year router lifetime (31,536,000 seconds).
  double router_lifetime_seconds = 31'536'000.0;
  /// 1% average FIB utilization (the paper's conservative estimate).
  double utilization = 0.01;
};

/// Cost of one FIB entry held for `session_seconds` (the model's p_sr).
[[nodiscard]] constexpr double entry_cost(const FibCostParams& p,
                                          double session_seconds) {
  return p.memory_cost_per_byte * p.bytes_per_entry * session_seconds /
         (p.router_lifetime_seconds * p.utilization);
}

/// Upper bound on FIB entries a k-channel, n-receiver, h-hop session
/// occupies across the network (no-sharing star worst case).
[[nodiscard]] constexpr double session_entries(double channels, double receivers,
                                               double hops) {
  return channels * receivers * hops;
}

/// Total network-wide FIB cost of a session (the paper's c_s bound).
[[nodiscard]] constexpr double session_cost(const FibCostParams& p,
                                            double channels, double receivers,
                                            double hops,
                                            double session_seconds) {
  return session_entries(channels, receivers, hops) *
         entry_cost(p, session_seconds);
}

/// §5.1 example 1: fully-meshed 10-way conference, 10 channels, 25-hop
/// paths, 20 minutes. The paper derives <= $0.075 total.
[[nodiscard]] constexpr double ten_way_conference_cost(
    const FibCostParams& p = {}) {
  return session_cost(p, /*channels=*/10, /*receivers=*/10, /*hops=*/25,
                      /*session_seconds=*/1200);
}

/// §5.1 example 2: long-running stock ticker, 100,000 subscribers, ~2
/// tree links per subscriber (fanout 1-2 at depth 25) -> ~200,000 FIB
/// entries held for a full year.
struct StockTickerExample {
  double entries = 200'000;
  double yearly_cost = 0;
  double cost_per_subscriber = 0;
};

[[nodiscard]] constexpr StockTickerExample stock_ticker_cost(
    const FibCostParams& p = {}, double subscribers = 100'000,
    double entries = 200'000) {
  StockTickerExample out;
  out.entries = entries;
  out.yearly_cost = entries * entry_cost(p, p.router_lifetime_seconds);
  out.cost_per_subscriber = out.yearly_cost / subscribers;
  return out;
}

}  // namespace express::costmodel
