// §6: counting overhead — polled vs proactive.
//
// Polling a mostly-quiescent channel touches every router and subscriber
// each round: one CountQuery down and one Count up per tree edge. The
// proactive scheme instead sends a Count only when drift exceeds the
// error-tolerance curve, so its cost tracks membership *change* rather
// than membership *size*. These helpers quantify both so the Fig. 8 /
// §6 bench can print the comparison the paper argues qualitatively.
#pragma once

namespace express::costmodel {

struct PollingParams {
  double tree_edges = 0;        ///< router-router + router-host tree links
  double poll_period_seconds = 300;  ///< e.g. sample every 5 minutes (§6)
  double query_bytes = 20;
  double count_bytes = 20;  ///< query replies carry a 4-byte sequence
};

struct PollingLoad {
  double messages_per_round = 0;
  double messages_per_second = 0;
  double bytes_per_second = 0;
};

[[nodiscard]] constexpr PollingLoad polling_load(const PollingParams& p) {
  PollingLoad out;
  // One query down and one aggregated count up per tree edge per round.
  out.messages_per_round = 2 * p.tree_edges;
  out.messages_per_second = out.messages_per_round / p.poll_period_seconds;
  out.bytes_per_second =
      p.tree_edges * (p.query_bytes + p.count_bytes) / p.poll_period_seconds;
  return out;
}

/// A 90-minute movie sampled every `period` seconds (the paper's
/// charging example): total polling messages over the showing.
[[nodiscard]] constexpr double movie_poll_messages(double tree_edges,
                                                   double period_seconds = 300,
                                                   double movie_seconds = 5400) {
  return 2 * tree_edges * (movie_seconds / period_seconds);
}

}  // namespace express::costmodel
