#include "audit/invariants.hpp"

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "express/host.hpp"
#include "express/router.hpp"
#include "express/subscription.hpp"
#include "net/adjacency.hpp"
#include "net/network.hpp"
#include "sim/det.hpp"

namespace express::audit {

namespace {

struct Walk {
  const net::Network* network = nullptr;
  // Ordered maps: the walk appends violations while it iterates, and a
  // reproducible audit report is itself one of the guarantees under test.
  std::map<net::NodeId, const ExpressRouter*> routers;
  std::map<net::NodeId, const ExpressHost*> hosts;
  AuditReport report;

  void flag(Check check, net::NodeId router, const ip::ChannelId& channel,
            std::string detail) {
    report.violations.push_back(Violation{check, router, channel,
                                          std::move(detail),
                                          network->obs().trace.next_index()});
  }
};

bool is_router_node(const net::Network& network, net::NodeId id) {
  return network.topology().node(id).kind == net::NodeKind::kRouter;
}

/// Mirror of ExpressRouter::at_root: the router is the channel's
/// validation authority / tree root when the source is unresolvable,
/// directly attached (upstream is a non-router), or unroutable.
bool at_root(const Walk& w, net::NodeId self, const ip::ChannelId& channel,
             const Channel& state) {
  const auto src = w.network->node_of(channel.source);
  if (!src) return true;
  if (state.upstream != net::kInvalidNode &&
      !is_router_node(*w.network, state.upstream)) {
    return true;
  }
  return w.network->routing().rpf_neighbor(self, *src) == std::nullopt;
}

// --- (a) count conservation ------------------------------------------

void check_conservation(Walk& w, net::NodeId self, const ExpressRouter& router,
                        const ip::ChannelId& channel, const Channel& state) {
  // Parent side: each downstream entry must restate what the child
  // itself currently claims.
  for (const auto& [neighbor, entry] : state.downstream) {
    ++w.report.edges_checked;
    if (auto it = w.routers.find(neighbor); it != w.routers.end()) {
      const Channel* child = it->second->subscriptions().find(channel);
      if (child == nullptr) {
        w.flag(Check::kCountConservation, self, channel,
               "downstream entry for router " + std::to_string(neighbor) +
                   " (count " + std::to_string(entry.count) +
                   ") but the child is off-tree");
        continue;
      }
      if (child->upstream != self) {
        w.flag(Check::kCountConservation, self, channel,
               "downstream entry for router " + std::to_string(neighbor) +
                   " whose upstream is " + std::to_string(child->upstream) +
                   ", not this router");
        continue;
      }
      if (child->advertised_upstream != entry.count) {
        w.flag(Check::kCountConservation, self, channel,
               "recorded count " + std::to_string(entry.count) +
                   " for router " + std::to_string(neighbor) +
                   " != child's advertised " +
                   std::to_string(child->advertised_upstream));
      }
    } else if (auto ht = w.hosts.find(neighbor); ht != w.hosts.end()) {
      const std::int64_t local = ht->second->local_count(channel);
      if (local != entry.count) {
        w.flag(Check::kCountConservation, self, channel,
               "recorded count " + std::to_string(entry.count) + " for host " +
                   std::to_string(neighbor) + " != host's local count " +
                   std::to_string(local));
      }
    }
  }

  // Child side: what this router advertised upstream must be recorded
  // there (a stale parent entry is caught above; a *missing* one here).
  const bool upstream_is_router = state.upstream != net::kInvalidNode &&
                                  is_router_node(*w.network, state.upstream);
  if (upstream_is_router && state.advertised_upstream > 0) {
    if (auto it = w.routers.find(state.upstream); it != w.routers.end()) {
      const Channel* parent = it->second->subscriptions().find(channel);
      if (parent == nullptr || !parent->downstream.contains(self)) {
        w.flag(Check::kCountConservation, self, channel,
               "advertised " + std::to_string(state.advertised_upstream) +
                   " to router " + std::to_string(state.upstream) +
                   " which has no matching downstream entry");
      }
    }
  }

  // The advertisement itself: sign-consistent with the subtree sum
  // always; exactly equal when drift is pushed proactively (§6) —
  // without proactive counting, non-zero -> non-zero drift is
  // legitimately never sent (§3.2 only signals 0 <-> non-zero).
  if (!at_root(w, self, channel, state) && upstream_is_router) {
    const std::int64_t subtree = state.subtree_count();
    if ((state.advertised_upstream > 0) != (subtree > 0)) {
      w.flag(Check::kCountConservation, self, channel,
             "advertised " + std::to_string(state.advertised_upstream) +
                 " upstream but subtree count is " + std::to_string(subtree));
    } else if (router.config().proactive &&
               state.advertised_upstream != subtree) {
      w.flag(Check::kCountConservation, self, channel,
             "proactive mode: advertised " +
                 std::to_string(state.advertised_upstream) +
                 " != subtree count " + std::to_string(subtree));
    }
  }
}

// --- (b) RPF consistency ---------------------------------------------

void check_rpf(Walk& w, net::NodeId self, const ExpressRouter& router,
               const ip::ChannelId& channel, const Channel& state) {
  // Hysteresis (§3.2) intentionally delays the switch; an unsettled
  // router is not in violation yet.
  if (router.pending_route_switches() > 0) return;
  const auto src = w.network->node_of(channel.source);
  if (!src) return;
  const auto rpf = w.network->routing().rpf_neighbor(self, *src);
  if (!rpf) return;  // source unreachable: nothing to agree with
  if (state.upstream != net::kInvalidNode && state.upstream != *rpf) {
    w.flag(Check::kRpfConsistency, self, channel,
           "upstream is " + std::to_string(state.upstream) +
               " but RPF neighbor toward the source is " +
               std::to_string(*rpf));
  }
}

// --- (c) orphan forwarding state -------------------------------------

void check_orphans(Walk& w, net::NodeId self, const ExpressRouter& router) {
  for (const auto* kv : det::sorted_items(router.subscriptions().channels())) {
    const auto& [channel, state] = *kv;
    const std::int64_t subtree = state.subtree_count();
    if (subtree <= 0) {
      w.flag(Check::kOrphanState, self, channel,
             "on-tree with subtree count " + std::to_string(subtree) +
                 " (empty channels must be torn down)");
    }
    const FibEntry* fib = router.fib().find(channel);
    if (fib == nullptr) {
      w.flag(Check::kOrphanState, self, channel,
             "membership state without a FIB entry");
      continue;
    }
    // Replication set: every member with a currently resolvable
    // interface must be covered, and no interface may linger with no
    // member behind it. Skipped when adjacency is in flux (an
    // unresolvable member means a partition is still healing).
    net::InterfaceSet expected;
    bool resolvable = true;
    for (const auto& [neighbor, entry] : state.downstream) {
      if (entry.count <= 0) continue;
      if (auto iface = net::iface_toward(*w.network, self, neighbor)) {
        expected.set(*iface);
      } else {
        resolvable = false;
      }
    }
    if (resolvable && !(fib->oifs == expected)) {
      w.flag(Check::kOrphanState, self, channel,
             "FIB replication set does not match the member interfaces");
    }
  }
  for (const auto* kv : det::sorted_items(router.fib().entries())) {
    const auto& channel = kv->first;
    if (!router.subscriptions().contains(channel)) {
      w.flag(Check::kOrphanState, self, channel,
             "FIB entry without membership state");
    }
  }
}

// --- (d) forwarding loops --------------------------------------------

void check_loops(Walk& w) {
  // Per channel, upstream pointers must form a forest: walk from every
  // on-tree router toward the source; a revisit inside one walk is a
  // loop. Colors memoize finished walks so the pass stays linear.
  std::set<ip::ChannelId> channels;
  for (const auto& [id, router] : w.routers) {
    // lint: order-independent (set union is commutative)
    for (const auto& [channel, state] : router->subscriptions().channels()) {
      channels.insert(channel);
    }
  }
  enum class Color : std::uint8_t { kWhite, kGray, kDone };
  for (const ip::ChannelId& channel : channels) {
    std::unordered_map<net::NodeId, Color> color;
    for (const auto& [start, router] : w.routers) {
      if (router->subscriptions().find(channel) == nullptr) continue;
      if (color[start] != Color::kWhite) continue;
      std::vector<net::NodeId> path;
      net::NodeId at = start;
      while (true) {
        path.push_back(at);
        color[at] = Color::kGray;
        auto it = w.routers.find(at);
        const Channel* state =
            it != w.routers.end() ? it->second->subscriptions().find(channel)
                                  : nullptr;
        if (state == nullptr || state->upstream == net::kInvalidNode ||
            !w.routers.contains(state->upstream)) {
          break;  // reached the root / a detached head: no loop this way
        }
        const net::NodeId up = state->upstream;
        if (color[up] == Color::kGray) {
          w.flag(Check::kForwardingLoop, up, channel,
                 "upstream pointers revisit router " + std::to_string(up) +
                     " (walk started at " + std::to_string(start) + ")");
          break;
        }
        if (color[up] == Color::kDone) break;
        at = up;
      }
      for (net::NodeId n : path) color[n] = Color::kDone;
    }
  }
}

}  // namespace

const char* check_name(Check check) {
  switch (check) {
    case Check::kCountConservation:
      return "count_conservation";
    case Check::kRpfConsistency:
      return "rpf_consistency";
    case Check::kOrphanState:
      return "orphan_state";
    case Check::kForwardingLoop:
      return "forwarding_loop";
  }
  return "unknown";
}

std::size_t AuditReport::count(Check check) const {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (v.check == check) ++n;
  }
  return n;
}

std::string AuditReport::to_string() const {
  std::string out;
  for (const Violation& v : violations) {
    out += std::string(check_name(v.check)) + " @router " +
           std::to_string(v.router) + " " + v.channel.to_string() + ": " +
           v.detail + "\n";
  }
  return out;
}

AuditReport InvariantAuditor::run() const {
  Walk w;
  w.network = network_;
  const net::Topology& topo = network_->topology();
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    const net::Node* node = network_->node(id);
    if (node == nullptr) continue;
    if (const auto* router = dynamic_cast<const ExpressRouter*>(node)) {
      w.routers.emplace(id, router);
    } else if (const auto* host = dynamic_cast<const ExpressHost*>(node)) {
      w.hosts.emplace(id, host);
    }
  }

  for (const auto& [id, router] : w.routers) {
    ++w.report.routers_audited;
    for (const auto* kv : det::sorted_items(router->subscriptions().channels())) {
      const auto& [channel, state] = *kv;
      ++w.report.channels_audited;
      check_conservation(w, id, *router, channel, state);
      check_rpf(w, id, *router, channel, state);
    }
    check_orphans(w, id, *router);
  }
  check_loops(w);
  return w.report;
}

}  // namespace express::audit
