// Tree-invariant auditor (paper §3.2, §4.1).
//
// EXPRESS channel state is *hard state*: every router's upstream Count
// advertisement must equal the sum of its downstream advertisements,
// the distribution tree must agree with unicast RPF, and forwarding
// state must exist exactly where members do. Nothing in the protocol
// machinery checks this at runtime — the auditor does, from outside:
// it walks a quiescent Network, reads each ExpressRouter's hard state
// through the layered accessors, and cross-checks neighboring routers
// against each other. Four invariants, per channel:
//
//   (a) Count conservation (§3.2, §4.1): each downstream entry equals
//       the child's advertised_upstream (router child) or local
//       subscription count (host child); a router's own advertisement
//       is sign-consistent with its subtree sum, and exactly equal
//       under proactive counting (§6) at quiescence.
//   (b) RPF consistency (§3.2): a channel's upstream matches
//       routing().rpf_neighbor() once route-change hysteresis has
//       settled (routers with pending switches are skipped).
//   (c) No orphan forwarding state (§3.4): FIB entries and membership
//       state exist for exactly the same channels, subtree counts are
//       positive, and the replication set matches the members.
//   (d) No forwarding loops (§3.2): upstream pointers form a forest —
//       every walk toward the source terminates without revisiting a
//       router.
//
// The auditor is read-only and event-free: it schedules nothing and
// sends nothing, so it can run between any two events. Meaningful
// verdicts require quiescence (no control messages in flight); the
// chaos campaign driver (workload/chaos) samples it at event
// boundaries and records the first stable-clean instant per fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ip/channel.hpp"
#include "net/topology.hpp"

namespace express::net {
class Network;
}

namespace express::audit {

enum class Check : std::uint8_t {
  kCountConservation,
  kRpfConsistency,
  kOrphanState,
  kForwardingLoop,
};

[[nodiscard]] const char* check_name(Check check);

struct Violation {
  Check check = Check::kCountConservation;
  net::NodeId router = net::kInvalidNode;
  ip::ChannelId channel;
  std::string detail;  ///< human-readable diagnosis
  /// Trace position at audit time: when tracing is enabled, every event
  /// with obs::TraceRecord::index < trace_index preceded this violation
  /// (the anchor for replay-based diagnosis, DESIGN.md §11).
  std::uint64_t trace_index = 0;
};

struct AuditReport {
  std::vector<Violation> violations;
  std::size_t routers_audited = 0;
  std::size_t channels_audited = 0;  ///< (router, channel) pairs
  std::size_t edges_checked = 0;     ///< parent/child count agreements

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] std::size_t count(Check check) const;
  /// One line per violation, for test failure messages and logs.
  [[nodiscard]] std::string to_string() const;
};

/// Walks a Network and verifies the four EXPRESS tree invariants over
/// every ExpressRouter it finds (non-EXPRESS nodes are ignored, so the
/// auditor also runs on mixed/baseline topologies and simply audits
/// the EXPRESS subset).
class InvariantAuditor {
 public:
  explicit InvariantAuditor(const net::Network& network)
      : network_(&network) {}

  [[nodiscard]] AuditReport run() const;

 private:
  const net::Network* network_;
};

}  // namespace express::audit
