file(REMOVE_RECURSE
  "CMakeFiles/express_ecmp.dir/codec.cpp.o"
  "CMakeFiles/express_ecmp.dir/codec.cpp.o.d"
  "CMakeFiles/express_ecmp.dir/session.cpp.o"
  "CMakeFiles/express_ecmp.dir/session.cpp.o.d"
  "libexpress_ecmp.a"
  "libexpress_ecmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_ecmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
