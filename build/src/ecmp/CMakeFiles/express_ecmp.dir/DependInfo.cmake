
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecmp/codec.cpp" "src/ecmp/CMakeFiles/express_ecmp.dir/codec.cpp.o" "gcc" "src/ecmp/CMakeFiles/express_ecmp.dir/codec.cpp.o.d"
  "/root/repo/src/ecmp/session.cpp" "src/ecmp/CMakeFiles/express_ecmp.dir/session.cpp.o" "gcc" "src/ecmp/CMakeFiles/express_ecmp.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/express_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/express_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/express_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
