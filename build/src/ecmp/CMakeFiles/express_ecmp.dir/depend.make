# Empty dependencies file for express_ecmp.
# This may be replaced when dependencies are built.
