file(REMOVE_RECURSE
  "libexpress_ecmp.a"
)
