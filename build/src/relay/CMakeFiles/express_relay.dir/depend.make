# Empty dependencies file for express_relay.
# This may be replaced when dependencies are built.
