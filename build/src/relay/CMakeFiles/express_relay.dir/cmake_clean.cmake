file(REMOVE_RECURSE
  "CMakeFiles/express_relay.dir/monitor.cpp.o"
  "CMakeFiles/express_relay.dir/monitor.cpp.o.d"
  "CMakeFiles/express_relay.dir/participant.cpp.o"
  "CMakeFiles/express_relay.dir/participant.cpp.o.d"
  "CMakeFiles/express_relay.dir/session_relay.cpp.o"
  "CMakeFiles/express_relay.dir/session_relay.cpp.o.d"
  "CMakeFiles/express_relay.dir/standby.cpp.o"
  "CMakeFiles/express_relay.dir/standby.cpp.o.d"
  "CMakeFiles/express_relay.dir/wire.cpp.o"
  "CMakeFiles/express_relay.dir/wire.cpp.o.d"
  "libexpress_relay.a"
  "libexpress_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
