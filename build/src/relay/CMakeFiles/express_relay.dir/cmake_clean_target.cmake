file(REMOVE_RECURSE
  "libexpress_relay.a"
)
