file(REMOVE_RECURSE
  "libexpress_workload.a"
)
