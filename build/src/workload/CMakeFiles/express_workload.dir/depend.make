# Empty dependencies file for express_workload.
# This may be replaced when dependencies are built.
