file(REMOVE_RECURSE
  "CMakeFiles/express_workload.dir/churn.cpp.o"
  "CMakeFiles/express_workload.dir/churn.cpp.o.d"
  "CMakeFiles/express_workload.dir/topo_gen.cpp.o"
  "CMakeFiles/express_workload.dir/topo_gen.cpp.o.d"
  "CMakeFiles/express_workload.dir/zipf.cpp.o"
  "CMakeFiles/express_workload.dir/zipf.cpp.o.d"
  "libexpress_workload.a"
  "libexpress_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
