file(REMOVE_RECURSE
  "libexpress_baseline.a"
)
