file(REMOVE_RECURSE
  "CMakeFiles/express_baseline.dir/cbt.cpp.o"
  "CMakeFiles/express_baseline.dir/cbt.cpp.o.d"
  "CMakeFiles/express_baseline.dir/dvmrp.cpp.o"
  "CMakeFiles/express_baseline.dir/dvmrp.cpp.o.d"
  "CMakeFiles/express_baseline.dir/group_host.cpp.o"
  "CMakeFiles/express_baseline.dir/group_host.cpp.o.d"
  "CMakeFiles/express_baseline.dir/igmp.cpp.o"
  "CMakeFiles/express_baseline.dir/igmp.cpp.o.d"
  "CMakeFiles/express_baseline.dir/pim_sm.cpp.o"
  "CMakeFiles/express_baseline.dir/pim_sm.cpp.o.d"
  "CMakeFiles/express_baseline.dir/wire.cpp.o"
  "CMakeFiles/express_baseline.dir/wire.cpp.o.d"
  "libexpress_baseline.a"
  "libexpress_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
