# Empty compiler generated dependencies file for express_baseline.
# This may be replaced when dependencies are built.
