
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cbt.cpp" "src/baseline/CMakeFiles/express_baseline.dir/cbt.cpp.o" "gcc" "src/baseline/CMakeFiles/express_baseline.dir/cbt.cpp.o.d"
  "/root/repo/src/baseline/dvmrp.cpp" "src/baseline/CMakeFiles/express_baseline.dir/dvmrp.cpp.o" "gcc" "src/baseline/CMakeFiles/express_baseline.dir/dvmrp.cpp.o.d"
  "/root/repo/src/baseline/group_host.cpp" "src/baseline/CMakeFiles/express_baseline.dir/group_host.cpp.o" "gcc" "src/baseline/CMakeFiles/express_baseline.dir/group_host.cpp.o.d"
  "/root/repo/src/baseline/igmp.cpp" "src/baseline/CMakeFiles/express_baseline.dir/igmp.cpp.o" "gcc" "src/baseline/CMakeFiles/express_baseline.dir/igmp.cpp.o.d"
  "/root/repo/src/baseline/pim_sm.cpp" "src/baseline/CMakeFiles/express_baseline.dir/pim_sm.cpp.o" "gcc" "src/baseline/CMakeFiles/express_baseline.dir/pim_sm.cpp.o.d"
  "/root/repo/src/baseline/wire.cpp" "src/baseline/CMakeFiles/express_baseline.dir/wire.cpp.o" "gcc" "src/baseline/CMakeFiles/express_baseline.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/express_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/express_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/express_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
