file(REMOVE_RECURSE
  "libexpress_sim.a"
)
