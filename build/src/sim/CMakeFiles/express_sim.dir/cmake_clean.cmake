file(REMOVE_RECURSE
  "CMakeFiles/express_sim.dir/random.cpp.o"
  "CMakeFiles/express_sim.dir/random.cpp.o.d"
  "CMakeFiles/express_sim.dir/scheduler.cpp.o"
  "CMakeFiles/express_sim.dir/scheduler.cpp.o.d"
  "libexpress_sim.a"
  "libexpress_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
