# Empty dependencies file for express_sim.
# This may be replaced when dependencies are built.
