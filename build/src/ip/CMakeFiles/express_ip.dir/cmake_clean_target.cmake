file(REMOVE_RECURSE
  "libexpress_ip.a"
)
