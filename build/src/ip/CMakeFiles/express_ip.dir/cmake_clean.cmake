file(REMOVE_RECURSE
  "CMakeFiles/express_ip.dir/address.cpp.o"
  "CMakeFiles/express_ip.dir/address.cpp.o.d"
  "CMakeFiles/express_ip.dir/header.cpp.o"
  "CMakeFiles/express_ip.dir/header.cpp.o.d"
  "libexpress_ip.a"
  "libexpress_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
