
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ip/address.cpp" "src/ip/CMakeFiles/express_ip.dir/address.cpp.o" "gcc" "src/ip/CMakeFiles/express_ip.dir/address.cpp.o.d"
  "/root/repo/src/ip/header.cpp" "src/ip/CMakeFiles/express_ip.dir/header.cpp.o" "gcc" "src/ip/CMakeFiles/express_ip.dir/header.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
