# Empty dependencies file for express_ip.
# This may be replaced when dependencies are built.
