# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("ip")
subdirs("net")
subdirs("ecmp")
subdirs("express")
subdirs("counting")
subdirs("baseline")
subdirs("relay")
subdirs("costmodel")
subdirs("workload")
subdirs("reliable")
