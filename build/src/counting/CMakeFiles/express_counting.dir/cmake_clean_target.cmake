file(REMOVE_RECURSE
  "libexpress_counting.a"
)
