file(REMOVE_RECURSE
  "CMakeFiles/express_counting.dir/error_curve.cpp.o"
  "CMakeFiles/express_counting.dir/error_curve.cpp.o.d"
  "libexpress_counting.a"
  "libexpress_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
