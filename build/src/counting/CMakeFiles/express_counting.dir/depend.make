# Empty dependencies file for express_counting.
# This may be replaced when dependencies are built.
