# Empty compiler generated dependencies file for express_reliable.
# This may be replaced when dependencies are built.
