file(REMOVE_RECURSE
  "libexpress_reliable.a"
)
