file(REMOVE_RECURSE
  "CMakeFiles/express_reliable.dir/publisher.cpp.o"
  "CMakeFiles/express_reliable.dir/publisher.cpp.o.d"
  "libexpress_reliable.a"
  "libexpress_reliable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_reliable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
