# CMake generated Testfile for 
# Source directory: /root/repo/src/reliable
# Build directory: /root/repo/build/src/reliable
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
