file(REMOVE_RECURSE
  "libexpress_net.a"
)
