file(REMOVE_RECURSE
  "CMakeFiles/express_net.dir/network.cpp.o"
  "CMakeFiles/express_net.dir/network.cpp.o.d"
  "CMakeFiles/express_net.dir/node.cpp.o"
  "CMakeFiles/express_net.dir/node.cpp.o.d"
  "CMakeFiles/express_net.dir/routing.cpp.o"
  "CMakeFiles/express_net.dir/routing.cpp.o.d"
  "CMakeFiles/express_net.dir/topology.cpp.o"
  "CMakeFiles/express_net.dir/topology.cpp.o.d"
  "libexpress_net.a"
  "libexpress_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
