# Empty compiler generated dependencies file for express_net.
# This may be replaced when dependencies are built.
