# Empty dependencies file for express_core.
# This may be replaced when dependencies are built.
