file(REMOVE_RECURSE
  "libexpress_core.a"
)
