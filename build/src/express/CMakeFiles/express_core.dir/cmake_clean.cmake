file(REMOVE_RECURSE
  "CMakeFiles/express_core.dir/fib.cpp.o"
  "CMakeFiles/express_core.dir/fib.cpp.o.d"
  "CMakeFiles/express_core.dir/host.cpp.o"
  "CMakeFiles/express_core.dir/host.cpp.o.d"
  "CMakeFiles/express_core.dir/router.cpp.o"
  "CMakeFiles/express_core.dir/router.cpp.o.d"
  "libexpress_core.a"
  "libexpress_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
