
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/internet_tv.cpp" "examples/CMakeFiles/internet_tv.dir/internet_tv.cpp.o" "gcc" "examples/CMakeFiles/internet_tv.dir/internet_tv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/express/CMakeFiles/express_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/express_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/ecmp/CMakeFiles/express_ecmp.dir/DependInfo.cmake"
  "/root/repo/build/src/counting/CMakeFiles/express_counting.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/express_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/express_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/express_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/express_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
