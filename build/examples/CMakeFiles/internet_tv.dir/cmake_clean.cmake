file(REMOVE_RECURSE
  "CMakeFiles/internet_tv.dir/internet_tv.cpp.o"
  "CMakeFiles/internet_tv.dir/internet_tv.cpp.o.d"
  "internet_tv"
  "internet_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
