# Empty compiler generated dependencies file for internet_tv.
# This may be replaced when dependencies are built.
