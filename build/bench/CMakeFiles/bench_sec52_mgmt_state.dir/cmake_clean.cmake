file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_mgmt_state.dir/bench_sec52_mgmt_state.cpp.o"
  "CMakeFiles/bench_sec52_mgmt_state.dir/bench_sec52_mgmt_state.cpp.o.d"
  "bench_sec52_mgmt_state"
  "bench_sec52_mgmt_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_mgmt_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
