# Empty dependencies file for bench_sec52_mgmt_state.
# This may be replaced when dependencies are built.
