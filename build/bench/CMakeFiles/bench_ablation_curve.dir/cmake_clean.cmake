file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_curve.dir/bench_ablation_curve.cpp.o"
  "CMakeFiles/bench_ablation_curve.dir/bench_ablation_curve.cpp.o.d"
  "bench_ablation_curve"
  "bench_ablation_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
