# Empty dependencies file for bench_sec5_scaling.
# This may be replaced when dependencies are built.
