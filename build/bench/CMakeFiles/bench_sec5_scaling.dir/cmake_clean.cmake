file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_scaling.dir/bench_sec5_scaling.cpp.o"
  "CMakeFiles/bench_sec5_scaling.dir/bench_sec5_scaling.cpp.o.d"
  "bench_sec5_scaling"
  "bench_sec5_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
