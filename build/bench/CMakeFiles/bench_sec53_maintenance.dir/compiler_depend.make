# Empty compiler generated dependencies file for bench_sec53_maintenance.
# This may be replaced when dependencies are built.
