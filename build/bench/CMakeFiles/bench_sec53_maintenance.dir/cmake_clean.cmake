file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_maintenance.dir/bench_sec53_maintenance.cpp.o"
  "CMakeFiles/bench_sec53_maintenance.dir/bench_sec53_maintenance.cpp.o.d"
  "bench_sec53_maintenance"
  "bench_sec53_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
