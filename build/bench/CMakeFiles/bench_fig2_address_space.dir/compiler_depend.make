# Empty compiler generated dependencies file for bench_fig2_address_space.
# This may be replaced when dependencies are built.
