file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_proactive.dir/bench_fig8_proactive.cpp.o"
  "CMakeFiles/bench_fig8_proactive.dir/bench_fig8_proactive.cpp.o.d"
  "bench_fig8_proactive"
  "bench_fig8_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
