file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_subscription.dir/bench_fig3_subscription.cpp.o"
  "CMakeFiles/bench_fig3_subscription.dir/bench_fig3_subscription.cpp.o.d"
  "bench_fig3_subscription"
  "bench_fig3_subscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_subscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
