# Empty dependencies file for bench_fig3_subscription.
# This may be replaced when dependencies are built.
