file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_session_relay.dir/bench_fig4_session_relay.cpp.o"
  "CMakeFiles/bench_fig4_session_relay.dir/bench_fig4_session_relay.cpp.o.d"
  "bench_fig4_session_relay"
  "bench_fig4_session_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_session_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
