# Empty dependencies file for bench_fig4_session_relay.
# This may be replaced when dependencies are built.
