# Empty compiler generated dependencies file for bench_sec6_counting_overhead.
# This may be replaced when dependencies are built.
