file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fib_entry.dir/bench_fig5_fib_entry.cpp.o"
  "CMakeFiles/bench_fig5_fib_entry.dir/bench_fig5_fib_entry.cpp.o.d"
  "bench_fig5_fib_entry"
  "bench_fig5_fib_entry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fib_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
