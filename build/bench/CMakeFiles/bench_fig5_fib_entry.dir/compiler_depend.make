# Empty compiler generated dependencies file for bench_fig5_fib_entry.
# This may be replaced when dependencies are built.
