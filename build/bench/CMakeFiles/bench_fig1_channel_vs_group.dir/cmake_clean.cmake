file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_channel_vs_group.dir/bench_fig1_channel_vs_group.cpp.o"
  "CMakeFiles/bench_fig1_channel_vs_group.dir/bench_fig1_channel_vs_group.cpp.o.d"
  "bench_fig1_channel_vs_group"
  "bench_fig1_channel_vs_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_channel_vs_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
