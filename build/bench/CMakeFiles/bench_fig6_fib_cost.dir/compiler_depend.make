# Empty compiler generated dependencies file for bench_fig6_fib_cost.
# This may be replaced when dependencies are built.
