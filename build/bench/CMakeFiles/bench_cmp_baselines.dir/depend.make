# Empty dependencies file for bench_cmp_baselines.
# This may be replaced when dependencies are built.
