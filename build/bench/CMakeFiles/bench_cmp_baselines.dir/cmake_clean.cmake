file(REMOVE_RECURSE
  "CMakeFiles/bench_cmp_baselines.dir/bench_cmp_baselines.cpp.o"
  "CMakeFiles/bench_cmp_baselines.dir/bench_cmp_baselines.cpp.o.d"
  "bench_cmp_baselines"
  "bench_cmp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
