# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ip[1]_include.cmake")
include("/root/repo/build/tests/test_ecmp_codec[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_fib[1]_include.cmake")
include("/root/repo/build/tests/test_error_curve[1]_include.cmake")
include("/root/repo/build/tests/test_express_basic[1]_include.cmake")
include("/root/repo/build/tests/test_express_auth[1]_include.cmake")
include("/root/repo/build/tests/test_express_failover[1]_include.cmake")
include("/root/repo/build/tests/test_express_udp[1]_include.cmake")
include("/root/repo/build/tests/test_express_proactive[1]_include.cmake")
include("/root/repo/build/tests/test_relay[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_igmp[1]_include.cmake")
include("/root/repo/build/tests/test_costmodel[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_express_advanced[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_lan[1]_include.cmake")
include("/root/repo/build/tests/test_reliable[1]_include.cmake")
include("/root/repo/build/tests/test_baseline_property[1]_include.cmake")
