file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_property.dir/test_baseline_property.cpp.o"
  "CMakeFiles/test_baseline_property.dir/test_baseline_property.cpp.o.d"
  "test_baseline_property"
  "test_baseline_property.pdb"
  "test_baseline_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
