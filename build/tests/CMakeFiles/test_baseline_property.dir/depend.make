# Empty dependencies file for test_baseline_property.
# This may be replaced when dependencies are built.
