# Empty dependencies file for test_error_curve.
# This may be replaced when dependencies are built.
