file(REMOVE_RECURSE
  "CMakeFiles/test_error_curve.dir/test_error_curve.cpp.o"
  "CMakeFiles/test_error_curve.dir/test_error_curve.cpp.o.d"
  "test_error_curve"
  "test_error_curve.pdb"
  "test_error_curve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
