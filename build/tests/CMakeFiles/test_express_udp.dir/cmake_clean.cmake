file(REMOVE_RECURSE
  "CMakeFiles/test_express_udp.dir/test_express_udp.cpp.o"
  "CMakeFiles/test_express_udp.dir/test_express_udp.cpp.o.d"
  "test_express_udp"
  "test_express_udp.pdb"
  "test_express_udp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_express_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
