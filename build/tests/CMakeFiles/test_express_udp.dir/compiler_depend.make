# Empty compiler generated dependencies file for test_express_udp.
# This may be replaced when dependencies are built.
