# Empty compiler generated dependencies file for test_express_basic.
# This may be replaced when dependencies are built.
