file(REMOVE_RECURSE
  "CMakeFiles/test_express_basic.dir/test_express_basic.cpp.o"
  "CMakeFiles/test_express_basic.dir/test_express_basic.cpp.o.d"
  "test_express_basic"
  "test_express_basic.pdb"
  "test_express_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_express_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
