file(REMOVE_RECURSE
  "CMakeFiles/test_express_auth.dir/test_express_auth.cpp.o"
  "CMakeFiles/test_express_auth.dir/test_express_auth.cpp.o.d"
  "test_express_auth"
  "test_express_auth.pdb"
  "test_express_auth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_express_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
