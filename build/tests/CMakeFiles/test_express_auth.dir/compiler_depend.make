# Empty compiler generated dependencies file for test_express_auth.
# This may be replaced when dependencies are built.
