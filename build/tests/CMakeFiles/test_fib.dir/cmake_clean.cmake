file(REMOVE_RECURSE
  "CMakeFiles/test_fib.dir/test_fib.cpp.o"
  "CMakeFiles/test_fib.dir/test_fib.cpp.o.d"
  "test_fib"
  "test_fib.pdb"
  "test_fib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
