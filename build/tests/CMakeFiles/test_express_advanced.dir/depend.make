# Empty dependencies file for test_express_advanced.
# This may be replaced when dependencies are built.
