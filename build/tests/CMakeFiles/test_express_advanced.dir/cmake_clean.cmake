file(REMOVE_RECURSE
  "CMakeFiles/test_express_advanced.dir/test_express_advanced.cpp.o"
  "CMakeFiles/test_express_advanced.dir/test_express_advanced.cpp.o.d"
  "test_express_advanced"
  "test_express_advanced.pdb"
  "test_express_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_express_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
