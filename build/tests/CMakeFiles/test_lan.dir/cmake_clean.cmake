file(REMOVE_RECURSE
  "CMakeFiles/test_lan.dir/test_lan.cpp.o"
  "CMakeFiles/test_lan.dir/test_lan.cpp.o.d"
  "test_lan"
  "test_lan.pdb"
  "test_lan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
