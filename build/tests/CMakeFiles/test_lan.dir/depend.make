# Empty dependencies file for test_lan.
# This may be replaced when dependencies are built.
