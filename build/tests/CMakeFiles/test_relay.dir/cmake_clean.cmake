file(REMOVE_RECURSE
  "CMakeFiles/test_relay.dir/test_relay.cpp.o"
  "CMakeFiles/test_relay.dir/test_relay.cpp.o.d"
  "test_relay"
  "test_relay.pdb"
  "test_relay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
