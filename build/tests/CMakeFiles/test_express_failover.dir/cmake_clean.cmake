file(REMOVE_RECURSE
  "CMakeFiles/test_express_failover.dir/test_express_failover.cpp.o"
  "CMakeFiles/test_express_failover.dir/test_express_failover.cpp.o.d"
  "test_express_failover"
  "test_express_failover.pdb"
  "test_express_failover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_express_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
