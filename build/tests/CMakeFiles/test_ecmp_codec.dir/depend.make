# Empty dependencies file for test_ecmp_codec.
# This may be replaced when dependencies are built.
