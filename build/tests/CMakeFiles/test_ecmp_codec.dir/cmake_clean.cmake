file(REMOVE_RECURSE
  "CMakeFiles/test_ecmp_codec.dir/test_ecmp_codec.cpp.o"
  "CMakeFiles/test_ecmp_codec.dir/test_ecmp_codec.cpp.o.d"
  "test_ecmp_codec"
  "test_ecmp_codec.pdb"
  "test_ecmp_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecmp_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
