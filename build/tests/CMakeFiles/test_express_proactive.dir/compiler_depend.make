# Empty compiler generated dependencies file for test_express_proactive.
# This may be replaced when dependencies are built.
