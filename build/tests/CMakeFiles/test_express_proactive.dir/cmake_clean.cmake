file(REMOVE_RECURSE
  "CMakeFiles/test_express_proactive.dir/test_express_proactive.cpp.o"
  "CMakeFiles/test_express_proactive.dir/test_express_proactive.cpp.o.d"
  "test_express_proactive"
  "test_express_proactive.pdb"
  "test_express_proactive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_express_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
