// Quickstart: the EXPRESS service interface in ~60 lines.
//
//   1. build a small simulated network (one source, four receivers)
//   2. the source allocates a channel from its private 2^24 space
//   3. receivers call newSubscription(channel)
//   4. the source sends; the network delivers along the RPF tree
//   5. the source polls the audience with CountQuery
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "testbed/testbed.hpp"

int main() {
  using namespace express;

  // A star: source host behind the root router, four receivers each
  // behind their own edge router, 1 ms edge links.
  Testbed bed(workload::make_star(/*receivers=*/4, /*hops=*/1));

  // --- source side ----------------------------------------------------
  ExpressHost& tv = bed.source();
  const ip::ChannelId channel = tv.allocate_channel();
  std::printf("source %s allocated channel %s\n",
              tv.address().to_string().c_str(), channel.to_string().c_str());

  // --- subscribers ----------------------------------------------------
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    bed.receiver(i).new_subscription(channel, std::nullopt,
                                     [i](ecmp::Status status) {
                                       std::printf("receiver %zu: %s\n", i,
                                                   to_string(status));
                                     });
  }
  bed.run_for(sim::seconds(1));  // joins propagate, tree is built

  // --- transmit ---------------------------------------------------------
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    tv.send(channel, /*bytes=*/1200, seq);
  }
  bed.run_for(sim::seconds(1));
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    std::printf("receiver %zu got %zu packets\n", i,
                bed.receiver(i).deliveries().size());
  }

  // --- count the audience (ECMP CountQuery, paper §3.1) ---------------
  tv.count_query(channel, ecmp::kSubscriberId, sim::seconds(2),
                 [](CountResult result) {
                   std::printf("subscriber count: %lld (%s)\n",
                               static_cast<long long>(result.count),
                               result.complete ? "complete" : "partial");
                 });
  bed.run_for(sim::seconds(3));

  // --- clean teardown ---------------------------------------------------
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    bed.receiver(i).delete_subscription(channel);
  }
  bed.run_for(sim::seconds(1));
  std::printf("FIB entries remaining after unsubscribe: %zu\n",
              bed.total_fib_entries());
  return 0;
}
