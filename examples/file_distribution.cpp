// Wide-area file distribution with NACK counting and subcast repair.
//
// The paper lists "wide-area multicast file updates" among the target
// applications and points out two EXPRESS features that make reliable
// delivery cheap (§2.2.1, §2.1):
//   * counting "can be used to efficiently collect positive or negative
//     acknowledgements to determine how many subscribers missed a
//     particular packet";
//   * subcast lets the source retransmit through an interior router so
//     the repair reaches only the subtree that needs it.
//
// This example pushes a 10-block file, lets one stub of receivers join
// late (missing early blocks), counts the misses per block with an
// app-defined countId, and repairs via subcast through the stub router.
//
// Build & run:  ./build/examples/file_distribution
#include <cstdio>
#include <set>
#include <vector>

#include "testbed/testbed.hpp"

namespace {

constexpr int kBlocks = 10;
constexpr std::uint32_t kBlockBytes = 1400;

}  // namespace

int main() {
  using namespace express;

  Testbed bed(workload::make_kary_tree(2, 2, {}, 4));  // 4 leaves x 4 hosts
  ExpressHost& publisher = bed.source();
  const ip::ChannelId channel = publisher.allocate_channel();

  // Per-host received-block bookkeeping + per-block NACK responders.
  std::vector<std::set<std::uint64_t>> received(bed.receiver_count());
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    bed.receiver(i).set_data_handler(
        [&received, i](const net::Packet& packet, sim::Time) {
          received[i].insert(packet.sequence);
        });
    for (int block = 1; block <= kBlocks; ++block) {
      const auto count_id =
          static_cast<ecmp::CountId>(ecmp::kAppRangeBegin + block);
      bed.receiver(i).set_count_handler(count_id, [&received, i, block]() {
        // NACK: answer 1 if this block is missing.
        return std::optional<std::int64_t>(
            received[i].contains(static_cast<std::uint64_t>(block)) ? 0 : 1);
      });
    }
  }

  // Hosts 0..11 subscribe on time; the last leaf's hosts (12..15) join
  // after block 4 — they will miss the first four blocks.
  for (std::size_t i = 0; i < 12; ++i) {
    bed.receiver(i).new_subscription(channel);
  }
  bed.run_for(sim::seconds(1));

  for (int block = 1; block <= kBlocks; ++block) {
    if (block == 5) {
      for (std::size_t i = 12; i < bed.receiver_count(); ++i) {
        bed.receiver(i).new_subscription(channel);
      }
      bed.run_for(sim::seconds(1));
    }
    publisher.send(channel, kBlockBytes, static_cast<std::uint64_t>(block));
    bed.run_for(sim::milliseconds(200));
  }
  bed.run_for(sim::seconds(1));

  // --- NACK collection: one CountQuery per block ------------------------
  std::printf("block  missing\n");
  std::vector<int> missing_per_block(kBlocks + 1, 0);
  for (int block = 1; block <= kBlocks; ++block) {
    const auto count_id =
        static_cast<ecmp::CountId>(ecmp::kAppRangeBegin + block);
    publisher.count_query(channel, count_id, sim::seconds(2),
                          [&missing_per_block, block](CountResult r) {
                            missing_per_block[block] =
                                static_cast<int>(r.count);
                          });
    bed.run_for(sim::seconds(4));
    std::printf("%5d  %d\n", block, missing_per_block[block]);
  }

  // --- repair via subcast through the late stub's router ----------------
  // The late joiners all sit under the last leaf router; subcasting the
  // missing blocks through it spares the 12 already-complete hosts.
  const ExpressRouter& last_leaf =
      bed.router(bed.router_count() - 1);  // kary layout: leaves are last
  const ip::Address repair_point =
      bed.net().topology().node(last_leaf.id()).address;
  int repairs = 0;
  for (int block = 1; block <= kBlocks; ++block) {
    if (missing_per_block[block] > 0) {
      publisher.subcast(channel, repair_point, kBlockBytes,
                        static_cast<std::uint64_t>(block));
      ++repairs;
    }
  }
  bed.run_for(sim::seconds(1));
  std::printf("retransmitted %d blocks via subcast through %s\n", repairs,
              repair_point.to_string().c_str());

  // --- verify everyone has the whole file --------------------------------
  std::size_t complete = 0;
  std::uint64_t duplicates_at_ontime_hosts = 0;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    if (received[i].size() == kBlocks) ++complete;
    if (i < 12) {
      duplicates_at_ontime_hosts +=
          bed.receiver(i).deliveries().size() - kBlocks;
    }
  }
  std::printf("hosts with the complete file: %zu / %zu\n", complete,
              bed.receiver_count());
  std::printf("repair copies wasted on already-complete hosts: %llu\n",
              static_cast<unsigned long long>(duplicates_at_ontime_hosts));
  return 0;
}
