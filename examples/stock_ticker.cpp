// Stock ticker — the paper's long-running accounting example (§5.1) as
// a running system plus an ISP's bill.
//
// A ticker channel runs for a (scaled) day with subscriber churn. The
// ISP side of the EXPRESS story is accounting (§2.2.3): the channel has
// one identifiable owner to bill, the network can measure the resources
// it uses (FIB entries via the tree, links via a network-layer count),
// and proactive counting keeps an audience profile for usage-based
// pricing — none of which the group model offers.
//
// Build & run:  ./build/examples/stock_ticker
#include <cstdio>

#include "costmodel/fib_cost.hpp"
#include "costmodel/mgmt_cost.hpp"
#include "testbed/testbed.hpp"
#include "workload/churn.hpp"

int main() {
  using namespace express;

  sim::Rng rng(314);
  RouterConfig config;
  config.proactive = counting::CurveParams{0.3, 60.0, 4.0};
  Testbed bed(workload::make_transit_stub(5, 3, 6, rng), config);  // 90 hosts
  ExpressHost& exchange = bed.source();
  const ip::ChannelId ticker = exchange.allocate_channel();
  std::printf("ticker channel %s, %zu routers, %zu potential subscribers\n",
              ticker.to_string().c_str(), bed.router_count(),
              bed.receiver_count());

  // A scaled trading day: 1 simulated hour of churn (mean subscription
  // 20 min, mean off-time 10 min), quotes every 10 s.
  const auto day = sim::seconds(3600);
  auto churn = workload::poisson_churn(
      static_cast<std::uint32_t>(bed.receiver_count()), day,
      sim::seconds(1200), sim::seconds(600), rng);
  for (const auto& event : churn) {
    bed.net().scheduler().schedule_at(event.at, [&bed, &ticker, event]() {
      if (event.join) {
        bed.receiver(event.host_index).new_subscription(ticker);
      } else {
        bed.receiver(event.host_index).delete_subscription(ticker);
      }
    });
  }
  for (int i = 0; i < 360; ++i) {
    bed.net().scheduler().schedule_at(
        sim::seconds(10 * i),
        [&exchange, &ticker, i]() { exchange.send(ticker, 300, static_cast<std::uint64_t>(i)); });
  }

  // The ISP samples the audience every 5 minutes from the head-end
  // router's proactively-maintained count, and the peak FIB footprint.
  auto audience_minutes = std::make_shared<double>(0.0);
  auto peak_entries = std::make_shared<std::size_t>(0);
  for (int minute = 5; minute <= 60; minute += 5) {
    bed.net().scheduler().schedule_at(sim::seconds(60 * minute), [&, minute]() {
      const auto live = bed.source_router().subtree_count(ticker);
      *audience_minutes += static_cast<double>(live) * 5;
      *peak_entries = std::max(*peak_entries, bed.total_fib_entries());
      std::printf("  t=%2d min: live audience %lld, network FIB entries %zu\n",
                  minute, static_cast<long long>(live),
                  bed.total_fib_entries());
    });
  }
  bed.run_for(day + sim::seconds(1));

  std::uint64_t quotes_delivered = 0;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    quotes_delivered += bed.receiver(i).deliveries().size();
  }

  // --- the bill ----------------------------------------------------------
  using namespace express::costmodel;
  const FibCostParams fib_model;
  const double entry_year_cost =
      entry_cost(fib_model, fib_model.router_lifetime_seconds);
  const double fib_year_cost = static_cast<double>(*peak_entries) * entry_year_cost;
  const double mgmt_year_cost =
      static_cast<double>(bed.router_count()) * channel_lifetime_cost();

  std::printf("\n--- ISP accounting for channel %s ---\n",
              ticker.to_string().c_str());
  std::printf("quotes delivered:            %llu\n",
              static_cast<unsigned long long>(quotes_delivered));
  std::printf("audience (subscriber-min):   %.0f over the hour\n",
              *audience_minutes);
  std::printf("peak FIB entries:            %zu (12 B each)\n", *peak_entries);
  std::printf("FIB memory, annualized:      $%.4f\n", fib_year_cost);
  std::printf("management state (DRAM):     $%.6f\n", mgmt_year_cost);
  std::printf("billable party:              %s (the channel source)\n",
              ticker.source.to_string().c_str());
  std::printf("paper's comparison point:    community cable leases at "
              "$1.00/viewer/month\n");
  return 0;
}
