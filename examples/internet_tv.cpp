// Internet TV — the paper's "sports-tv.net" scenario at simulator scale.
//
// A content provider sources an *authenticated* channel to a wide-area
// audience on a transit-stub topology. The example shows the three
// problems of the group model being solved (§1):
//   * access control: a pirate subscription without K(S,E) is refused,
//     and a third party blasting the channel's address reaches nobody;
//   * audience accounting: the provider samples the subscriber count
//     mid-broadcast and runs a viewer vote (app-defined countId);
//   * proactive counting keeps a live audience figure at the head-end.
//
// Build & run:  ./build/examples/internet_tv
#include <cstdio>

#include "testbed/testbed.hpp"

int main() {
  using namespace express;

  sim::Rng rng(7);
  RouterConfig config;
  config.proactive = counting::CurveParams{0.3, 30.0, 4.0};
  Testbed bed(workload::make_transit_stub(/*transit=*/6, /*stubs=*/3,
                                          /*hosts_per_stub=*/4, rng),
              config);
  std::printf("network: %zu routers, %zu receiver hosts\n", bed.router_count(),
              bed.receiver_count());

  // The broadcaster registers the channel key: only subscriptions
  // presenting it are accepted anywhere in the network (§2.1, §3.5).
  ExpressHost& station = bed.source();
  const ip::ChannelId feed = station.allocate_channel();
  constexpr ip::ChannelKey kTicketKey = 0x5EA50EBB01ULL;
  station.channel_key(feed, kTicketKey);
  bed.run_for(sim::seconds(1));

  // Paying viewers subscribe with the key; one freeloader tries without.
  int accepted = 0, rejected = 0;
  for (std::size_t i = 0; i + 1 < bed.receiver_count(); ++i) {
    bed.receiver(i).new_subscription(feed, kTicketKey, [&](ecmp::Status s) {
      s == ecmp::Status::kOk ? ++accepted : ++rejected;
    });
  }
  ExpressHost& freeloader = bed.receiver(bed.receiver_count() - 1);
  freeloader.new_subscription(feed, std::nullopt, [&](ecmp::Status s) {
    std::printf("freeloader without key: %s\n", to_string(s));
  });
  bed.run_for(sim::seconds(2));
  std::printf("subscriptions accepted: %d, rejected: %d\n", accepted, rejected);

  // Kickoff: 4 Mb/s MPEG-2 feed, modelled as 1500-byte packets.
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    station.send(feed, 1480, seq);
    bed.run_for(sim::milliseconds(100));
  }
  std::uint64_t delivered = 0, unwanted = 0;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    delivered += bed.receiver(i).deliveries().size();
    unwanted += bed.receiver(i).stats().unwanted_data;
  }
  std::printf("feed packets delivered: %llu (unwanted at hosts: %llu)\n",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(unwanted));

  // A rival tries to hijack the moment of the touchdown (§1 problem 3):
  // same E, its own S — a different, subscriber-less channel.
  freeloader.send(ip::ChannelId{freeloader.address(), feed.dest}, 4000, 666);
  bed.run_for(sim::seconds(1));
  std::uint64_t still_unwanted = 0;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    still_unwanted += bed.receiver(i).stats().unwanted_data;
  }
  std::printf("after hijack attempt, unwanted deliveries: %llu\n",
              static_cast<unsigned long long>(still_unwanted));

  // Head-end live audience figure (proactive counting, §6).
  std::printf("live audience at head-end router: %lld\n",
              static_cast<long long>(bed.source_router().subtree_count(feed)));

  // Halftime poll: "vote 1 if you want more replays" (§2.2.1's
  // application-defined countId with a subscriber dialog box).
  const ecmp::CountId kReplayVote = ecmp::kAppRangeBegin + 42;
  for (std::size_t i = 0; i + 1 < bed.receiver_count(); ++i) {
    const bool wants_replays = (i % 3 != 0);
    bed.receiver(i).set_count_handler(kReplayVote, [wants_replays]() {
      return std::optional<std::int64_t>(wants_replays ? 1 : 0);
    });
  }
  station.count_query(feed, kReplayVote, sim::seconds(5), [](CountResult r) {
    std::printf("replay vote: %lld yes (%s)\n",
                static_cast<long long>(r.count),
                r.complete ? "complete" : "partial");
  });

  // And the ISP-side view: how many links does this channel occupy in
  // the operator's domain (router-initiated network-layer count, §3.1)?
  bed.source_router().initiate_count(
      feed, ecmp::kLinkCountId, sim::seconds(5), [](CountResult r) {
        std::printf("distribution tree links (ISP settlement data): %lld\n",
                    static_cast<long long>(r.count));
      });
  bed.run_for(sim::seconds(10));
  return 0;
}
