// Distance learning — the paper's flagship "almost single-source"
// application (§4).
//
// A lecturer multicasts over the session-relay channel (SR, E); any
// student may ask a question by requesting the floor. The SR acts as an
// "intelligent audience microphone": it serializes speakers, enforces a
// per-student question budget, stamps relay sequence numbers, and — when
// the primary SR host dies mid-lecture — a hot-standby SR takes over
// without the students doing anything.
//
// Build & run:  ./build/examples/distance_learning
#include <cstdio>
#include <memory>

#include "testbed/testbed.hpp"
#include "relay/participant.hpp"
#include "relay/session_relay.hpp"
#include "relay/standby.hpp"

int main() {
  using namespace express;
  using namespace express::relay;

  Testbed bed(workload::make_kary_tree(2, 3));  // 8 hosts
  // Host 7 runs the hot-standby SR; hosts 0..5 are students.
  constexpr std::size_t kStudents = 6;
  constexpr std::size_t kBackupHost = 7;

  RelayConfig config;
  config.floor_control = true;
  config.max_floor_grants_per_member = 2;  // two questions per student
  SessionRelay lecture(bed.source(), config);
  SessionRelay backup(bed.receiver(kBackupHost), config);
  StandbyCluster cluster(lecture, backup, bed.receiver(kBackupHost));

  ParticipantConfig pconfig;
  pconfig.standby = StandbyMode::kHot;  // pre-subscribed backup channel
  std::vector<std::unique_ptr<Participant>> students;
  for (std::size_t i = 0; i < kStudents; ++i) {
    students.push_back(std::make_unique<Participant>(
        bed.receiver(i), lecture.channel(), bed.source().address(),
        backup.channel(), bed.receiver(kBackupHost).address(), pconfig));
    lecture.authorize(bed.receiver(i).address());
    backup.authorize(bed.receiver(i).address());
    students.back()->join();
  }
  bed.run_for(sim::seconds(1));
  cluster.start();
  lecture.start();

  // --- the lecture ------------------------------------------------------
  std::printf("lecture channel %s, backup %s\n",
              lecture.channel().to_string().c_str(),
              backup.channel().to_string().c_str());
  for (int slide = 1; slide <= 3; ++slide) {
    lecture.send_as_primary(30'000);  // a slide's worth of video
    bed.run_for(sim::seconds(2));
  }

  // --- questions --------------------------------------------------------
  // Students 0 and 1 both raise their hands; the floor serializes them.
  students[0]->request_floor();
  students[1]->request_floor();
  bed.run_for(sim::milliseconds(200));
  std::printf("floor: %s\n",
              lecture.floor_holder()
                  ? lecture.floor_holder()->to_string().c_str()
                  : "(none)");
  students[0]->speak(2'000);  // the question
  bed.run_for(sim::milliseconds(200));
  students[0]->release_floor();
  bed.run_for(sim::milliseconds(200));
  std::printf("floor passed to: %s\n",
              lecture.floor_holder()
                  ? lecture.floor_holder()->to_string().c_str()
                  : "(none)");
  students[1]->speak(2'000);
  students[1]->release_floor();
  bed.run_for(sim::seconds(1));

  // Student 2 tries to heckle without the floor — dropped at the SR.
  students[2]->speak(9'000);
  bed.run_for(sim::seconds(1));
  std::printf("frames relayed: %llu, dropped (no floor): %llu\n",
              static_cast<unsigned long long>(lecture.stats().frames_relayed),
              static_cast<unsigned long long>(lecture.stats().dropped_no_floor));

  // --- the SR host crashes mid-lecture -----------------------------------
  std::printf("primary SR fails at t=%.1fs...\n",
              sim::to_seconds(bed.net().now()));
  lecture.stop();
  bed.run_for(sim::seconds(6));
  std::printf("backup promoted: %s; students failed over: ",
              cluster.backup_active() ? "yes" : "no");
  for (const auto& s : students) std::printf("%d", s->failed_over() ? 1 : 0);
  std::printf("\n");

  backup.send_as_primary(30'000);  // the lecture continues
  bed.run_for(sim::seconds(2));
  std::size_t got_continuation = 0;
  for (const auto& s : students) {
    if (!s->deliveries().empty() && s->deliveries().back().via_backup) {
      ++got_continuation;
    }
  }
  std::printf("students receiving via backup: %zu / %zu\n", got_continuation,
              students.size());

  // Per-student delivery log with SR sequence numbers (reliable relaying
  // hook, §4.2): any gap would be visible here.
  const auto missing = students[0]->missing_seqs();
  std::printf("student 0: %zu frames, %zu sequence gaps\n",
              students[0]->deliveries().size(), missing.size());
  return 0;
}
