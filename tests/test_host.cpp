// ExpressHost service-interface tests: the §2.1 API surface, app
// unicast, handlers, silent-mode failure injection, and error paths.
#include <gtest/gtest.h>

#include <optional>

#include "helpers.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using workload::make_star;

TEST(Host, RejectsAttachingToRouterNode) {
  net::Topology topo;
  const auto r = topo.add_router();
  topo.add_link(r, topo.add_host());
  net::Network network(std::move(topo));
  EXPECT_THROW(network.attach<ExpressHost>(r), std::logic_error);
}

TEST(Host, RejectsMultihomedHosts) {
  net::Topology topo;
  const auto h = topo.add_host();
  topo.add_link(h, topo.add_router());
  topo.add_link(h, topo.add_router());
  net::Network network(std::move(topo));
  EXPECT_THROW(network.attach<ExpressHost>(h), std::logic_error);
}

TEST(Host, ChannelSpaceExhaustionThrows) {
  // Not by allocating 2^24 channels — by checking the guard directly
  // via a tight loop on a fresh host is too slow; instead confirm the
  // allocator hands out strictly increasing channel indices.
  ExpressNetwork sim(make_star(1, 1));
  std::uint32_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const auto ch = sim.source().allocate_channel();
    EXPECT_GT(ch.dest.channel_index(), prev);
    prev = ch.dest.channel_index();
  }
}

TEST(Host, AppUnicastReachesHandler) {
  ExpressNetwork sim(make_star(2, 1));
  std::optional<std::uint64_t> got;
  sim.receiver(1).set_unicast_handler(
      [&](const net::Packet& packet, sim::Time) { got = packet.sequence; });
  sim.receiver(0).send_app_unicast(sim.receiver(1).address(), 300, 42);
  sim.run_for(sim::seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42u);
}

TEST(Host, DataHandlerSeesPayloadHeader) {
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  std::vector<std::uint8_t> seen;
  sim.receiver(0).set_data_handler(
      [&](const net::Packet& packet, sim::Time) { seen = packet.payload; });
  sim.source().send(ch, 100, 1, {0xAB, 0xCD});
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{0xAB, 0xCD}));
}

TEST(Host, SilentHostDeliversNothingToApp) {
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  sim.receiver(0).set_silent(true);
  sim.source().send(ch, 100, 1);
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(sim.receiver(0).deliveries().empty());
  sim.receiver(0).set_silent(false);
  sim.source().send(ch, 100, 2);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(sim.receiver(0).deliveries().size(), 1u);
  EXPECT_EQ(sim.receiver(0).deliveries()[0].sequence, 2u);
}

TEST(Host, UnsubscribedDeleteIsANoop) {
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  const auto counts_before = sim.receiver(0).stats().counts_sent;
  sim.receiver(0).delete_subscription(ch);  // never subscribed
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receiver(0).stats().counts_sent, counts_before);
}

TEST(Host, CountQueryGuardResolvesOnDeadNetwork) {
  // The first-hop link dies right after the query: the local guard
  // timer must still resolve the callback (partial, zero).
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));

  // Cut the source's access link so the reply can never arrive.
  const auto iface = sim.net().topology().node(sim.roles().source_host)
                         .interfaces.at(0);
  std::optional<CountResult> result;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(2),
                           [&](CountResult r) { result = r; });
  sim.net().set_link_up(iface, false);
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_EQ(result->count, 0);
}

TEST(Host, VoteHandlersReceiveDistinctCountIds) {
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  sim.receiver(0).set_count_handler(ecmp::kAppRangeBegin + 1,
                                    [] { return std::int64_t{11}; });
  sim.receiver(0).set_count_handler(ecmp::kAppRangeBegin + 2,
                                    [] { return std::int64_t{22}; });
  std::optional<CountResult> a, b;
  sim.source().count_query(ch, ecmp::kAppRangeBegin + 1, sim::seconds(2),
                           [&](CountResult r) { a = r; });
  sim.run_for(sim::seconds(5));
  sim.source().count_query(ch, ecmp::kAppRangeBegin + 2, sim::seconds(2),
                           [&](CountResult r) { b = r; });
  sim.run_for(sim::seconds(5));
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->count, 11);
  EXPECT_EQ(b->count, 22);
}

TEST(Host, ResubscribeAfterUnsubscribeWorks) {
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (int round = 0; round < 3; ++round) {
    sim.receiver(0).new_subscription(ch);
    sim.run_for(sim::seconds(1));
    sim.source().send(ch, 100, static_cast<std::uint64_t>(round));
    sim.run_for(sim::seconds(1));
    sim.receiver(0).delete_subscription(ch);
    sim.run_for(sim::seconds(1));
  }
  EXPECT_EQ(sim.receiver(0).deliveries().size(), 3u);
  EXPECT_EQ(sim.total_fib_entries(), 0u);
}

TEST(Host, GeneralQueryTriggersReannounce) {
  // §3.3: an all-channels CountQuery solicits Counts for everything the
  // host subscribes to — used after router restarts.
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId ch1 = sim.source().allocate_channel();
  const ip::ChannelId ch2 = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch1);
  sim.receiver(0).new_subscription(ch2);
  sim.run_for(sim::seconds(1));
  const auto sent_before = sim.receiver(0).stats().counts_sent;

  // Simulate the edge router's general query by having the router issue
  // a kAllChannelsId query on the host interface (UDP-mode machinery).
  ExpressRouter& edge = sim.router(1);
  (void)edge;
  // Craft it via the router's own interface-mode refresh is indirect;
  // instead verify the host's response logic directly through the wire:
  net::Packet packet;
  packet.src = sim.net().topology().node(edge.id()).address;
  packet.dst = sim.receiver(0).address();
  packet.protocol = ip::Protocol::kEcmp;
  ecmp::CountQuery general;
  general.channel = ch1;  // channel field unused for all-channels
  general.count_id = ecmp::kAllChannelsId;
  packet.payload = ecmp::encode(ecmp::Message{general});
  sim.net().send_to_neighbor(edge.id(), sim.roles().receiver_hosts[0],
                             std::move(packet));
  sim.run_for(sim::seconds(1));
  // One Count re-announced per subscribed channel.
  EXPECT_EQ(sim.receiver(0).stats().counts_sent, sent_before + 2);
}

}  // namespace
}  // namespace express::test
