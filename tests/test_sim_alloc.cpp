// Heap-traffic tests for the simulator core.
//
// This file overrides global operator new/delete to count allocations,
// proving the headline property of the slab scheduler: once warmed up,
// a steady-state schedule → dispatch cycle touches the allocator zero
// times. It lives in its own test binary so the counting overrides
// cannot perturb (or be perturbed by) the other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/scheduler.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

// Counting overrides. gtest and the runtime allocate freely around the
// measured regions; only the deltas inside them matter.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace express::sim {
namespace {

// A capture the size of the real transmit closures: a packet-sized blob
// plus a couple of pointers. Must fit InlineFunction's inline buffer.
struct Blob {
  unsigned char bytes[64];
};

TEST(SchedulerAllocation, SteadyStateDispatchIsAllocationFree) {
  Scheduler s;
  std::uint64_t fired = 0;
  Blob blob{};

  // Warm up: grow the slab, free list, and heap to their high-water
  // mark, and let the closure machinery settle.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 64; ++i) {
      s.schedule_after(milliseconds(i), [&fired, blob] {
        ++fired;
        (void)blob;
      });
    }
    s.run();
  }

  const std::uint64_t before = allocation_count();
  const std::uint64_t fired_before = fired;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) {
      s.schedule_after(milliseconds(i), [&fired, blob] {
        ++fired;
        (void)blob;
      });
    }
    s.run();
  }
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u) << "steady-state dispatch hit the heap";
  EXPECT_EQ(fired - fired_before, 100u * 64u);
}

TEST(SchedulerAllocation, SelfReschedulingTimerIsAllocationFree) {
  // The common protocol-timer pattern: a handler that re-arms itself.
  // The slot is recycled before the handler runs, so the timer reuses
  // its own record forever.
  Scheduler s;
  std::uint64_t ticks = 0;

  struct TimerLoop {
    Scheduler& s;
    std::uint64_t& ticks;
    std::uint64_t remaining;
    Blob blob{};
    void operator()() {
      ++ticks;
      if (--remaining > 0) {
        s.schedule_after(milliseconds(10), TimerLoop{s, ticks, remaining});
      }
    }
  };

  s.schedule_after(milliseconds(10), TimerLoop{s, ticks, 8});
  s.run();  // warm-up ticks

  const std::uint64_t before = allocation_count();
  s.schedule_after(milliseconds(10), TimerLoop{s, ticks, 1000});
  s.run();
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(ticks, 8u + 1000u);
  EXPECT_EQ(after - before, 0u) << "timer re-arm hit the heap";
}

TEST(SchedulerAllocation, CancellationIsAllocationFree) {
  Scheduler s;
  for (int round = 0; round < 4; ++round) {  // warm up
    std::vector<EventHandle> handles;
    handles.reserve(32);
    for (int i = 0; i < 32; ++i) {
      handles.push_back(s.schedule_after(milliseconds(i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    s.run();
  }

  std::vector<EventHandle> handles;
  handles.reserve(32);
  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 50; ++round) {
    handles.clear();
    for (int i = 0; i < 32; ++i) {
      handles.push_back(s.schedule_after(milliseconds(i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    s.run();
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "cancel path hit the heap";
}

TEST(SchedulerAllocation, SimulationClosuresStayInline) {
  // InlineFunction heap-boxes closures larger than its inline buffer.
  // None of the simulator's own closures should ever be boxed; the
  // counter is cumulative, so by the time this binary's tests have
  // exercised the scheduler it must still read zero.
  EXPECT_EQ(InlineFunction::boxed_count(), 0u);

  // Sanity-check that the counter works at all: an oversized closure
  // must be boxed (and allocate).
  struct Huge {
    unsigned char bytes[256];
  };
  const std::uint64_t before = allocation_count();
  Huge huge{};
  InlineFunction f{[huge] { (void)huge; }};
  f();
  EXPECT_EQ(InlineFunction::boxed_count(), 1u);
  EXPECT_GT(allocation_count(), before);
}

}  // namespace
}  // namespace express::sim
