// Reliable block distribution (src/reliable): NACK counting through the
// routers, channel-wide and subcast repair, completion invariants.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "helpers.hpp"
#include "reliable/publisher.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using reliable::Publisher;
using reliable::PublisherConfig;
using reliable::RepairReport;
using reliable::Subscriber;
using workload::make_kary_tree;

TEST(Reliable, LosslessRunNeedsNoRepairs) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Publisher publisher(sim.source(), ch);
  std::vector<std::unique_ptr<Subscriber>> subs;
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    subs.push_back(std::make_unique<Subscriber>(sim.receiver(i), ch, 10));
  }
  sim.run_for(sim::seconds(1));
  publisher.publish(10);
  sim.run_for(sim::seconds(1));

  std::optional<RepairReport> report;
  publisher.run_repair_round([&](RepairReport r) { report = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->blocks_missing.empty());
  EXPECT_EQ(report->total_nacks, 0);
  EXPECT_EQ(publisher.retransmissions(), 0u);
  for (const auto& s : subs) {
    EXPECT_TRUE(s->complete());
  }
}

TEST(Reliable, LateJoinerIsRepairedByRetransmission) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Publisher publisher(sim.source(), ch);
  Subscriber early(sim.receiver(0), ch, 8);
  sim.run_for(sim::seconds(1));
  publisher.publish(8);
  sim.run_for(sim::seconds(1));

  // A subscriber appearing after all transmissions missed everything.
  Subscriber late(sim.receiver(3), ch, 8);
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(early.complete());
  EXPECT_FALSE(late.complete());
  EXPECT_EQ(late.missing().size(), 8u);

  std::optional<RepairReport> report;
  publisher.run_repair_round([&](RepairReport r) { report = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->blocks_missing.size(), 8u);
  EXPECT_EQ(report->total_nacks, 8);
  EXPECT_TRUE(late.complete());
  EXPECT_TRUE(early.complete());
}

TEST(Reliable, SubcastRepairSparesCompleteSubtrees) {
  // Late joiners all sit under the last leaf router; a repair point
  // there keeps repair traffic off the rest of the tree.
  ExpressNetwork sim(make_kary_tree(2, 2, {}, 2));  // 8 hosts, 2 per leaf
  const ip::ChannelId ch = sim.source().allocate_channel();
  std::vector<std::unique_ptr<Subscriber>> early;
  for (std::size_t i = 0; i < 6; ++i) {
    early.push_back(std::make_unique<Subscriber>(sim.receiver(i), ch, 5));
  }
  sim.run_for(sim::seconds(1));

  PublisherConfig config;
  config.repair_point =
      sim.net().topology().node(sim.router(sim.router_count() - 1).id()).address;
  Publisher publisher(sim.source(), ch, config);
  publisher.publish(5);
  sim.run_for(sim::seconds(1));

  Subscriber late_a(sim.receiver(6), ch, 5);
  Subscriber late_b(sim.receiver(7), ch, 5);
  sim.run_for(sim::seconds(1));

  const auto deliveries_before = early[0]->received_count();
  std::optional<RepairReport> report;
  publisher.run_repair_round([&](RepairReport r) { report = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->blocks_missing.size(), 5u);
  EXPECT_EQ(report->total_nacks, 10);  // two hosts x five blocks
  EXPECT_TRUE(late_a.complete());
  EXPECT_TRUE(late_b.complete());
  // The early subtrees saw none of the repair traffic.
  EXPECT_EQ(early[0]->received_count(), deliveries_before);
  std::uint64_t repair_deliveries = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    repair_deliveries += sim.receiver(i).deliveries().size();
  }
  EXPECT_EQ(repair_deliveries, 6u * 5u);  // exactly the original blocks
}

TEST(Reliable, RepairRoundsConvergeAndThenStayQuiet) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Publisher publisher(sim.source(), ch);
  Subscriber early(sim.receiver(0), ch, 4);
  sim.run_for(sim::seconds(1));
  publisher.publish(4);
  sim.run_for(sim::seconds(1));
  Subscriber late(sim.receiver(1), ch, 4);
  sim.run_for(sim::seconds(1));

  std::vector<RepairReport> reports;
  publisher.run_repair_round([&](RepairReport r) { reports.push_back(r); });
  sim.run_for(sim::seconds(10));
  publisher.run_repair_round([&](RepairReport r) { reports.push_back(r); });
  sim.run_for(sim::seconds(10));
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].blocks_missing.size(), 4u);
  EXPECT_TRUE(reports[1].blocks_missing.empty());  // converged
  EXPECT_EQ(publisher.rounds_run(), 2u);
}

}  // namespace
}  // namespace express::test
