// Reliable block distribution (src/reliable): NACK counting through the
// routers, channel-wide and subcast repair, completion invariants.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "helpers.hpp"
#include "net/impairment.hpp"
#include "relay/session_relay.hpp"
#include "reliable/publisher.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using reliable::CompletionReport;
using reliable::Publisher;
using reliable::PublisherConfig;
using reliable::RepairReport;
using reliable::Subscriber;
using workload::make_kary_tree;

/// Bernoulli impairment on every receiver's drop cable.
void impair_receiver_links(ExpressNetwork& sim, double p,
                           std::uint64_t seed) {
  net::ImpairmentConfig lossy;
  lossy.loss.kind = net::LossModel::Kind::kBernoulli;
  lossy.loss.p = p;
  sim.net().seed_impairments(seed);
  for (net::NodeId host : sim.roles().receiver_hosts) {
    sim.net().set_link_impairments(
        sim.net().topology().node(host).interfaces.at(0), lossy);
  }
}

TEST(Reliable, LosslessRunNeedsNoRepairs) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Publisher publisher(sim.source(), ch);
  std::vector<std::unique_ptr<Subscriber>> subs;
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    subs.push_back(std::make_unique<Subscriber>(sim.receiver(i), ch, 10));
  }
  sim.run_for(sim::seconds(1));
  publisher.publish(10);
  sim.run_for(sim::seconds(1));

  std::optional<RepairReport> report;
  publisher.run_repair_round([&](RepairReport r) { report = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->blocks_missing.empty());
  EXPECT_EQ(report->total_nacks, 0);
  EXPECT_EQ(publisher.retransmissions(), 0u);
  for (const auto& s : subs) {
    EXPECT_TRUE(s->complete());
  }
}

TEST(Reliable, LateJoinerIsRepairedByRetransmission) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Publisher publisher(sim.source(), ch);
  Subscriber early(sim.receiver(0), ch, 8);
  sim.run_for(sim::seconds(1));
  publisher.publish(8);
  sim.run_for(sim::seconds(1));

  // A subscriber appearing after all transmissions missed everything.
  Subscriber late(sim.receiver(3), ch, 8);
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(early.complete());
  EXPECT_FALSE(late.complete());
  EXPECT_EQ(late.missing().size(), 8u);

  std::optional<RepairReport> report;
  publisher.run_repair_round([&](RepairReport r) { report = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->blocks_missing.size(), 8u);
  EXPECT_EQ(report->total_nacks, 8);
  EXPECT_TRUE(late.complete());
  EXPECT_TRUE(early.complete());
}

TEST(Reliable, SubcastRepairSparesCompleteSubtrees) {
  // Late joiners all sit under the last leaf router; a repair point
  // there keeps repair traffic off the rest of the tree.
  ExpressNetwork sim(make_kary_tree(2, 2, {}, 2));  // 8 hosts, 2 per leaf
  const ip::ChannelId ch = sim.source().allocate_channel();
  std::vector<std::unique_ptr<Subscriber>> early;
  for (std::size_t i = 0; i < 6; ++i) {
    early.push_back(std::make_unique<Subscriber>(sim.receiver(i), ch, 5));
  }
  sim.run_for(sim::seconds(1));

  PublisherConfig config;
  config.repair_point =
      sim.net().topology().node(sim.router(sim.router_count() - 1).id()).address;
  Publisher publisher(sim.source(), ch, config);
  publisher.publish(5);
  sim.run_for(sim::seconds(1));

  Subscriber late_a(sim.receiver(6), ch, 5);
  Subscriber late_b(sim.receiver(7), ch, 5);
  sim.run_for(sim::seconds(1));

  const auto deliveries_before = early[0]->received_count();
  std::optional<RepairReport> report;
  publisher.run_repair_round([&](RepairReport r) { report = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->blocks_missing.size(), 5u);
  EXPECT_EQ(report->total_nacks, 10);  // two hosts x five blocks
  EXPECT_TRUE(late_a.complete());
  EXPECT_TRUE(late_b.complete());
  // The early subtrees saw none of the repair traffic.
  EXPECT_EQ(early[0]->received_count(), deliveries_before);
  std::uint64_t repair_deliveries = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    repair_deliveries += sim.receiver(i).deliveries().size();
  }
  EXPECT_EQ(repair_deliveries, 6u * 5u);  // exactly the original blocks
}

TEST(Reliable, RepairRoundsConvergeAndThenStayQuiet) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Publisher publisher(sim.source(), ch);
  Subscriber early(sim.receiver(0), ch, 4);
  sim.run_for(sim::seconds(1));
  publisher.publish(4);
  sim.run_for(sim::seconds(1));
  Subscriber late(sim.receiver(1), ch, 4);
  sim.run_for(sim::seconds(1));

  std::vector<RepairReport> reports;
  publisher.run_repair_round([&](RepairReport r) { reports.push_back(r); });
  sim.run_for(sim::seconds(10));
  publisher.run_repair_round([&](RepairReport r) { reports.push_back(r); });
  sim.run_for(sim::seconds(10));
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].blocks_missing.size(), 4u);
  EXPECT_TRUE(reports[1].blocks_missing.empty());  // converged
  EXPECT_EQ(publisher.rounds_run(), 2u);
}

TEST(Reliable, RunToCompletionRepairsBernoulliLoss) {
  // Every receiver's drop cable loses ~30% of data packets; the
  // completion loop must keep counting and retransmitting (repairs
  // cross the same lossy links) until every block's NACK count is zero.
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Publisher publisher(sim.source(), ch);
  std::vector<std::unique_ptr<Subscriber>> subs;
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    subs.push_back(std::make_unique<Subscriber>(sim.receiver(i), ch, 12));
  }
  sim.run_for(sim::seconds(1));  // joins settle losslessly

  impair_receiver_links(sim, 0.3, 0xBADD1CE5);
  publisher.publish(12);
  sim.run_for(sim::seconds(2));
  ASSERT_GT(sim.net().stats().packets_dropped_loss, 0u);

  std::optional<CompletionReport> done;
  publisher.run_to_completion([&](CompletionReport r) { done = r; });
  sim.run_for(sim::seconds(200));  // bounded backoff: worst case ~2 min

  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->complete);
  EXPECT_EQ(done->residual_nacks, 0);
  EXPECT_GE(done->rounds, 2u);  // at least one repair round + clean recount
  EXPECT_GT(done->retransmissions, 0u);
  // No candidates configured: everything went channel-wide.
  EXPECT_EQ(done->subcast_repairs, 0u);
  EXPECT_EQ(done->channel_repairs, done->retransmissions);
  for (const auto& s : subs) {
    EXPECT_TRUE(s->complete());
  }
}

TEST(Reliable, RunToCompletionSubcastsThroughFirstCoveringCandidate) {
  // Loss localized under the last leaf router. The first candidate's
  // subtree counts zero NACKs (not covering) and must be skipped; the
  // second counts the full total and carries all repairs by subcast,
  // keeping repair traffic off the six complete subtrees (§2.1).
  ExpressNetwork sim(make_kary_tree(2, 2, {}, 2));  // 8 hosts, 2 per leaf
  const ip::ChannelId ch = sim.source().allocate_channel();
  std::vector<std::unique_ptr<Subscriber>> early;
  for (std::size_t i = 0; i < 6; ++i) {
    early.push_back(std::make_unique<Subscriber>(sim.receiver(i), ch, 5));
  }
  sim.run_for(sim::seconds(1));

  const net::Topology& topo = sim.net().topology();
  PublisherConfig config;
  config.repair_candidates = {
      topo.node(sim.router(sim.router_count() - 2).id()).address,  // clean
      topo.node(sim.router(sim.router_count() - 1).id()).address,  // covers
  };
  Publisher publisher(sim.source(), ch, config);
  publisher.publish(5);
  sim.run_for(sim::seconds(1));

  Subscriber late_a(sim.receiver(6), ch, 5);
  Subscriber late_b(sim.receiver(7), ch, 5);
  sim.run_for(sim::seconds(1));

  const auto deliveries_before = early[0]->received_count();
  std::optional<CompletionReport> done;
  publisher.run_to_completion([&](CompletionReport r) { done = r; });
  sim.run_for(sim::seconds(60));

  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->complete);
  EXPECT_EQ(done->rounds, 2u);  // one repair round, one clean recount
  EXPECT_EQ(done->subcast_repairs, 5u);
  EXPECT_EQ(done->channel_repairs, 0u);
  EXPECT_TRUE(late_a.complete());
  EXPECT_TRUE(late_b.complete());
  // The spared subtrees saw none of the repair traffic.
  EXPECT_EQ(early[0]->received_count(), deliveries_before);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sim.receiver(i).deliveries().size(), 5u) << "receiver " << i;
  }
}

TEST(Reliable, RunToCompletionFallsBackChannelWideWhenNoCandidateCovers) {
  // Loss split across two different leaf subtrees; the lone candidate
  // only covers one of them, so its kNackTotalId count (5) falls short
  // of the round total (10) and the round must repair channel-wide.
  ExpressNetwork sim(make_kary_tree(2, 2, {}, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  std::vector<std::unique_ptr<Subscriber>> early;
  for (std::size_t i : {1, 2, 3, 4, 5, 7}) {
    early.push_back(std::make_unique<Subscriber>(sim.receiver(i), ch, 5));
  }
  sim.run_for(sim::seconds(1));

  PublisherConfig config;
  config.repair_candidates = {
      sim.net().topology().node(sim.router(sim.router_count() - 1).id()).address};
  Publisher publisher(sim.source(), ch, config);
  publisher.publish(5);
  sim.run_for(sim::seconds(1));

  Subscriber late_first(sim.receiver(0), ch, 5);  // first leaf subtree
  Subscriber late_last(sim.receiver(6), ch, 5);   // last leaf subtree
  sim.run_for(sim::seconds(1));

  std::optional<CompletionReport> done;
  publisher.run_to_completion([&](CompletionReport r) { done = r; });
  sim.run_for(sim::seconds(60));

  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->complete);
  EXPECT_EQ(done->rounds, 2u);
  EXPECT_EQ(done->subcast_repairs, 0u);
  EXPECT_EQ(done->channel_repairs, 5u);
  EXPECT_TRUE(late_first.complete());
  EXPECT_TRUE(late_last.complete());
}

TEST(Reliable, RunToCompletionWithNothingPublishedCompletesImmediately) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Publisher publisher(sim.source(), ch);
  std::optional<CompletionReport> done;
  publisher.run_to_completion([&](CompletionReport r) { done = r; });
  ASSERT_TRUE(done.has_value());  // synchronous: nothing to count
  EXPECT_TRUE(done->complete);
  EXPECT_EQ(done->rounds, 0u);
  EXPECT_EQ(done->retransmissions, 0u);
}

TEST(Reliable, RunToCompletionGivesUpAfterMaxRounds) {
  // A receiver whose drop cable loses *every* data packet can answer
  // NACK queries (control is TCP-modeled, unimpaired) but can never be
  // repaired: the loop must stop at max_rounds with complete = false
  // and report the outstanding NACKs.
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  Subscriber sub(sim.receiver(0), ch, 4);
  sim.run_for(sim::seconds(1));

  net::ImpairmentConfig black_hole;
  black_hole.loss.kind = net::LossModel::Kind::kBernoulli;
  black_hole.loss.p = 1.0;
  sim.net().seed_impairments(0xD0A);
  const net::NodeId host = sim.roles().receiver_hosts.at(0);
  sim.net().set_link_impairments(
      sim.net().topology().node(host).interfaces.at(0), black_hole);

  PublisherConfig config;
  config.max_rounds = 3;
  config.initial_backoff = sim::milliseconds(100);
  config.max_backoff = sim::milliseconds(200);
  Publisher publisher(sim.source(), ch, config);
  publisher.publish(4);
  sim.run_for(sim::seconds(1));
  EXPECT_FALSE(sub.complete());

  std::optional<CompletionReport> done;
  publisher.run_to_completion([&](CompletionReport r) { done = r; });
  sim.run_for(sim::seconds(60));

  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->complete);
  EXPECT_EQ(done->rounds, 3u);
  EXPECT_EQ(done->residual_nacks, 4);  // one host x four blocks, every round
  EXPECT_EQ(done->retransmissions, 12u);  // 4 blocks x 3 futile rounds
  EXPECT_FALSE(sub.complete());
}

TEST(Reliable, ComposesWithSessionRelayChannel) {
  // A reliable::Publisher sourcing the session channel through the
  // relay host: heartbeats (zero data bytes) share the channel without
  // corrupting block tracking, and run_to_completion repairs a late
  // joiner on the relay's channel.
  ExpressNetwork sim(make_kary_tree(2, 2));
  relay::SessionRelay relay(sim.source());
  relay.start();
  Publisher publisher(relay.host(), relay.channel());
  Subscriber early(sim.receiver(0), relay.channel(), 6);
  sim.run_for(sim::seconds(1));
  publisher.publish(6);
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(early.complete());
  EXPECT_EQ(early.received_count(), 6u);  // heartbeats filtered out

  Subscriber late(sim.receiver(3), relay.channel(), 6);
  sim.run_for(sim::seconds(1));
  std::optional<CompletionReport> done;
  publisher.run_to_completion([&](CompletionReport r) { done = r; });
  sim.run_for(sim::seconds(30));

  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->complete);
  EXPECT_TRUE(late.complete());
  EXPECT_GT(relay.stats().heartbeats_sent, 0u);
}

}  // namespace
}  // namespace express::test
