// Batched fan-out ≡ per-event fan-out.
//
// Network::Fanout coalesces same-arrival replication copies into one
// delivery event. The contract is strict equivalence with the
// pre-batching shape (one scheduler event per copy): identical delivery
// order, identical arrival times, identical wire accounting — only the
// executed-event count may differ. These tests run the same scenarios
// with batching on and off and diff the full delivery traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "testbed/testbed.hpp"
#include "net/network.hpp"
#include "net/replicate.hpp"
#include "sim/random.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace express::net {
namespace {

/// Records every delivery with node, arrival time, and packet id.
class Recorder : public Node {
 public:
  struct Arrival {
    NodeId node = 0;
    std::uint64_t sequence = 0;
    sim::Time at{};
    std::uint32_t iface = 0;
    bool operator==(const Arrival&) const = default;
  };

  Recorder(Network& network, NodeId id, std::vector<Arrival>& sink)
      : Node(network, id), sink_(sink) {}
  void handle_packet(const Packet& packet, std::uint32_t in_iface) override {
    sink_.push_back({id(), packet.sequence, network().now(), in_iface});
  }

 private:
  std::vector<Arrival>& sink_;
};

Packet data_packet(std::uint32_t bytes, std::uint64_t seq) {
  Packet p;
  p.src = ip::Address(1, 1, 1, 1);
  p.dst = ip::Address(232, 0, 0, 1);
  p.protocol = ip::Protocol::kUdp;
  p.data_bytes = bytes;
  p.sequence = seq;
  p.ttl = 32;
  return p;
}

/// A star with heterogeneous links: some spokes share identical
/// (delay, bandwidth) so their copies arrive at the same instant and
/// coalesce; others differ so groups must split. Replicates a stream
/// of packets from the hub and returns the full delivery trace.
std::vector<Recorder::Arrival> run_star(bool batching) {
  Topology topo;
  const NodeId hub = topo.add_router();
  InterfaceSet oifs;
  constexpr std::uint32_t kSpokes = 24;
  for (std::uint32_t i = 0; i < kSpokes; ++i) {
    const NodeId spoke = topo.add_router();
    // Three blocks of identical links -> three coalescible groups per
    // wave, with splits at the block boundaries.
    const auto delay = sim::milliseconds(1 + (i / 8));
    topo.add_link(hub, spoke, delay, 1, 1e9);
    oifs.set(i);
  }
  Network network(std::move(topo));
  network.set_fanout_batching(batching);
  std::vector<Recorder::Arrival> trace;
  for (NodeId n = 1; n <= kSpokes; ++n) {
    network.attach<Recorder>(n, trace);
  }
  sim::Rng rng(5);
  for (std::uint64_t seq = 0; seq < 40; ++seq) {
    network.scheduler().schedule_at(
        sim::milliseconds(rng.below(20)), [&network, hub, &oifs, seq] {
          replicate(network, hub, data_packet(200, seq), oifs, {});
        });
  }
  network.run();
  return trace;
}

TEST(FanoutBatch, StarDeliveryTraceMatchesPerEventMode) {
  const auto batched = run_star(true);
  const auto per_event = run_star(false);
  ASSERT_EQ(batched.size(), per_event.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_TRUE(batched[i] == per_event[i])
        << "divergence at delivery " << i << ": batched node "
        << batched[i].node << " seq " << batched[i].sequence
        << " at " << batched[i].at.count() << " ns vs per-event node "
        << per_event[i].node << " seq " << per_event[i].sequence << " at "
        << per_event[i].at.count() << " ns";
  }
}

TEST(FanoutBatch, DownLinksAreCountedNotDelivered) {
  Topology topo;
  const NodeId hub = topo.add_router();
  const NodeId a = topo.add_router();
  const NodeId b = topo.add_router();
  const NodeId c = topo.add_router();
  topo.add_link(hub, a, sim::milliseconds(1), 1, 1e9);
  const LinkId down = topo.add_link(hub, b, sim::milliseconds(1), 1, 1e9);
  topo.add_link(hub, c, sim::milliseconds(1), 1, 1e9);
  Network network(std::move(topo));
  std::vector<Recorder::Arrival> trace;
  network.attach<Recorder>(a, trace);
  network.attach<Recorder>(b, trace);
  network.attach<Recorder>(c, trace);
  network.set_link_up(down, false);
  InterfaceSet oifs;
  oifs.set(0);
  oifs.set(1);
  oifs.set(2);
  const std::size_t copies = replicate(network, hub, data_packet(100, 1), oifs, {});
  network.run();
  EXPECT_EQ(copies, 2u);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(network.stats().packets_dropped_link_down, 1u);
  // The survivors around the dead middle interface still coalesce.
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].node, a);
  EXPECT_EQ(trace[1].node, c);
  EXPECT_EQ(trace[0].at, trace[1].at);
}

/// End-to-end equivalence on the full EXPRESS stack: the seeded-churn
/// scenario from the determinism pin, batching on vs off. Everything
/// the wire can observe must match; only the event count shrinks.
struct ChurnOutcome {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t total_link_bytes = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t data_delivered = 0;
};

ChurnOutcome run_seeded_churn(bool batching) {
  Testbed bed(workload::make_kary_tree(2, 3, {}, 2), RouterConfig{});
  bed.net().set_fanout_batching(batching);
  const ip::ChannelId channel = bed.source().allocate_channel();

  sim::Rng rng(7);
  const sim::Duration horizon = sim::seconds(10);
  const auto events = workload::poisson_churn(
      static_cast<std::uint32_t>(bed.receiver_count()), horizon,
      sim::seconds(5), sim::seconds(3), rng);
  auto& sched = bed.net().scheduler();
  for (const auto& ev : events) {
    sched.schedule_at(ev.at, [&bed, &channel, ev] {
      if (ev.join) {
        bed.receiver(ev.host_index).new_subscription(channel);
      } else {
        bed.receiver(ev.host_index).delete_subscription(channel);
      }
    });
  }
  const std::vector<std::uint8_t> header(32, 0x5A);
  std::uint64_t seq = 0;
  for (sim::Time at = sim::milliseconds(200); at < horizon;
       at += sim::milliseconds(200)) {
    sched.schedule_at(at, [&bed, &channel, &header, s = seq++] {
      bed.source().send(channel, 500, s, header);
    });
  }
  bed.net().run();

  ChurnOutcome out;
  out.packets_sent = bed.net().stats().packets_sent;
  out.bytes_sent = bed.net().stats().bytes_sent;
  out.total_link_bytes = bed.net().total_link_bytes();
  out.executed_events = sched.executed_events();
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    out.data_delivered += bed.receiver(i).stats().data_received;
  }
  return out;
}

TEST(FanoutBatch, SeededChurnMatchesPerEventMode) {
  const ChurnOutcome batched = run_seeded_churn(true);
  const ChurnOutcome per_event = run_seeded_churn(false);
  EXPECT_EQ(batched.packets_sent, per_event.packets_sent);
  EXPECT_EQ(batched.bytes_sent, per_event.bytes_sent);
  EXPECT_EQ(batched.total_link_bytes, per_event.total_link_bytes);
  EXPECT_EQ(batched.data_delivered, per_event.data_delivered);
  // Coalescing is the whole point: strictly fewer events when on.
  EXPECT_LT(batched.executed_events, per_event.executed_events);
}

}  // namespace
}  // namespace express::net
