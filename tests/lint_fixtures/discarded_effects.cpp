// Lint fixture: MUST trip `discarded-effect`. Dropping an UpstreamPlan
// on the floor means dropping the join/prune it describes. The build
// catches this via [[nodiscard]] + -Werror=unused-result; the lint
// reports it without compiling. Never compiled; consumed by
// `scripts/lint.sh --self-test`.
struct Plan {
  int total = 0;
};

struct Table {
  Plan plan_upstream_update(int channel);

  void tick() {
    plan_upstream_update(7);  // effect silently dropped
  }
};
