// archlint fixture: wire struct whose `flags` field the decode path of
// wire_gap_codec.cpp never touches (wire-field-gap fires).
#pragma once

#include <cstdint>

namespace fixture {

struct Probe {
  std::uint32_t seq = 0;
  std::uint16_t flags = 0;
  std::uint8_t ttl = 0;
};

}  // namespace fixture
