// Lint fixture: MUST trip `banned-construct` four ways — libc
// randomness, a wall-clock read, raw new, raw delete. Never compiled;
// consumed by `scripts/lint.sh --self-test`.
#include <cstdlib>
#include <ctime>

int jitter() { return rand() % 7; }  // unseeded randomness breaks replay

long wall() { return time(nullptr); }  // wall clock breaks replay

int* boxed() { return new int(4); }  // heap churn outside the slab

void drop(int* p) { delete p; }
