// Lint fixture: MUST trip `bare-suppression`. A suppression with no
// written justification is itself a violation — the annotation exists
// to record *why* the order cannot matter. Never compiled; consumed by
// `scripts/lint.sh --self-test`.
#include <unordered_map>

struct Tally {
  std::unordered_map<int, int> counts_;

  int total() {
    int sum = 0;
    // lint: order-independent
    for (const auto& [key, value] : counts_) sum += value;
    return sum;
  }
};
