// Fixture: wall-clock stamping inside the observability plane.
//
// Trace records and metrics snapshots carry simulated time only
// (DESIGN.md §11) — reading the environment clock when emitting a
// record would make two identically-seeded captures differ byte-for-
// byte. Confirms the banned-construct check covers obs-shaped code,
// not just protocol modules.
#include <chrono>
#include <cstdint>

namespace express::obs_fixture {

struct Record {
  std::int64_t time_ns = 0;
  std::uint64_t index = 0;
};

inline Record stamp_record(std::uint64_t index) {
  Record rec;
  rec.index = index;
  rec.time_ns =
      std::chrono::system_clock::now().time_since_epoch().count();
  return rec;
}

}  // namespace express::obs_fixture
