// Lint fixture: MUST trip `unordered-effectful-loop`.
//
// Iterating a hash map while emitting messages makes the packet trace
// depend on the hash seed and insertion history — the exact bug class
// behind PR 3's flush_all fix. Never compiled; consumed by
// `scripts/lint.sh --self-test`.
#include <unordered_map>

struct Net {
  void send_to(int neighbor);
};

struct Router {
  std::unordered_map<int, int> peers_;
  Net net_;

  void announce_all() {
    for (const auto& [peer, state] : peers_) {
      net_.send_to(peer);  // emission order leaks hash order
    }
  }
};
