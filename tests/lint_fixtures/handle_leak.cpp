// archlint fixture: both handle-leak shapes. (Never compiled — consumed
// by scripts/lint/archlint.py --self-test.)
#include "sim/scheduler.hpp"

namespace fixture {

class Leaky {
 public:
  void arm() {
    // VIOLATION (handle-leak): returned EventHandle is discarded.
    scheduler_->schedule_after(sim::seconds(1), [] {});
  }

 private:
  sim::Scheduler* scheduler_ = nullptr;
  // VIOLATION (handle-leak): member never cancel()ed on any teardown
  // path of Leaky.
  sim::EventHandle timer_;
};

}  // namespace fixture
