// archlint fixture: wire struct whose codec covers every field on both
// paths. Zero findings expected.
#pragma once

#include <cstdint>

namespace fixture {

struct Probe {
  std::uint32_t seq = 0;
  std::uint16_t flags = 0;
  std::uint8_t ttl = 0;
};

}  // namespace fixture
