// Fixture: parallel-shared-state must flag mutable statics and
// unordered containers in parallel-engine sources. Shard windows run
// on worker threads, so any of these is a cross-shard race waiting to
// happen. (Filename prefix `parallel_` opts this fixture into the
// check; see detlint.py SELF_TESTS.)
#include <unordered_map>

namespace express::sim {

static int window_counter = 0;  // BAD: mutable static, no guard

class FakeEngine {
 public:
  void tick() { ++window_counter; }

 private:
  static inline double drift_ = 1.0;  // BAD: mutable static member
  std::unordered_map<int, int> pending_;  // BAD: unordered container
};

}  // namespace express::sim
