// archlint fixture: clean switches — exhaustive coverage, and a subset
// justified with a partial-switch annotation. Zero findings expected.

namespace fixture {

enum class Verb : int {
  kGet = 0,
  kPut = 1,
  kDelete = 2,
};

int exhaustive(Verb v) {
  switch (v) {
    case Verb::kGet:
      return 1;
    case Verb::kPut:
      return 2;
    case Verb::kDelete:
      return 3;
  }
  return 0;
}

int justified(Verb v) {
  // lint: partial-switch (only reads matter here; writes fall through)
  switch (v) {
    case Verb::kGet:
      return 1;
    default:
      return 0;
  }
}

}  // namespace fixture
