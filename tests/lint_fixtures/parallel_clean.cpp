// Fixture: positive control for parallel-shared-state — everything a
// parallel-engine source may legitimately hold: constants, atomics,
// thread-locals, ordered containers, and guarded state carrying a
// justified suppression.
#include <atomic>
#include <map>

namespace express::sim {

inline constexpr int kMaxShards = 64;
static constexpr int kDefaultWorkers = 1;

class FakeEngine {
 public:
  int claim() { return cursor_.fetch_add(1); }

 private:
  static std::atomic<int> cursor_;
  static thread_local int tl_shard_;
  std::map<int, int> pending_;
  // lint: shared-state-guarded (written only at single-threaded barriers)
  static inline int barrier_epoch_ = 0;
};

}  // namespace express::sim
