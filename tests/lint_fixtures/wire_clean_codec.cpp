// archlint fixture codec for wire_clean.hpp: every field appears in
// both the encode and the decode path.
#include "wire_clean.hpp"

namespace fixture {

void encode_probe(const Probe& p, unsigned char* out) {
  out[0] = static_cast<unsigned char>(p.seq);
  out[4] = static_cast<unsigned char>(p.flags);
  out[6] = p.ttl;
}

Probe decode_probe(const unsigned char* in) {
  Probe p;
  p.seq = in[0];
  p.flags = in[4];
  p.ttl = in[6];
  return p;
}

}  // namespace fixture
