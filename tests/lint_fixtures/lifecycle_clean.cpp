// archlint fixture: the clean counterparts of handle_leak.cpp,
// drop_untraced.cpp and late_registration.cpp in one file — a stored
// handle cancelled by the destructor, a justified fire-and-forget, and
// constructor-path slot registration. Must produce zero findings.
#include "obs/obs.hpp"
#include "sim/scheduler.hpp"

namespace fixture {

class Tidy {
 public:
  explicit Tidy(obs::Scope scope) : scope_(scope) {
    packets_ = scope_.counter("fixture.packets");
  }
  ~Tidy() { timer_.cancel(); }

  void arm() {
    timer_ = scheduler_->schedule_after(sim::seconds(1), [] {});
    // lint: fire-and-forget (one-shot probe; the event outlives no one)
    scheduler_->schedule_after(sim::seconds(2), [] {});
  }

 private:
  obs::Scope scope_;
  obs::Counter packets_;
  sim::Scheduler* scheduler_ = nullptr;
  sim::EventHandle timer_;
};

}  // namespace fixture
