// Lint fixture: MUST trip `unordered-effectful-loop` on a FlatFib.
//
// FlatFib::entries() exposes the open-addressed table order. It is
// deterministic, but it is a function of the entire upsert/erase
// history (swap-remove + backward-shift deletion reshuffle positions),
// so emitting messages in that order is the same replay hazard as
// iterating an unordered_map. Never compiled; consumed by
// `scripts/lint.sh --self-test`.

struct FlatFib;

struct Control {
  void send_refresh(int channel);
};

struct Router {
  FlatFib& fib();
  Control control_;

  void refresh_all() {
    for (const auto& entry : fib().entries()) {
      control_.send_refresh(entry.first);  // emission order leaks table order
    }
  }

  void audit_all() {
    // Positive control: the sorted snapshot is the sanctioned way to
    // iterate with effects, and must NOT be flagged.
    for (const auto* entry : det::sorted_items(fib().entries())) {
      control_.send_refresh(entry->first);
    }
  }
};
