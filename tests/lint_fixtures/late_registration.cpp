// archlint fixture: registry slot created on the traffic path (fires)
// versus in the constructor (does not fire).
#include "obs/obs.hpp"

namespace fixture {

class Meter {
 public:
  explicit Meter(obs::Scope scope) : scope_(scope) {
    early_ = scope_.counter("fixture.early");
  }

  void on_first_packet() {
    // VIOLATION (late-registration): slot existence now depends on
    // whether traffic arrived, so snapshots diverge run-to-run.
    late_ = scope_.counter("fixture.late");
  }

 private:
  obs::Scope scope_;
  obs::Counter early_;
  obs::Counter late_;
};

}  // namespace fixture
