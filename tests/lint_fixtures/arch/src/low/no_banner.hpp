#pragma once

// VIOLATION (doc-banner): the comment below is not a banner — the file
// opens with code, so readers get no statement of what the header
// provides before the declarations start.
namespace low {

struct Undocumented {
  int value = 0;
};

}  // namespace low
