// Private implementation header of `low` (listed under [private] in
// layers.toml); only `low` itself may include it.
// Including it from `high` fires arch-private-header.
#pragma once

#include "low/base.hpp"

namespace low {

struct Detail {
  Base base;
};

}  // namespace low
