// VIOLATION (arch-layer): `low` declares no dependency on `high`, so
// this include is an upward edge in the layer DAG.
// Everything else about this header is clean.
#pragma once

#include "high/uses_low.hpp"

namespace low {

struct Upward {
  high::User user;
};

}  // namespace low
