// Clean leaf header of the `low` module: #pragma once, no dependencies.
// Gives the mini-tree a target for downward includes; nothing in
// this file should trip any check.
#pragma once

namespace low {

struct Base {
  int value = 0;
};

}  // namespace low
