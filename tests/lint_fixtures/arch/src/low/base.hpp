// Clean leaf header of the `low` module: #pragma once, no dependencies.
#pragma once

namespace low {

struct Base {
  int value = 0;
};

}  // namespace low
