// Clean: `high` is allowed to depend on `low` and includes the header
// it uses directly (self-contained).
#pragma once

#include "low/base.hpp"

namespace high {

struct User {
  low::Base base;
};

}  // namespace high
