// Clean: `high` is allowed to depend on `low` and includes the header
// it uses directly (self-contained).
// Nothing in this file should trip any check.
#pragma once

#include "low/base.hpp"

namespace high {

struct User {
  low::Base base;
};

}  // namespace high
