// VIOLATION (arch-pragma-once): header lacks the include guard.
#include "low/base.hpp"

namespace high {

struct NoPragma {
  low::Base base;
};

}  // namespace high
