// VIOLATION (arch-pragma-once): header lacks the include guard.
// The banner itself is fine; only the guard is missing.
// Everything else about this header is clean.
#include "low/base.hpp"

namespace high {

struct NoPragma {
  low::Base base;
};

}  // namespace high
