// VIOLATION (arch-private-header): low/impl_detail.hpp is private to
// `low`; `high` must go through the module's public surface.
// Everything else about this header is clean.
#pragma once

#include "low/impl_detail.hpp"

namespace high {

struct Intruder {
  low::Detail detail;
};

}  // namespace high
