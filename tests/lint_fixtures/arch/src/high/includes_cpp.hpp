// VIOLATION (arch-include-cpp): a translation unit is not an include
// surface.
// Everything else about this header is clean.
#pragma once

#include "low/base.cpp"

namespace high {

struct IncludesCpp {
  int x = 0;
};

}  // namespace high
