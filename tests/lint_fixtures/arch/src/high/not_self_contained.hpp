// VIOLATION (arch-self-containment): names low::Base but includes no
// low/ header — compiles only via someone else's transitive includes.
// Everything else about this header is clean.
#pragma once

namespace high {

struct Leaky {
  low::Base base;
};

}  // namespace high
