// Lint fixture: MUST trip `uninitialized-message-pod` twice (`seq` and
// `urgent`); `kind` is fine. Uninitialized wire bytes make encoded
// messages — and therefore traces — nondeterministic. Never compiled;
// consumed by `scripts/lint.sh --self-test`.
#include <cstdint>

struct Hello {
  std::uint32_t seq;       // flagged: no default initializer
  std::uint8_t kind = 0;   // ok
  bool urgent;             // flagged
};
