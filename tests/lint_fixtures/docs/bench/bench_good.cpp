// Clean: EXPERIMENTS.md documents `bench_good`, so the coverage check
// stays quiet. (Fixture for doclint.py --self-test; never compiled.)
int main() { return 0; }
