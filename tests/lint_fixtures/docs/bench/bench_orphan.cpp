// VIOLATION (doc-bench-orphan): no EXPERIMENTS.md entry mentions
// bench_orphan, so the committed benchmark is undocumented.
// (Fixture for doclint.py --self-test; never compiled.)
int main() { return 0; }
