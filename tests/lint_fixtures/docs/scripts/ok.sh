#!/usr/bin/env bash
# Exists so the fixture README's good gate row resolves.
exit 0
