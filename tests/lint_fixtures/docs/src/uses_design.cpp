// Source comments are scanned too: the §-reference below names a
// section the fixture DESIGN.md does not have.
// VIOLATION (doc-section-ref): see DESIGN.md §7 for the contract.
// Clean counterpart: DESIGN.md §2 resolves.
int fixture_fn() { return 0; }
