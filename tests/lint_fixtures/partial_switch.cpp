// archlint fixture: both enum-switch-gap shapes — a gap with no default
// and a gap hidden behind an unjustified default.

namespace fixture {

enum class Verb : int {
  kGet = 0,
  kPut = 1,
  kDelete = 2,
};

int no_default(Verb v) {
  // VIOLATION (enum-switch-gap): misses kDelete and has no default.
  switch (v) {
    case Verb::kGet:
      return 1;
    case Verb::kPut:
      return 2;
  }
  return 0;
}

int bare_default(Verb v) {
  // VIOLATION (enum-switch-gap): default present but unjustified.
  switch (v) {
    case Verb::kGet:
      return 1;
    default:
      return 0;
  }
}

}  // namespace fixture
