// Lint fixture: MUST trip `banned-construct` three ways — a loss model
// rolling drops with libc rand(), a std <random> engine, and a
// std distribution. Impairment randomness must come from the seeded
// sim::Rng the network owns (net::Network::seed_impairments), never
// from generators with hidden process-global or default-seeded state.
// Never compiled; consumed by `scripts/lint.sh --self-test`.
#include <cstdlib>
#include <random>

struct LossyLink {
  double p = 0.01;
  std::mt19937 engine;  // default-seeded engine: replay diverges

  bool drop_bernoulli() {
    // libc randomness: not owned by the scenario, breaks replay.
    return (rand() % 100) < static_cast<int>(p * 100);
  }

  bool drop_distribution() {
    std::bernoulli_distribution roll(p);  // hidden state, unseeded
    return roll(engine);
  }
};
