// archlint fixture: a drop counter bumped without a paired trace emit
// (fires), next to a properly traced bump (does not fire).
#include "obs/obs.hpp"

namespace fixture {

class Plane {
 public:
  void on_bad_packet() {
    // VIOLATION (drop-untraced): metric moves, replay sees nothing.
    drops_.inc();
  }

  void on_bad_packet_traced(long now) {
    drops_.inc();
    scope_.emit(now, obs::TraceType::kPacketDropped, 0, 0);
  }

 private:
  obs::Counter drops_;
  obs::Scope scope_;
};

}  // namespace fixture
