// Lint fixture: MUST produce zero findings — the positive control that
// the lints do not flag idiomatic deterministic code. Never compiled;
// consumed by `scripts/lint.sh --self-test`.
#include <cstdint>
#include <map>
#include <unordered_map>

struct Wire {
  std::uint32_t seq = 0;  // initialized POD member
};

struct Node {
  std::map<int, int> peers_;  // ordered: iteration order is defined
  std::unordered_map<int, int> cache_;

  void send_to(int neighbor);

  void announce_all() {
    for (const auto& [peer, count] : peers_) send_to(peer);
  }

  int cached_total() const {
    int sum = 0;
    // lint: order-independent (sum is commutative)
    for (const auto& [key, value] : cache_) sum += value;
    return sum;
  }
};
