// Cross-protocol data-plane equivalence: EXPRESS and PIM-SM both route
// their replication through the shared ForwardingPlane, so on the same
// topology with the same membership they must deliver exactly the same
// packet sets to the same receivers (the protocols differ in control
// cost and state, §4 — not in who gets the data).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "baseline/group_host.hpp"
#include "baseline/pim_sm.hpp"
#include "helpers.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using baseline::GroupHost;
using baseline::PimConfig;
using baseline::PimSmRouter;

constexpr std::size_t kReceiverCount = 4;
const std::set<std::size_t> kMembers = {0, 2, 3};
constexpr std::uint64_t kPackets = 5;

/// Delivered sequence sets per receiver index.
using DeliveryMatrix = std::vector<std::set<std::uint64_t>>;

DeliveryMatrix run_express() {
  ExpressNetwork sim(workload::make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i : kMembers) sim.receiver(i).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  for (std::uint64_t seq = 1; seq <= kPackets; ++seq) {
    sim.source().send(ch, 200, seq);
  }
  sim.run_for(sim::seconds(1));

  DeliveryMatrix delivered(kReceiverCount);
  for (std::size_t i = 0; i < kReceiverCount; ++i) {
    for (const auto& d : sim.receiver(i).deliveries()) {
      delivered[i].insert(d.sequence);
    }
  }
  return delivered;
}

DeliveryMatrix run_pim() {
  auto topo = workload::make_kary_tree(2, 2);
  PimConfig config;
  config.rp = topo.topology.node(topo.routers[0]).address;  // RP at the root
  const ip::Address group(225, 1, 2, 3);

  auto roles = std::move(topo);
  auto network = std::make_unique<net::Network>(std::move(roles.topology));
  std::vector<PimSmRouter*> routers;
  for (net::NodeId r : roles.routers) {
    routers.push_back(&network->attach<PimSmRouter>(r, config));
  }
  GroupHost& source = network->attach<GroupHost>(roles.source_host);
  std::vector<GroupHost*> receivers;
  for (net::NodeId h : roles.receiver_hosts) {
    receivers.push_back(&network->attach<GroupHost>(h));
  }

  for (std::size_t i : kMembers) {
    receivers[i]->join_group(group, ip::Protocol::kPim);
  }
  network->run_until(network->now() + sim::seconds(1));
  for (std::uint64_t seq = 1; seq <= kPackets; ++seq) {
    source.send_to_group(group, 200, seq);
  }
  network->run_until(network->now() + sim::seconds(1));

  DeliveryMatrix delivered(kReceiverCount);
  for (std::size_t i = 0; i < kReceiverCount; ++i) {
    for (const auto& d : receivers[i]->deliveries()) {
      delivered[i].insert(d.sequence);
    }
  }
  return delivered;
}

TEST(CrossProtocol, ExpressAndPimDeliverIdenticalPacketSets) {
  const DeliveryMatrix express = run_express();
  const DeliveryMatrix pim = run_pim();

  std::set<std::uint64_t> all;
  for (std::uint64_t seq = 1; seq <= kPackets; ++seq) all.insert(seq);

  for (std::size_t i = 0; i < kReceiverCount; ++i) {
    EXPECT_EQ(express[i], pim[i]) << "receiver " << i;
    if (kMembers.contains(i)) {
      EXPECT_EQ(express[i], all) << "receiver " << i;
    } else {
      EXPECT_TRUE(express[i].empty()) << "receiver " << i;
    }
  }
}

}  // namespace
}  // namespace express::test
