// Advanced integration: multiple channels and sources, ECMP segment
// batching, subcast edge cases, TTL, and in-flight count queries.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "helpers.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using workload::make_kary_tree;
using workload::make_line;
using workload::make_star;

TEST(MultiChannel, ChannelsFromOneSourceAreIndependent) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId news = sim.source().allocate_channel();
  const ip::ChannelId sports = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(news);
  sim.receiver(0).new_subscription(sports);
  sim.receiver(1).new_subscription(sports);
  sim.run_for(sim::seconds(1));

  sim.receiver(0).delete_subscription(news);
  sim.run_for(sim::seconds(1));

  sim.source().send(news, 100, 1);
  sim.source().send(sports, 100, 2);
  sim.run_for(sim::seconds(1));
  // receiver 0 kept sports, dropped news.
  ASSERT_EQ(sim.receiver(0).deliveries().size(), 1u);
  EXPECT_EQ(sim.receiver(0).deliveries()[0].channel, sports);
  ASSERT_EQ(sim.receiver(1).deliveries().size(), 1u);
}

TEST(MultiChannel, TwoSourcesBuildDisjointTrees) {
  ExpressNetwork sim(make_kary_tree(2, 3));
  // receiver(7) doubles as a second broadcaster.
  ExpressHost& a = sim.source();
  ExpressHost& b = sim.receiver(7);
  const ip::ChannelId cha = a.allocate_channel();
  const ip::ChannelId chb = b.allocate_channel();

  sim.receiver(0).new_subscription(cha);
  sim.receiver(1).new_subscription(chb);
  sim.run_for(sim::seconds(1));
  a.send(cha, 100, 1);
  b.send(chb, 100, 2);
  sim.run_for(sim::seconds(1));

  ASSERT_EQ(sim.receiver(0).deliveries().size(), 1u);
  EXPECT_EQ(sim.receiver(0).deliveries()[0].channel, cha);
  ASSERT_EQ(sim.receiver(1).deliveries().size(), 1u);
  EXPECT_EQ(sim.receiver(1).deliveries()[0].channel, chb);

  // FIB entries are keyed by the full (S,E): trees never interfere,
  // and each router's entries belong to channels it actually serves.
  for (std::size_t i = 0; i < sim.router_count(); ++i) {
    for (const auto& [channel, entry] : sim.router(i).fib().entries()) {
      EXPECT_TRUE(channel == cha || channel == chb);
    }
  }
}

TEST(Batching, SegmentCoalescingReducesPackets) {
  auto run = [](std::optional<sim::Duration> window) {
    RouterConfig config;
    config.batch_window = window;
    ExpressNetwork sim(make_kary_tree(2, 3, {}, 4), config);  // 32 hosts
    // Many channels churned at once: lots of simultaneous upstream
    // Counts, the §5.3 segment-packing scenario.
    std::vector<ip::ChannelId> channels;
    for (int c = 0; c < 20; ++c) {
      channels.push_back(sim.source().allocate_channel());
    }
    for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
      for (const auto& ch : channels) sim.receiver(i).new_subscription(ch);
    }
    sim.run_for(sim::seconds(2));
    for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
      for (const auto& ch : channels) sim.receiver(i).delete_subscription(ch);
    }
    sim.run_for(sim::seconds(2));
    return std::pair<std::uint64_t, std::size_t>(
        sim.net().stats().packets_sent, sim.total_fib_entries());
  };

  const auto [packets_plain, state_plain] = run(std::nullopt);
  const auto [packets_batched, state_batched] = run(sim::milliseconds(5));
  // Same protocol outcome (full teardown), far fewer packets.
  EXPECT_EQ(state_plain, 0u);
  EXPECT_EQ(state_batched, 0u);
  EXPECT_LT(packets_batched, packets_plain);
  EXPECT_LT(static_cast<double>(packets_batched),
            0.7 * static_cast<double>(packets_plain));
}

TEST(Batching, DataStillFlowsWithBatchingEnabled) {
  RouterConfig config;
  config.batch_window = sim::milliseconds(5);
  ExpressNetwork sim(make_kary_tree(2, 2), config);
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(1));
  sim.source().send(ch, 800, 1);
  sim.run_for(sim::seconds(1));
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    EXPECT_EQ(sim.receiver(i).deliveries().size(), 1u) << i;
  }

  // Counting also works across batched segments.
  std::optional<CountResult> result;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(5),
                           [&](CountResult r) { result = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, static_cast<std::int64_t>(sim.receiver_count()));
}

TEST(Subcast, ViaOffTreeRouterIsDropped) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);  // left side only
  sim.run_for(sim::seconds(1));

  // Relay through the *right* depth-1 router, which is off the tree:
  // no FIB entry, packet silently discarded (counted at the router).
  ExpressRouter& off_tree = sim.router(2);
  ASSERT_FALSE(off_tree.on_tree(ch));
  sim.source().subcast(ch, sim.net().topology().node(off_tree.id()).address,
                       500, 7);
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(sim.receiver(0).deliveries().empty());
  EXPECT_EQ(off_tree.stats().subcasts_relayed, 0u);
}

TEST(Subcast, RootRelayReachesEverySubscriber) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(1));
  sim.source().subcast(
      ch, sim.net().topology().node(sim.source_router().id()).address, 500, 9);
  sim.run_for(sim::seconds(1));
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    EXPECT_EQ(sim.receiver(i).deliveries().size(), 1u) << i;
  }
}

TEST(Ttl, DataDiesOnAbsurdlyLongPaths) {
  // 70 routers; default TTL 64: the packet must be dropped in transit
  // and never delivered, without disturbing protocol state.
  ExpressNetwork sim(make_line(70));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(5));
  ASSERT_TRUE(sim.source_router().on_tree(ch));  // joins are per-hop, fine
  sim.source().send(ch, 100, 1);
  sim.run_for(sim::seconds(5));
  EXPECT_TRUE(sim.receiver(0).deliveries().empty());
}

TEST(Counting, QueryDuringChurnStaysWithinBounds) {
  ExpressNetwork sim(make_kary_tree(2, 3));
  const ip::ChannelId ch = sim.source().allocate_channel();
  // Half join now, half join while the query is in flight.
  for (std::size_t i = 0; i < 4; ++i) sim.receiver(i).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  std::optional<CountResult> result;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(5),
                           [&](CountResult r) { result = r; });
  for (std::size_t i = 4; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->count, 4);
  EXPECT_LE(result->count, static_cast<std::int64_t>(sim.receiver_count()));
}

TEST(Counting, WeightedTreeSizeUsesLinkCosts) {
  // Line with cost-1 core links and a cost-1 host link: subscribing the
  // single receiver makes the weighted subtree size equal the link
  // count; doubling costs doubles it.
  for (std::uint32_t cost : {1u, 2u}) {
    net::Topology topo;
    const auto r0 = topo.add_router();
    const auto r1 = topo.add_router();
    const auto src = topo.add_host();
    const auto dst = topo.add_host();
    topo.add_link(r0, src, sim::milliseconds(1), 1);
    topo.add_link(r0, r1, sim::milliseconds(1), cost);
    topo.add_link(r1, dst, sim::milliseconds(1), cost);
    net::Network network(std::move(topo));
    auto& router0 = network.attach<ExpressRouter>(r0);
    network.attach<ExpressRouter>(r1);
    auto& source = network.attach<ExpressHost>(src);
    auto& sink = network.attach<ExpressHost>(dst);
    const ip::ChannelId ch = source.allocate_channel();
    sink.new_subscription(ch);
    network.run_until(sim::seconds(1));

    std::optional<CountResult> weighted;
    router0.initiate_count(ch, ecmp::kWeightedTreeSizeId, sim::seconds(2),
                           [&](CountResult r) { weighted = r; });
    network.run_until(sim::seconds(10));
    ASSERT_TRUE(weighted.has_value());
    EXPECT_EQ(weighted->count, static_cast<std::int64_t>(2 * cost));
  }
}

TEST(Counting, DomainScopedLinkCountStopsAtBoundary) {
  // §3.1's settlement example: a transit domain's ingress counts the
  // tree links used *within its domain*; the query never leaks into the
  // neighbor ISP.
  net::Topology topo;
  // src -- r0 -- r1 | r2 -- r3 -- recv   (domain A: r0,r1; B: r2,r3)
  const auto r0 = topo.add_router("a0");
  const auto r1 = topo.add_router("a1");
  const auto r2 = topo.add_router("b0");
  const auto r3 = topo.add_router("b1");
  const auto src = topo.add_host("src");
  const auto dst = topo.add_host("recv");
  topo.add_link(r0, src);
  topo.add_link(r0, r1);
  topo.add_link(r1, r2);
  topo.add_link(r2, r3);
  topo.add_link(r3, dst);
  topo.set_domain(r0, 1);
  topo.set_domain(r1, 1);
  topo.set_domain(r2, 2);
  topo.set_domain(r3, 2);
  topo.set_domain(dst, 2);  // the receiver's access link belongs to B
  topo.set_domain(src, 1);

  net::Network network(std::move(topo));
  auto& ingress_a = network.attach<ExpressRouter>(r0);
  network.attach<ExpressRouter>(r1);
  auto& ingress_b = network.attach<ExpressRouter>(r2);
  auto& egress_b = network.attach<ExpressRouter>(r3);
  auto& source = network.attach<ExpressHost>(src);
  auto& sink = network.attach<ExpressHost>(dst);
  (void)egress_b;

  const ip::ChannelId ch = source.allocate_channel();
  sink.new_subscription(ch);
  network.run_until(sim::seconds(1));

  // Domain B's ingress: links within B are r2-r3 and r3-recv.
  std::optional<CountResult> b_links;
  ingress_b.initiate_count(ch, ecmp::kDomainLinkCountId, sim::seconds(2),
                           [&](CountResult r) { b_links = r; });
  network.run_until(sim::seconds(5));
  ASSERT_TRUE(b_links.has_value());
  EXPECT_EQ(b_links->count, 2);

  // Domain A's head-end: only r0-r1 is intra-A (r1-r2 crosses).
  std::optional<CountResult> a_links;
  ingress_a.initiate_count(ch, ecmp::kDomainLinkCountId, sim::seconds(2),
                           [&](CountResult r) { a_links = r; });
  network.run_until(sim::seconds(10));
  ASSERT_TRUE(a_links.has_value());
  EXPECT_EQ(a_links->count, 1);

  // Unscoped link count from A's head-end sees the whole tree (4 links
  // downstream of r0).
  std::optional<CountResult> all_links;
  ingress_a.initiate_count(ch, ecmp::kLinkCountId, sim::seconds(2),
                           [&](CountResult r) { all_links = r; });
  network.run_until(sim::seconds(15));
  ASSERT_TRUE(all_links.has_value());
  EXPECT_EQ(all_links->count, 4);
}

TEST(Discovery, NeighborQueriesFlowAndSessionsStayAlive) {
  // §3.3: periodic neighbors CountQuery on router-router links; the
  // replies keep sessions alive in the NeighborTable.
  RouterConfig config;
  config.neighbor_discovery = true;
  config.neighbor_query_interval = sim::seconds(5);
  config.neighbor_timeout = sim::seconds(16);
  ExpressNetwork sim(make_kary_tree(2, 2), config);
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(60));  // many discovery rounds

  // Queries were exchanged continuously and nothing expired: the
  // subscription and tree survive untouched.
  EXPECT_GT(sim.source_router().stats().queries_sent, 10u);
  EXPECT_TRUE(sim.source_router().on_tree(ch));
  sim.source().send(ch, 100, 1);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receiver(0).deliveries().size(), 1u);
}

TEST(Scale, FiveHundredReceiversEndToEnd) {
  // Smoke test at a few hundred hosts: tree builds, data fans out to
  // everyone exactly once, count is exact, teardown leaves nothing.
  sim::Rng rng(99);
  ExpressNetwork sim(workload::make_transit_stub(8, 4, 16, rng));  // 512 hosts
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(5));
  sim.source().send(ch, 1000, 1);
  sim.run_for(sim::seconds(5));
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    delivered += sim.receiver(i).deliveries().size();
  }
  EXPECT_EQ(delivered, sim.receiver_count());

  std::optional<CountResult> result;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(10),
                           [&](CountResult r) { result = r; });
  sim.run_for(sim::seconds(20));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, static_cast<std::int64_t>(sim.receiver_count()));

  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).delete_subscription(ch);
  }
  sim.run_for(sim::seconds(5));
  EXPECT_EQ(sim.total_fib_entries(), 0u);
}

TEST(Counting, LocalRangeCountsAreNotForwardedToHosts) {
  ExpressNetwork sim(make_star(2, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  const auto answered_before = sim.receiver(0).stats().queries_answered;

  // A locally-defined countId (0x1000 range) must stop at routers.
  std::optional<CountResult> result;
  sim.source_router().initiate_count(ch, 0x1234, sim::seconds(2),
                                     [&](CountResult r) { result = r; });
  sim.run_for(sim::seconds(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(sim.receiver(0).stats().queries_answered, answered_before);
}

}  // namespace
}  // namespace express::test
