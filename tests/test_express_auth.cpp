// Integration tests for authenticated subscriptions (§2.1, §3.2, §3.5):
// channelKey registration, key validation up the tree, caching at
// intermediate routers, and rejection unwinding.
#include <gtest/gtest.h>

#include <optional>

#include "helpers.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using workload::make_kary_tree;
using workload::make_line;
using workload::make_star;

constexpr ip::ChannelKey kGoodKey = 0xFEEDFACE12345678ULL;
constexpr ip::ChannelKey kBadKey = 0x1111111111111111ULL;

class AuthTest : public ::testing::Test {
 protected:
  AuthTest() : sim_(make_kary_tree(2, 2)) {
    channel_ = sim_.source().allocate_channel();
    sim_.source().channel_key(channel_, kGoodKey);
    sim_.run_for(sim::seconds(1));
  }
  ExpressNetwork sim_;
  ip::ChannelId channel_;
};

TEST_F(AuthTest, CorrectKeyIsAccepted) {
  std::optional<ecmp::Status> status;
  sim_.receiver(0).new_subscription(channel_, kGoodKey,
                                    [&](ecmp::Status s) { status = s; });
  sim_.run_for(sim::seconds(1));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ecmp::Status::kOk);

  sim_.source().send(channel_, 100, 1);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sim_.receiver(0).deliveries().size(), 1u);
}

TEST_F(AuthTest, WrongKeyIsRejectedAndNoStateRemains) {
  std::optional<ecmp::Status> status;
  sim_.receiver(0).new_subscription(channel_, kBadKey,
                                    [&](ecmp::Status s) { status = s; });
  sim_.run_for(sim::seconds(2));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ecmp::Status::kInvalidKey);
  EXPECT_FALSE(sim_.receiver(0).subscribed(channel_));

  // The tentative join unwound everywhere: no router keeps state.
  for (std::size_t i = 0; i < sim_.router_count(); ++i) {
    EXPECT_FALSE(sim_.router(i).on_tree(channel_)) << "router " << i;
  }
  sim_.source().send(channel_, 100, 1);
  sim_.run_for(sim::seconds(1));
  EXPECT_TRUE(sim_.receiver(0).deliveries().empty());
}

TEST_F(AuthTest, MissingKeyIsRejected) {
  std::optional<ecmp::Status> status;
  sim_.receiver(1).new_subscription(channel_, std::nullopt,
                                    [&](ecmp::Status s) { status = s; });
  sim_.run_for(sim::seconds(2));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ecmp::Status::kInvalidKey);
}

TEST_F(AuthTest, ValidatedKeyIsCachedLocally) {
  // First subscriber validates against the root; a later subscriber
  // behind the same edge router is validated from the cache (§3.2:
  // "a valid key is cached so that further authenticated requests can
  // be denied or accepted locally").
  sim_.receiver(0).new_subscription(channel_, kGoodKey);
  sim_.run_for(sim::seconds(1));
  const auto root_counts = sim_.source_router().stats().counts_received;
  const auto root_responses = sim_.source_router().stats().responses_sent;

  // receiver(1) shares the depth-2 router with receiver(0).
  std::optional<ecmp::Status> status;
  sim_.receiver(1).new_subscription(channel_, kGoodKey,
                                    [&](ecmp::Status s) { status = s; });
  sim_.run_for(sim::seconds(1));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ecmp::Status::kOk);
  // Nothing new reached the root.
  EXPECT_EQ(sim_.source_router().stats().counts_received, root_counts);
  EXPECT_EQ(sim_.source_router().stats().responses_sent, root_responses);
}

TEST_F(AuthTest, CachedKeyRejectsBadJoinLocally) {
  sim_.receiver(0).new_subscription(channel_, kGoodKey);
  sim_.run_for(sim::seconds(1));
  const auto root_rejects = sim_.source_router().stats().auth_rejects;

  std::optional<ecmp::Status> status;
  sim_.receiver(1).new_subscription(channel_, kBadKey,
                                    [&](ecmp::Status s) { status = s; });
  sim_.run_for(sim::seconds(1));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ecmp::Status::kInvalidKey);
  // Rejected below the root; root never saw it.
  EXPECT_EQ(sim_.source_router().stats().auth_rejects, root_rejects);

  // The good subscriber is unaffected.
  sim_.source().send(channel_, 100, 5);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sim_.receiver(0).deliveries().size(), 1u);
  EXPECT_TRUE(sim_.receiver(1).deliveries().empty());
}

TEST_F(AuthTest, RejectionDoesNotDisturbValidatedSubtree) {
  // Good subscriber joins through a shared path; then a bad join from a
  // sibling must unwind only itself.
  sim_.receiver(2).new_subscription(channel_, kGoodKey);
  sim_.run_for(sim::seconds(1));
  sim_.receiver(3).new_subscription(channel_, kBadKey);
  sim_.run_for(sim::seconds(2));

  sim_.source().send(channel_, 100, 9);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sim_.receiver(2).deliveries().size(), 1u);
  EXPECT_TRUE(sim_.receiver(3).deliveries().empty());
}

TEST(AuthOpenChannel, KeyOnOpenChannelIsIgnored) {
  // Unauthenticated channel: a supplied key does not restrict anything.
  ExpressNetwork sim(make_star(2, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  std::optional<ecmp::Status> status;
  sim.receiver(0).new_subscription(ch, 0xABCDULL,
                                   [&](ecmp::Status s) { status = s; });
  sim.run_for(sim::seconds(1));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ecmp::Status::kOk);
  sim.source().send(ch, 100, 1);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receiver(0).deliveries().size(), 1u);
}

TEST(AuthOpenChannel, OnlySourceMayRegisterKey) {
  // A non-source host attempting channelKey() must be ignored.
  ExpressNetwork sim(make_star(2, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  // receiver(1) tries to hijack the channel by registering a key for it.
  sim.receiver(1).channel_key(ch, kBadKey);
  sim.run_for(sim::seconds(1));

  // Keyless subscription still works: no key was actually registered.
  std::optional<ecmp::Status> status;
  sim.receiver(0).new_subscription(ch, std::nullopt,
                                   [&](ecmp::Status s) { status = s; });
  sim.run_for(sim::seconds(1));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ecmp::Status::kOk);
}

TEST_F(AuthTest, SimultaneousMixedKeyJoinsSortCorrectly) {
  // Regression: a keyed and a keyless join race through the same edge
  // router before any validation returns. The upstream verdict applies
  // only to the key the router forwarded; the other join must get its
  // own verdict — good keys accepted, missing/bad keys rejected,
  // regardless of arrival order.
  std::optional<ecmp::Status> good, freeload, bad;
  sim_.receiver(0).new_subscription(channel_, kGoodKey,
                                    [&](ecmp::Status s) { good = s; });
  sim_.receiver(1).new_subscription(channel_, std::nullopt,
                                    [&](ecmp::Status s) { freeload = s; });
  sim_.receiver(2).new_subscription(channel_, kBadKey,
                                    [&](ecmp::Status s) { bad = s; });
  sim_.run_for(sim::seconds(3));
  ASSERT_TRUE(good.has_value());
  ASSERT_TRUE(freeload.has_value());
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(*good, ecmp::Status::kOk);
  EXPECT_EQ(*freeload, ecmp::Status::kInvalidKey);
  EXPECT_EQ(*bad, ecmp::Status::kInvalidKey);

  sim_.source().send(channel_, 100, 1);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sim_.receiver(0).deliveries().size(), 1u);
  EXPECT_TRUE(sim_.receiver(1).deliveries().empty());
  EXPECT_TRUE(sim_.receiver(2).deliveries().empty());
}

TEST(AuthProactive, ProactiveUpdatesCarryTheCachedKey) {
  // Regression: with proactive counting enabled on an authenticated
  // channel, aggregate updates flowing upstream must not be rejected
  // (they ride the validated session / carry the cached key).
  RouterConfig config;
  config.proactive = counting::CurveParams{0.3, 5.0, 4.0};
  ExpressNetwork sim(make_kary_tree(2, 2), config);
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.source().channel_key(ch, kGoodKey);
  sim.run_for(sim::seconds(1));
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch, kGoodKey);
  }
  sim.run_for(sim::seconds(10));  // proactive convergence window
  std::uint64_t rejects = 0;
  for (std::size_t i = 0; i < sim.router_count(); ++i) {
    rejects += sim.router(i).stats().auth_rejects;
  }
  EXPECT_EQ(rejects, 0u);
  EXPECT_EQ(sim.source_router().subtree_count(ch),
            static_cast<std::int64_t>(sim.receiver_count()));
}

TEST(AuthDeepTree, ValidationTraversesLongPath) {
  // On a 10-router line, the join carries the key all the way to the
  // root and the kOk flows all the way back.
  ExpressNetwork sim(make_line(10));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.source().channel_key(ch, kGoodKey);
  sim.run_for(sim::seconds(1));

  std::optional<ecmp::Status> status;
  sim.receiver(0).new_subscription(ch, kGoodKey,
                                   [&](ecmp::Status s) { status = s; });
  sim.run_for(sim::seconds(2));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ecmp::Status::kOk);
  sim.source().send(ch, 64, 3);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receiver(0).deliveries().size(), 1u);
}

}  // namespace
}  // namespace express::test
