// IGMP mechanics: v2 report suppression vs v3/ECMP explicit counts, and
// the v3 source-filter algebra the paper compares EXPRESS against.
#include <gtest/gtest.h>

#include "baseline/igmp.hpp"

namespace express::baseline {
namespace {

TEST(IgmpRound, SuppressionHidesTheCount) {
  sim::Rng rng(1);
  const auto result = igmp_query_round(100, /*suppression=*/true, rng);
  EXPECT_EQ(result.reports_sent, 1u);
  EXPECT_EQ(result.reports_suppressed, 99u);
  EXPECT_FALSE(result.count_is_exact);  // querier learns only "non-zero"
}

TEST(IgmpRound, NoSuppressionYieldsExactCount) {
  // ECMP UDP mode / IGMPv3 behaviour: every member answers.
  sim::Rng rng(2);
  const auto result = igmp_query_round(100, /*suppression=*/false, rng);
  EXPECT_EQ(result.reports_sent, 100u);
  EXPECT_EQ(result.observed_count, 100);
  EXPECT_TRUE(result.count_is_exact);
}

TEST(IgmpRound, EmptyLanIsSilent) {
  sim::Rng rng(3);
  for (bool suppression : {true, false}) {
    const auto result = igmp_query_round(0, suppression, rng);
    EXPECT_EQ(result.reports_sent, 0u);
    EXPECT_TRUE(result.count_is_exact);
  }
}

TEST(IgmpRound, SingleMemberIsExactEitherWay) {
  sim::Rng rng(4);
  const auto result = igmp_query_round(1, true, rng);
  EXPECT_EQ(result.reports_sent, 1u);
  EXPECT_TRUE(result.count_is_exact);
}

const ip::Address kS1(10, 0, 0, 1);
const ip::Address kS2(10, 0, 0, 2);
const ip::Address kS3(10, 0, 0, 3);

TEST(SourceFilter, DefaultReceivesNothing) {
  SourceFilter f;
  EXPECT_FALSE(f.accepts(kS1));
  EXPECT_EQ(f.mode(), SourceFilter::Mode::kInclude);
}

TEST(SourceFilter, IncludeAcceptsOnlyListed) {
  auto f = SourceFilter::include({kS1, kS2});
  EXPECT_TRUE(f.accepts(kS1));
  EXPECT_TRUE(f.accepts(kS2));
  EXPECT_FALSE(f.accepts(kS3));
}

TEST(SourceFilter, ExcludeRejectsOnlyListed) {
  auto f = SourceFilter::exclude({kS1});
  EXPECT_FALSE(f.accepts(kS1));
  EXPECT_TRUE(f.accepts(kS2));
  // EXCLUDE({}) is "receive everything" — the classic any-source join.
  auto open = SourceFilter::exclude({});
  EXPECT_TRUE(open.accepts(kS1));
}

TEST(SourceFilter, MergeIncludeInclude) {
  auto a = SourceFilter::include({kS1});
  a.merge(SourceFilter::include({kS2}));
  EXPECT_EQ(a.mode(), SourceFilter::Mode::kInclude);
  EXPECT_TRUE(a.accepts(kS1));
  EXPECT_TRUE(a.accepts(kS2));
  EXPECT_FALSE(a.accepts(kS3));
}

TEST(SourceFilter, MergeExcludeExcludeIntersects) {
  auto a = SourceFilter::exclude({kS1, kS2});
  a.merge(SourceFilter::exclude({kS2, kS3}));
  EXPECT_EQ(a.mode(), SourceFilter::Mode::kExclude);
  EXPECT_FALSE(a.accepts(kS2));  // excluded by both
  EXPECT_TRUE(a.accepts(kS1));   // someone wants it
  EXPECT_TRUE(a.accepts(kS3));
}

TEST(SourceFilter, MergeMixedSubtracts) {
  auto a = SourceFilter::exclude({kS1, kS2});
  a.merge(SourceFilter::include({kS2}));
  EXPECT_EQ(a.mode(), SourceFilter::Mode::kExclude);
  EXPECT_FALSE(a.accepts(kS1));
  EXPECT_TRUE(a.accepts(kS2));  // the include rescued kS2
  EXPECT_TRUE(a.accepts(kS3));

  auto b = SourceFilter::include({kS2});
  b.merge(SourceFilter::exclude({kS1, kS2}));
  EXPECT_EQ(b.mode(), SourceFilter::Mode::kExclude);
  EXPECT_TRUE(b.accepts(kS2));
  EXPECT_FALSE(b.accepts(kS1));
}

TEST(SourceFilter, MergeIsAcceptanceUnion) {
  // Property over a small universe: after merge, accepts(s) must equal
  // a.accepts(s) || b.accepts(s) for every s.
  std::vector<SourceFilter> cases = {
      SourceFilter::include({}),          SourceFilter::include({kS1}),
      SourceFilter::include({kS1, kS2}),  SourceFilter::exclude({}),
      SourceFilter::exclude({kS2}),       SourceFilter::exclude({kS1, kS3}),
  };
  for (const auto& a : cases) {
    for (const auto& b : cases) {
      SourceFilter merged = a;
      merged.merge(b);
      for (ip::Address s : {kS1, kS2, kS3}) {
        EXPECT_EQ(merged.accepts(s), a.accepts(s) || b.accepts(s))
            << "source " << s.to_string();
      }
    }
  }
}

TEST(SourceFilter, SingleSourceEquivalence) {
  // INCLUDE({S}) is the IGMPv3 spelling of an EXPRESS channel
  // subscription — the one case the paper keeps, discarding the rest of
  // the generality.
  EXPECT_TRUE(SourceFilter::include({kS1}).is_single_source());
  EXPECT_FALSE(SourceFilter::include({kS1, kS2}).is_single_source());
  EXPECT_FALSE(SourceFilter::exclude({kS1}).is_single_source());
  EXPECT_FALSE(SourceFilter::include({}).is_single_source());
}

}  // namespace
}  // namespace express::baseline
