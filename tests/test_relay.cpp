// Session-relay middleware tests (§4): relaying with access control,
// floor control, sequence numbering, and hot/cold standby failover.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "relay/monitor.hpp"
#include "relay/participant.hpp"
#include "relay/session_relay.hpp"
#include "relay/standby.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using relay::Participant;
using relay::ParticipantConfig;
using relay::RelayConfig;
using relay::SessionRelay;
using relay::StandbyCluster;
using relay::StandbyMode;
using workload::make_star;

class RelayTest : public ::testing::Test {
 protected:
  RelayTest() : sim_(make_star(4, 1)), sr_(sim_.source(), RelayConfig{}) {
    for (std::size_t i = 0; i < 3; ++i) {
      participants_.push_back(std::make_unique<Participant>(
          sim_.receiver(i), sr_.channel(), sim_.source().address()));
    }
  }

  void join_all() {
    for (auto& p : participants_) p->join();
    sim_.run_for(sim::seconds(1));
  }

  ExpressNetwork sim_;
  SessionRelay sr_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_F(RelayTest, PrimarySourceReachesAllParticipants) {
  join_all();
  sr_.start();
  sr_.send_as_primary(1000);
  sim_.run_for(sim::seconds(1));
  for (auto& p : participants_) {
    ASSERT_EQ(p->deliveries().size(), 1u);
    EXPECT_EQ(p->deliveries()[0].speaker, sim_.source().address());
    EXPECT_EQ(p->deliveries()[0].bytes, 1000u);
  }
}

TEST_F(RelayTest, UnauthorizedSenderIsDropped) {
  join_all();
  sr_.start();
  participants_[0]->speak(500);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sr_.stats().dropped_unauthorized, 1u);
  for (auto& p : participants_) {
    EXPECT_TRUE(p->deliveries().empty());
  }
}

TEST_F(RelayTest, AuthorizedSenderIsRelayedToEveryone) {
  join_all();
  sr_.start();
  sr_.authorize(sim_.receiver(0).address());
  participants_[0]->speak(500);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sr_.stats().frames_relayed, 1u);
  for (auto& p : participants_) {
    ASSERT_EQ(p->deliveries().size(), 1u);
    EXPECT_EQ(p->deliveries()[0].speaker, sim_.receiver(0).address());
  }
}

TEST_F(RelayTest, RelaySequenceNumbersAreContiguous) {
  join_all();
  sr_.start();
  sr_.authorize(sim_.receiver(0).address());
  sr_.authorize(sim_.receiver(1).address());
  for (int i = 0; i < 5; ++i) {
    participants_[static_cast<std::size_t>(i % 2)]->speak(100);
    sim_.run_for(sim::milliseconds(100));
  }
  sim_.run_for(sim::seconds(1));
  ASSERT_EQ(participants_[2]->deliveries().size(), 5u);
  EXPECT_TRUE(participants_[2]->missing_seqs().empty());
  // SR-assigned sequence numbers increase monotonically.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GT(participants_[2]->deliveries()[i].relay_seq,
              participants_[2]->deliveries()[i - 1].relay_seq);
  }
}

TEST(RelayFloor, OneSpeakerAtATime) {
  ExpressNetwork sim(make_star(4, 1));
  RelayConfig config;
  config.floor_control = true;
  SessionRelay sr(sim.source(), config);
  std::vector<std::unique_ptr<Participant>> participants;
  for (std::size_t i = 0; i < 3; ++i) {
    participants.push_back(std::make_unique<Participant>(
        sim.receiver(i), sr.channel(), sim.source().address()));
    sr.authorize(sim.receiver(i).address());
    participants[i]->join();
  }
  sim.run_for(sim::seconds(1));
  sr.start();

  // Two participants want the floor; grants are serialized FIFO.
  participants[0]->request_floor();
  sim.run_for(sim::milliseconds(100));
  participants[1]->request_floor();
  sim.run_for(sim::milliseconds(100));
  EXPECT_EQ(sr.floor_holder(), sim.receiver(0).address());
  EXPECT_TRUE(participants[0]->has_floor());
  EXPECT_FALSE(participants[1]->has_floor());

  // Only the holder's data is relayed.
  participants[1]->speak(100);
  participants[0]->speak(100);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sr.stats().dropped_no_floor, 1u);
  ASSERT_EQ(participants[2]->deliveries().size(), 1u);
  EXPECT_EQ(participants[2]->deliveries()[0].speaker, sim.receiver(0).address());

  // Release: the queued requester gets the floor ("the answer
  // immediately follows the question").
  participants[0]->release_floor();
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sr.floor_holder(), sim.receiver(1).address());
  EXPECT_TRUE(participants[1]->has_floor());
}

TEST(RelayFloor, ExcessiveQuestionsAreDenied) {
  ExpressNetwork sim(make_star(2, 1));
  RelayConfig config;
  config.floor_control = true;
  config.max_floor_grants_per_member = 2;
  SessionRelay sr(sim.source(), config);
  Participant p(sim.receiver(0), sr.channel(), sim.source().address());
  sr.authorize(sim.receiver(0).address());
  p.join();
  sim.run_for(sim::seconds(1));
  sr.start();

  for (int round = 0; round < 3; ++round) {
    p.request_floor();
    sim.run_for(sim::milliseconds(200));
    p.release_floor();
    sim.run_for(sim::milliseconds(200));
  }
  EXPECT_EQ(sr.stats().floor_grants, 2u);
  EXPECT_EQ(sr.stats().floor_denials, 1u);
}

TEST_F(RelayTest, RevokedSenderIsDroppedAgain) {
  join_all();
  sr_.start();
  sr_.authorize(sim_.receiver(0).address());
  participants_[0]->speak(100);
  sim_.run_for(sim::seconds(1));
  ASSERT_EQ(sr_.stats().frames_relayed, 1u);
  sr_.revoke(sim_.receiver(0).address());
  participants_[0]->speak(100);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sr_.stats().frames_relayed, 1u);
  EXPECT_EQ(sr_.stats().dropped_unauthorized, 1u);
}

TEST_F(RelayTest, InactiveRelayDropsEverything) {
  join_all();
  sr_.authorize(sim_.receiver(0).address());
  // start() was never called: nothing is relayed, no heartbeats flow.
  participants_[0]->speak(100);
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(sr_.stats().frames_relayed, 0u);
  EXPECT_EQ(sr_.stats().heartbeats_sent, 0u);
  for (auto& p : participants_) EXPECT_TRUE(p->deliveries().empty());
}

TEST_F(RelayTest, OpenAccessModeRelaysAnyone) {
  ExpressNetwork sim(make_star(3, 1));
  RelayConfig config;
  config.access_control = false;  // e.g. an open jam session
  SessionRelay sr(sim.source(), config);
  Participant speaker(sim.receiver(0), sr.channel(), sim.source().address());
  Participant listener(sim.receiver(1), sr.channel(), sim.source().address());
  speaker.join();
  listener.join();
  sim.run_for(sim::seconds(1));
  sr.start();
  speaker.speak(100);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sr.stats().frames_relayed, 1u);
  EXPECT_EQ(listener.deliveries().size(), 1u);
}

TEST_F(RelayTest, DirectChannelSwitchover) {
  // §4.1: a secondary sender that will transmit for a long time creates
  // its own channel; the SR announces it; everyone auto-subscribes and
  // then receives the sender's traffic directly (no relay hop).
  join_all();
  sr_.start();
  sr_.authorize(sim_.receiver(0).address());
  const ip::ChannelId direct = participants_[0]->create_direct_channel();
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sr_.stats().channels_announced, 1u);
  for (std::size_t i = 1; i < participants_.size(); ++i) {
    ASSERT_EQ(participants_[i]->announced_channels().size(), 1u) << i;
    EXPECT_EQ(participants_[i]->announced_channels()[0], direct);
    EXPECT_TRUE(sim_.receiver(i).subscribed(direct)) << i;
  }

  const auto relayed_before = sr_.stats().frames_relayed;
  participants_[0]->send_direct(900);
  sim_.run_for(sim::seconds(1));
  for (std::size_t i = 1; i < participants_.size(); ++i) {
    ASSERT_FALSE(participants_[i]->deliveries().empty()) << i;
    const auto& d = participants_[i]->deliveries().back();
    EXPECT_EQ(d.speaker, sim_.receiver(0).address());
    EXPECT_EQ(d.bytes, 900u);
  }
  // The SR never touched the data.
  EXPECT_EQ(sr_.stats().frames_relayed, relayed_before);
}

TEST_F(RelayTest, UnauthorizedChannelAnnounceIsIgnored) {
  join_all();
  sr_.start();
  // receiver(0) is NOT authorized: its announce request is dropped.
  participants_[0]->create_direct_channel();
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sr_.stats().channels_announced, 0u);
  for (std::size_t i = 1; i < participants_.size(); ++i) {
    EXPECT_TRUE(participants_[i]->announced_channels().empty());
  }
}

TEST_F(RelayTest, SessionMonitorCollectsSizeAndLosses) {
  // §4.5: group size + loss totals via CountQuery instead of RTCP.
  join_all();
  sr_.start();
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    relay::enable_loss_reports(*participants_[i], sim_.receiver(i));
  }
  sim_.run_for(sim::seconds(1));
  for (int i = 0; i < 4; ++i) {
    sr_.send_as_primary(200);
    sim_.run_for(sim::milliseconds(200));
  }

  relay::SessionMonitor monitor(sim_.source(), sr_.channel());
  std::optional<relay::SessionMonitor::Sample> sample;
  monitor.poll(sim::seconds(3),
               [&](relay::SessionMonitor::Sample s) { sample = s; });
  sim_.run_for(sim::seconds(8));
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->group_size, 3);
  EXPECT_EQ(sample->total_losses, 0);  // simulator links lose nothing

  // Periodic sampling accumulates.
  monitor.start_periodic(sim::seconds(5), sim::seconds(2));
  sim_.run_for(sim::seconds(16));
  monitor.stop();
  EXPECT_GE(monitor.samples().size(), 3u);
  for (const auto& s : monitor.samples()) {
    EXPECT_EQ(s.group_size, 3);
  }
}

class StandbyTest : public ::testing::TestWithParam<StandbyMode> {};

TEST_P(StandbyTest, FailoverDeliversViaBackup) {
  // receivers 0-1: participants; receiver 2: unused; receiver 3: backup
  // SR host. Heartbeats every 1 s; failover after ~3.5 s of silence.
  ExpressNetwork sim(make_star(4, 1));
  SessionRelay primary(sim.source(), RelayConfig{});
  SessionRelay backup(sim.receiver(3), RelayConfig{});
  StandbyCluster cluster(primary, backup, sim.receiver(3));

  ParticipantConfig pconfig;
  pconfig.standby = GetParam();
  std::vector<std::unique_ptr<Participant>> participants;
  for (std::size_t i = 0; i < 2; ++i) {
    participants.push_back(std::make_unique<Participant>(
        sim.receiver(i), primary.channel(), sim.source().address(),
        backup.channel(), sim.receiver(3).address(), pconfig));
    participants[i]->join();
  }
  cluster.start();
  primary.start();
  sim.run_for(sim::seconds(5));
  EXPECT_FALSE(cluster.backup_active());
  for (auto& p : participants) EXPECT_FALSE(p->failed_over());

  // Primary dies at t = 5 s.
  primary.stop();
  sim.run_for(sim::seconds(6));
  EXPECT_TRUE(cluster.backup_active());
  for (auto& p : participants) {
    EXPECT_TRUE(p->failed_over());
    // Detection took roughly failover_after_missed heartbeats.
    ASSERT_TRUE(p->failover_at().has_value());
    EXPECT_LT(*p->failover_at(), sim::seconds(10));
  }

  // The promoted backup sources the session now.
  backup.send_as_primary(700);
  sim.run_for(sim::seconds(2));
  for (auto& p : participants) {
    ASSERT_FALSE(p->deliveries().empty());
    const auto& last = p->deliveries().back();
    EXPECT_TRUE(last.via_backup);
    EXPECT_EQ(last.bytes, 700u);
  }
}

INSTANTIATE_TEST_SUITE_P(HotAndCold, StandbyTest,
                         ::testing::Values(StandbyMode::kHot,
                                           StandbyMode::kCold),
                         [](const auto& info) {
                           return info.param == StandbyMode::kHot ? "Hot"
                                                                  : "Cold";
                         });

TEST(StandbyCost, HotStandbyDoublesChannelState) {
  // §4.5: "the use of a hot standby SR/channel adds additional state
  // (approximately twice as much)".
  auto measure = [](StandbyMode mode) {
    ExpressNetwork sim(make_star(4, 1));
    SessionRelay primary(sim.source(), RelayConfig{});
    SessionRelay backup(sim.receiver(3), RelayConfig{});
    ParticipantConfig pconfig;
    pconfig.standby = mode;
    std::vector<std::unique_ptr<Participant>> participants;
    for (std::size_t i = 0; i < 3; ++i) {
      participants.push_back(std::make_unique<Participant>(
          sim.receiver(i), primary.channel(), sim.source().address(),
          backup.channel(), sim.receiver(3).address(), pconfig));
      participants[i]->join();
    }
    primary.start();
    sim.run_for(sim::seconds(2));
    return sim.total_fib_entries();
  };
  const std::size_t hot = measure(StandbyMode::kHot);
  const std::size_t cold = measure(StandbyMode::kCold);
  EXPECT_GT(hot, cold);
  EXPECT_LE(hot, cold * 3);  // "approximately twice"
}

}  // namespace
}  // namespace express::test
