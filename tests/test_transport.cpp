// Unit tests for the ECMP session transport (§3.2, §3.3, §5.3):
// message classification, interface modes, the UDP refresh clock,
// segment batching, partition behavior, and a TCP session torn down in
// the middle of a count collection.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "ecmp/transport.hpp"
#include "testbed/testbed.hpp"
#include "net/network.hpp"
#include "workload/topo_gen.hpp"

namespace express::ecmp {
namespace {

const ip::ChannelId kCh{ip::Address(10, 0, 0, 1),
                        ip::Address::single_source(1)};

/// A node that feeds every inbound packet to its Transport.
class EcmpNode : public net::Node {
 public:
  EcmpNode(net::Network& network, net::NodeId id,
           TransportPolicy policy = {}, TransportHooks hooks = {})
      : net::Node(network, id),
        transport(network, id, policy, std::move(hooks)) {}
  void handle_packet(const net::Packet& packet, std::uint32_t iface) override {
    deliveries.push_back(transport.receive(packet, iface));
  }
  Transport transport;
  std::vector<Delivery> deliveries;
};

struct Pair {
  explicit Pair(TransportPolicy policy = {}, TransportHooks hooks_a = {}) {
    net::Topology topo;
    const net::NodeId ia = topo.add_router();
    const net::NodeId ib = topo.add_router();
    topo.add_link(ia, ib, sim::milliseconds(1));
    network = std::make_unique<net::Network>(std::move(topo));
    a = &network->attach<EcmpNode>(ia, policy, std::move(hooks_a));
    b = &network->attach<EcmpNode>(ib);
  }
  std::unique_ptr<net::Network> network;
  EcmpNode* a = nullptr;
  EcmpNode* b = nullptr;
};

TEST(Transport, ClassifiesSentAndReceivedByType) {
  Pair pair;
  pair.a->transport.send(pair.b->id(), Count{kCh, kSubscriberId, 3, 0, {}});
  pair.a->transport.send(pair.b->id(),
                         CountQuery{kCh, kSubscriberId, sim::seconds(1), 7});
  pair.a->transport.send(pair.b->id(),
                         CountResponse{kCh, kSubscriberId, Status::kOk});
  pair.network->run();

  const TransportStats& sent = pair.a->transport.stats();
  EXPECT_EQ(sent.counts_sent, 1u);
  EXPECT_EQ(sent.queries_sent, 1u);
  EXPECT_EQ(sent.responses_sent, 1u);
  EXPECT_GT(sent.control_bytes_sent, 0u);

  const TransportStats& recv = pair.b->transport.stats();
  EXPECT_EQ(recv.counts_received, 1u);
  EXPECT_EQ(recv.queries_received, 1u);
  EXPECT_EQ(recv.responses_received, 1u);
  EXPECT_EQ(recv.control_bytes_received, sent.control_bytes_sent);

  ASSERT_EQ(pair.b->deliveries.size(), 3u);
  EXPECT_EQ(pair.b->deliveries[0].from, pair.a->id());
}

TEST(Transport, SharedSequenceCounterIsMonotonic) {
  Pair pair;
  EXPECT_EQ(pair.a->transport.next_seq(), 1u);
  EXPECT_EQ(pair.a->transport.next_seq(), 2u);
  EXPECT_EQ(pair.a->transport.next_seq(), 3u);
}

TEST(Transport, InterfacesDefaultToTcpMode) {
  Pair pair;
  EXPECT_EQ(pair.a->transport.mode(0), Mode::kTcp);
  EXPECT_EQ(pair.a->transport.mode(99), Mode::kTcp);
}

TEST(Transport, UdpModeStartsTheRefreshClock) {
  TransportPolicy policy;
  policy.udp_query_interval = sim::milliseconds(100);
  int rounds = 0;
  TransportHooks hooks;
  hooks.udp_refresh_round = [&]() {
    ++rounds;
    return true;  // soft state remains: keep the clock running
  };
  Pair pair(policy, std::move(hooks));

  pair.a->transport.set_mode(0, Mode::kUdp);
  EXPECT_EQ(pair.a->transport.mode(0), Mode::kUdp);
  pair.network->run_until(sim::milliseconds(350));
  EXPECT_EQ(rounds, 3);
  EXPECT_TRUE(pair.a->transport.udp_refresh_active());
}

TEST(Transport, UdpRefreshClockStopsWhenARoundRunsDry) {
  // Regression: the clock used to re-arm unconditionally, querying dead
  // neighbors forever. A round reporting no remaining UDP soft state
  // (return false) must stop the clock until ensure_udp_refresh().
  TransportPolicy policy;
  policy.udp_query_interval = sim::milliseconds(100);
  int rounds = 0;
  TransportHooks hooks;
  hooks.udp_refresh_round = [&]() { return ++rounds < 2; };
  Pair pair(policy, std::move(hooks));

  pair.a->transport.set_mode(0, Mode::kUdp);
  pair.network->run_until(sim::milliseconds(1000));
  EXPECT_EQ(rounds, 2);  // ran dry on the second tick, never re-armed
  EXPECT_FALSE(pair.a->transport.udp_refresh_active());

  // New UDP soft state re-arms the clock (subscription layer hook).
  pair.a->transport.ensure_udp_refresh();
  EXPECT_TRUE(pair.a->transport.udp_refresh_active());
  pair.network->run_until(sim::milliseconds(1400));
  EXPECT_EQ(rounds, 3);  // one more tick, dry again
  EXPECT_FALSE(pair.a->transport.udp_refresh_active());
}

TEST(Transport, BatchWindowCoalescesMessagesIntoOneSegment) {
  TransportPolicy policy;
  policy.batch_window = sim::milliseconds(5);
  Pair pair(policy);

  for (std::int64_t i = 0; i < 3; ++i) {
    pair.a->transport.send(pair.b->id(), Count{kCh, kSubscriberId, i, 0, {}});
  }
  pair.network->run();

  // §5.3: three messages, one wire segment, one delivery.
  EXPECT_EQ(pair.a->transport.segments_sent(), 1u);
  ASSERT_EQ(pair.b->deliveries.size(), 1u);
  EXPECT_EQ(pair.b->deliveries[0].messages.size(), 3u);
  EXPECT_EQ(pair.b->transport.stats().counts_received, 3u);
}

TEST(Batcher, FlushedPayloadNeverExceedsSegmentCap) {
  // §5.3: ~92 16-byte Counts per 1480-byte segment. Enqueue enough to
  // fill several segments and check no flushed payload ever exceeds the
  // cap — the pre-fix enqueue appended before checking, so the 93rd
  // Count produced a 1488-byte "segment".
  sim::Scheduler sched;
  std::vector<std::size_t> sizes;
  Batcher batcher(sched, sim::milliseconds(5),
                  [&](net::NodeId, std::vector<std::uint8_t> payload) {
                    sizes.push_back(payload.size());
                  });

  const Message msg = Count{kCh, kSubscriberId, 1, 0, {}};
  const std::size_t per = encoded_size(msg);
  ASSERT_NE(kMaxSegmentBytes % per, 0u);  // remainder is what overflowed
  const std::size_t per_segment = kMaxSegmentBytes / per;
  const std::size_t total = per_segment * 3 + 1;
  for (std::size_t i = 0; i < total; ++i) {
    batcher.enqueue(net::NodeId{1}, msg);
  }
  batcher.flush_all();

  ASSERT_EQ(sizes.size(), 4u);
  std::size_t bytes = 0;
  for (std::size_t s : sizes) {
    EXPECT_LE(s, kMaxSegmentBytes);
    bytes += s;
  }
  EXPECT_EQ(bytes, total * per);           // nothing lost at the split
  EXPECT_EQ(sizes[0], per_segment * per);  // full segments stay full
}

TEST(Batcher, FlushAllDrainsNeighborsInSortedOrder) {
  // flush_all used to iterate the unordered_map, making packet-emission
  // order hash-dependent; the order must be ascending NodeId.
  sim::Scheduler sched;
  std::vector<net::NodeId> order;
  Batcher batcher(sched, sim::milliseconds(5),
                  [&](net::NodeId neighbor, std::vector<std::uint8_t>) {
                    order.push_back(neighbor);
                  });

  const Message msg = Count{kCh, kSubscriberId, 1, 0, {}};
  for (std::uint32_t id = 64; id > 0; --id) {
    batcher.enqueue(net::NodeId{id}, msg);
  }
  batcher.flush_all();

  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], net::NodeId{static_cast<std::uint32_t>(i + 1)});
  }
}

TEST(Transport, UnreachableNeighborDropsAfterByteAccounting) {
  // Two routers with no connecting link: a partition. The send is
  // accounted (the bytes hit the failed TCP write) but nothing arrives.
  net::Topology topo;
  const net::NodeId ia = topo.add_router();
  const net::NodeId ib = topo.add_router();
  net::Network network(std::move(topo));
  auto& a = network.attach<EcmpNode>(ia);
  auto& b = network.attach<EcmpNode>(ib);

  a.transport.send(ib, Count{kCh, kSubscriberId, 1, 0, {}});
  network.run();
  EXPECT_EQ(a.transport.stats().counts_sent, 1u);
  EXPECT_GT(a.transport.stats().control_bytes_sent, 0u);
  EXPECT_TRUE(b.deliveries.empty());
}

TEST(Transport, TcpTeardownMidQueryYieldsPartialCount) {
  // Binary tree, one subscriber in each half. The root's count query
  // fans to both subtrees; the link to the right subtree dies before
  // the reply can return, so the root's round times out and reports a
  // partial (complete = false) result covering only the left half.
  Testbed bed(workload::make_kary_tree(2, 2));
  const ip::ChannelId ch = bed.source().allocate_channel();
  bed.receiver(0).new_subscription(ch);
  bed.receiver(3).new_subscription(ch);
  bed.run_for(sim::seconds(1));
  ASSERT_EQ(bed.source_router().subtree_count(ch), 2);

  const net::NodeId root = bed.roles().source_router;
  const net::NodeId right = bed.roles().routers[2];
  auto iface = bed.net().topology().interface_to(root, right);
  ASSERT_TRUE(iface.has_value());
  const net::LinkId link =
      bed.net().topology().node(root).interfaces.at(*iface);

  std::optional<CountResult> result;
  bed.source_router().initiate_count(
      ch, kSubscriberId, sim::milliseconds(500),
      [&](CountResult r) { result = r; });
  bed.net().set_link_up(link, false);
  bed.run_for(sim::seconds(3));

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_EQ(result->count, 1);
  EXPECT_GE(bed.source_router().counting_stats().rounds_timed_out, 1u);
}

}  // namespace
}  // namespace express::ecmp
