// Parallel engine tests (DESIGN.md §13): partition properties, the
// determinism contract (passthrough, canonical cross-K equality, worker
// invariance), cross-shard delivery timing at window boundaries,
// unicast pause/resume across shards, and the per-link impairment
// streams the contract requires when the data plane is lossy.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "net/impairment.hpp"
#include "net/network.hpp"
#include "net/sharding.hpp"
#include "obs/obs.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace express {
namespace {

using net::NodeId;
using net::NodeKind;
using net::ShardPlan;

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

TEST(Partition, AssignsEveryNodeAndOnlyRouterLinksCross) {
  const auto generated = workload::make_kary_tree(2, 3, {}, 2);
  const net::Topology& topo = generated.topology;
  for (std::uint32_t k : {1u, 2u, 4u}) {
    const ShardPlan plan = net::partition_topology(topo, k);
    ASSERT_EQ(plan.shards, k);
    ASSERT_EQ(plan.shard_of.size(), topo.node_count());
    std::set<std::uint32_t> used;
    for (std::uint32_t s : plan.shard_of) {
      ASSERT_LT(s, k);
      used.insert(s);
    }
    EXPECT_EQ(used.size(), k) << "some shard ended up empty";

    sim::Duration min_cross = sim::Duration::max();
    for (net::LinkId l = 0; l < topo.link_count(); ++l) {
      const auto& link = topo.link(l);
      const bool cross = plan.shard_of[link.a] != plan.shard_of[link.b];
      EXPECT_EQ(cross, plan.is_cross(l));
      EXPECT_EQ(cross,
                std::find(plan.cross_links.begin(), plan.cross_links.end(),
                          l) != plan.cross_links.end());
      if (cross) {
        // Hosts and LAN hubs are co-located with their router: only the
        // router-router backbone may cross shards.
        EXPECT_EQ(topo.node(link.a).kind, NodeKind::kRouter);
        EXPECT_EQ(topo.node(link.b).kind, NodeKind::kRouter);
        min_cross = std::min(min_cross, link.delay);
      }
    }
    EXPECT_EQ(plan.lookahead, min_cross);
    if (k == 1) {
      EXPECT_EQ(plan.lookahead, sim::Duration::max());
    }
  }
}

TEST(Partition, IsDeterministic) {
  const auto generated = workload::make_kary_tree(2, 3, {}, 2);
  const ShardPlan a = net::partition_topology(generated.topology, 4);
  const ShardPlan b = net::partition_topology(generated.topology, 4);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.cross_links, b.cross_links);
  EXPECT_EQ(a.lookahead, b.lookahead);
}

TEST(Partition, RejectsDegenerateShardCounts) {
  const auto generated = workload::make_kary_tree(2, 2, {}, 1);
  EXPECT_THROW((void)net::partition_topology(generated.topology, 0),
               std::invalid_argument);
  EXPECT_THROW((void)net::partition_topology(generated.topology, 1000),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Determinism contract over the pinned churn scenario
// ---------------------------------------------------------------------

/// The test-sized cousin of obs_capture's churn scenario: every event
/// scheduled on the acting node's own shard, so the streams fed to each
/// shard layout are identical.
void run_churn(Testbed& bed, std::uint64_t seed) {
  net::Network& net = bed.net();
  const NodeId source_node = bed.roles().source_host;
  ip::ChannelId channel{};
  {
    net::ShardContext ctx(net, source_node);
    channel = bed.source().allocate_channel();
  }
  sim::Rng rng(seed);
  const sim::Duration horizon = sim::seconds(5);
  const auto events = workload::poisson_churn(
      static_cast<std::uint32_t>(bed.receiver_count()), horizon,
      sim::seconds(2), sim::seconds(2), rng);
  for (const auto& ev : events) {
    const NodeId node = bed.roles().receiver_hosts[ev.host_index];
    net.scheduler_for(node).schedule_at(ev.at, [&bed, channel, ev] {
      if (ev.join) {
        bed.receiver(ev.host_index).new_subscription(channel);
      } else {
        bed.receiver(ev.host_index).delete_subscription(channel);
      }
    });
  }
  std::uint64_t seq = 0;
  for (sim::Time at = sim::milliseconds(100); at < horizon;
       at += sim::milliseconds(100)) {
    net.scheduler_for(source_node)
        .schedule_at(at, [&bed, channel, s = seq++] {
          bed.source().send(channel, 500, s);
        });
  }
  net.run();
}

struct Capture {
  std::string raw_trace;
  std::string merged_trace;
  std::string canonical_trace;
  std::string raw_snapshot;
  std::string normalized_snapshot;
  sim::ParallelStats stats;
};

Capture capture_churn(std::uint32_t shards, unsigned workers,
                      bool lossy = false) {
  Testbed bed(workload::make_kary_tree(2, 3, {}, 2),
              TestbedOptions{.shards = shards, .workers = workers});
  net::Network& net = bed.net();
  net.obs().trace.enable(1 << 16);
  if (lossy) {
    net::ImpairmentConfig config;
    config.loss.kind = net::LossModel::Kind::kBernoulli;
    config.loss.p = 0.05;
    for (net::LinkId l = 0; l < net.topology().link_count(); ++l) {
      net.set_link_impairments(l, config);
    }
    net.seed_impairments_per_link(0xFEED);
  }
  run_churn(bed, 7);

  Capture out;
  out.raw_trace = net.obs().trace.to_jsonl();
  out.merged_trace = obs::merged_trace_jsonl(net.trace_lanes());
  out.canonical_trace = obs::canonical_trace_jsonl(net.trace_lanes());
  out.raw_snapshot = net.obs().registry.snapshot_json(net.now());
  // Normalization mirrors obs_capture --normalized-snapshot: zero the
  // scheduler-mechanics metrics (re-registration zeroes the slot) and
  // stamp zero; everything protocol-level must then match across K.
  obs::Registry& reg = net.obs().registry;
  const obs::Entity e = obs::Entity::network();
  reg.counter("sim.sched.scheduled", e);
  reg.counter("sim.sched.executed", e);
  reg.counter("sim.sched.cancelled", e);
  reg.counter("sim.sched.clamped_past", e);
  reg.gauge("sim.sched.peak_pending", e);
  out.normalized_snapshot = reg.snapshot_json(sim::Time{});
  out.stats = net.parallel_stats();
  return out;
}

TEST(ParallelEngine, SingleShardIsAPurePassthrough) {
  const Capture plain = capture_churn(0, 1);
  const Capture k1 = capture_churn(1, 1);
  EXPECT_EQ(plain.raw_trace, k1.raw_trace);
  EXPECT_EQ(plain.raw_snapshot, k1.raw_snapshot);
  EXPECT_EQ(k1.stats.cross_shard_events, 0u);
}

TEST(ParallelEngine, CanonicalOutputsMatchAcrossShardCounts) {
  const Capture k1 = capture_churn(1, 1);
  const Capture k2 = capture_churn(2, 1);
  const Capture k4 = capture_churn(4, 1);
  EXPECT_EQ(k1.canonical_trace, k2.canonical_trace);
  EXPECT_EQ(k1.canonical_trace, k4.canonical_trace);
  EXPECT_EQ(k1.normalized_snapshot, k2.normalized_snapshot);
  EXPECT_EQ(k1.normalized_snapshot, k4.normalized_snapshot);
  EXPECT_GT(k2.stats.windows, 0u);
  EXPECT_GT(k2.stats.cross_shard_events, 0u);
  // Equal-delay fan-out makes same-instant cross-shard arrivals routine;
  // the canonical equality above proves their merge-key ordering is
  // benign. The counter just has to be wired.
  EXPECT_GT(k2.stats.tie_collisions, 0u);
}

TEST(ParallelEngine, WorkerCountNeverChangesResults) {
  const Capture w1 = capture_churn(4, 1);
  const Capture w2 = capture_churn(4, 2);
  const Capture w4 = capture_churn(4, 4);
  EXPECT_EQ(w1.merged_trace, w2.merged_trace);
  EXPECT_EQ(w1.merged_trace, w4.merged_trace);
  EXPECT_EQ(w1.raw_snapshot, w2.raw_snapshot);
  EXPECT_EQ(w1.raw_snapshot, w4.raw_snapshot);
}

TEST(ParallelEngine, PerLinkImpairmentStreamsKeepLossDeterministic) {
  const Capture k1 = capture_churn(1, 1, /*lossy=*/true);
  const Capture k2 = capture_churn(2, 1, /*lossy=*/true);
  EXPECT_EQ(k1.canonical_trace, k2.canonical_trace);
  EXPECT_EQ(k1.normalized_snapshot, k2.normalized_snapshot);
  // The dice actually rolled: the scenario dropped data on lossy links.
  EXPECT_NE(k1.canonical_trace.find("packet_lost"), std::string::npos);
}

// ---------------------------------------------------------------------
// Cross-shard fabric behavior on hand-built topologies
// ---------------------------------------------------------------------

class Recorder : public net::Node {
 public:
  Recorder(net::Network& network, NodeId id) : Node(network, id) {}
  void handle_packet(const net::Packet& packet, std::uint32_t) override {
    arrivals.push_back({packet.sequence, network().now()});
  }
  struct Arrival {
    std::uint64_t sequence;
    sim::Time at;
    bool operator==(const Arrival&) const = default;
  };
  std::vector<Arrival> arrivals;
};

net::Packet data_packet(ip::Address dst, std::uint32_t bytes,
                        std::uint64_t seq) {
  net::Packet p;
  p.src = ip::Address(1, 1, 1, 1);
  p.dst = dst;
  p.protocol = ip::Protocol::kUdp;
  p.data_bytes = bytes;
  p.sequence = seq;
  return p;
}

TEST(ParallelEngine, CrossShardDeliveryMatchesPlainTimingAtTheBoundary) {
  // Two routers, one 5 ms cross link: the lookahead equals the link
  // delay, so the first delivery lands at (or just past) the first
  // window's end — the conservative boundary case.
  auto build = [](std::uint32_t shards) {
    net::Topology topo;
    const NodeId a = topo.add_router("a");
    const NodeId b = topo.add_router("b");
    topo.add_link(a, b, sim::milliseconds(5));
    auto net = std::make_unique<net::Network>(std::move(topo));
    if (shards > 0) {
      net->enable_sharding(net::partition_topology(net->topology(), shards));
    }
    return net;
  };
  auto drive = [&](std::uint32_t shards) {
    auto net = build(shards);
    auto& recorder = net->attach<Recorder>(1);
    if (shards == 2) {
      EXPECT_NE(net->shard_of(0), net->shard_of(1));
    }
    for (std::uint64_t s = 1; s <= 3; ++s) {
      net->send_to_neighbor(0, 1, data_packet(ip::Address(2, 2, 2, 2),
                                              1000, s));
    }
    // run_until advances every shard clock to the deadline, so the
    // barrier-time follow-up send below originates at the same instant
    // in both modes and exercises re-entering the window loop.
    net->run_until(sim::milliseconds(20));
    net->send_to_neighbor(0, 1, data_packet(ip::Address(2, 2, 2, 2), 10, 4));
    net->run_until(sim::milliseconds(40));
    return recorder.arrivals;
  };
  std::vector<Recorder::Arrival> plain, sharded;
  { auto a = drive(0); plain = a; }
  { auto a = drive(2); sharded = a; }
  ASSERT_EQ(plain.size(), 4u);
  EXPECT_EQ(plain, sharded);
}

TEST(ParallelEngine, UnicastPausesAndResumesAcrossShards) {
  // a - b - c chain: a unicast from a to c must cross at least one
  // shard boundary, pause in the per-edge queue, and resume its walk at
  // the downstream router — arriving exactly when the plain run says.
  auto drive = [](std::uint32_t shards) {
    net::Topology topo;
    const NodeId a = topo.add_router("a");
    const NodeId b = topo.add_router("b");
    const NodeId c = topo.add_router("c");
    topo.add_link(a, b, sim::milliseconds(3));
    topo.add_link(b, c, sim::milliseconds(4));
    net::Network net(std::move(topo));
    if (shards > 0) {
      net.enable_sharding(net::partition_topology(net.topology(), shards));
    }
    auto& recorder = net.attach<Recorder>(c);
    const ip::Address dst = net.topology().node(c).address;
    net.send_unicast(a, data_packet(dst, 800, 1));
    net.run();
    return recorder.arrivals;
  };
  const auto plain = drive(0);
  const auto sharded = drive(3);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain, sharded);
}

TEST(ParallelEngine, SharedImpairmentStreamIsRejectedWhenSharded) {
  net::Topology topo;
  const NodeId a = topo.add_router("a");
  const NodeId b = topo.add_router("b");
  topo.add_link(a, b, sim::milliseconds(2));
  net::Network net(std::move(topo));
  net.enable_sharding(net::partition_topology(net.topology(), 2));
  net.attach<Recorder>(b);
  net::ImpairmentConfig config;
  config.loss.kind = net::LossModel::Kind::kBernoulli;
  config.loss.p = 0.5;
  net.set_link_impairments(0, config);
  net.seed_impairments(42);  // shared stream: order-dependent, rejected
  // The dice roll at send time, so the send itself must throw.
  EXPECT_THROW(
      net.send_to_neighbor(a, b, data_packet(ip::Address(2, 2, 2, 2), 100, 1)),
      std::logic_error);
}

TEST(ParallelEngine, ShardingMustPrecedeAttach) {
  const auto generated = workload::make_kary_tree(2, 2, {}, 1);
  Testbed bed(generated);  // plain testbed attaches everything
  EXPECT_THROW(
      bed.net().enable_sharding(
          net::partition_topology(bed.net().topology(), 2)),
      std::logic_error);
}

}  // namespace
}  // namespace express
