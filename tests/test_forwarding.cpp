// Unit tests for the shared data plane (express/forwarding): the
// EXPRESS fast path (§3.4), subcast relay (§2.1), and the raw
// replication primitive the baseline protocols reuse.
#include <gtest/gtest.h>

#include <vector>

#include "express/forwarding.hpp"
#include "net/network.hpp"

namespace express {
namespace {

/// Records every delivered packet with its TTL.
class Recorder : public net::Node {
 public:
  Recorder(net::Network& network, net::NodeId id) : net::Node(network, id) {}
  void handle_packet(const net::Packet& packet, std::uint32_t) override {
    sequences.push_back(packet.sequence);
    ttls.push_back(packet.ttl);
  }
  std::vector<std::uint64_t> sequences;
  std::vector<std::uint8_t> ttls;
};

/// One center router with three recorder neighbors on ifaces 0, 1, 2.
struct Star {
  Star() {
    net::Topology topo;
    center = topo.add_router();
    for (int i = 0; i < 3; ++i) {
      const net::NodeId n = topo.add_router();
      links.push_back(topo.add_link(center, n, sim::milliseconds(1)));
      neighbor_ids.push_back(n);
    }
    network = std::make_unique<net::Network>(std::move(topo));
    for (net::NodeId n : neighbor_ids) {
      neighbors.push_back(&network->attach<Recorder>(n));
    }
    plane = std::make_unique<ForwardingPlane>(*network, center);
  }

  net::NodeId center = net::kInvalidNode;
  std::vector<net::NodeId> neighbor_ids;
  std::vector<net::LinkId> links;
  std::unique_ptr<net::Network> network;
  std::vector<Recorder*> neighbors;
  std::unique_ptr<ForwardingPlane> plane;
};

const ip::ChannelId kChannel{ip::Address(10, 0, 0, 1),
                             ip::Address::single_source(42)};

net::Packet data_packet(std::uint64_t seq, std::uint8_t ttl = 64) {
  net::Packet p;
  p.src = kChannel.source;
  p.dst = kChannel.dest;
  p.protocol = ip::Protocol::kUdp;
  p.data_bytes = 100;
  p.sequence = seq;
  p.ttl = ttl;
  return p;
}

TEST(ForwardingPlane, ForwardReplicatesToOifsMinusArrival) {
  Star star;
  FibEntry& entry = star.plane->fib().upsert(kChannel);
  entry.iif = 0;
  entry.oifs.set(0);
  entry.oifs.set(1);
  entry.oifs.set(2);

  EXPECT_TRUE(star.plane->forward(data_packet(7), /*in_iface=*/0));
  star.network->run();

  // The arrival interface is excluded; the other two each get a copy
  // with the TTL decremented.
  EXPECT_TRUE(star.neighbors[0]->sequences.empty());
  ASSERT_EQ(star.neighbors[1]->sequences.size(), 1u);
  ASSERT_EQ(star.neighbors[2]->sequences.size(), 1u);
  EXPECT_EQ(star.neighbors[1]->ttls[0], 63u);
  EXPECT_EQ(star.plane->stats().data_packets_forwarded, 1u);
  EXPECT_EQ(star.plane->stats().data_copies_sent, 2u);
}

TEST(ForwardingPlane, RpfFailureDropsWithoutCopies) {
  Star star;
  FibEntry& entry = star.plane->fib().upsert(kChannel);
  entry.iif = 0;
  entry.oifs.set(1);

  EXPECT_FALSE(star.plane->forward(data_packet(1), /*in_iface=*/2));
  star.network->run();

  EXPECT_EQ(star.plane->fib().stats().rpf_drops, 1u);
  EXPECT_EQ(star.plane->stats().data_packets_forwarded, 0u);
  EXPECT_EQ(star.plane->stats().data_copies_sent, 0u);
  for (const Recorder* r : star.neighbors) {
    EXPECT_TRUE(r->sequences.empty());
  }
}

TEST(ForwardingPlane, NoEntryIsCountedAndDropped) {
  Star star;
  EXPECT_FALSE(star.plane->forward(data_packet(1), 0));
  EXPECT_EQ(star.plane->fib().stats().no_entry_drops, 1u);
}

TEST(ForwardingPlane, ExpiredTtlSendsNoCopies) {
  Star star;
  FibEntry& entry = star.plane->fib().upsert(kChannel);
  entry.iif = 0;
  entry.oifs.set(1);
  entry.oifs.set(2);

  // The lookup hits, but every copy dies in the TTL check.
  EXPECT_TRUE(star.plane->forward(data_packet(1, /*ttl=*/0), 0));
  star.network->run();
  EXPECT_EQ(star.plane->stats().data_copies_sent, 0u);
  EXPECT_TRUE(star.neighbors[1]->sequences.empty());
}

TEST(ForwardingPlane, SubcastRelaysInnerWithoutTtlDecrement) {
  Star star;
  FibEntry& entry = star.plane->fib().upsert(kChannel);
  entry.iif = 0;
  entry.oifs.set(1);
  entry.oifs.set(2);

  net::Packet outer;
  outer.src = kChannel.source;
  outer.dst = ip::Address(10, 0, 0, 99);
  outer.protocol = ip::Protocol::kIpInIp;
  outer.inner = std::make_shared<net::Packet>(data_packet(5, 17));

  EXPECT_TRUE(star.plane->relay_subcast(outer));
  star.network->run();

  // §2.1: the decapsulated packet starts fresh at the relay — full
  // outgoing set, no arrival exclusion, TTL untouched.
  ASSERT_EQ(star.neighbors[1]->sequences.size(), 1u);
  ASSERT_EQ(star.neighbors[2]->sequences.size(), 1u);
  EXPECT_EQ(star.neighbors[1]->ttls[0], 17u);
  EXPECT_EQ(star.plane->stats().subcasts_relayed, 1u);
}

TEST(ForwardingPlane, SubcastOffChannelRouterRefuses) {
  Star star;
  net::Packet outer;
  outer.protocol = ip::Protocol::kIpInIp;
  outer.inner = std::make_shared<net::Packet>(data_packet(5));
  EXPECT_FALSE(star.plane->relay_subcast(outer));
  EXPECT_EQ(star.plane->stats().subcasts_relayed, 0u);
}

TEST(ForwardingPlane, ReplicateHonorsExclusionAndDownLinks) {
  Star star;
  net::InterfaceSet oifs;
  oifs.set(0);
  oifs.set(1);
  oifs.set(2);

  star.network->set_link_up(star.links[1], false);
  net::ReplicateOptions opts;
  opts.exclude_iface = 0;
  opts.skip_down_links = true;
  EXPECT_EQ(star.plane->replicate(data_packet(9), oifs, opts), 1u);
  star.network->run();

  // iface 0 excluded, iface 1 down: only iface 2 receives.
  EXPECT_TRUE(star.neighbors[0]->sequences.empty());
  EXPECT_TRUE(star.neighbors[1]->sequences.empty());
  ASSERT_EQ(star.neighbors[2]->sequences.size(), 1u);
  EXPECT_EQ(star.plane->stats().data_copies_sent, 1u);
}

}  // namespace
}  // namespace express
