// Unit tests for the discrete-event scheduler and deterministic RNG.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace express::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time{0});
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(seconds(3), [&] { order.push_back(3); });
  s.schedule_at(seconds(1), [&] { order.push_back(1); });
  s.schedule_at(seconds(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), seconds(3));
}

TEST(Scheduler, EqualTimesFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(seconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  Time fired{};
  s.schedule_at(seconds(10), [&] {
    s.schedule_after(seconds(5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, seconds(15));
}

TEST(Scheduler, NextEventTimePeeksWithoutRunning) {
  Scheduler s;
  EXPECT_EQ(s.next_event_time(), std::nullopt);
  s.schedule_at(seconds(4), [] {});
  s.schedule_at(seconds(2), [] {});
  EXPECT_EQ(s.next_event_time(), std::optional<Time>(seconds(2)));
  EXPECT_EQ(s.now(), Time{0});  // peeking advances nothing
  s.run();
  EXPECT_EQ(s.next_event_time(), std::nullopt);
}

TEST(Scheduler, NextEventTimeSeesThroughCancelledTops) {
  Scheduler s;
  auto first = s.schedule_at(seconds(1), [] {});
  auto second = s.schedule_at(seconds(2), [] {});
  s.schedule_at(seconds(3), [] {});
  first.cancel();
  second.cancel();
  // Both dead entries at the top of the heap are reclaimed in passing.
  EXPECT_EQ(s.next_event_time(), std::optional<Time>(seconds(3)));
  auto cancelled_all = s.schedule_at(seconds(10), [] {});
  s.run();
  cancelled_all.cancel();
  EXPECT_EQ(s.next_event_time(), std::nullopt);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(seconds(1), [&] { ++fired; });
  s.schedule_at(seconds(10), [&] { ++fired; });
  s.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), seconds(5));  // clock advances to the deadline
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PastSchedulingClampsToNow) {
  Scheduler s;
  Time fired = kNever;
  s.schedule_at(seconds(10), [&] {
    s.schedule_at(seconds(2), [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, seconds(10));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventHandle h = s.schedule_at(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Scheduler, FiredEventNoLongerPending) {
  Scheduler s;
  EventHandle h = s.schedule_at(seconds(1), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, CancelAfterFireIsSafe) {
  Scheduler s;
  EventHandle h = s.schedule_at(seconds(1), [] {});
  s.run();
  h.cancel();  // no-op
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, EmptyHandleIsSafe) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(seconds(1), [&] { ++fired; });
  s.schedule_at(seconds(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PastSchedulingIsCounted) {
  Scheduler s;
  EXPECT_EQ(s.clamped_past_events(), 0u);
  s.schedule_at(seconds(10), [&] {
    s.schedule_at(seconds(2), [] {});  // in the past: clamped + counted
    s.schedule_at(seconds(11), [] {});  // in the future: not counted
  });
  s.run();
  EXPECT_EQ(s.clamped_past_events(), 1u);
  EXPECT_EQ(s.stats().clamped_past_events, 1u);
}

TEST(Scheduler, HandleToRecycledSlotIsInert) {
  // After an event fires, its slab slot is recycled for the next event.
  // A stale handle to the fired event must not report pending and must
  // not cancel the slot's new occupant.
  Scheduler s;
  bool first = false;
  bool second = false;
  EventHandle stale = s.schedule_at(seconds(1), [&] { first = true; });
  s.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(stale.pending());

  EventHandle fresh = s.schedule_at(seconds(2), [&] { second = true; });
  EXPECT_TRUE(fresh.pending());
  stale.cancel();  // must be a no-op on the recycled slot
  EXPECT_TRUE(fresh.pending());
  s.run();
  EXPECT_TRUE(second);
  EXPECT_FALSE(fresh.pending());
}

TEST(Scheduler, CopiedHandlesSeeTheSameEvent) {
  Scheduler s;
  bool fired = false;
  EventHandle a = s.schedule_at(seconds(1), [&] { fired = true; });
  EventHandle b = a;
  EXPECT_TRUE(b.pending());
  a.cancel();
  EXPECT_FALSE(b.pending());
  b.cancel();  // safe double-cancel through the copy
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, StatsCountScheduledCancelledExecuted) {
  Scheduler s;
  EventHandle h1 = s.schedule_at(seconds(1), [] {});
  s.schedule_at(seconds(2), [] {});
  s.schedule_at(seconds(3), [] {});
  h1.cancel();
  s.run();
  const SchedulerStats st = s.stats();
  EXPECT_EQ(st.scheduled, 3u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.executed, 2u);
  EXPECT_EQ(st.pending, 0u);
  EXPECT_GE(st.peak_pending, 3u);
  EXPECT_EQ(st.slab_slots, st.free_slots);  // everything recycled
}

TEST(Scheduler, SlabStopsGrowingInSteadyState) {
  // The zero-allocation property: once the high-water mark of
  // concurrent events is reached, schedule/dispatch cycles recycle
  // slots instead of allocating new ones.
  Scheduler s;
  for (int round = 0; round < 3; ++round) {  // warm up the slab
    for (int i = 0; i < 16; ++i) s.schedule_after(seconds(1), [] {});
    s.run();
  }
  const std::uint64_t high_water = s.stats().slab_slots;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 16; ++i) s.schedule_after(seconds(1), [] {});
    s.run();
  }
  EXPECT_EQ(s.stats().slab_slots, high_water);
  EXPECT_EQ(s.stats().free_slots, high_water);
}

TEST(Scheduler, CancelledSlotsAreRecycledToo) {
  Scheduler s;
  for (int round = 0; round < 3; ++round) {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 8; ++i) {
      handles.push_back(s.schedule_after(seconds(1), [] {}));
    }
    for (auto& h : handles) h.cancel();
    s.run();
  }
  const std::uint64_t high_water = s.stats().slab_slots;
  for (int round = 0; round < 50; ++round) {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 8; ++i) {
      handles.push_back(s.schedule_after(seconds(1), [] {}));
    }
    for (auto& h : handles) h.cancel();
    s.run();
  }
  EXPECT_EQ(s.stats().slab_slots, high_water);
  EXPECT_EQ(s.stats().cancelled, 53u * 8u);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Scheduler, FifoTieBreakSurvivesCancellationsInBetween) {
  // Cancel every other event at one instant; survivors must still fire
  // in insertion order.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(s.schedule_at(seconds(5), [&order, i] { order.push_back(i); }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(Scheduler, EventsScheduledDuringRunAreExecuted) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(seconds(1), recurse);
  };
  s.schedule_at(Time{0}, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), seconds(99));
}

TEST(Scheduler, CancellingTheInFlightEventIsANoOp) {
  // The ecmp::Batcher pattern: a timer action that flushes state and, in
  // doing so, cancels its *own* handle. Dispatch recycles the slot
  // before the action runs, so the stranger scheduled inside the action
  // reuses it — the self-cancel must never reach that stranger.
  Scheduler s;
  bool pending_during_fire = false;
  bool stranger_fired = false;
  EventHandle self;
  self = s.schedule_at(Time{10}, [&] {
    s.schedule_at(Time{20}, [&stranger_fired] { stranger_fired = true; });
    pending_during_fire = self.pending();
    self.cancel();
  });
  s.run();
  EXPECT_FALSE(pending_during_fire);  // in-flight event is not pending
  EXPECT_TRUE(stranger_fired);
  EXPECT_EQ(s.stats().cancelled, 0u);
}

TEST(Scheduler, SelfCancelStaysInertUnderHeavySlotRecycling) {
  // Regression stress for the firing-identity guard: a long chain of
  // self-rescheduling timers, each firing cancels its own handle after
  // scheduling a stranger that recycles the just-freed slot. No round
  // may observe itself pending, cancel a stranger, or bump the
  // cancelled counter.
  Scheduler s;
  constexpr int kRounds = 5000;
  int rounds = 0;
  int strangers = 0;
  int pending_seen = 0;
  EventHandle self;
  std::function<void()> round = [&] {
    ++rounds;
    s.schedule_after(Duration{1}, [&strangers] { ++strangers; });
    if (self.pending()) ++pending_seen;
    self.cancel();
    if (rounds < kRounds) {
      self = s.schedule_after(Duration{2}, [&] { round(); });
    }
  };
  self = s.schedule_at(Time{1}, [&] { round(); });
  s.run();
  EXPECT_EQ(rounds, kRounds);
  EXPECT_EQ(strangers, kRounds);
  EXPECT_EQ(pending_seen, 0);
  EXPECT_EQ(s.stats().cancelled, 0u);
  EXPECT_EQ(s.stats().executed, static_cast<std::uint64_t>(2 * kRounds));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(seconds(2), milliseconds(2000));
  EXPECT_EQ(milliseconds(3), microseconds(3000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds_f(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(7)), 7.0);
}

}  // namespace
}  // namespace express::sim
