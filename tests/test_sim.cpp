// Unit tests for the discrete-event scheduler and deterministic RNG.
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace express::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time{0});
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(seconds(3), [&] { order.push_back(3); });
  s.schedule_at(seconds(1), [&] { order.push_back(1); });
  s.schedule_at(seconds(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), seconds(3));
}

TEST(Scheduler, EqualTimesFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(seconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  Time fired{};
  s.schedule_at(seconds(10), [&] {
    s.schedule_after(seconds(5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, seconds(15));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(seconds(1), [&] { ++fired; });
  s.schedule_at(seconds(10), [&] { ++fired; });
  s.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), seconds(5));  // clock advances to the deadline
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PastSchedulingClampsToNow) {
  Scheduler s;
  Time fired = kNever;
  s.schedule_at(seconds(10), [&] {
    s.schedule_at(seconds(2), [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, seconds(10));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventHandle h = s.schedule_at(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Scheduler, FiredEventNoLongerPending) {
  Scheduler s;
  EventHandle h = s.schedule_at(seconds(1), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, CancelAfterFireIsSafe) {
  Scheduler s;
  EventHandle h = s.schedule_at(seconds(1), [] {});
  s.run();
  h.cancel();  // no-op
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, EmptyHandleIsSafe) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(seconds(1), [&] { ++fired; });
  s.schedule_at(seconds(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, EventsScheduledDuringRunAreExecuted) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(seconds(1), recurse);
  };
  s.schedule_at(Time{0}, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), seconds(99));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(seconds(2), milliseconds(2000));
  EXPECT_EQ(milliseconds(3), microseconds(3000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds_f(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(7)), 7.0);
}

}  // namespace
}  // namespace express::sim
