// Property-based suites (parameterized over seeds): delivery invariants
// on random topologies and workloads, codec fuzz/round-trip, routing
// metric properties, and bit-for-bit determinism of the simulator.
#include <gtest/gtest.h>

#include <algorithm>

#include "ecmp/codec.hpp"
#include "helpers.hpp"
#include "net/routing.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

workload::GeneratedTopology random_topology(sim::Rng& rng) {
  return workload::make_transit_stub(4, 2, 3, rng);  // 24 receivers
}

TEST_P(SeededProperty, DeliveryInvariants) {
  sim::Rng rng(GetParam());
  ExpressNetwork sim(random_topology(rng));
  const ip::ChannelId ch = sim.source().allocate_channel();

  // Random half of the receivers subscribe.
  std::vector<bool> member(sim.receiver_count(), false);
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    member[i] = rng.chance(0.5);
    if (member[i]) sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(2));

  const int packets = 5;
  for (int p = 1; p <= packets; ++p) {
    sim.source().send(ch, 500, static_cast<std::uint64_t>(p));
  }
  sim.run_for(sim::seconds(2));

  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    const std::size_t expected = member[i] ? packets : 0u;
    EXPECT_EQ(sim.receiver(i).deliveries().size(), expected)
        << "receiver " << i << " member=" << member[i];
    EXPECT_EQ(sim.receiver(i).stats().unwanted_data, 0u);
    // Exactly-once: sequences are unique per receiver.
    std::set<std::uint64_t> seqs;
    for (const auto& d : sim.receiver(i).deliveries()) {
      EXPECT_TRUE(seqs.insert(d.sequence).second)
          << "duplicate delivery at receiver " << i;
    }
  }

  // Random churn: some members leave, some non-members join.
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    if (rng.chance(0.4)) {
      if (member[i]) {
        sim.receiver(i).delete_subscription(ch);
      } else {
        sim.receiver(i).new_subscription(ch);
      }
      member[i] = !member[i];
    }
  }
  sim.run_for(sim::seconds(2));
  sim.source().send(ch, 500, 99);
  sim.run_for(sim::seconds(2));
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    const bool got_last = !sim.receiver(i).deliveries().empty() &&
                          sim.receiver(i).deliveries().back().sequence == 99;
    EXPECT_EQ(got_last, member[i]) << "receiver " << i;
  }

  // Full teardown leaves zero state anywhere.
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    if (member[i]) sim.receiver(i).delete_subscription(ch);
  }
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(sim.total_fib_entries(), 0u);
  for (std::size_t i = 0; i < sim.router_count(); ++i) {
    EXPECT_EQ(sim.router(i).channel_count(), 0u) << "router " << i;
  }
}

TEST_P(SeededProperty, FibStateWithinStarBound) {
  // §5.1: an n-receiver channel occupies at most sum-of-path-hops FIB
  // entries; tree sharing only reduces it.
  sim::Rng rng(GetParam() * 7919 + 1);
  ExpressNetwork sim(random_topology(rng));
  const ip::ChannelId ch = sim.source().allocate_channel();
  std::uint64_t bound = 0;
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
    bound += sim.net()
                 .routing()
                 .hop_count(sim.roles().source_host,
                            sim.roles().receiver_hosts[i])
                 .value();
  }
  sim.run_for(sim::seconds(2));
  EXPECT_LE(sim.total_fib_entries(), bound);
  EXPECT_GT(sim.total_fib_entries(), 0u);
}

TEST_P(SeededProperty, QuiescentCountIsExact) {
  sim::Rng rng(GetParam() * 104729 + 3);
  ExpressNetwork sim(random_topology(rng));
  const ip::ChannelId ch = sim.source().allocate_channel();
  std::int64_t members = 0;
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    if (rng.chance(0.6)) {
      sim.receiver(i).new_subscription(ch);
      ++members;
    }
  }
  sim.run_for(sim::seconds(2));
  std::optional<CountResult> result;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(5),
                           [&](CountResult r) { result = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, members);
  EXPECT_TRUE(result->complete);
}

TEST_P(SeededProperty, SimulationIsDeterministic) {
  auto run = [&]() {
    sim::Rng rng(GetParam() + 17);
    ExpressNetwork sim(random_topology(rng));
    const ip::ChannelId ch = sim.source().allocate_channel();
    for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
      if (rng.chance(0.5)) sim.receiver(i).new_subscription(ch);
    }
    sim.run_for(sim::seconds(1));
    for (int p = 0; p < 3; ++p) {
      sim.source().send(ch, 700, static_cast<std::uint64_t>(p));
    }
    sim.run_for(sim::seconds(1));
    std::vector<std::uint64_t> trace;
    trace.push_back(sim.net().stats().packets_sent);
    trace.push_back(sim.net().stats().bytes_sent);
    trace.push_back(sim.net().scheduler().executed_events());
    for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
      trace.push_back(sim.receiver(i).deliveries().size());
      for (const auto& d : sim.receiver(i).deliveries()) {
        trace.push_back(static_cast<std::uint64_t>(d.at.count()));
      }
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(SeededProperty, CodecRoundTripsRandomMessages) {
  sim::Rng rng(GetParam() * 31 + 5);
  for (int i = 0; i < 500; ++i) {
    ecmp::Message msg;
    const ip::ChannelId ch{ip::Address{rng.next_u32() | 1},
                           ip::Address::single_source(rng.next_u32())};
    switch (rng.below(4)) {
      case 0: {
        ecmp::Count c;
        c.channel = ch;
        c.count_id = static_cast<ecmp::CountId>(rng.next_u32());
        c.count = rng.below(0x7FFFFFFF);
        c.query_seq = rng.chance(0.5) ? rng.next_u32() : 0;
        if (rng.chance(0.5)) c.key = rng.next_u64();
        msg = c;
        break;
      }
      case 1: {
        ecmp::CountQuery q;
        q.channel = ch;
        q.count_id = static_cast<ecmp::CountId>(rng.next_u32());
        q.timeout = sim::milliseconds(rng.below(1 << 20));
        q.query_seq = rng.next_u32();
        msg = q;
        break;
      }
      case 2: {
        ecmp::CountResponse r;
        r.channel = ch;
        r.count_id = static_cast<ecmp::CountId>(rng.next_u32());
        r.status = static_cast<ecmp::Status>(rng.below(4));
        msg = r;
        break;
      }
      default: {
        ecmp::KeyRegister k;
        k.channel = ch;
        k.key = rng.next_u64();
        msg = k;
        break;
      }
    }
    const auto bytes = ecmp::encode(msg);
    auto parsed = ecmp::decode(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->second, bytes.size());
    // Compare by re-encoding: the wire form is canonical.
    EXPECT_EQ(ecmp::encode(parsed->first), bytes);
  }
}

TEST_P(SeededProperty, CodecSurvivesRandomBytes) {
  sim::Rng rng(GetParam() * 131 + 9);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    // Must neither crash nor loop; any prefix decoding is acceptable.
    const auto messages = ecmp::decode_all(junk);
    EXPECT_LE(messages.size(), junk.size());
  }
}

TEST_P(SeededProperty, RoutingMetricsAreConsistent) {
  sim::Rng rng(GetParam() * 977 + 11);
  auto g = workload::make_transit_stub(5, 2, 1, rng);
  net::UnicastRouting routing(g.topology);
  const auto n = static_cast<net::NodeId>(g.topology.node_count());
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<net::NodeId>(rng.below(n));
    const auto b = static_cast<net::NodeId>(rng.below(n));
    const auto c = static_cast<net::NodeId>(rng.below(n));
    auto ab = routing.cost(a, b);
    auto ba = routing.cost(b, a);
    ASSERT_EQ(ab.has_value(), ba.has_value());
    if (!ab) continue;
    EXPECT_EQ(*ab, *ba);  // symmetric link costs -> symmetric metric
    auto ac = routing.cost(a, c);
    auto cb = routing.cost(c, b);
    if (ac && cb) {
      EXPECT_LE(*ab, *ac + *cb);  // triangle inequality
    }
    const auto path = routing.path(a, b);
    if (a != b) {
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      EXPECT_EQ(path.size() - 1, routing.hop_count(a, b).value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

}  // namespace
}  // namespace express::test
