// Chaos campaigns (workload/chaos) and the convergence property they
// gate: after a fault heals, the EXPRESS tree returns to an audit-clean
// state within the route-change hysteresis plus propagation slack — and
// the same driver works at delivery level for the PIM-SM baseline.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "audit/invariants.hpp"
#include "baseline/group_host.hpp"
#include "baseline/pim_sm.hpp"
#include "helpers.hpp"
#include "workload/chaos.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using workload::ChaosConfig;
using workload::ChaosReport;
using workload::Fault;
using workload::FaultKind;
using workload::FaultPlanConfig;

TEST(FaultSchedule, DeterministicAndCoreOnly) {
  sim::Rng topo_rng(3);
  const auto generated = workload::make_transit_stub(4, 2, 2, topo_rng);
  FaultPlanConfig config;
  config.fault_count = 50;

  sim::Rng a(99);
  sim::Rng b(99);
  const auto first = workload::make_fault_schedule(generated.topology, config, a);
  const auto second = workload::make_fault_schedule(generated.topology, config, b);

  ASSERT_EQ(first.size(), config.fault_count);
  ASSERT_EQ(second.size(), config.fault_count);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind) << "fault " << i;
    EXPECT_EQ(first[i].links, second[i].links) << "fault " << i;
    EXPECT_EQ(first[i].hold, second[i].hold) << "fault " << i;
  }
  // Only router-router links are ever cut; hosts keep their drop cables.
  for (const Fault& fault : first) {
    EXPECT_FALSE(fault.links.empty());
    for (net::LinkId id : fault.links) {
      const net::LinkInfo& link = generated.topology.link(id);
      EXPECT_EQ(generated.topology.node(link.a).kind, net::NodeKind::kRouter);
      EXPECT_EQ(generated.topology.node(link.b).kind, net::NodeKind::kRouter);
    }
  }
}

TEST(FaultSchedule, RouterDownCutsAllCoreLinksOfTheRouter) {
  sim::Rng topo_rng(3);
  const auto generated = workload::make_transit_stub(4, 2, 1, topo_rng);
  FaultPlanConfig config;
  config.fault_count = 80;
  config.link_flap_weight = 0;
  config.partition_weight = 0;  // router-down only
  sim::Rng rng(5);
  const auto schedule =
      workload::make_fault_schedule(generated.topology, config, rng);
  for (const Fault& fault : schedule) {
    ASSERT_EQ(fault.kind, FaultKind::kRouterDown);
    ASSERT_NE(fault.router, net::kInvalidNode);
    for (net::LinkId id : fault.links) {
      const net::LinkInfo& link = generated.topology.link(id);
      EXPECT_TRUE(link.a == fault.router || link.b == fault.router);
    }
  }
}

/// EXPRESS chaos fixture: transit-stub testbed, one channel, Poisson
/// churn injected per fault, audit callback = invariant violations.
struct ChaosBed {
  explicit ChaosBed(std::uint64_t seed = 11)
      : topo_rng(seed), sim(workload::make_transit_stub(4, 2, 2, topo_rng)) {
    ch = sim.source().allocate_channel();
    // Standing subscribers across the stubs keep the tree spanning the
    // core throughout, so faults hit live forwarding state.
    for (std::size_t i = 0; i < sim.receiver_count(); i += 3) {
      sim.receiver(i).new_subscription(ch);
    }
    sim.run_for(sim::seconds(2));
  }

  std::function<std::size_t()> audit_fn() {
    return [this] {
      return audit::InvariantAuditor(sim.net()).run().violations.size();
    };
  }

  /// Churn whose horizon outlasts the window + hold: the fault lands on
  /// a network with joins and leaves still in flight.
  std::function<void(std::size_t)> churn_fn(sim::Rng& rng) {
    return [this, &rng](std::size_t) {
      const auto events = workload::poisson_churn(
          static_cast<std::uint32_t>(sim.receiver_count() - 1),
          sim::seconds(4), sim::seconds(2), sim::seconds(2), rng);
      for (const auto& ev : events) {
        sim.net().scheduler().schedule_at(
            sim.net().now() + (ev.at - sim::Time{}), [this, ev] {
              // Churn over receivers 1..n-1; receiver 0 stays put.
              auto& host = sim.receiver(ev.host_index + 1);
              if (ev.join) {
                host.new_subscription(ch);
              } else {
                host.delete_subscription(ch);
              }
            });
      }
    };
  }

  sim::Rng topo_rng;
  ExpressNetwork sim;
  ip::ChannelId ch;
};

TEST(Chaos, SmokeCampaignConvergesWithZeroViolations) {
  ChaosBed bed;
  FaultPlanConfig plan;
  plan.fault_count = 12;
  sim::Rng fault_rng(17);
  const auto schedule = workload::make_fault_schedule(
      bed.sim.net().topology(), plan, fault_rng);
  ASSERT_EQ(schedule.size(), 12u);

  sim::Rng churn_rng(23);
  const ChaosReport report =
      workload::run_chaos_campaign(bed.sim.net(), schedule, ChaosConfig{},
                         bed.audit_fn(), bed.churn_fn(churn_rng));

  EXPECT_EQ(report.faults_injected, 12u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.unconverged, 0u);
  EXPECT_GT(report.audits_run, report.faults_injected);
  for (const auto& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.converged) << "fault " << outcome.index;
    EXPECT_GE(outcome.convergence.count(), 0);
    EXPECT_LE(outcome.convergence, ChaosConfig{}.settle_cap);
  }
}

// Satellite: the same campaign with every link lossy. The protocol must
// converge through faults *and* a Bernoulli-impaired data plane at
// once — control is TCP-modeled (data_only), so invariants stay clean
// while the dropped data packets prove the dice actually rolled.
TEST(Chaos, LossEnabledCampaignStaysCleanAndConverges) {
  ChaosBed bed;
  FaultPlanConfig plan;
  plan.fault_count = 6;
  sim::Rng fault_rng(41);
  const auto schedule = workload::make_fault_schedule(
      bed.sim.net().topology(), plan, fault_rng);
  ASSERT_EQ(schedule.size(), 6u);

  ChaosConfig chaos;
  net::ImpairmentConfig lossy;
  lossy.loss.kind = net::LossModel::Kind::kBernoulli;
  lossy.loss.p = 0.02;
  chaos.link_impairments = lossy;
  bed.sim.net().seed_impairments(0xC4A05);

  sim::Rng churn_rng(43);
  auto churn = bed.churn_fn(churn_rng);
  std::uint64_t seq = 0;
  auto churn_and_data = [&](std::size_t fault) {
    churn(fault);
    // Data flows into each fault: the packets fan out across the tree,
    // so the campaign exercises the loss model, not just control churn.
    for (int k = 0; k < 20; ++k) {
      bed.sim.net().scheduler().schedule_at(
          bed.sim.net().now() + sim::milliseconds(50 * (k + 1)),
          [&bed, &seq] { bed.sim.source().send(bed.ch, 300, ++seq); });
    }
  };
  const ChaosReport report = workload::run_chaos_campaign(
      bed.sim.net(), schedule, chaos, bed.audit_fn(), churn_and_data);

  EXPECT_EQ(report.faults_injected, 6u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.unconverged, 0u);
  EXPECT_GT(bed.sim.net().stats().packets_dropped_loss, 0u);
}

/// The on-tree core link a flap should target: `child`'s upstream is
/// `parent` for the channel, and both ends are routers.
std::optional<net::LinkId> on_tree_core_link(ExpressNetwork& sim,
                                             const ip::ChannelId& ch) {
  const net::Topology& topo = sim.net().topology();
  for (std::size_t i = 0; i < sim.router_count(); ++i) {
    const auto up = sim.router(i).upstream_of(ch);
    if (!up) continue;
    if (topo.node(*up).kind != net::NodeKind::kRouter) continue;
    const net::NodeId self = sim.roles().routers[i];
    for (net::LinkId id = 0; id < topo.link_count(); ++id) {
      const net::LinkInfo& link = topo.link(id);
      if ((link.a == self && link.b == *up) ||
          (link.b == self && link.a == *up)) {
        return id;
      }
    }
  }
  return std::nullopt;
}

// Satellite: a core link on the distribution tree flaps while receivers
// churn; the auditor must be clean again within the route-change
// hysteresis plus propagation slack of the heal.
TEST(Convergence, ExpressCleanWithinHysteresisAfterCoreFlap) {
  RouterConfig config;
  config.route_change_hysteresis = sim::milliseconds(500);
  sim::Rng topo_rng(11);
  ExpressNetwork sim(workload::make_transit_stub(4, 2, 2, topo_rng), config);
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); i += 2) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(2));
  ASSERT_TRUE(audit::InvariantAuditor(sim.net()).run().clean());

  const auto link = on_tree_core_link(sim, ch);
  ASSERT_TRUE(link.has_value()) << "no on-tree core link to cut";

  Fault flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.links.push_back(*link);
  flap.hold = sim::seconds(2);  // longer than hysteresis: the re-route runs

  sim::Rng churn_rng(29);
  ChaosConfig chaos;
  auto churn = [&](std::size_t) {
    const auto events = workload::poisson_churn(
        static_cast<std::uint32_t>(sim.receiver_count()),
        sim::milliseconds(800), sim::seconds(2), sim::seconds(2), churn_rng);
    for (const auto& ev : events) {
      sim.net().scheduler().schedule_at(
          sim.net().now() + (ev.at - sim::Time{}), [&sim, ev, ch] {
            if (ev.join) {
              sim.receiver(ev.host_index).new_subscription(ch);
            } else {
              sim.receiver(ev.host_index).delete_subscription(ch);
            }
          });
    }
  };
  const ChaosReport report = workload::run_chaos_campaign(
      sim.net(), {flap}, chaos,
      [&] { return audit::InvariantAuditor(sim.net()).run().violations.size(); },
      churn);

  ASSERT_EQ(report.outcomes.size(), 1u);
  const auto& outcome = report.outcomes[0];
  EXPECT_EQ(outcome.violations, 0u);
  ASSERT_TRUE(outcome.converged);
  // Hysteresis delays the post-heal switch back; everything after that
  // is bounded propagation (joins/prunes across a few 5 ms core hops).
  const sim::Duration epsilon = sim::seconds(1);
  EXPECT_LE(outcome.convergence, config.route_change_hysteresis + epsilon)
      << "converged in " << sim::to_seconds(outcome.convergence) << " s";
}

// The same driver at delivery level for the PIM-SM baseline: the RP
// tree has no re-route logic, so the check is end-to-end — after the
// flap heals, data sent on the group reaches the member again.
TEST(Convergence, PimSmDeliveryResumesAfterCoreFlap) {
  auto roles = workload::make_kary_tree(2, 2);
  baseline::PimConfig config;
  config.rp = roles.topology.node(roles.routers[0]).address;
  const ip::Address group(225, 4, 5, 6);

  // Root--left-mid core link: on the RP tree for receiver 0.
  std::optional<net::LinkId> core;
  for (net::LinkId id = 0; id < roles.topology.link_count(); ++id) {
    const net::LinkInfo& link = roles.topology.link(id);
    if ((link.a == roles.routers[0] && link.b == roles.routers[1]) ||
        (link.b == roles.routers[0] && link.a == roles.routers[1])) {
      core = id;
      break;
    }
  }
  ASSERT_TRUE(core.has_value());

  auto network = std::make_unique<net::Network>(std::move(roles.topology));
  std::vector<baseline::PimSmRouter*> routers;
  for (net::NodeId r : roles.routers) {
    routers.push_back(&network->attach<baseline::PimSmRouter>(r, config));
  }
  baseline::GroupHost& source =
      network->attach<baseline::GroupHost>(roles.source_host);
  std::vector<baseline::GroupHost*> receivers;
  for (net::NodeId h : roles.receiver_hosts) {
    receivers.push_back(&network->attach<baseline::GroupHost>(h));
  }
  receivers[0]->join_group(group, ip::Protocol::kPim);
  network->run_until(network->now() + sim::seconds(1));

  source.send_to_group(group, 200, /*sequence=*/1);
  network->run_until(network->now() + sim::seconds(1));
  ASSERT_EQ(receivers[0]->deliveries().size(), 1u);

  Fault flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.links.push_back(*core);
  flap.hold = sim::seconds(1);
  // Delivery-level audit: once quiescent, a fresh probe packet must
  // reach the member. The callback sends nothing (the auditor contract
  // is read-only during settle); convergence here is just quiescence.
  const ChaosReport report = workload::run_chaos_campaign(
      *network, {flap}, ChaosConfig{}, [] { return std::size_t{0}; });
  ASSERT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.unconverged, 0u);

  source.send_to_group(group, 200, /*sequence=*/2);
  network->run_until(network->now() + sim::seconds(1));
  ASSERT_EQ(receivers[0]->deliveries().size(), 2u);
  EXPECT_EQ(receivers[0]->deliveries()[1].sequence, 2u);
}

}  // namespace
}  // namespace express::test
