// Shared test scaffolding — the library Testbed under the name the
// tests historically used.
#pragma once

#include "testbed/testbed.hpp"

namespace express::test {

using ExpressNetwork = ::express::Testbed;

}  // namespace express::test
