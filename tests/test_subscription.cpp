// Unit tests for the subscription hard state (§3.2, §3.5): membership
// transitions, upstream join/prune planning, and the K(S,E)
// authentication cache — all exercised without a running simulation,
// which is the point of the module seam.
#include <gtest/gtest.h>

#include "express/subscription.hpp"

namespace express {
namespace {

const ip::ChannelId kCh{ip::Address(10, 0, 0, 1),
                        ip::Address::single_source(1)};
constexpr ip::ChannelKey kKeyA = 0xAAAA;
constexpr ip::ChannelKey kKeyB = 0xBBBB;
constexpr ip::ChannelKey kKeyC = 0xCCCC;
constexpr net::NodeId kChild1 = 11;
constexpr net::NodeId kChild2 = 12;
constexpr net::NodeId kUpstream = 20;

TEST(Subscription, JoinAndLeaveLifecycle) {
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);
  EXPECT_TRUE(created);

  bool is_new = false;
  table.apply_join(state, kChild1, 3, std::nullopt, /*decidable=*/true,
                   sim::Time{0}, is_new);
  EXPECT_TRUE(is_new);
  EXPECT_EQ(table.subtree_count(kCh), 3);
  EXPECT_EQ(table.stats().subscribe_events, 1u);

  // A count update on the same session is not a new subscribe event.
  table.apply_join(state, kChild1, 5, std::nullopt, true, sim::Time{0}, is_new);
  EXPECT_FALSE(is_new);
  EXPECT_EQ(table.subtree_count(kCh), 5);
  EXPECT_EQ(table.stats().subscribe_events, 1u);

  EXPECT_TRUE(table.remove_downstream(kCh, kChild1));
  EXPECT_FALSE(table.remove_downstream(kCh, kChild1));
  EXPECT_EQ(table.stats().unsubscribe_events, 1u);
  EXPECT_EQ(table.subtree_count(kCh), 0);
}

TEST(Subscription, RegisteredKeyDecidesLocally) {
  SubscriptionTable table;
  table.register_key(kCh, kKeyA);
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);

  bool decidable = false;
  EXPECT_TRUE(table.key_acceptable(kCh, state, kKeyA, /*at_root=*/true,
                                   decidable));
  EXPECT_TRUE(decidable);
  EXPECT_FALSE(table.key_acceptable(kCh, state, kKeyB, true, decidable));
  EXPECT_TRUE(decidable);
  EXPECT_FALSE(table.key_acceptable(kCh, state, std::nullopt, true, decidable));

  // A locally decided rejection on a just-created channel removes it.
  table.reject_join(kCh, /*created=*/true);
  EXPECT_FALSE(table.contains(kCh));
  EXPECT_EQ(table.stats().auth_rejects, 1u);
}

TEST(Subscription, ValidatedKeyIsCachedThenEvictedWithChannel) {
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);

  // Not at the root and nothing cached: the join is tentatively
  // accepted and must go upstream carrying its key.
  bool decidable = true;
  EXPECT_TRUE(table.key_acceptable(kCh, state, kKeyA, /*at_root=*/false,
                                   decidable));
  EXPECT_FALSE(decidable);
  bool is_new = false;
  table.apply_join(state, kChild1, 1, kKeyA, decidable, sim::Time{0}, is_new);

  const UpstreamPlan plan = table.plan_upstream_update(
      kCh, state, kKeyA, /*upstream_is_router=*/true);
  EXPECT_EQ(plan.send, UpstreamSend::kJoin);
  ASSERT_TRUE(plan.key.has_value());
  EXPECT_EQ(*plan.key, kKeyA);

  // The upstream accepts: the forwarded key becomes the cached K(S,E)
  // and the pending child is acknowledged.
  const VerdictEffects ok = table.apply_upstream_verdict(kCh, true);
  ASSERT_EQ(ok.accept.size(), 1u);
  EXPECT_EQ(ok.accept[0], kChild1);
  ASSERT_TRUE(state.cached_key.has_value());
  EXPECT_EQ(*state.cached_key, kKeyA);

  // Subsequent joins validate against the cache, locally.
  EXPECT_TRUE(table.key_acceptable(kCh, state, kKeyA, false, decidable));
  EXPECT_TRUE(decidable);
  EXPECT_FALSE(table.key_acceptable(kCh, state, kKeyB, false, decidable));
  EXPECT_TRUE(decidable);

  // Channel teardown evicts the cached key: a re-created channel starts
  // undecided again (the cache never outlives the hard state, §3.5).
  table.erase(kCh);
  Channel& fresh = table.get_or_create(kCh, created);
  EXPECT_TRUE(created);
  EXPECT_FALSE(fresh.cached_key.has_value());
  EXPECT_TRUE(table.key_acceptable(kCh, fresh, kKeyB, false, decidable));
  EXPECT_FALSE(decidable);
}

TEST(Subscription, InvalidVerdictRejectsSentKeyAndRetriesOther) {
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);
  state.upstream = kUpstream;

  bool is_new = false;
  table.apply_join(state, kChild1, 1, kKeyA, /*decidable=*/false, sim::Time{0},
                   is_new);
  // The plan itself is not under test here; the call runs for its
  // side effect of recording pending_sent_key = A.
  const UpstreamPlan sent = table.plan_upstream_update(kCh, state, kKeyA, true);
  EXPECT_EQ(sent.send, UpstreamSend::kJoin);
  table.apply_join(state, kChild2, 1, kKeyB, false, sim::Time{0}, is_new);

  // Upstream rejects key A: only the child that presented A is evicted;
  // the other key deserves its own upstream attempt.
  const VerdictEffects fx = table.apply_upstream_verdict(kCh, false);
  ASSERT_EQ(fx.reject.size(), 1u);
  EXPECT_EQ(fx.reject[0], kChild1);
  EXPECT_TRUE(fx.membership_changed);
  EXPECT_FALSE(fx.channel_gone);
  ASSERT_TRUE(fx.rejoin);
  ASSERT_TRUE(fx.rejoin_key.has_value());
  EXPECT_EQ(*fx.rejoin_key, kKeyB);
  EXPECT_EQ(state.advertised_upstream, 0);
  EXPECT_EQ(table.stats().auth_rejects, 1u);

  // A second rejection (of key B) empties the channel.
  const UpstreamPlan retry = table.plan_upstream_update(kCh, state, kKeyB, true);
  EXPECT_EQ(retry.send, UpstreamSend::kJoin);
  const VerdictEffects gone = table.apply_upstream_verdict(kCh, false);
  ASSERT_EQ(gone.reject.size(), 1u);
  EXPECT_EQ(gone.reject[0], kChild2);
  EXPECT_TRUE(gone.channel_gone);
  EXPECT_FALSE(gone.rejoin);
}

TEST(Subscription, VerdictEffectsEmitInNeighborIdOrder) {
  // Regression for the hash-order bug the determinism sweep fixed:
  // downstream used to be an unordered_map, so the kOk / kInvalidKey
  // message order (and thus the packet trace) depended on the hash seed
  // and insertion history. With the ordered map, both lists come out
  // ascending by neighbor id no matter how the children joined.
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);
  state.upstream = kUpstream;

  // Children join in scrambled id order, alternating keys.
  bool is_new = false;
  table.apply_join(state, 15, 1, kKeyB, /*decidable=*/false, sim::Time{0},
                   is_new);
  table.apply_join(state, 13, 1, kKeyA, false, sim::Time{0}, is_new);
  table.apply_join(state, 14, 1, kKeyB, false, sim::Time{0}, is_new);
  table.apply_join(state, 12, 1, kKeyA, false, sim::Time{0}, is_new);
  const UpstreamPlan plan = table.plan_upstream_update(kCh, state, kKeyA, true);
  EXPECT_EQ(plan.send, UpstreamSend::kJoin);  // pending_sent_key is now A

  // The upstream accepts key A: the A-children validate, the B-children
  // are rejected against the fresh cache — each list in id order.
  const VerdictEffects fx = table.apply_upstream_verdict(kCh, true);
  EXPECT_EQ(fx.accept, (std::vector<net::NodeId>{12, 13}));
  EXPECT_EQ(fx.reject, (std::vector<net::NodeId>{14, 15}));
}

TEST(Subscription, RejectedVerdictRetriesLowestIdChildsKey) {
  // Same regression class, rejection path: when several unvalidated
  // keys remain after a rejection, the retry key used to be whichever
  // entry the hash map yielded first. It must be the lowest-id child's.
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);
  state.upstream = kUpstream;

  bool is_new = false;
  table.apply_join(state, 15, 1, kKeyB, /*decidable=*/false, sim::Time{0},
                   is_new);
  table.apply_join(state, 12, 1, kKeyC, false, sim::Time{0}, is_new);
  table.apply_join(state, 13, 1, kKeyA, false, sim::Time{0}, is_new);
  const UpstreamPlan plan = table.plan_upstream_update(kCh, state, kKeyA, true);
  EXPECT_EQ(plan.send, UpstreamSend::kJoin);

  const VerdictEffects fx = table.apply_upstream_verdict(kCh, false);
  EXPECT_EQ(fx.reject, (std::vector<net::NodeId>{13}));
  ASSERT_TRUE(fx.rejoin);
  ASSERT_TRUE(fx.rejoin_key.has_value());
  EXPECT_EQ(*fx.rejoin_key, kKeyC);  // child 12's key, not hash order
}

TEST(Subscription, PlanJoinPruneAndDrift) {
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);
  state.upstream = kUpstream;

  bool is_new = false;
  table.apply_join(state, kChild1, 2, std::nullopt, true, sim::Time{0}, is_new);
  UpstreamPlan plan = table.plan_upstream_update(kCh, state, std::nullopt, true);
  EXPECT_EQ(plan.send, UpstreamSend::kJoin);
  EXPECT_EQ(plan.total, 2);
  EXPECT_EQ(state.advertised_upstream, 2);
  EXPECT_EQ(table.stats().joins_sent, 1u);

  // The aggregate moves without crossing zero: drift, not join/prune.
  table.apply_join(state, kChild1, 4, std::nullopt, true, sim::Time{0}, is_new);
  plan = table.plan_upstream_update(kCh, state, std::nullopt, true);
  EXPECT_EQ(plan.send, UpstreamSend::kDrift);
  EXPECT_FALSE(plan.remove_channel);

  table.remove_downstream(kCh, kChild1);
  plan = table.plan_upstream_update(kCh, state, std::nullopt, true);
  EXPECT_EQ(plan.send, UpstreamSend::kPrune);
  EXPECT_TRUE(plan.remove_channel);
  EXPECT_EQ(state.advertised_upstream, 0);
  EXPECT_EQ(table.stats().prunes_sent, 1u);
}

TEST(Subscription, RootPlanNeverSendsUpstream) {
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);

  bool is_new = false;
  table.apply_join(state, kChild1, 1, std::nullopt, true, sim::Time{0}, is_new);
  UpstreamPlan plan = table.plan_upstream_update(
      kCh, state, std::nullopt, /*upstream_is_router=*/false);
  EXPECT_EQ(plan.send, UpstreamSend::kNone);
  EXPECT_TRUE(state.validated_upstream);
  EXPECT_FALSE(plan.remove_channel);

  table.remove_downstream(kCh, kChild1);
  plan = table.plan_upstream_update(kCh, state, std::nullopt, false);
  EXPECT_TRUE(plan.remove_channel);
}

TEST(Subscription, RefreshFastPathOnlyForValidatedSessions) {
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);

  EXPECT_FALSE(table.refresh_existing(kCh, kChild1, 2, sim::Time{0}));

  bool is_new = false;
  DownstreamEntry& entry = table.apply_join(state, kChild1, 1, std::nullopt,
                                            /*decidable=*/false, sim::Time{0},
                                            is_new);
  // Unvalidated entries must take the slow (re-validating) path.
  EXPECT_FALSE(table.refresh_existing(kCh, kChild1, 2, sim::Time{0}));
  entry.validated = true;
  EXPECT_TRUE(table.refresh_existing(kCh, kChild1, 2, sim::Time{0}));
  EXPECT_EQ(table.subtree_count(kCh), 2);
}

TEST(Subscription, ManagementStateAccounting) {
  SubscriptionTable table;
  bool created = false;
  Channel& state = table.get_or_create(kCh, created);
  bool is_new = false;
  table.apply_join(state, kChild1, 1, std::nullopt, true, sim::Time{0}, is_new);
  // One downstream record + the upstream record = 64 bytes (§5.2).
  EXPECT_EQ(table.management_state_bytes(), 64u);
  state.cached_key = kKeyA;
  EXPECT_EQ(table.management_state_bytes(), 72u);
  table.register_key(kCh, kKeyA);
  EXPECT_EQ(table.management_state_bytes(), 80u);
}

}  // namespace
}  // namespace express
