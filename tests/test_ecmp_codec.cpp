// Unit tests for ECMP messages, countId ranges, and the wire codec —
// including the paper's byte-size invariants (16-byte unsolicited Count,
// +8 for the key, 92 Counts per 1480-byte segment).
#include <gtest/gtest.h>

#include "ecmp/codec.hpp"
#include "ecmp/count_id.hpp"
#include "ecmp/session.hpp"

namespace express::ecmp {
namespace {

ip::ChannelId test_channel() {
  return ip::ChannelId{ip::Address(10, 0, 0, 1), ip::Address::single_source(42)};
}

TEST(CountIdSpace, ReservedIdsAreDistinct) {
  EXPECT_NE(kSubscriberId, kNeighborsId);
  EXPECT_NE(kSubscriberId, kAllChannelsId);
  EXPECT_NE(kNeighborsId, kAllChannelsId);
}

TEST(CountIdSpace, RangeClassification) {
  EXPECT_TRUE(is_network_count(kLinkCountId));
  EXPECT_TRUE(is_network_count(kRouterCountId));
  EXPECT_TRUE(is_network_count(kWeightedTreeSizeId));
  EXPECT_FALSE(is_network_count(kSubscriberId));
  EXPECT_TRUE(is_local_count(0x1000));
  EXPECT_TRUE(is_local_count(0x3FFF));
  EXPECT_FALSE(is_local_count(0x4000));
  EXPECT_TRUE(is_app_count(0x4000));
  EXPECT_TRUE(is_app_count(0xFFFF));
}

TEST(CountIdSpace, HostForwardingRule) {
  // §3.1 footnote 3: network-layer counts never reach leaf hosts.
  EXPECT_TRUE(forwarded_to_hosts(kSubscriberId));
  EXPECT_TRUE(forwarded_to_hosts(kAppRangeBegin + 3));
  EXPECT_FALSE(forwarded_to_hosts(kLinkCountId));
  EXPECT_FALSE(forwarded_to_hosts(0x1234));  // locally-defined
}

TEST(Codec, UnsolicitedCountIsSixteenBytes) {
  // §5.3: "approximately 92 16-byte Count messages fit in a 1480-byte
  // maximum-sized TCP segment".
  Count c;
  c.channel = test_channel();
  c.count = 12345;
  EXPECT_EQ(encoded_size(Message{c}), 16u);
  EXPECT_EQ(messages_per_segment(Message{c}), 92u);
}

TEST(Codec, KeyAddsEightBytes) {
  // §5.2: "adding another eight bytes to store K(S,E)".
  Count c;
  c.channel = test_channel();
  c.count = 1;
  c.key = 0xDEADBEEFCAFEF00DULL;
  EXPECT_EQ(encoded_size(Message{c}), 24u);
}

TEST(Codec, CountRoundTrip) {
  Count c;
  c.channel = test_channel();
  c.count_id = kSubscriberId;
  c.count = 9999999;
  const auto bytes = encode(Message{c});
  EXPECT_EQ(bytes.size(), encoded_size(Message{c}));
  auto parsed = decode(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->second, bytes.size());
  const auto& m = std::get<Count>(parsed->first);
  EXPECT_EQ(m.channel, c.channel);
  EXPECT_EQ(m.count_id, c.count_id);
  EXPECT_EQ(m.count, c.count);
  EXPECT_EQ(m.query_seq, 0u);
  EXPECT_FALSE(m.key.has_value());
}

TEST(Codec, CountWithSeqAndKeyRoundTrip) {
  Count c;
  c.channel = test_channel();
  c.count_id = kAppRangeBegin + 7;
  c.count = 1;
  c.query_seq = 0xABCD1234;
  c.key = 42;
  const auto bytes = encode(Message{c});
  auto parsed = decode(bytes);
  ASSERT_TRUE(parsed.has_value());
  const auto& m = std::get<Count>(parsed->first);
  EXPECT_EQ(m.query_seq, c.query_seq);
  ASSERT_TRUE(m.key.has_value());
  EXPECT_EQ(*m.key, 42u);
}

TEST(Codec, CountSaturatesAtU32Max) {
  Count c;
  c.channel = test_channel();
  c.count = (1LL << 40);  // exceeds the 32-bit wire field
  auto parsed = decode(encode(Message{c}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<Count>(parsed->first).count, 0xFFFFFFFFLL);
}

TEST(Codec, NegativeCountClampsToZero) {
  Count c;
  c.channel = test_channel();
  c.count = -5;
  auto parsed = decode(encode(Message{c}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<Count>(parsed->first).count, 0);
}

TEST(Codec, CountQueryRoundTrip) {
  CountQuery q;
  q.channel = test_channel();
  q.count_id = kLinkCountId;
  q.timeout = sim::milliseconds(2500);
  q.query_seq = 77;
  auto parsed = decode(encode(Message{q}));
  ASSERT_TRUE(parsed.has_value());
  const auto& m = std::get<CountQuery>(parsed->first);
  EXPECT_EQ(m.channel, q.channel);
  EXPECT_EQ(m.count_id, q.count_id);
  EXPECT_EQ(m.timeout, q.timeout);
  EXPECT_EQ(m.query_seq, q.query_seq);
}

TEST(Codec, CountResponseRoundTrip) {
  for (Status status : {Status::kOk, Status::kUnsupportedCount,
                        Status::kInvalidKey, Status::kNotOnTree}) {
    CountResponse r;
    r.channel = test_channel();
    r.status = status;
    auto parsed = decode(encode(Message{r}));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(std::get<CountResponse>(parsed->first).status, status);
  }
}

TEST(Codec, KeyRegisterRoundTrip) {
  KeyRegister k;
  k.channel = test_channel();
  k.key = 0x0123456789ABCDEFULL;
  auto parsed = decode(encode(Message{k}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<KeyRegister>(parsed->first).key, k.key);
}

TEST(Codec, DecodeRejectsTruncatedInput) {
  Count c;
  c.channel = test_channel();
  c.count = 5;
  c.key = 9;
  auto bytes = encode(Message{c});
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(decode(std::span(bytes).first(n))) << "prefix length " << n;
  }
}

TEST(Codec, DecodeRejectsUnknownType) {
  std::vector<std::uint8_t> bytes(16, 0);
  bytes[0] = 0x77;
  EXPECT_FALSE(decode(bytes));
}

TEST(Codec, DecodeRejectsBadStatus) {
  CountResponse r;
  r.channel = test_channel();
  auto bytes = encode(Message{r});
  bytes[12] = 0x20;  // invalid status value
  EXPECT_FALSE(decode(bytes));
}

TEST(Codec, BatchRoundTrip) {
  std::vector<std::uint8_t> segment;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    Count c;
    c.channel = test_channel();
    c.count = i;
    encode(Message{c}, segment);
  }
  const auto messages = decode_all(segment);
  ASSERT_EQ(messages.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(std::get<Count>(messages[static_cast<std::size_t>(i)]).count, i);
  }
}

TEST(Codec, BatchStopsAtGarbage) {
  Count c;
  c.channel = test_channel();
  c.count = 1;
  auto segment = encode(Message{c});
  segment.push_back(0xFF);  // unknown-type tail
  EXPECT_EQ(decode_all(segment).size(), 1u);
}

TEST(NeighborTable, FirstContactIsNotARevival) {
  NeighborTable t;
  EXPECT_FALSE(t.heard_from(3, 0, sim::seconds(1)));
  EXPECT_FALSE(t.heard_from(3, 0, sim::seconds(2)));
  EXPECT_TRUE(t.is_alive(3));
  EXPECT_EQ(t.alive_count(), 1u);
}

TEST(NeighborTable, ExpiresSilentNeighbors) {
  NeighborTable t;
  t.heard_from(1, 0, sim::seconds(0));
  t.heard_from(2, 1, sim::seconds(9));
  auto dead = t.expire(sim::seconds(10), sim::seconds(5));
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].neighbor, 1u);
  EXPECT_FALSE(t.is_alive(1));
  EXPECT_TRUE(t.is_alive(2));
  // Re-hearing revives the session (reports re-establishment).
  EXPECT_TRUE(t.heard_from(1, 0, sim::seconds(11)));
  EXPECT_TRUE(t.is_alive(1));
}

TEST(NeighborTable, ExpireReturnsDeadSessionsInNeighborIdOrder) {
  // Regression for the hash-order bug the determinism sweep fixed: the
  // dead list drives death callbacks (count subtraction, upstream
  // prunes), so its order is protocol-visible. It used to be whatever
  // order the session hash map yielded; it must be ascending neighbor
  // id regardless of when each session was first heard.
  NeighborTable t;
  t.heard_from(7, 0, sim::seconds(0));
  t.heard_from(3, 1, sim::seconds(0));
  t.heard_from(9, 2, sim::seconds(0));
  t.heard_from(1, 3, sim::seconds(0));
  auto dead = t.expire(sim::seconds(10), sim::seconds(5));
  ASSERT_EQ(dead.size(), 4u);
  EXPECT_EQ(dead[0].neighbor, 1u);
  EXPECT_EQ(dead[1].neighbor, 3u);
  EXPECT_EQ(dead[2].neighbor, 7u);
  EXPECT_EQ(dead[3].neighbor, 9u);
}

TEST(NeighborTable, KillMarksDead) {
  NeighborTable t;
  t.heard_from(5, 2, sim::seconds(1));
  auto killed = t.kill(5);
  ASSERT_TRUE(killed.has_value());
  EXPECT_EQ(killed->iface, 2u);
  EXPECT_FALSE(t.is_alive(5));
  EXPECT_FALSE(t.kill(5).has_value());  // already dead
  EXPECT_FALSE(t.kill(99).has_value()); // unknown
}

}  // namespace
}  // namespace express::ecmp
