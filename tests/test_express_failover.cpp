// Topology-change handling (§3.2): when unicast routing moves, a router
// sends a current Count to the new upstream and a zero Count to the old
// one, with hysteresis against route flaps; TCP-mode failure handling
// subtracts a dead neighbor's counts.
#include <gtest/gtest.h>

#include "express/host.hpp"
#include "express/router.hpp"
#include "net/network.hpp"

namespace express::test {
namespace {

// src -- rA -- rB -- rD -- recv     (top path, cost 1+1)
//          \-- rC --/               (bottom path, cost 2+2: backup)
struct DiamondNet {
  DiamondNet() {
    net::Topology topo;
    ra = topo.add_router("rA");
    rb = topo.add_router("rB");
    rc = topo.add_router("rC");
    rd = topo.add_router("rD");
    src_node = topo.add_host("src");
    recv_node = topo.add_host("recv");
    topo.add_link(ra, src_node, sim::milliseconds(1));
    link_ab = topo.add_link(ra, rb, sim::milliseconds(1), 1);
    link_bd = topo.add_link(rb, rd, sim::milliseconds(1), 1);
    link_ac = topo.add_link(ra, rc, sim::milliseconds(1), 2);
    link_cd = topo.add_link(rc, rd, sim::milliseconds(1), 2);
    topo.add_link(rd, recv_node, sim::milliseconds(1));
    network = std::make_unique<net::Network>(std::move(topo));
    RouterConfig config;
    config.route_change_hysteresis = sim::milliseconds(500);
    router_a = &network->attach<ExpressRouter>(ra, config);
    router_b = &network->attach<ExpressRouter>(rb, config);
    router_c = &network->attach<ExpressRouter>(rc, config);
    router_d = &network->attach<ExpressRouter>(rd, config);
    source = &network->attach<ExpressHost>(src_node);
    receiver = &network->attach<ExpressHost>(recv_node);
  }

  void run_for(sim::Duration d) { network->run_until(network->now() + d); }

  net::NodeId ra{}, rb{}, rc{}, rd{}, src_node{}, recv_node{};
  net::LinkId link_ab{}, link_bd{}, link_ac{}, link_cd{};
  std::unique_ptr<net::Network> network;
  ExpressRouter *router_a{}, *router_b{}, *router_c{}, *router_d{};
  ExpressHost *source{}, *receiver{};
};

TEST(Failover, RejoinsViaAlternatePathAfterLinkFailure) {
  DiamondNet d;
  const ip::ChannelId ch = d.source->allocate_channel();
  d.receiver->new_subscription(ch);
  d.run_for(sim::seconds(1));

  // Tree uses the cheap top path through rB.
  EXPECT_TRUE(d.router_b->on_tree(ch));
  EXPECT_FALSE(d.router_c->on_tree(ch));
  EXPECT_EQ(d.router_d->upstream_of(ch), d.rb);

  d.source->send(ch, 100, 1);
  d.run_for(sim::seconds(1));
  ASSERT_EQ(d.receiver->deliveries().size(), 1u);

  // Cut rB--rD. After hysteresis, rD re-joins through rC; rB prunes.
  d.network->set_link_up(d.link_bd, false);
  d.run_for(sim::seconds(2));
  EXPECT_EQ(d.router_d->upstream_of(ch), d.rc);
  EXPECT_TRUE(d.router_c->on_tree(ch));
  EXPECT_FALSE(d.router_b->on_tree(ch));  // pruned via dead-link cleanup

  d.source->send(ch, 100, 2);
  d.run_for(sim::seconds(1));
  ASSERT_EQ(d.receiver->deliveries().size(), 2u);
  EXPECT_EQ(d.receiver->deliveries()[1].sequence, 2u);
}

TEST(Failover, HysteresisSuppressesRouteFlap) {
  DiamondNet d;
  const ip::ChannelId ch = d.source->allocate_channel();
  d.receiver->new_subscription(ch);
  d.run_for(sim::seconds(1));
  const auto prunes_before = d.router_d->stats().prunes_sent;

  // Flap: down and back up within the 500 ms hysteresis window.
  d.network->set_link_up(d.link_bd, false);
  d.run_for(sim::milliseconds(100));
  d.network->set_link_up(d.link_bd, true);
  d.run_for(sim::seconds(2));

  // rD never switched away from rB and sent no prune.
  EXPECT_EQ(d.router_d->upstream_of(ch), d.rb);
  EXPECT_EQ(d.router_d->stats().prunes_sent, prunes_before);
  EXPECT_FALSE(d.router_c->on_tree(ch));

  d.source->send(ch, 100, 1);
  d.run_for(sim::seconds(1));
  EXPECT_EQ(d.receiver->deliveries().size(), 1u);
}

TEST(Failover, RecoveryPrefersBetterPathAgain) {
  DiamondNet d;
  const ip::ChannelId ch = d.source->allocate_channel();
  d.receiver->new_subscription(ch);
  d.run_for(sim::seconds(1));

  d.network->set_link_up(d.link_bd, false);
  d.run_for(sim::seconds(2));
  ASSERT_EQ(d.router_d->upstream_of(ch), d.rc);

  // Restore: routing prefers rB again; rD switches back, rC prunes.
  d.network->set_link_up(d.link_bd, true);
  d.run_for(sim::seconds(2));
  EXPECT_EQ(d.router_d->upstream_of(ch), d.rb);
  EXPECT_FALSE(d.router_c->on_tree(ch));
  EXPECT_TRUE(d.router_b->on_tree(ch));

  d.source->send(ch, 100, 3);
  d.run_for(sim::seconds(1));
  ASSERT_EQ(d.receiver->deliveries().size(), 1u);
}

TEST(Failover, SourceLinkFailureStopsDeliveryCleanly) {
  DiamondNet d;
  const ip::ChannelId ch = d.source->allocate_channel();
  d.receiver->new_subscription(ch);
  d.run_for(sim::seconds(1));

  // Cut the receiver's access link: rD loses its only subscriber.
  const auto iface = d.network->topology().interface_to(d.rd, d.recv_node);
  ASSERT_TRUE(iface.has_value());
  const net::LinkId access =
      d.network->topology().node(d.rd).interfaces[*iface];
  d.network->set_link_up(access, false);
  d.run_for(sim::seconds(2));

  // The dead-neighbor cleanup propagates prunes to the root.
  EXPECT_FALSE(d.router_d->on_tree(ch));
  EXPECT_FALSE(d.router_b->on_tree(ch));
  EXPECT_FALSE(d.router_a->on_tree(ch));
}

}  // namespace
}  // namespace express::test
