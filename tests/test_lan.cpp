// Multi-access LAN segments: many hosts behind one router interface,
// ECMP control on the well-known address, UDP-mode general queries with
// no report suppression, and shared-wire data delivery.
#include <gtest/gtest.h>

#include <optional>

#include "express/host.hpp"
#include "express/router.hpp"
#include "net/lan.hpp"
#include "net/network.hpp"

namespace express::test {
namespace {

// core --- edge ===[hub]=== h0 h1 h2 h3    ;  src host on core.
struct LanNet {
  explicit LanNet(RouterConfig config = {}, std::uint32_t lan_hosts = 4) {
    net::Topology topo;
    core_id = topo.add_router("core");
    edge_id = topo.add_router("edge");
    topo.add_link(core_id, edge_id, sim::milliseconds(1));
    src_id = topo.add_host("src");
    topo.add_link(core_id, src_id, sim::milliseconds(1));
    segment = net::add_lan_segment(topo, edge_id, lan_hosts);
    network = std::make_unique<net::Network>(std::move(topo));
    core = &network->attach<ExpressRouter>(core_id, config);
    edge = &network->attach<ExpressRouter>(edge_id, config);
    network->attach<net::LanHub>(segment.hub);
    source = &network->attach<ExpressHost>(src_id);
    for (net::NodeId h : segment.hosts) {
      hosts.push_back(&network->attach<ExpressHost>(h));
    }
  }
  void run_for(sim::Duration d) { network->run_until(network->now() + d); }

  net::NodeId core_id{}, edge_id{}, src_id{};
  net::LanSegment segment;
  std::unique_ptr<net::Network> network;
  ExpressRouter *core{}, *edge{};
  ExpressHost* source{};
  std::vector<ExpressHost*> hosts;
};

TEST(Lan, SubscribeAndReceiveThroughSharedSegment) {
  LanNet lan;
  const ip::ChannelId ch = lan.source->allocate_channel();
  lan.hosts[0]->new_subscription(ch);
  lan.hosts[2]->new_subscription(ch);
  lan.run_for(sim::seconds(1));

  // The edge router tracks each LAN member separately, all behind one
  // interface.
  EXPECT_EQ(lan.edge->subtree_count(ch), 2);
  EXPECT_EQ(lan.edge->fib().size(), 1u);

  lan.source->send(ch, 600, 1);
  lan.run_for(sim::seconds(1));
  EXPECT_EQ(lan.hosts[0]->deliveries().size(), 1u);
  EXPECT_EQ(lan.hosts[2]->deliveries().size(), 1u);
  // Non-members saw the frame on the wire but the "NIC" filtered it:
  // no app delivery, no unwanted-data violation.
  EXPECT_TRUE(lan.hosts[1]->deliveries().empty());
  EXPECT_EQ(lan.hosts[1]->stats().unwanted_data, 0u);
}

TEST(Lan, OneCopyOnTheWirePerPacket) {
  // The LAN's whole point: 4 subscribers, but the router transmits one
  // copy onto the segment (the hub repeats it at layer 2).
  LanNet lan;
  const ip::ChannelId ch = lan.source->allocate_channel();
  for (auto* h : lan.hosts) h->new_subscription(ch);
  lan.run_for(sim::seconds(1));
  const auto copies_before = lan.edge->stats().data_copies_sent;
  lan.source->send(ch, 600, 1);
  lan.run_for(sim::seconds(1));
  EXPECT_EQ(lan.edge->stats().data_copies_sent, copies_before + 1);
  for (auto* h : lan.hosts) {
    EXPECT_EQ(h->deliveries().size(), 1u);
  }
}

TEST(Lan, UdpGeneralQueryGetsAnswerFromEveryMember) {
  RouterConfig config;
  config.udp_query_interval = sim::seconds(3);
  LanNet lan(config);
  const ip::ChannelId ch = lan.source->allocate_channel();
  // The edge's LAN interface is its second (index 1: 0=core, 1=hub).
  lan.edge->set_interface_mode(1, ecmp::Mode::kUdp);
  for (auto* h : lan.hosts) h->new_subscription(ch);
  lan.run_for(sim::seconds(1));

  const auto queries_before = lan.edge->stats().queries_sent;
  lan.run_for(sim::seconds(3));  // one refresh round
  // One general query on the wire...
  EXPECT_EQ(lan.edge->stats().queries_sent, queries_before + 1);
  // ...answered by all four members (§3.2: no report suppression).
  std::uint64_t answered = 0;
  for (auto* h : lan.hosts) answered += h->stats().queries_answered;
  EXPECT_EQ(answered, 4u);
  EXPECT_TRUE(lan.edge->on_tree(ch));
}

TEST(Lan, SilentLanMemberExpiresIndividually) {
  RouterConfig config;
  config.udp_query_interval = sim::seconds(2);
  config.udp_robustness = 2;
  LanNet lan(config);
  const ip::ChannelId ch = lan.source->allocate_channel();
  lan.edge->set_interface_mode(1, ecmp::Mode::kUdp);
  for (auto* h : lan.hosts) h->new_subscription(ch);
  lan.run_for(sim::seconds(1));
  ASSERT_EQ(lan.edge->subtree_count(ch), 4);

  lan.hosts[3]->set_silent(true);  // crashes without leaving
  lan.run_for(sim::seconds(15));
  EXPECT_EQ(lan.edge->subtree_count(ch), 3);  // only the dead one aged out
  EXPECT_TRUE(lan.edge->on_tree(ch));

  lan.source->send(ch, 100, 1);
  lan.run_for(sim::seconds(1));
  EXPECT_EQ(lan.hosts[0]->deliveries().size(), 1u);
}

TEST(Lan, DeadHostLinkIsSkippedNotMisattributed) {
  // Cut a LAN member's drop cable. The dead-child cleanup in
  // on_routing_change cannot resolve an interface toward the host (it
  // sits behind the hub and has no route), so it must *skip* the update
  // and count it — the old code fell back to interface 0 and zeroed the
  // subscription, permanently cutting the member off even after the
  // wire healed (UDP refresh never re-queries a removed channel).
  RouterConfig config;
  config.udp_query_interval = sim::seconds(5);
  config.udp_robustness = 2;
  LanNet lan(config);
  const ip::ChannelId ch = lan.source->allocate_channel();
  lan.edge->set_interface_mode(1, ecmp::Mode::kUdp);
  lan.hosts[1]->new_subscription(ch);  // the only subscriber
  lan.run_for(sim::seconds(1));
  ASSERT_EQ(lan.edge->subtree_count(ch), 1);

  const net::NodeId victim = lan.segment.hosts[1];
  auto hub_iface = lan.network->topology().interface_to(lan.segment.hub, victim);
  ASSERT_TRUE(hub_iface.has_value());
  const net::LinkId drop =
      lan.network->topology().node(lan.segment.hub).interfaces.at(*hub_iface);

  lan.network->set_link_up(drop, false);
  lan.run_for(sim::milliseconds(500));
  EXPECT_EQ(lan.edge->stats().unresolved_neighbor_updates, 1u);
  EXPECT_EQ(lan.edge->subtree_count(ch), 1);  // hard state intact
  EXPECT_TRUE(lan.edge->on_tree(ch));

  // Heal inside the soft-state lifetime: the member receives again
  // without rejoining.
  lan.network->set_link_up(drop, true);
  lan.run_for(sim::milliseconds(500));
  lan.source->send(ch, 100, 1);
  lan.run_for(sim::seconds(1));
  EXPECT_EQ(lan.hosts[1]->deliveries().size(), 1u);
}

TEST(Lan, SameSegmentSourceReachesNeighborsViaTheWire) {
  // A host on the LAN sources a channel; a subscriber on the same wire
  // hears the transmission directly (hub broadcast), and the router
  // does not echo it back onto the segment.
  LanNet lan;
  ExpressHost& speaker = *lan.hosts[0];
  const ip::ChannelId ch = speaker.allocate_channel();
  lan.hosts[1]->new_subscription(ch);
  lan.run_for(sim::seconds(1));
  const auto edge_copies = lan.edge->stats().data_copies_sent;
  speaker.send(ch, 300, 5);
  lan.run_for(sim::seconds(1));
  ASSERT_EQ(lan.hosts[1]->deliveries().size(), 1u);
  EXPECT_EQ(lan.hosts[1]->deliveries()[0].sequence, 5u);
  // The router forwarded nothing back onto its incoming interface.
  EXPECT_EQ(lan.edge->stats().data_copies_sent, edge_copies);
}

TEST(Lan, CountQueryAggregatesOverSegmentMembers) {
  LanNet lan;
  const ip::ChannelId ch = lan.source->allocate_channel();
  for (auto* h : lan.hosts) h->new_subscription(ch);
  lan.run_for(sim::seconds(1));
  std::optional<CountResult> result;
  lan.source->count_query(ch, ecmp::kSubscriberId, sim::seconds(3),
                          [&](CountResult r) { result = r; });
  lan.run_for(sim::seconds(8));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, 4);
  EXPECT_TRUE(result->complete);
}

TEST(Lan, AuthenticatedChannelWorksAcrossSegment) {
  LanNet lan;
  const ip::ChannelId ch = lan.source->allocate_channel();
  lan.source->channel_key(ch, 0xFACEULL);
  lan.run_for(sim::seconds(1));
  std::optional<ecmp::Status> good, bad;
  lan.hosts[0]->new_subscription(ch, 0xFACEULL,
                                 [&](ecmp::Status s) { good = s; });
  lan.hosts[1]->new_subscription(ch, std::nullopt,
                                 [&](ecmp::Status s) { bad = s; });
  lan.run_for(sim::seconds(2));
  ASSERT_TRUE(good && bad);
  EXPECT_EQ(*good, ecmp::Status::kOk);
  EXPECT_EQ(*bad, ecmp::Status::kInvalidKey);
  lan.source->send(ch, 100, 1);
  lan.run_for(sim::seconds(1));
  EXPECT_EQ(lan.hosts[0]->deliveries().size(), 1u);
  EXPECT_TRUE(lan.hosts[1]->deliveries().empty());
}

TEST(Lan, LeaveFromOneMemberKeepsOthersReceiving) {
  LanNet lan;
  const ip::ChannelId ch = lan.source->allocate_channel();
  lan.hosts[0]->new_subscription(ch);
  lan.hosts[1]->new_subscription(ch);
  lan.run_for(sim::seconds(1));
  lan.hosts[0]->delete_subscription(ch);
  lan.run_for(sim::seconds(1));
  EXPECT_EQ(lan.edge->subtree_count(ch), 1);
  lan.source->send(ch, 100, 1);
  lan.run_for(sim::seconds(1));
  EXPECT_TRUE(lan.hosts[0]->deliveries().empty());
  EXPECT_EQ(lan.hosts[1]->deliveries().size(), 1u);

  lan.hosts[1]->delete_subscription(ch);
  lan.run_for(sim::seconds(1));
  EXPECT_FALSE(lan.edge->on_tree(ch));
  EXPECT_FALSE(lan.core->on_tree(ch));
}

}  // namespace
}  // namespace express::test
