// The observability plane (DESIGN.md §11): metrics registry semantics,
// the trace ring, and the two guarantees the refactor rests on —
//   1. every legacy *Stats accessor is a thin view over registry
//      slots (RouterStats aggregation == per-entity registry values
//      after a seeded churn run), and
//   2. identically-seeded runs serialize byte-identical metrics
//      snapshots and trace JSONL, while different seeds diverge.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "audit/invariants.hpp"
#include "testbed/testbed.hpp"
#include "obs/obs.hpp"
#include "workload/chaos.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace express {
namespace {

// ---------------------------------------------------------------------
// Registry units
// ---------------------------------------------------------------------

TEST(ObsRegistry, CounterRoundTrip) {
  obs::Registry reg;
  obs::Counter c = reg.counter("test.hits", obs::Entity::router(3));
  c.inc();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.value("test.hits", obs::Entity::router(3)), 5u);
  EXPECT_EQ(reg.value("test.hits", obs::Entity::router(4)), 0u);
  EXPECT_EQ(reg.value("test.absent", obs::Entity::router(3)), 0u);
}

TEST(ObsRegistry, SumAggregatesOverEntities) {
  obs::Registry reg;
  reg.counter("test.hits", obs::Entity::router(1)).add(10);
  reg.counter("test.hits", obs::Entity::router(2)).add(32);
  reg.counter("test.hits", obs::Entity::host(1)).add(100);
  reg.counter("test.other", obs::Entity::router(1)).add(7);
  EXPECT_EQ(reg.sum("test.hits"), 142u);
  EXPECT_EQ(reg.sum("test.other"), 7u);
  EXPECT_EQ(reg.sum("test.absent"), 0u);
}

TEST(ObsRegistry, ReRegistrationZeroesTheSlot) {
  // A fresh module instance re-registering its metrics starts from
  // zero — stale values must not leak across e.g. testbed rebuilds.
  obs::Registry reg;
  reg.counter("test.hits", obs::Entity::router(1)).add(9);
  obs::Counter again = reg.counter("test.hits", obs::Entity::router(1));
  EXPECT_EQ(again.value(), 0u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsRegistry, GaugeSetMaxIsAHighWaterMark) {
  obs::Registry reg;
  obs::Counter g = reg.gauge("test.peak", obs::Entity::network());
  g.set_max(5);
  g.set_max(3);
  EXPECT_EQ(g.value(), 5u);
  g.set(2);
  EXPECT_EQ(g.value(), 2u);
}

TEST(ObsRegistry, HistogramBucketsByBitWidth) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("test.latency", obs::Entity::router(1));
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1
  h.observe(2);   // bucket 2: [2, 4)
  h.observe(3);   // bucket 2
  h.observe(4);   // bucket 3: [4, 8)
  const obs::HistogramData& d = h.data();
  EXPECT_EQ(d.count, 5u);
  EXPECT_EQ(d.sum, 10u);
  EXPECT_EQ(d.buckets[0], 1u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 2u);
  EXPECT_EQ(d.buckets[3], 1u);
}

TEST(ObsRegistry, UnboundHandlesWriteToTheSink) {
  // Default-constructed handles must be safe no-ops: modules may be
  // built before (or without) a scope, e.g. in unit tests.
  obs::Counter c;
  c.inc();
  c.add(10);
  EXPECT_EQ(c.value(), 11u);  // sink accumulates, registry unaffected
}

// ---------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------

TEST(ObsTrace, DisabledTraceRecordsNothing) {
  obs::Trace trace;
  trace.emit(sim::seconds(1), obs::Entity::router(1),
             obs::TraceType::kTimerFire, 42);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.next_index(), 0u);
}

TEST(ObsTrace, RingOverwritesOldestButIndexKeepsGrowing) {
  obs::Trace trace;
  trace.enable(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    trace.emit(sim::Time{} + sim::milliseconds(i), obs::Entity::router(1),
               obs::TraceType::kTimerFire, i);
  }
  EXPECT_EQ(trace.next_index(), 6u);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.at(0).index, 2u);  // oldest retained
  EXPECT_EQ(trace.at(3).index, 5u);  // newest
}

TEST(ObsTrace, FilteredExportAfterWraparoundDropsExactlyTheOverwrittenPrefix) {
  // Pin the wraparound arithmetic the repair-path analysis leans on:
  // after the ring wraps, at(i) walks oldest-to-newest with strictly
  // monotone global indices, and a filtered export sees exactly the
  // retained suffix — no resurrected overwritten records, no holes.
  obs::Trace trace;
  trace.enable(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    // Alternate type and entity so the filters have something to split.
    trace.emit(sim::Time{} + sim::milliseconds(i),
               obs::Entity::router(static_cast<std::uint32_t>(i % 2)),
               i % 2 == 0 ? obs::TraceType::kPacketSent
                          : obs::TraceType::kRetransmit,
               i);
  }
  EXPECT_EQ(trace.next_index(), 20u);
  ASSERT_EQ(trace.size(), 8u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).index, 12u + i);  // records 0..11 overwritten
    EXPECT_EQ(trace.at(i).a, 12u + i);      // payload moved with the index
  }
  obs::TraceFilter retransmits;
  retransmits.type = obs::TraceType::kRetransmit;
  // Retained indices 12..19 hold four odd (kRetransmit) records.
  EXPECT_EQ(trace.count(retransmits), 4u);
  const std::string jsonl = trace.to_jsonl(retransmits);
  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 4u);
  EXPECT_EQ(jsonl.find("\"index\":11"), std::string::npos);  // overwritten
  EXPECT_NE(jsonl.find("\"index\":13"), std::string::npos);  // oldest odd kept
  EXPECT_NE(jsonl.find("\"index\":19"), std::string::npos);  // newest
  // Export order is oldest first even across the wrap seam.
  EXPECT_LT(jsonl.find("\"index\":13"), jsonl.find("\"index\":19"));
}

TEST(ObsTrace, FilterByEntityAndType) {
  obs::Trace trace;
  trace.enable(16);
  trace.emit(sim::seconds(1), obs::Entity::router(1),
             obs::TraceType::kTimerFire);
  trace.emit(sim::seconds(2), obs::Entity::router(2),
             obs::TraceType::kTimerFire);
  trace.emit(sim::seconds(3), obs::Entity::router(1),
             obs::TraceType::kPacketSent);
  obs::TraceFilter by_entity;
  by_entity.entity = obs::Entity::router(1);
  EXPECT_EQ(trace.count(by_entity), 2u);
  obs::TraceFilter by_type;
  by_type.type = obs::TraceType::kTimerFire;
  EXPECT_EQ(trace.count(by_type), 2u);
  by_entity.type = obs::TraceType::kPacketSent;
  EXPECT_EQ(trace.count(by_entity), 1u);
}

TEST(ObsTrace, JsonlIsCanonical) {
  obs::Trace trace;
  trace.enable(4);
  trace.emit(sim::milliseconds(5), obs::Entity::router(7),
             obs::TraceType::kTimerFire, 1, 2, 3);
  EXPECT_EQ(trace.to_jsonl(),
            "{\"a\":1,\"b\":2,\"c\":3,\"entity\":\"router:7\",\"index\":0,"
            "\"time_ns\":5000000,\"type\":\"timer_fire\"}\n");
}

// ---------------------------------------------------------------------
// Views-over-registry regression (satellite: RouterStats aggregation)
// ---------------------------------------------------------------------

void run_churn(Testbed& bed, std::uint64_t seed) {
  const ip::ChannelId channel = bed.source().allocate_channel();
  sim::Rng rng(seed);
  const sim::Duration horizon = sim::seconds(10);
  const auto events = workload::poisson_churn(
      static_cast<std::uint32_t>(bed.receiver_count()), horizon,
      sim::seconds(5), sim::seconds(3), rng);
  auto& sched = bed.net().scheduler();
  for (const auto& ev : events) {
    sched.schedule_at(ev.at, [&bed, &channel, ev] {
      if (ev.join) {
        bed.receiver(ev.host_index).new_subscription(channel);
      } else {
        bed.receiver(ev.host_index).delete_subscription(channel);
      }
    });
  }
  const std::vector<std::uint8_t> header(32, 0x5A);
  std::uint64_t seq = 0;
  for (sim::Time at = sim::milliseconds(200); at < horizon;
       at += sim::milliseconds(200)) {
    sched.schedule_at(at, [&bed, &channel, s = seq++] {
      bed.source().send(channel, 500, s);
    });
  }
  bed.net().run();
}

TEST(ObsViews, RouterStatsEqualsRegistrySlotsAfterSeededChurn) {
  Testbed bed(workload::make_kary_tree(2, 3, {}, 2));
  run_churn(bed, 7);

  const obs::Registry& reg = bed.net().obs().registry;
  std::uint64_t churn_events = 0;
  for (std::size_t i = 0; i < bed.router_count(); ++i) {
    const ExpressRouter& r = bed.router(i);
    const obs::Entity e = obs::Entity::router(r.id());
    const RouterStats s = r.stats();
    EXPECT_EQ(s.subscribe_events, reg.value("express.sub.subscribe_events", e));
    EXPECT_EQ(s.unsubscribe_events,
              reg.value("express.sub.unsubscribe_events", e));
    EXPECT_EQ(s.joins_sent, reg.value("express.sub.joins_sent", e));
    EXPECT_EQ(s.prunes_sent, reg.value("express.sub.prunes_sent", e));
    EXPECT_EQ(s.counts_sent, reg.value("ecmp.transport.counts_sent", e));
    EXPECT_EQ(s.counts_received,
              reg.value("ecmp.transport.counts_received", e));
    EXPECT_EQ(s.control_bytes_sent,
              reg.value("ecmp.transport.control_bytes_sent", e));
    EXPECT_EQ(s.proactive_updates_sent,
              reg.value("express.counting.proactive_updates_sent", e));
    EXPECT_EQ(s.data_packets_forwarded,
              reg.value("express.fwd.data_packets_forwarded", e));
    EXPECT_EQ(s.data_copies_sent,
              reg.value("express.fwd.data_copies_sent", e));
    churn_events += s.subscribe_events + s.unsubscribe_events;
  }
  EXPECT_GT(churn_events, 0u);  // the scenario actually exercised churn

  // And the cross-router sums the benches publish match a registry sum.
  std::uint64_t fwd = 0;
  for (std::size_t i = 0; i < bed.router_count(); ++i) {
    fwd += bed.router(i).stats().data_packets_forwarded;
  }
  EXPECT_EQ(fwd, reg.sum("express.fwd.data_packets_forwarded"));
}

// ---------------------------------------------------------------------
// Snapshot determinism (satellite: byte-identical artifacts)
// ---------------------------------------------------------------------

/// Capture {metrics snapshot, trace JSONL} for a seeded churn run.
std::pair<std::string, std::string> capture_churn(std::uint64_t seed) {
  Testbed bed(workload::make_kary_tree(2, 3, {}, 2));
  bed.net().obs().trace.enable(1 << 16);
  run_churn(bed, seed);
  const obs::Plane& plane = bed.net().obs();
  return {plane.registry.snapshot_json(bed.net().now()),
          plane.trace.to_jsonl()};
}

TEST(ObsDeterminism, SameSeedChurnCapturesAreByteIdentical) {
  const auto a = capture_churn(7);
  const auto b = capture_churn(7);
  EXPECT_GT(a.first.size(), 0u);
  EXPECT_GT(a.second.size(), 0u);
  EXPECT_EQ(a.first, b.first);    // metrics snapshot
  EXPECT_EQ(a.second, b.second);  // trace JSONL
}

TEST(ObsDeterminism, DifferentSeedDiverges) {
  const auto a = capture_churn(7);
  const auto b = capture_churn(8);
  EXPECT_NE(a.second, b.second);
}

/// Capture the observability artifacts of a seeded chaos soak: faults
/// injected and healed over a transit-stub topology with churn in
/// flight, audited at every settle step.
std::pair<std::string, std::string> capture_chaos(std::uint64_t seed) {
  sim::Rng topo_rng(seed);
  Testbed bed(workload::make_transit_stub(4, 2, 2, topo_rng));
  bed.net().obs().trace.enable(1 << 16);
  const ip::ChannelId channel = bed.source().allocate_channel();
  for (std::size_t i = 0; i < bed.receiver_count(); i += 3) {
    bed.receiver(i).new_subscription(channel);
  }
  bed.net().run_until(sim::seconds(2));

  workload::FaultPlanConfig plan;
  plan.fault_count = 4;
  sim::Rng fault_rng(seed + 1);
  const auto schedule = workload::make_fault_schedule(bed.net().topology(),
                                                      plan, fault_rng);
  const auto report = workload::run_chaos_campaign(
      bed.net(), schedule, workload::ChaosConfig{}, [&bed] {
        return audit::InvariantAuditor(bed.net()).run().violations.size();
      });
  EXPECT_EQ(report.violations, 0u);

  const obs::Plane& plane = bed.net().obs();
  return {plane.registry.snapshot_json(bed.net().now()),
          plane.trace.to_jsonl()};
}

TEST(ObsDeterminism, SameSeedChaosSoaksAreByteIdentical) {
  const auto a = capture_chaos(11);
  const auto b = capture_chaos(11);
  EXPECT_NE(a.second.find("fault_inject"), std::string::npos);
  EXPECT_NE(a.second.find("fault_heal"), std::string::npos);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---------------------------------------------------------------------
// Audit anchoring: violations reference trace indices
// ---------------------------------------------------------------------

TEST(ObsAudit, ViolationsCarryTheTracePosition) {
  Testbed bed(workload::make_kary_tree(2, 2, {}, 2));
  bed.net().obs().trace.enable(1 << 12);
  const ip::ChannelId channel = bed.source().allocate_channel();
  bed.receiver(0).new_subscription(channel);
  // Audit mid-flight: the leaf router processed the join but its Count
  // to the parent is still on the wire, so conservation disagrees.
  bed.run_for(sim::milliseconds(2));
  const std::uint64_t emitted = bed.net().obs().trace.next_index();
  ASSERT_GT(emitted, 0u);

  const auto report = audit::InvariantAuditor(bed.net()).run();
  ASSERT_FALSE(report.violations.empty());
  for (const auto& v : report.violations) {
    // Anchored at audit time: every event with index < trace_index
    // preceded the violation (the audit itself emits nothing).
    EXPECT_EQ(v.trace_index, emitted);
  }
}

}  // namespace
}  // namespace express
