// Hierarchical timer-wheel tests.
//
// The wheel is a pure routing optimization: far-future events park in
// coarse slots and cascade toward the heap as their slot comes due.
// The contract is that dispatch order is bit-for-bit identical to a
// heap-only scheduler — cascaded events keep their original sequence
// numbers, so the (time, seq) FIFO tie-break survives parking. The
// main test here drives both builds (Scheduler(true)/Scheduler(false))
// through the same mixed workload and requires identical firing traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace express::sim {
namespace {

struct Fired {
  Time at{};
  std::uint64_t id = 0;
  bool operator==(const Fired&) const = default;
};

std::vector<Fired> run_mixed_load(bool use_wheel) {
  Scheduler s(use_wheel);
  std::vector<Fired> fired;
  Rng rng(99);
  std::uint64_t id = 0;

  // A spread of near (heap), mid (level 0/1), and far (level 2+)
  // events; the delays are drawn identically for both builds.
  std::vector<EventHandle> handles;
  for (int i = 0; i < 2000; ++i) {
    Duration d{};
    switch (rng.below(4)) {
      case 0: d = microseconds(rng.below(2000)); break;
      case 1: d = milliseconds(rng.below(200)); break;
      case 2: d = milliseconds(200 + rng.below(60000)); break;
      default: d = seconds(60 + rng.below(10000)); break;
    }
    handles.push_back(s.schedule_after(
        d, [&fired, &s, my = id++] { fired.push_back({s.now(), my}); }));
  }

  // Equal-time burst: FIFO tie-break among identical timestamps, with
  // some of the burst reaching the heap via a wheel slot and some
  // scheduled after the clock is already close.
  for (int i = 0; i < 50; ++i) {
    s.schedule_at(Time{milliseconds(500)},
                  [&fired, &s, my = id++] { fired.push_back({s.now(), my}); });
  }

  // Cancel a deterministic subset — some parked, some heaped. A
  // cancelled parked event must be reclaimed at cascade, not fired.
  for (std::size_t i = 0; i < handles.size(); i += 7) handles[i].cancel();

  // Self-rescheduling timer hopping across wheel levels (the protocol
  // refresh-timer shape the wheel exists for).
  struct Hopper {
    Scheduler& s;
    std::vector<Fired>& fired;
    std::uint64_t my;
    int remaining;
    void operator()() {
      fired.push_back({s.now(), my});
      if (--remaining > 0) s.schedule_after(seconds(37), *this);
    }
  };
  s.schedule_after(milliseconds(1), Hopper{s, fired, id++, 40});

  // Run in deadline slices so run_until's clock bump interacts with
  // occupied wheel slots, then drain.
  s.run_until(Time{seconds(1)});
  s.run_until(Time{seconds(120)});
  s.run();
  return fired;
}

TEST(TimerWheel, CascadeOrderMatchesHeapOnly) {
  const std::vector<Fired> wheel = run_mixed_load(true);
  const std::vector<Fired> heap_only = run_mixed_load(false);
  ASSERT_EQ(wheel.size(), heap_only.size());
  for (std::size_t i = 0; i < wheel.size(); ++i) {
    ASSERT_TRUE(wheel[i] == heap_only[i])
        << "divergence at event " << i << ": wheel fired id " << wheel[i].id
        << " at " << wheel[i].at.count() << " ns, heap-only fired id "
        << heap_only[i].id << " at " << heap_only[i].at.count() << " ns";
  }
}

TEST(TimerWheel, ParkedEventsAreVisibleBeforeTheyCascade) {
  Scheduler s;
  std::uint64_t fired = 0;
  s.schedule_after(milliseconds(1), [&fired] { ++fired; });
  s.schedule_after(seconds(30), [&fired] { ++fired; });
  EXPECT_EQ(s.pending_events(), 2u);
  EXPECT_EQ(s.stats().parked, 1u);  // the 30 s timer sits in the wheel
  ASSERT_TRUE(s.next_event_time().has_value());
  EXPECT_EQ(*s.next_event_time(), Time{milliseconds(1)});
  s.run_until(Time{seconds(1)});
  EXPECT_EQ(fired, 1u);
  // The far timer is still queued (wheel or heap — an implementation
  // detail), and the quiescence probe reports its true time.
  EXPECT_EQ(s.pending_events(), 1u);
  ASSERT_TRUE(s.next_event_time().has_value());
  EXPECT_EQ(*s.next_event_time(), Time{seconds(30)});
  s.run();
  EXPECT_EQ(fired, 2u);
}

TEST(TimerWheel, CancelledParkedEventsNeverFire) {
  Scheduler s;
  std::uint64_t fired = 0;
  EventHandle far = s.schedule_after(seconds(45), [&fired] { ++fired; });
  EXPECT_TRUE(far.pending());
  far.cancel();
  EXPECT_FALSE(far.pending());
  s.run();
  EXPECT_EQ(fired, 0u);
  EXPECT_EQ(s.executed_events(), 0u);
  EXPECT_EQ(s.stats().cancelled, 1u);
  EXPECT_EQ(s.stats().parked, 0u);  // reclaimed at cascade
  EXPECT_EQ(s.stats().free_slots, 1u);
}

TEST(TimerWheel, ClockNeverEntersAnOccupiedSlot) {
  // run_until with a deadline inside a parked event's slot must leave
  // the event parked yet still deliver it on time afterwards — the
  // cascade-before-dispatch invariant.
  Scheduler s;
  std::vector<Time> fired;
  s.schedule_at(Time{seconds(10)}, [&] { fired.push_back(s.now()); });
  s.schedule_at(Time{seconds(10) + microseconds(10)},
                [&] { fired.push_back(s.now()); });
  ASSERT_EQ(s.stats().parked, 2u);  // both share one level-0 wheel slot
  s.run_until(Time{seconds(10) + microseconds(5)});
  ASSERT_EQ(fired.size(), 1u);
  s.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], Time{seconds(10) + microseconds(10)});
}

}  // namespace
}  // namespace express::sim
